"""Legacy setup shim.

This offline environment ships setuptools without the ``wheel`` package,
so PEP-517 editable installs (`pip install -e .`) cannot build a wheel.
Keeping a setup.py lets `pip install -e . --no-use-pep517
--no-build-isolation` (and plain ``python setup.py develop``) work; all
real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
