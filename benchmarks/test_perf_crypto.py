"""Experiment P3 -- crypto backend microbenchmarks (ablation).

The protocol logic is backend-independent (one CryptoBackend interface).
This file times the primitive operations of the from-scratch RSA backend
against the hash-based simulated-signature backend, and asserts the
expected cost asymmetries: RSA sign >> RSA verify (small public
exponent), and simsig is orders of magnitude cheaper than both -- which
is why large sweeps run on simsig while security tests run on RSA.
"""

import pytest

from repro.crypto.backend import get_backend

MESSAGE = b"RREQ-S|" + b"\x00" * 24


@pytest.fixture(scope="module")
def rsa_keys():
    backend = get_backend("rsa")
    kp = backend.generate_keypair(b"p3")
    sig = backend.sign(kp.private, MESSAGE)
    return backend, kp, sig


@pytest.fixture(scope="module")
def sim_keys():
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"p3")
    sig = backend.sign(kp.private, MESSAGE)
    return backend, kp, sig


def test_bench_rsa_keygen(benchmark):
    backend = get_backend("rsa")
    counter = [0]

    def keygen():
        counter[0] += 1
        return backend.generate_keypair(f"p3-{counter[0]}".encode())

    benchmark.pedantic(keygen, rounds=5, iterations=1)


def test_bench_rsa_sign(benchmark, rsa_keys):
    backend, kp, _ = rsa_keys
    benchmark(lambda: backend.sign(kp.private, MESSAGE))


def test_bench_rsa_verify(benchmark, rsa_keys):
    backend, kp, sig = rsa_keys
    benchmark(lambda: backend.verify(kp.public, MESSAGE, sig))


def test_bench_simsig_sign(benchmark, sim_keys):
    backend, kp, _ = sim_keys
    benchmark(lambda: backend.sign(kp.private, MESSAGE))


def test_bench_simsig_verify(benchmark, sim_keys):
    backend, kp, sig = sim_keys
    benchmark(lambda: backend.verify(kp.public, MESSAGE, sig))


def test_rsa_cost_asymmetry(rsa_keys):
    """RSA with e=65537: verify must be much cheaper than sign (CRT or not)."""
    import time

    backend, kp, sig = rsa_keys
    n = 50
    t0 = time.perf_counter()
    for _ in range(n):
        backend.sign(kp.private, MESSAGE)
    sign_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        backend.verify(kp.public, MESSAGE, sig)
    verify_t = time.perf_counter() - t0
    assert sign_t > 2 * verify_t


def test_simsig_much_cheaper_than_rsa(rsa_keys, sim_keys):
    import time

    rsa_backend, rsa_kp, _ = rsa_keys
    sim_backend, sim_kp, _ = sim_keys
    n = 50
    t0 = time.perf_counter()
    for _ in range(n):
        rsa_backend.sign(rsa_kp.private, MESSAGE)
    rsa_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        sim_backend.sign(sim_kp.private, MESSAGE)
    sim_t = time.perf_counter() - t0
    assert rsa_t > 10 * sim_t
