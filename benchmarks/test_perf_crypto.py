"""Experiment P3 -- crypto backend microbenchmarks + fast-path scorecard.

The protocol logic is backend-independent (one CryptoBackend interface).
This file times the primitive operations of the from-scratch RSA backend
against the hash-based simulated-signature backend, and asserts the
expected cost asymmetries: RSA sign >> RSA verify (small public
exponent), and simsig is orders of magnitude cheaper than both -- which
is why large sweeps run on simsig while security tests run on RSA.

It also establishes the PR 7 **crypto fast path** headline and writes
the machine-readable ``BENCH_crypto.json`` scorecard consumed across
PRs: an N = 1000 RSA bootstrap (the crypto-bound macro-workload) run
baseline (all fast-path flags off), fast-cold (flags on, empty keypair
pool -- the first campaign replicate) and fast-warm (flags on, pooled
keypairs -- every subsequent replicate), asserting **>= 3x** warm
speedup with byte-identical metrics summaries.  Equivalence across the
full 2x2x2 flag matrix, including under active adversaries, is pinned
by tests/test_crypto_equivalence.py; this experiment establishes the
speed.
"""

import time

import pytest

from repro.crypto.backend import get_backend
from repro.crypto.keys import DEFAULT_KEYPAIR_POOL
from repro.scenarios import ScenarioBuilder

from _harness import print_rows, write_bench_json

MESSAGE = b"RREQ-S|" + b"\x00" * 24

#: The macro-benchmark: a 1000-node uniform deployment at constant local
#: density, bootstrapping under the real RSA backend (hop_limit trimmed
#: so the AREQ floods stay local -- crypto, not PHY, dominates).
MACRO_N = 1000
MACRO_DENSITY = 10.0
MACRO_SEED = 101
MIN_WARM_SPEEDUP = 3.0

#: Scorecard accumulated by the tests in this file; flushed to
#: BENCH_crypto.json by whichever test runs last.
_BENCH: dict = {}


def _flush_bench() -> None:
    if {"macro_bootstrap", "simsig_batch_verify", "shared_cache_collapse"} <= set(_BENCH):
        write_bench_json("crypto", _BENCH)


@pytest.fixture(scope="module")
def rsa_keys():
    backend = get_backend("rsa")
    kp = backend.generate_keypair(b"p3")
    sig = backend.sign(kp.private, MESSAGE)
    return backend, kp, sig


@pytest.fixture(scope="module")
def sim_keys():
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"p3")
    sig = backend.sign(kp.private, MESSAGE)
    return backend, kp, sig


def test_bench_rsa_keygen(benchmark):
    backend = get_backend("rsa")
    counter = [0]

    def keygen():
        counter[0] += 1
        return backend.generate_keypair(f"p3-{counter[0]}".encode())

    benchmark.pedantic(keygen, rounds=5, iterations=1)


def test_bench_rsa_sign(benchmark, rsa_keys):
    backend, kp, _ = rsa_keys
    benchmark(lambda: backend.sign(kp.private, MESSAGE))


def test_bench_rsa_verify(benchmark, rsa_keys):
    backend, kp, sig = rsa_keys
    benchmark(lambda: backend.verify(kp.public, MESSAGE, sig))


def test_bench_simsig_sign(benchmark, sim_keys):
    backend, kp, _ = sim_keys
    benchmark(lambda: backend.sign(kp.private, MESSAGE))


def test_bench_simsig_verify(benchmark, sim_keys):
    backend, kp, sig = sim_keys
    benchmark(lambda: backend.verify(kp.public, MESSAGE, sig))


def test_rsa_cost_asymmetry(rsa_keys):
    """RSA with e=65537: verify must be much cheaper than sign (CRT or not)."""
    import time

    backend, kp, sig = rsa_keys
    n = 50
    t0 = time.perf_counter()
    for _ in range(n):
        backend.sign(kp.private, MESSAGE)
    sign_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        backend.verify(kp.public, MESSAGE, sig)
    verify_t = time.perf_counter() - t0
    assert sign_t > 2 * verify_t


def test_simsig_much_cheaper_than_rsa(rsa_keys, sim_keys):
    import time

    rsa_backend, rsa_kp, _ = rsa_keys
    sim_backend, sim_kp, _ = sim_keys
    n = 50
    t0 = time.perf_counter()
    for _ in range(n):
        rsa_backend.sign(rsa_kp.private, MESSAGE)
    rsa_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        sim_backend.sign(sim_kp.private, MESSAGE)
    sim_t = time.perf_counter() - t0
    assert rsa_t > 10 * sim_t


# -- PR 7: crypto fast path -----------------------------------------------

def _macro_run(fast: bool) -> tuple[dict, float, float]:
    """Build + bootstrap the N=1000 RSA scenario; returns
    ``(summary, build_seconds, bootstrap_seconds)``."""
    t0 = time.perf_counter()
    sc = (
        ScenarioBuilder(seed=MACRO_SEED)
        .uniform_density(MACRO_N, density=MACRO_DENSITY)
        .radio(250.0)
        .config(
            crypto_backend="rsa",
            hop_limit=3,
            crypto_shared_cache=fast,
            crypto_batch_verify=fast,
            crypto_keypair_pool=fast,
        )
        .with_dns((0.0, 0.0))
        .build()
    )
    sc.ctx.trace.enabled = False  # measure crypto, not trace formatting
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sc.bootstrap_all(stagger=0.02)
    boot_s = time.perf_counter() - t0
    assert sc.configured_count() == MACRO_N
    return sc.metrics.summary(), build_s, boot_s


def test_macro_bootstrap_speedup_and_equivalence():
    """The headline: >= 3x faster crypto-bound bootstrap at N = 1000 with
    byte-identical metrics.  Warm (pooled keypairs) is the steady-state
    campaign replicate cost; cold shows what the first replicate pays."""
    DEFAULT_KEYPAIR_POOL.clear()
    base_summary, base_build, base_boot = _macro_run(fast=False)
    assert DEFAULT_KEYPAIR_POOL.misses == 0  # pooling really was off

    cold_summary, cold_build, cold_boot = _macro_run(fast=True)   # fills pool
    warm_summary, warm_build, warm_boot = _macro_run(fast=True)   # pool hits

    assert cold_summary == base_summary
    assert warm_summary == base_summary
    assert DEFAULT_KEYPAIR_POOL.hits >= MACRO_N  # warm run reused every pair

    baseline_s = base_build + base_boot
    warm_s = warm_build + warm_boot
    speedup = baseline_s / warm_s
    if speedup < MIN_WARM_SPEEDUP:  # one retry absorbs a noisy first sample
        warm_summary, warm_build, warm_boot = _macro_run(fast=True)
        assert warm_summary == base_summary
        warm_s = warm_build + warm_boot
        speedup = baseline_s / warm_s

    print_rows(
        f"P3+: crypto fast path, N={MACRO_N} RSA bootstrap",
        ["run", "build (s)", "bootstrap (s)", "total (s)"],
        [
            ["baseline (flags off)", f"{base_build:.2f}", f"{base_boot:.2f}",
             f"{baseline_s:.2f}"],
            ["fast cold (empty pool)", f"{cold_build:.2f}", f"{cold_boot:.2f}",
             f"{cold_build + cold_boot:.2f}"],
            ["fast warm (pooled)", f"{warm_build:.2f}", f"{warm_boot:.2f}",
             f"{warm_s:.2f}"],
        ],
    )

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm fast path {speedup:.2f}x vs baseline "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )

    _BENCH["macro_bootstrap"] = {
        "scenario": f"uniform_density n={MACRO_N} density={MACRO_DENSITY}, "
                    f"rsa, hop_limit=3, stagger=0.02",
        "configured_nodes": MACRO_N,
        "baseline_s": round(baseline_s, 2),
        "fast_cold_s": round(cold_build + cold_boot, 2),
        "fast_warm_s": round(warm_s, 2),
        "warm_speedup": round(speedup, 2),
        "summaries_identical": True,
    }
    _flush_bench()


def test_simsig_batch_verify_speedup():
    """The bulk tag pass hoists loop-invariant lookups; it must beat the
    per-item loop on a big batch and agree verdict-for-verdict."""
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"p3-batch")
    items = []
    for i in range(5000):
        payload = b"SRR|%d" % i
        sig = backend.sign(kp.private, payload)
        if i % 7 == 0:
            sig = bytes(len(sig))  # sprinkle invalid signatures
        items.append((kp.public, payload, sig))

    t0 = time.perf_counter()
    seq = [backend.verify(*item) for item in items]
    seq_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = backend.verify_batch(items)
    batch_s = time.perf_counter() - t0
    assert batch == seq
    ratio = seq_s / batch_s if batch_s > 0 else float("inf")

    print_rows(
        "P3+: simsig verify_batch vs per-item loop (5000 items)",
        ["path", "seconds", "ratio"],
        [["per-item", f"{seq_s:.4f}", "1.00"],
         ["batch", f"{batch_s:.4f}", f"{ratio:.2f}"]],
    )
    assert batch_s <= seq_s * 1.25  # never meaningfully slower

    _BENCH["simsig_batch_verify"] = {
        "items": len(items),
        "per_item_s": round(seq_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(ratio, 2),
    }
    _flush_bench()


def test_shared_cache_collapses_repeated_verifies():
    """Deterministic collapse ratio: per-hop verification re-checks the
    same SRR identities at every relay; the scenario-wide cache computes
    each distinct triple once."""

    def discovery_run(fast: bool):
        sc = (
            ScenarioBuilder(seed=77)
            .grid(12, spacing=180.0)
            .radio(250.0)
            .with_dns()
            .config(
                verify_at_intermediate=True,
                crypto_shared_cache=fast,
                crypto_batch_verify=fast,
                crypto_keypair_pool=fast,
            )
            .build()
        )
        sc.bootstrap_all()
        a, z = sc.hosts[0], sc.hosts[-1]
        for k in range(5):
            sc.sim.schedule(k * 1.0, sc.send_data, a, z.ip, b"x" * 32)
        sc.run(duration=20.0)
        backend = sc.hosts[0].backend
        return sc.metrics.summary(), backend.verifies, sc.ctx.verify_cache

    base_summary, base_verifies, _ = discovery_run(fast=False)
    fast_summary, fast_verifies, cache = discovery_run(fast=True)
    assert fast_summary == base_summary
    assert 0 < fast_verifies < base_verifies
    collapse = base_verifies / fast_verifies

    print_rows(
        "P3+: shared verify cache, per-hop verification (grid n=12)",
        ["path", "backend verifies", "collapse"],
        [["baseline", base_verifies, "1.00"],
         ["shared cache", fast_verifies, f"{collapse:.2f}x"]],
    )

    _BENCH["shared_cache_collapse"] = {
        "scenario": "grid n=12, verify_at_intermediate, 5 flows",
        "baseline_verifies": base_verifies,
        "fast_verifies": fast_verifies,
        "collapse_ratio": round(collapse, 2),
        "shared_cache_hits": cache.hits,
    }
    _flush_bench()
