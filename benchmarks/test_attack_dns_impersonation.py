"""Experiment A1 -- impersonation of the DNS (Section 4).

Paper: "Since we impose that every host knows DNS's public key prior to
entering the MANET, such attacks can be easily defended."

Measured shape: an on-path impersonator forges responses for every DNS
query it relays; across many queries the number of *accepted* forged
answers is exactly zero, while availability degrades at worst to a
timeout when the impersonator also drops the real query.
"""

from repro.ipv6.cga import cga_address
from repro.scenarios.attacks import add_dns_impersonator
from repro.scenarios.builder import ScenarioBuilder

from _harness import print_rows

QUERIES = 8


def run_case(drop_real_query, seed=191):
    # Topology pins the impersonator as the ONLY relay between the
    # querier (n0) and the DNS: n0 -- imp -- dns -- bob(n2).
    sc = (
        ScenarioBuilder(seed=seed)
        .positions([(0, 0), (200, 200), (600, 0)])
        .radio(250.0)
        .with_dns((400.0, 0.0))
        .build()
    )
    poison = cga_address(sc.hosts[1].public_key, rn=666)
    imp = add_dns_impersonator(sc, (200.0, 0.0), fake_answer=poison,
                               drop_real_query=drop_real_query)
    sc.bootstrap_all(names={"n2": "bob.manet"})
    sc.run(duration=8.0)

    answers = []
    client = sc.hosts[0]

    def ask(i):
        client.dns_client.resolve("bob.manet", answers.append, timeout=6.0)

    for i in range(QUERIES):
        sc.sim.schedule(i * 7.0, ask, i)
    sc.run(duration=QUERIES * 7.0 + 15.0)

    truth = sc.hosts[2].ip
    poisoned = sum(1 for a in answers if a == poison)
    correct = sum(1 for a in answers if a == truth)
    timeouts = sum(1 for a in answers if a is None)
    return {
        "forged": imp.router.responses_forged,
        "rejected": sc.metrics.verdicts["dns_client.response_rejected"],
        "poisoned": poisoned,
        "correct": correct,
        "timeouts": timeouts,
        "answers": len(answers),
    }


def test_dns_impersonation_never_poisons(benchmark):
    passive = run_case(drop_real_query=False)
    active = run_case(drop_real_query=True)

    for case in (passive, active):
        assert case["answers"] == QUERIES
        assert case["poisoned"] == 0            # the headline claim
    assert passive["forged"] > 0                 # the attack really ran
    assert passive["rejected"] >= 1              # and was caught in the act
    assert passive["correct"] == QUERIES         # race lost, truth wins
    # Dropping the real query can only cost availability, never integrity.
    assert active["correct"] + active["timeouts"] == QUERIES

    print_rows(
        "A1: DNS impersonation by an on-path relay, 8 queries",
        ["variant", "forged", "rejected", "poisoned", "correct", "timeouts"],
        [
            ["forge only", passive["forged"], passive["rejected"],
             passive["poisoned"], passive["correct"], passive["timeouts"]],
            ["forge + drop real query", active["forged"], active["rejected"],
             active["poisoned"], active["correct"], active["timeouts"]],
        ],
    )

    benchmark.pedantic(lambda: run_case(False)["answers"], rounds=1, iterations=1)
