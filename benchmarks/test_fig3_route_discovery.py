"""Experiment F3 -- Figure 3 (RREQ / RREP / CREP sequence).

Reproduces the figure: S floods an RREQ toward D, every intermediate
appends its signed identity to the SRR, D verifies all of them and
returns a signed RREP; later another source S' discovers the same
destination and is answered from S's cache with a two-leg CREP.  The
transcript is the figure; assertions pin the causality; the benchmark
times one full secure discovery.
"""

from repro.trace.sequence import transcript

from _harness import bootstrapped, chain


def test_fig3_rreq_rrep_sequence():
    sc = bootstrapped(chain(5, seed=173))
    s, d = sc.hosts[0], sc.hosts[4]
    start = sc.sim.now
    s.router.discover(d.ip)
    sc.run(duration=5.0)

    events = [e for e in sc.trace.events if e.time >= start]
    rreq_relays = [e for e in events if e.kind == "send" and e.msg_type == "RREQ"
                   and e.node not in (s.name,)]
    rrep_sends = [e for e in events if e.kind == "send" and e.msg_type == "RREP"]
    verdicts = [e.detail for e in events if e.kind == "verdict"]

    assert rreq_relays                       # the flood propagated
    assert rrep_sends[0].node == d.name      # D originated the reply
    assert "rreq.accepted" in verdicts       # D verified source + all hops
    assert "rrep.accepted" in verdicts       # S verified D's signature
    route = s.router.cache.routes_to(d.ip, sc.sim.now)[0].route
    assert route == (sc.hosts[1].ip, sc.hosts[2].ip, sc.hosts[3].ip)

    # Every relayed RREQ grew the SRR by exactly one verifiable entry.
    srr_sizes = {}
    for e in rreq_relays:
        srr_sizes.setdefault(e.node, len(e.payload.srr))
    for node_name, size in srr_sizes.items():
        assert size >= 1

    print("\nFigure 3 (reproduced), discovery branch:")
    print(transcript(sc.trace, msg_types={"RREQ", "RREP"})[-2500:])


def test_fig3_cached_route_reply_sequence():
    sc = bootstrapped(chain(5, seed=179))
    s_prime, s, d = sc.hosts[0], sc.hosts[1], sc.hosts[4]

    s.router.send_data(d.ip, b"prime the cache")
    sc.run(duration=5.0)
    assert s.router.cache.best_shareable(d.ip, sc.sim.now) is not None

    start = sc.sim.now
    delivered = []
    s_prime.router.send_data(d.ip, b"answered from cache",
                             on_delivered=lambda: delivered.append(1))
    sc.run(duration=10.0)

    events = [e for e in sc.trace.events if e.time >= start]
    crep_sends = [e for e in events if e.kind == "send" and e.msg_type == "CREP"]
    assert crep_sends and crep_sends[0].node == s.name   # cache holder answered
    assert any(e.kind == "verdict" and e.detail == "crep.accepted" for e in events)
    assert delivered == [1]
    # D itself never had to answer: no RREP originated by D this round.
    assert not any(e.kind == "send" and e.msg_type == "RREP" and e.node == d.name
                   for e in events)

    print("\nFigure 3 (reproduced), cached-route-reply branch:")
    print(transcript(sc.trace, msg_types={"RREQ", "CREP"})[-2000:])


def test_bench_secure_discovery_4hops(benchmark):
    sc = bootstrapped(chain(5, seed=181))
    s, d = sc.hosts[0], sc.hosts[4]
    counter = [0]

    def discover_fresh():
        # Clear state so every round is a full flood + verification.
        s.router.cache.clear()
        s.router._recent_discoveries.clear()
        counter[0] += 1
        s.router.discover(d.ip)
        sc.run(duration=3.0)
        assert s.router.cache.has_route(d.ip, sc.sim.now)

    benchmark.pedantic(discover_fresh, rounds=5, iterations=1)
