"""Experiment A3 -- replayed / forged AREP, DREP, RREP, CREP (Section 4).

Paper: "Replaying AREP/DREP/RREP/CREP is unlikely because the attackers
have to know how to encrypt either the challenge or the sequence number.
An adversary can not forge [them] because it does not know the private
key of the host which it intends to pretend."

Measured shape: a recording replayer and an SRR forger run against the
full protocol and against the BSAR-like endpoint-only baseline.  Under
the full protocol the accepted-forgery count is exactly zero; under the
baseline the forged *hop* is accepted (the paper's stated improvement
over BSAR, quantified).
"""

from repro.routing.bsar_like import EndpointOnlyRouter
from repro.scenarios.attacks import add_forger, add_replayer

from _harness import bootstrapped, chain, print_rows, two_path


def run_replay(seed=197):
    sc = bootstrapped(chain(4, seed=seed))
    rep = add_replayer(sc, (300.0, 120.0))
    rep.bootstrap.start("")
    sc.run(duration=5.0)
    a, b = sc.hosts[0], sc.hosts[3]
    a.router.send_data(b.ip, b"round-1")
    sc.run(duration=8.0)
    # Force rediscovery so the replayer can race the real reply.
    a.router.cache.clear()
    a.router._recent_discoveries.clear()
    a.router.send_data(b.ip, b"round-2")
    sc.run(duration=8.0)
    fired = rep.component("replayer").replays_fired
    fired += rep.component("replayer").replay_everything()
    sc.run(duration=8.0)
    m = sc.metrics
    return {
        "fired": fired,
        "stale_rejected": m.verdicts["rrep.rejected.stale_seq"]
        + m.verdicts["crep.rejected.stale_seq"],
        "accepted_extra": 0,  # filled by caller from verdict deltas
        "delivered": m.delivered(a.ip, b.ip),
        "metrics": m,
    }


def run_hop_forgery(router=None, seed=199):
    builder = two_path(seed=seed)
    if router is not None:
        builder = builder.router(router)
    sc = builder.build()
    sc.bootstrap_all()
    victim = sc.hosts[2]
    forger = add_forger(sc, (200.0, 0.0), spoof_hop_ip=victim.ip)
    forger.bootstrap.start("")
    sc.run(duration=5.0)
    a, b = sc.hosts[0], sc.hosts[1]
    a.router.send_data(b.ip, b"x")
    sc.run(duration=15.0)
    return {
        "spoofed": forger.router.hops_spoofed,
        "hop_rejections": sc.metrics.verdicts["rreq.rejected.hop_bad_cga"]
        + sc.metrics.verdicts["rreq.rejected.hop_bad_signature"],
        "delivered": sc.metrics.delivered(a.ip, b.ip),
    }


def test_replay_and_forgery_acceptance_is_zero(benchmark):
    replay = run_replay()
    assert replay["fired"] > 0
    assert replay["stale_rejected"] >= 1
    assert replay["delivered"] == 2      # real traffic unharmed

    full = run_hop_forgery()
    bsar = run_hop_forgery(router=EndpointOnlyRouter)
    assert full["spoofed"] >= 1 and bsar["spoofed"] >= 1
    assert full["hop_rejections"] >= 1   # full protocol catches the splice
    assert bsar["hop_rejections"] == 0   # endpoint-only never looks
    assert full["delivered"] == 1

    print_rows(
        "A3: replay + SRR-hop forgery outcomes",
        ["attack", "attempts", "accepted", "rejected (verified)"],
        [
            ["replayed RREP/CREP/AREP (full protocol)",
             replay["fired"], 0, replay["stale_rejected"]],
            ["forged SRR hop (full protocol)",
             full["spoofed"], 0, full["hop_rejections"]],
            ["forged SRR hop (BSAR-like baseline)",
             bsar["spoofed"], bsar["spoofed"], 0],
        ],
    )

    benchmark.pedantic(lambda: run_hop_forgery()["spoofed"], rounds=1, iterations=1)
