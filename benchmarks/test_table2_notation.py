"""Experiment T2 -- Table 2 (symbols and notation), executable.

Every symbol of Table 2 maps to a concrete API object in this library;
the test exercises each mapping, prints the reproduced table, and
benchmarks the two primitives the notation is built on: ``H(PK, rn)``
and ``[msg]_XSK`` (sign + verify).
"""

from repro.crypto.backend import get_backend
from repro.crypto.hashes import cga_hash
from repro.ipv6.cga import cga_address, generate_cga, verify_cga
from repro.messages import signing
from repro.sim.rng import SimRNG

from _harness import print_rows

TABLE2 = [
    ["XIP", "IP address of node X", "Node.ip : IPv6Address (CGA, Fig. 1)"],
    ["XSK", "private key of host X", "KeyPair.private (never serialised)"],
    ["XPK", "public key of host X", "KeyPair.public -> message field"],
    ["Xrn", "random number hashing X's IP", "CGAParams.rn (64-bit)"],
    ["DN", "domain name", "AREQ.domain_name / DNSRecord.name"],
    ["ch", "random challenge", "SimRNG.nonce(64) -> AREQ.ch"],
    ["seq", "unique sequence number", "Node.next_seq() (random 48-bit base)"],
    ["RR", "route record of AREQ/RREQ", "AREQ.route_record / RREP.route"],
    ["SRR", "secure route record", "RREQ.srr : tuple[SRREntry, ...]"],
    ["[msg]XSK", "msg encrypted by X's SK", "CryptoBackend.sign(payload)"],
]


def test_table2_symbols_all_executable():
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"t2")
    rng = SimRNG(1, "t2")

    addr, params = generate_cga(kp.public, rng)          # XIP, Xrn
    assert verify_cga(addr, params)
    assert addr.interface_id == cga_hash(kp.public.encode(), params.rn)

    ch = rng.nonce(64)                                    # ch
    payload = signing.arep_payload(addr, ch)              # [SIP, ch]
    sig = backend.sign(kp.private, payload)               # [msg]XSK
    assert backend.verify(kp.public, payload, sig)

    print_rows("Table 2 (reproduced): symbol -> implementation",
               ["Symbol", "Paper description", "Implementation"], TABLE2)


def test_bench_cga_hash(benchmark):
    backend = get_backend("simsig")
    pk = backend.generate_keypair(b"t2-hash").public.encode()
    benchmark(lambda: cga_hash(pk, 123456789))


def test_bench_sign_verify_simsig(benchmark):
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"t2-sig")
    payload = signing.rreq_source_payload(
        cga_address(kp.public, 1), 42
    )

    def sign_and_verify():
        sig = backend.sign(kp.private, payload)
        assert backend.verify(kp.public, payload, sig)

    benchmark(sign_and_verify)
