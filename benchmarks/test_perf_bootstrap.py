"""Experiment P1 -- bootstrap cost vs network size.

The paper claims network formation is "light-weight" (one flood per
joiner, no pre-configuration beyond the DNS key).  This sweep measures
time-to-address and control overhead as the network grows, and checks
the expected shape: per-node DAD time is flat (one dad_timeout wait
dominates), while total AREQ traffic grows with both joiners and relays
(O(n^2)-ish on a chain, since every flood crosses the whole network).
"""

import time

import pytest

from _harness import bootstrapped, chain, print_rows

SIZES = (4, 8, 12)


def measure(n, seed=233):
    # Every host registers a name, so each one also re-floods its
    # registration announcement once the network is formed -- the flood
    # whose cost actually scales with network size.
    names = {f"n{i}": f"host-{i}.manet" for i in range(n)}
    sc = bootstrapped(chain(n, seed=seed), names=names, settle=6.0)
    m = sc.metrics
    assert sc.configured_count() == n
    mean_dad = sum(m.dad_time.values()) / len(m.dad_time)
    return {
        "n": n,
        "mean_dad_time": mean_dad,
        "areq_sent": m.msgs_sent["AREQ"],
        "control_bytes": m.control_bytes(),
    }


def test_bootstrap_scaling_shape(benchmark):
    rows = [measure(n) for n in SIZES]

    # Shape 1: per-node time-to-address is flat -- dominated by the fixed
    # dad_timeout quiet window, not by network size.
    times = [r["mean_dad_time"] for r in rows]
    assert max(times) < 1.5 * min(times)
    # Shape 2: flood traffic grows superlinearly with n on a chain.
    per_node = [r["areq_sent"] / r["n"] for r in rows]
    assert per_node[-1] > per_node[0]

    print_rows(
        "P1: bootstrap cost vs network size (chain topology)",
        ["nodes", "mean time-to-address (s)", "AREQ frames", "control bytes"],
        [[r["n"], f'{r["mean_dad_time"]:.2f}', r["areq_sent"],
          r["control_bytes"]] for r in rows],
    )

    benchmark.pedantic(lambda: measure(8)["n"], rounds=2, iterations=1)


@pytest.mark.parametrize("n", SIZES)
def test_bootstrap_configures_everyone(n):
    sc = bootstrapped(chain(n, seed=239), settle=2.0)
    assert sc.configured_count() == n
    addrs = {h.ip for h in sc.hosts}
    assert len(addrs) == n  # all unique


# -- PR 7: where does bootstrap wall time actually go? ---------------------

def _phase_profile(backend_name: str, n: int = 10) -> dict:
    """Build + run a named-registration bootstrap under kernel profiling
    with keygen and sign/verify wrapped in wall-clock timers, bucketing
    the total into keygen / crypto / PHY / protocol / kernel dispatch.

    Keygen happens at ``build()`` (node identity derivation), outside the
    event loop; in-run sign/verify time is a *subset* of protocol-handler
    time (verification runs inside router/bootstrap handlers), so it is
    carved out of the protocol bucket rather than added alongside it.
    """
    from repro.crypto.backend import get_backend

    backend_cls = type(get_backend(backend_name))
    keygen_wall = [0.0]
    original_keygen = backend_cls.generate_keypair

    def timed_keygen(self, seed):
        t0 = time.perf_counter()
        out = original_keygen(self, seed)
        keygen_wall[0] += time.perf_counter() - t0
        return out

    backend_cls.generate_keypair = timed_keygen
    try:
        t0 = time.perf_counter()
        # 10% loss gives the unicast retry path every chance to execute;
        # even so it barely registers (first attempts run inline inside
        # the sender's handler; only retries are scheduled) -- that
        # near-zero share IS the measured verdict.
        builder = chain(n, seed=251, crypto_backend=backend_name)
        sc = builder.radio(250.0, loss_rate=0.1).build()
        build_s = time.perf_counter() - t0
    finally:
        backend_cls.generate_keypair = original_keygen

    stats = sc.enable_kernel_stats()
    backend = sc.hosts[0].backend
    crypto_wall = [0.0]
    for op in ("sign", "verify", "verify_batch"):
        original = getattr(backend, op)

        def timed(*a, _original=original, **kw):
            t0 = time.perf_counter()
            out = _original(*a, **kw)
            crypto_wall[0] += time.perf_counter() - t0
            return out

        setattr(backend, op, timed)

    names = {f"n{i}": f"host-{i}.manet" for i in range(n)}
    sc.bootstrap_all(names=names)
    a, z = sc.hosts[0], sc.hosts[-1]
    for k in range(5):
        sc.sim.schedule(k * 1.0, sc.send_data, a, z.ip, b"x" * 32)
    sc.run(duration=20.0)
    assert sc.configured_count() == n

    phy = unicast_retry = 0.0
    for kind, wall in stats.handler_wall.items():
        if kind.startswith(("WirelessMedium.", "RandomWaypoint", "ChurnModel")):
            phy += wall
            if kind == "WirelessMedium._attempt_unicast":
                unicast_retry = wall
    handler_total = sum(stats.handler_wall.values())
    run_s = max(stats.wall_seconds, handler_total)
    total = (build_s + run_s) or 1e-9
    keygen = min(keygen_wall[0], build_s)
    crypto = min(crypto_wall[0], handler_total - phy)
    return {
        "backend": backend_name,
        "total_s": total,
        "keygen": keygen,
        "crypto": crypto,
        "phy": phy,
        "protocol": (handler_total - phy) - crypto,
        "kernel": max(stats.wall_seconds - handler_total, 0.0),
        "unicast_retry": unicast_retry,
    }


def test_bootstrap_phase_profile_and_unicast_verdict():
    """P1+: phase split of a named bootstrap + 5 flows, per backend.

    Establishes (a) RSA runs are crypto-bound -- keygen plus sign/verify
    is the dominant bucket, so the fast path (keypair pool, shared verify
    cache) attacks the right phase -- and (b) the unicast snoop/retry
    path is a tiny slice of even the simsig (non-crypto-bound) profile,
    recording the measured basis for the "don't batch the unicast path"
    verdict in ROADMAP.md.
    """
    profiles = [_phase_profile("rsa"), _phase_profile("simsig")]

    def pct(p, key):
        return 100.0 * p[key] / p["total_s"]

    def crypto_share(p):
        return pct(p, "keygen") + pct(p, "crypto")

    print_rows(
        "P1+: bootstrap+flows wall-time split (chain n=10)",
        ["backend", "keygen %", "sign/verify %", "phy %",
         "other protocol %", "kernel dispatch %", "unicast retry %"],
        [[p["backend"], f"{pct(p, 'keygen'):.1f}", f"{pct(p, 'crypto'):.1f}",
          f"{pct(p, 'phy'):.1f}", f"{pct(p, 'protocol'):.1f}",
          f"{pct(p, 'kernel'):.1f}", f"{pct(p, 'unicast_retry'):.2f}"]
         for p in profiles],
    )

    rsa, simsig = profiles
    # The fast path targets the dominant bucket: under RSA, crypto
    # (keygen + sign/verify) is the biggest phase by a wide margin.
    assert crypto_share(rsa) > max(pct(rsa, "phy"), pct(rsa, "kernel"))
    assert crypto_share(rsa) > 2 * crypto_share(simsig)
    # The unicast snoop/retry path is noise in both profiles: batching it
    # cannot move the needle the way batching verification did.
    for p in profiles:
        assert pct(p, "unicast_retry") < 10.0
