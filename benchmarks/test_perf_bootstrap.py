"""Experiment P1 -- bootstrap cost vs network size.

The paper claims network formation is "light-weight" (one flood per
joiner, no pre-configuration beyond the DNS key).  This sweep measures
time-to-address and control overhead as the network grows, and checks
the expected shape: per-node DAD time is flat (one dad_timeout wait
dominates), while total AREQ traffic grows with both joiners and relays
(O(n^2)-ish on a chain, since every flood crosses the whole network).
"""

import pytest

from _harness import bootstrapped, chain, print_rows

SIZES = (4, 8, 12)


def measure(n, seed=233):
    # Every host registers a name, so each one also re-floods its
    # registration announcement once the network is formed -- the flood
    # whose cost actually scales with network size.
    names = {f"n{i}": f"host-{i}.manet" for i in range(n)}
    sc = bootstrapped(chain(n, seed=seed), names=names, settle=6.0)
    m = sc.metrics
    assert sc.configured_count() == n
    mean_dad = sum(m.dad_time.values()) / len(m.dad_time)
    return {
        "n": n,
        "mean_dad_time": mean_dad,
        "areq_sent": m.msgs_sent["AREQ"],
        "control_bytes": m.control_bytes(),
    }


def test_bootstrap_scaling_shape(benchmark):
    rows = [measure(n) for n in SIZES]

    # Shape 1: per-node time-to-address is flat -- dominated by the fixed
    # dad_timeout quiet window, not by network size.
    times = [r["mean_dad_time"] for r in rows]
    assert max(times) < 1.5 * min(times)
    # Shape 2: flood traffic grows superlinearly with n on a chain.
    per_node = [r["areq_sent"] / r["n"] for r in rows]
    assert per_node[-1] > per_node[0]

    print_rows(
        "P1: bootstrap cost vs network size (chain topology)",
        ["nodes", "mean time-to-address (s)", "AREQ frames", "control bytes"],
        [[r["n"], f'{r["mean_dad_time"]:.2f}', r["areq_sent"],
          r["control_bytes"]] for r in rows],
    )

    benchmark.pedantic(lambda: measure(8)["n"], rounds=2, iterations=1)


@pytest.mark.parametrize("n", SIZES)
def test_bootstrap_configures_everyone(n):
    sc = bootstrapped(chain(n, seed=239), settle=2.0)
    assert sc.configured_count() == n
    addrs = {h.ip for h in sc.hosts}
    assert len(addrs) == n  # all unique
