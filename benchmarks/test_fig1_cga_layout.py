"""Experiment F1 -- Figure 1 (the CGA site-local address layout).

Checks the 10/38/16/64-bit field split on freshly generated addresses,
prints a rendered address in the figure's format, and benchmarks CGA
generation and verification (the per-identity and per-check costs).
"""

from repro.crypto.backend import get_backend
from repro.crypto.hashes import cga_hash
from repro.ipv6.cga import CGAParams, cga_address, generate_cga, verify_cga
from repro.ipv6.prefixes import split_fields
from repro.sim.rng import SimRNG

from _harness import print_rows


def test_fig1_field_layout_reproduced():
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"f1")
    rng = SimRNG(9, "f1")
    addr, params = generate_cga(kp.public, rng)
    prefix, zeros, subnet, iface = split_fields(addr)

    assert prefix == 0b1111111011            # fec0::/10 site-local
    assert zeros == 0                        # 38 all-zero bits
    assert subnet == 0                       # 16-bit subnet ID, 0 in a MANET
    assert iface == cga_hash(kp.public.encode(), params.rn)  # H(PK, rn)
    assert verify_cga(addr, params)

    print_rows(
        f"Figure 1 (reproduced) for {addr}",
        ["field", "bits", "value"],
        [
            ["site-local prefix", 10, bin(prefix)],
            ["all zeros", 38, zeros],
            ["subnet ID", 16, subnet],
            ["H(PK, rn)", 64, hex(iface)],
        ],
    )


def test_fig1_collision_recovery_changes_only_rn():
    """Paper: on a hash collision draw a new rn, PK unchanged."""
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"f1b")
    a1 = cga_address(kp.public, rn=1)
    a2 = cga_address(kp.public, rn=2)
    assert a1 != a2
    assert verify_cga(a2, CGAParams(kp.public, 2))


def test_bench_cga_generation(benchmark):
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"f1-gen")
    rng = SimRNG(10, "f1-gen")
    benchmark(lambda: generate_cga(kp.public, rng))


def test_bench_cga_verification(benchmark):
    backend = get_backend("simsig")
    kp = backend.generate_keypair(b"f1-ver")
    addr, params = generate_cga(kp.public, SimRNG(11, "f1-ver"))
    benchmark(lambda: verify_cga(addr, params))
