"""Experiment A4 -- replayed / forged RERR (Section 4).

Paper: an off-path host "can not easily forge a RERR unless it is a node
in the routing path"; an on-path false reporter must expose its identity
and "if the malicious host keeps on conducting such attacks, its
identity will be tracked by the initiator"; replays "make no sense".

Measured shape: off-path forgeries are rejected 100%; on-path spam is
accepted at first, the reporter is suspected within the configured
threshold, its credit collapses, and the flow's delivery stays high.
"""

from repro.scenarios.attacks import add_rerr_spammer
from repro.scenarios.workloads import CBRTraffic

from _harness import print_rows, two_path

COUNT = 25


def run_spam(seed=211):
    sc = two_path(seed=seed, route_cache_ttl=4.0).build()
    spammer = add_rerr_spammer(sc, (200.0, 0.0))
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[1]
    traffic = CBRTraffic(a, b.ip, interval=1.0, count=COUNT)
    sc.run(duration=COUNT + 40.0)
    return sc, spammer, traffic


def test_rerr_attacks(benchmark):
    sc, spammer, traffic = run_spam()
    a = sc.hosts[0]

    spammed = spammer.router.rerrs_spammed
    accepted = sc.metrics.verdicts["rerr.accepted"]
    suspected = sc.metrics.verdicts["rerr.reporter_suspected"]
    assert spammed >= 3
    assert accepted >= 1                       # paper: S must accept at first
    assert suspected >= 1                      # then the identity is tracked
    assert a.router.credits.is_suspect(spammer.ip)
    assert traffic.delivered >= COUNT - 5

    # Off-path forgery: rejected outright by the on-route check.
    offpath = sc.hosts[2]  # honest identity, but NOT on any a->b route now
    spam_router = spammer.router
    before = sc.metrics.verdicts["rerr.rejected.not_on_route"]
    spam_router.forge_offpath_rerr(a.ip, sc.hosts[3].ip)
    # Also inject one directly in case the spammer is out of range of a.
    from repro.messages import signing
    from repro.messages.routing import RERR
    from repro.phy.medium import Frame

    forged = RERR(
        reporter_ip=spammer.ip,
        broken_next_hop=sc.hosts[3].ip,
        signature=spammer.sign(signing.rerr_payload(spammer.ip, sc.hosts[3].ip)),
        public_key=spammer.public_key,
        rn=spammer.cga_params.rn,
        sip=a.ip,
        return_route=(),
    )
    a._on_frame(Frame(spammer.link_id, a.link_id, spammer.ip, forged, 10))
    sc.run(duration=3.0)
    offpath_rejected = sc.metrics.verdicts["rerr.rejected.not_on_route"] - before
    assert offpath_rejected >= 1

    print_rows(
        "A4: RERR spam (on-path) + off-path forgery, 25-packet flow",
        ["metric", "value"],
        [
            ["false RERRs sent (on-path)", spammed],
            ["initially accepted (paper: unavoidable)", accepted],
            ["reporter-suspected verdicts", suspected],
            ["spammer credit at source", f"{a.router.credits.credit(spammer.ip):.1f}"],
            ["off-path forgeries rejected", offpath_rejected],
            ["packets delivered", f"{traffic.delivered}/{COUNT}"],
        ],
    )

    benchmark.pedantic(lambda: run_spam()[2].delivered, rounds=1, iterations=1)
