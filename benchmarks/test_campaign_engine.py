"""Campaign engine overhead: expansion, dispatch amortisation, throughput.

The campaign engine's promise is that orchestration is free relative to
the simulations it shards: expanding a few-hundred-run matrix must be
instant, a parallel sweep must not lose runs or determinism, and -- the
batched-dispatch claim of this suite's headline experiment -- a sweep of
many *small* runs must not drown in per-task pool/pickle overhead.  The
many-small-runs benchmark pins the simulation body to a trivial stub so
the measurement isolates pure engine dispatch cost, then requires
batched dispatch (32 runs per worker task, the auto-tuner's pick) to
beat the PR-1 one-task-per-run strategy by >= 1.5x with byte-identical
records.  The
measured numbers land in the ``BENCH_campaign.json`` scorecard (written
only under ``REPRO_BENCH_WRITE=1``, like ``BENCH_phy.json``).
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import CampaignSpec, auto_batch_size, run_campaign

from _harness import print_rows, write_bench_json

#: The many-small-runs workload: this many near-empty runs.  Large
#: enough that per-task dispatch overhead dwarfs the (fixed, identical
#: on both sides) pool start-up cost, so the >= 1.5x floor holds with
#: a wide margin on slow CI machines.
SMALL_RUNS = 512
#: Batch size for the batched side of the comparison -- what the
#: auto-tuner picks for this matrix on 2 workers.
SMALL_BATCH = 32
REQUIRED_SPEEDUP = 1.5
TIMING_ROUNDS = 3


def _matrix_spec(replicates: int = 2) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "bench",
        "seed": 11,
        "replicates": replicates,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {
            "router": ["secure", "plain", "endpoint"],
            "topology.n": [3, 4, 5, 6],
            "radio.loss_rate": [0.0, 0.05, 0.1],
            "config.hostile_mode": [True, False],
        },
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 3},
        "duration": 8.0,
        "timeout": 60.0,
    })


def test_expansion_covers_grid_with_unique_seeds(benchmark):
    spec = _matrix_spec(replicates=2)
    runs = benchmark(spec.expand)
    assert len(runs) == 3 * 4 * 3 * 2 * 2  # axes product x replicates
    assert len({r.seed for r in runs}) == len(runs)
    assert len({r.run_id for r in runs}) == len(runs)
    print_rows(
        "Campaign expansion",
        ["matrix", "runs"],
        [["3 routers x 4 sizes x 3 loss x 2 modes x 2 reps", len(runs)]],
    )


def test_small_sweep_executes_every_run():
    spec = CampaignSpec.from_dict({
        "name": "bench-exec",
        "seed": 4,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {"router": ["secure", "plain"]},
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 3},
        "duration": 8.0,
        "timeout": 60.0,
    })
    records = run_campaign(spec, workers=1)
    assert [r["status"] for r in records] == ["ok", "ok"]
    rows = [
        [r["params"]["router"], f"{r['summary']['pdr']:.2f}",
         r["summary"]["control_bytes"]]
        for r in records
    ]
    print_rows("Campaign sweep (2 runs, inline)",
               ["router", "PDR", "control bytes"], rows)


def _tiny_body(run: dict) -> dict:
    """Near-zero simulation body: deterministic in the RunSpec alone.

    Module-level so fork-started workers resolve the monkeypatched
    ``runner._run_body`` to this; with the body pinned to ~nothing the
    sweep's cost is pure engine dispatch overhead, which is exactly
    what batching is supposed to amortise.
    """
    return {"pdr": 1.0, "seed_lane": run["seed"] % 997, "hosts": 0}


def _small_runs_spec() -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "bench-small-runs",
        "seed": 17,
        "replicates": SMALL_RUNS,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 2},
        "duration": 5.0,
        "timeout": 60.0,
    })


def _time_sweep(spec: CampaignSpec, batch_size: int) -> tuple[float, list[dict]]:
    """Best-of-N wall time for the sweep at a given batch size."""
    best, records = float("inf"), None
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        records = run_campaign(spec, workers=2, batch_size=batch_size)
        best = min(best, time.perf_counter() - start)
    return best, records


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the stub _run_body is monkeypatched into the runner module and "
           "only fork-started workers inherit that patch; spawn/forkserver "
           "workers would time 512 real simulations instead",
)
def test_batched_dispatch_amortises_many_small_runs(monkeypatch):
    """Many tiny runs on 2 workers: 32-run batches vs one task per run.

    Batching must win >= 1.5x on dispatch overhead while returning
    byte-identical records -- batch composition is execution strategy,
    never data.
    """
    monkeypatch.setattr(runner_mod, "_run_body", _tiny_body)
    spec = _small_runs_spec()
    # the auto-tuner picks exactly the batched configuration by default
    assert auto_batch_size(SMALL_RUNS, 2) == SMALL_BATCH

    single_s, single_records = _time_sweep(spec, batch_size=1)
    batched_s, batched_records = _time_sweep(spec, batch_size=SMALL_BATCH)

    assert [json.dumps(r, sort_keys=True) for r in single_records] == \
           [json.dumps(r, sort_keys=True) for r in batched_records]
    assert len(batched_records) == SMALL_RUNS
    assert all(r["status"] == "ok" for r in batched_records)

    speedup = single_s / batched_s
    print_rows(
        f"Batched dispatch ({SMALL_RUNS} tiny runs, 2 workers, "
        f"best of {TIMING_ROUNDS})",
        ["batch size", "wall ms", "speedup"],
        [
            [1, f"{single_s * 1e3:.1f}", "1.00x"],
            [SMALL_BATCH, f"{batched_s * 1e3:.1f}", f"{speedup:.2f}x"],
        ],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched dispatch only {speedup:.2f}x faster than one-task-per-run "
        f"(required {REQUIRED_SPEEDUP}x)"
    )
    write_bench_json("campaign", {
        "batched_dispatch": {
            "runs": SMALL_RUNS,
            "workers": 2,
            "batch_size": SMALL_BATCH,
            "single_ms": round(single_s * 1e3, 3),
            "batched_ms": round(batched_s * 1e3, 3),
            "speedup": round(speedup, 2),
            "records_byte_identical": True,
        },
    })
