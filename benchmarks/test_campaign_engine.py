"""Campaign engine overhead: spec expansion and sweep throughput.

The campaign engine's promise is that orchestration is free relative to
the simulations it shards: expanding a few-hundred-run matrix must be
instant, and a parallel sweep must not lose runs or determinism.  The
benchmark times matrix expansion; the assertions pin the engine's
contract (full cartesian coverage, unique deterministic seeds, inline
sweep delivering every record).
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, run_campaign

from _harness import print_rows


def _matrix_spec(replicates: int = 2) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "bench",
        "seed": 11,
        "replicates": replicates,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {
            "router": ["secure", "plain", "endpoint"],
            "topology.n": [3, 4, 5, 6],
            "radio.loss_rate": [0.0, 0.05, 0.1],
            "config.hostile_mode": [True, False],
        },
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 3},
        "duration": 8.0,
        "timeout": 60.0,
    })


def test_expansion_covers_grid_with_unique_seeds(benchmark):
    spec = _matrix_spec(replicates=2)
    runs = benchmark(spec.expand)
    assert len(runs) == 3 * 4 * 3 * 2 * 2  # axes product x replicates
    assert len({r.seed for r in runs}) == len(runs)
    assert len({r.run_id for r in runs}) == len(runs)
    print_rows(
        "Campaign expansion",
        ["matrix", "runs"],
        [["3 routers x 4 sizes x 3 loss x 2 modes x 2 reps", len(runs)]],
    )


def test_small_sweep_executes_every_run():
    spec = CampaignSpec.from_dict({
        "name": "bench-exec",
        "seed": 4,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {"router": ["secure", "plain"]},
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 3},
        "duration": 8.0,
        "timeout": 60.0,
    })
    records = run_campaign(spec, workers=1)
    assert [r["status"] for r in records] == ["ok", "ok"]
    rows = [
        [r["params"]["router"], f"{r['summary']['pdr']:.2f}",
         r["summary"]["control_bytes"]]
        for r in records
    ]
    print_rows("Campaign sweep (2 runs, inline)",
               ["router", "PDR", "control bytes"], rows)
