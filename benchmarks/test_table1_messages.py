"""Experiment T1 -- reproduce Table 1 (the control-message set).

Asserts the seven control messages exist with exactly the paper's
function and parameter columns, prints the reproduced table augmented
with measured wire sizes, and benchmarks the codec round-trip (the
per-message cost every relay pays).
"""

from repro.crypto.backend import get_backend
from repro.ipv6.address import IPv6Address
from repro.messages.bootstrap import AREP, AREQ, DREP
from repro.messages.codec import decode_message, encode_message, table1_rows, wire_size
from repro.messages.routing import CREP, RERR, RREP, RREQ, SRREntry

from _harness import print_rows

KEY = get_backend("simsig").generate_keypair(b"t1").public
SIG = b"\x01" * 16
A1, A2, A3 = IPv6Address("fec0::1"), IPv6Address("fec0::2"), IPv6Address("fec0::3")

SAMPLES = {
    "AREQ": AREQ(sip=A1, seq=1, domain_name="host.manet", ch=2, route_record=(A2,)),
    "AREP": AREP(sip=A1, route_record=(A2,), signature=SIG, public_key=KEY, rn=3),
    "DREP": DREP(sip=A1, route_record=(A2,), domain_name="host.manet", signature=SIG),
    "RREQ": RREQ(sip=A1, dip=A3, seq=1,
                 srr=(SRREntry(ip=A2, signature=SIG, public_key=KEY, rn=4),),
                 source_signature=SIG, source_public_key=KEY, source_rn=5),
    "RREP": RREP(sip=A1, dip=A3, seq=1, route=(A2,), signature=SIG,
                 public_key=KEY, rn=6),
    "CREP": CREP(sprime_ip=A1, sip=A2, dip=A3, fresh_seq=1, fresh_route=(),
                 fresh_signature=SIG, fresh_public_key=KEY, fresh_rn=7,
                 cached_seq=2, cached_route=(A1,), cached_signature=SIG,
                 cached_public_key=KEY, cached_rn=8),
    "RERR": RERR(reporter_ip=A2, broken_next_hop=A3, signature=SIG,
                 public_key=KEY, rn=9, sip=A1),
}

PAPER_PARAMETERS = {
    "AREQ": "(SIP, seq, DN, ch, RR)",
    "AREP": "(SIP, RR, [SIP, ch]RSK, RPK, Rrn)",
    "DREP": "(SIP, RR, [DN, ch]NSK)",
    "RREQ": "(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)",
    "RREP": "(SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)",
}


def test_table1_message_set_matches_paper():
    rows = table1_rows()
    assert [r[0] for r in rows] == ["AREQ", "AREP", "DREP", "RREQ", "RREP", "CREP", "RERR"]
    by_type = {r[0]: r[2] for r in rows}
    for name, params in PAPER_PARAMETERS.items():
        assert by_type[name] == params

    printable = [
        [name, fn, params, f"{wire_size(SAMPLES[name])} B"]
        for name, fn, params in rows
    ]
    print_rows("Table 1 (reproduced) + measured wire size (1-hop samples, simsig keys)",
               ["Type", "Function", "Parameters", "size"], printable)


def test_every_table1_message_roundtrips():
    for name, msg in SAMPLES.items():
        assert decode_message(encode_message(msg)) == msg, name


def test_bench_encode_decode_all_table1(benchmark):
    blobs = [encode_message(m) for m in SAMPLES.values()]

    def roundtrip():
        for m in SAMPLES.values():
            encode_message(m)
        for b in blobs:
            decode_message(b)

    benchmark(roundtrip)
