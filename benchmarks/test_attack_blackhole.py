"""Experiment A2 -- the black hole attack (Section 4).

The paper's claim: "hosts can not easily hide their identities in our
protocol.  Further, with our credit management mechanism, such attacks
are unlikely to succeed after the network is stable."

Measured shape: on a two-path topology (short route through the
attacker, honest detour) the forging black hole holds plain DSR's
first-attempt delivery hostage indefinitely, while under the secure
protocol it eats at most a handful of packets before probing pins it,
its credit collapses, and delivery returns to 100%.
"""

from repro.routing.bsar_like import EndpointOnlyRouter
from repro.routing.dsr import PlainDSRRouter
from repro.scenarios.attacks import add_blackhole
from repro.scenarios.workloads import CBRTraffic

from _harness import print_rows, two_path

COUNT = 25


def run_case(label, router=None, hostile=False, attacker=True, seed=5):
    builder = two_path(seed=seed, hostile_mode=hostile)
    if router is not None:
        builder = builder.router(router)
    sc = builder.build()
    bh = add_blackhole(sc, (200.0, 0.0), forge_rreps=True) if attacker else None
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[1]
    traffic = CBRTraffic(a, b.ip, interval=1.0, count=COUNT)
    sc.run(duration=COUNT + 40.0)
    dropped = bh.router.packets_dropped if bh else 0
    credit = a.router.credits.credit(bh.ip) if bh and bh.ip else float("nan")
    return {
        "label": label,
        "delivered": traffic.delivered,
        "dropped_by_bh": dropped,
        "bh_credit": credit,
        "scenario": sc,
        "bh": bh,
    }


def test_blackhole_attack_comparison(benchmark):
    cases = [
        run_case("secure, no attacker", attacker=False),
        run_case("secure (normal mode)"),
        run_case("secure (hostile mode)", hostile=True),
        run_case("BSAR-like endpoints-only", router=EndpointOnlyRouter),
        run_case("plain DSR", router=PlainDSRRouter),
    ]
    by = {c["label"]: c for c in cases}

    # Shape claims -------------------------------------------------------
    # 1. Everyone eventually delivers most traffic (retries + detour);
    #    secure losses are confined to the detection window.
    for c in cases:
        assert c["delivered"] >= COUNT - 5, c["label"]
    # 2. ... but plain DSR keeps feeding the black hole: it never stops
    #    dropping, because the forged RREP is believed every time.
    assert by["plain DSR"]["dropped_by_bh"] >= COUNT
    # 3. The secure protocol cuts the attacker off after a few packets.
    assert 0 < by["secure (normal mode)"]["dropped_by_bh"] <= 16
    assert 0 < by["secure (hostile mode)"]["dropped_by_bh"] <= 16
    assert by["secure (normal mode)"]["dropped_by_bh"] < by["plain DSR"]["dropped_by_bh"]
    # 4. Identity tracking: the attacker's credit collapsed under the
    #    secure protocol (and stays pristine under plain DSR, which has
    #    no ledger to collapse).
    assert by["secure (normal mode)"]["bh_credit"] < 0
    assert by["secure (hostile mode)"]["bh_credit"] < 0

    print_rows(
        "A2: black hole (forging) on the shortest path, 25-packet CBR flow",
        ["protocol", "delivered", "eaten by black hole", "bh credit at source"],
        [[c["label"], f'{c["delivered"]}/{COUNT}', c["dropped_by_bh"],
          f'{c["bh_credit"]:.1f}'] for c in cases],
    )

    # Benchmark the attacked secure run end to end.
    benchmark.pedantic(
        lambda: run_case("bench", hostile=True)["delivered"],
        rounds=2, iterations=1,
    )
