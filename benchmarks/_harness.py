"""Shared builders for the benchmark/experiment suite.

Each ``test_*`` file under ``benchmarks/`` regenerates one artifact of
the paper (see DESIGN.md's per-experiment index).  Since the paper's
evaluation is qualitative, every experiment here (a) *asserts* the shape
of the paper's claim, and (b) prints the measured table so EXPERIMENTS.md
can quote it; the pytest-benchmark fixture additionally times the
representative kernel of the experiment.

Run:  pytest benchmarks/ --benchmark-only
      pytest benchmarks/ -s            (to see the printed tables)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenarios.builder import Scenario, ScenarioBuilder

#: Where machine-readable benchmark artifacts land (committed alongside
#: the suite so the perf trajectory is diffable across PRs).
BENCH_DIR = Path(__file__).resolve().parent


def write_bench_json(name: str, payload: dict) -> Path | None:
    """Write ``BENCH_<name>.json`` next to the benchmark suite.

    Sorted keys + trailing newline keep the artifact diff-friendly; CI
    and humans both read it to track perf across PRs.  The committed
    snapshot holds wall-clock numbers, which are machine-dependent, so
    an ordinary local ``pytest`` run must NOT dirty it: writes happen
    only when ``REPRO_BENCH_WRITE`` is set (CI sets it; a PR author
    refreshing the committed scorecard sets it deliberately).
    """
    if not os.environ.get("REPRO_BENCH_WRITE"):
        return None
    path = BENCH_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def chain(n: int, seed: int = 7, spacing: float = 200.0, **config) -> ScenarioBuilder:
    dns_pos = ((n - 1) * spacing / 2, 60.0)
    b = ScenarioBuilder(seed=seed).chain(n, spacing=spacing).with_dns(dns_pos)
    return b.config(**config) if config else b


def two_path(seed: int = 5, **config) -> ScenarioBuilder:
    """Short 2-hop path through (200, 0) plus a 3-hop detour."""
    b = (
        ScenarioBuilder(seed=seed)
        .positions([(0, 0), (400, 0), (100, 150), (300, 150)])
        .radio(250)
        .with_dns((200, -400))
    )
    return b.config(**config) if config else b


def bootstrapped(builder: ScenarioBuilder, names=None, settle: float = 8.0) -> Scenario:
    sc = builder.build()
    sc.bootstrap_all(names=names or {})
    if settle:
        sc.run(duration=settle)
    return sc


def print_rows(title: str, headers: list[str], rows: list[list]) -> None:
    from repro.metrics.reports import format_table

    print()
    print(format_table(headers, rows, title=title))
