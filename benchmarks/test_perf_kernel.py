"""Kernel throughput scorecard: events/sec, plus the price of profiling.

Two measurements land in ``BENCH_kernel.json`` (written only under
``REPRO_BENCH_WRITE=1``):

* **raw dispatch** -- a pre-filled heap of trivial events drained by the
  uninstrumented hot loop, and again by the instrumented twin.  The
  uninstrumented rate is the repo's headline events/sec number; the
  instrumented rate bounds what ``enable_stats()`` costs (it must stay
  within 10x -- per-event ``perf_counter`` pairs are the dominant term).
* **protocol stack** -- a bootstrapped chain scenario with kernel stats
  enabled, reporting the events/sec the *real* handler mix achieves and
  where its time goes.

Floors are deliberately loose (slow CI boxes), but tight enough that an
accidental O(n log n) -> O(n^2) regression in the run loop trips them.
"""

from __future__ import annotations

import time

from repro.sim.kernel import Simulator

from _harness import chain, print_rows, write_bench_json

#: Events drained per timing round in the raw-dispatch measurement.
EVENTS = 100_000
TIMING_ROUNDS = 3
#: The uninstrumented kernel must sustain at least this (pure python on
#: a slow CI box still clears it by an order of magnitude).
MIN_EVENTS_PER_SEC = 50_000.0
#: Instrumentation may cost at most this factor in throughput.
MAX_INSTRUMENTED_SLOWDOWN = 10.0


def _noop():
    pass


def _filled_sim(instrumented: bool) -> Simulator:
    sim = Simulator()
    if instrumented:
        sim.enable_stats()
    for i in range(EVENTS):
        sim.schedule(i * 1e-6, _noop)
    return sim


def _drain_rate(instrumented: bool) -> float:
    """Best-of-N events/sec for draining a pre-filled heap."""
    best = 0.0
    for _ in range(TIMING_ROUNDS):
        sim = _filled_sim(instrumented)
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        assert sim.events_executed == EVENTS
        best = max(best, EVENTS / elapsed)
    return best


def test_kernel_events_per_sec_scorecard():
    plain_rate = _drain_rate(instrumented=False)
    inst_rate = _drain_rate(instrumented=True)
    slowdown = plain_rate / inst_rate

    # the instrumented loop's own accounting agrees with external timing
    sim = _filled_sim(instrumented=True)
    sim.run()
    stats = sim.stats
    assert stats.instrumented_events == EVENTS
    assert stats.heap_high_water == EVENTS
    internal_rate = stats.events_per_sec
    assert internal_rate > 0.0

    # protocol-stack mix: profile a whole bootstrap + traffic run
    scenario = chain(6).build()
    scenario.enable_kernel_stats()
    scenario.bootstrap_all()
    scenario.send_data(scenario.hosts[0], scenario.hosts[-1].ip, b"x" * 64)
    scenario.run(duration=30.0)
    block = scenario.metrics.summary()["kernel_stats"]
    top_handler = max(block["handlers"],
                      key=lambda k: block["handlers"][k]["wall_ms"])

    print_rows(
        f"Kernel dispatch ({EVENTS} events, best of {TIMING_ROUNDS})",
        ["loop", "events/sec"],
        [
            ["uninstrumented", f"{plain_rate:,.0f}"],
            ["instrumented", f"{inst_rate:,.0f}"],
            ["slowdown", f"{slowdown:.2f}x"],
        ],
    )
    print_rows(
        "Protocol stack under profiling (chain n=6)",
        ["events/sec", "events", "top handler (by wall)"],
        [[f"{block['events_per_sec']:,.0f}", block["events_executed"],
          top_handler]],
    )

    assert plain_rate >= MIN_EVENTS_PER_SEC, (
        f"uninstrumented kernel at {plain_rate:,.0f} ev/s "
        f"(floor {MIN_EVENTS_PER_SEC:,.0f})"
    )
    assert slowdown <= MAX_INSTRUMENTED_SLOWDOWN, (
        f"enable_stats() costs {slowdown:.2f}x "
        f"(allowed {MAX_INSTRUMENTED_SLOWDOWN}x)"
    )

    write_bench_json("kernel", {
        "raw_dispatch": {
            "events": EVENTS,
            "events_per_sec_uninstrumented": round(plain_rate, 1),
            "events_per_sec_instrumented": round(inst_rate, 1),
            "instrumented_slowdown": round(slowdown, 2),
        },
        "protocol_stack": {
            "scenario": "chain n=6, bootstrap + data + 30s",
            "events_executed": block["events_executed"],
            "events_per_sec": block["events_per_sec"],
            "top_handler": top_handler,
        },
    })
