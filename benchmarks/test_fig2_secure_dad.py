"""Experiment F2 -- Figure 2 (the secure DAD message sequence).

Recreates the figure's situation: a joiner S floods AREQ for an address
already held by a host R several hops away; R answers with a signed AREP
along the reverse route record and warns the DNS; S draws a fresh rn and
retries.  The test asserts the exact message causality, prints the
transcript (the figure, as text), and also demonstrates the gap the
extended DAD closes over one-hop NS/NA DAD.  The benchmark times a full
clean DAD round on a 4-hop network.
"""

from repro.messages.bootstrap import AREQ
from repro.trace.sequence import transcript

from _harness import bootstrapped, chain


def _rig_collision(sc, joiner, victim, ch=4242, name=""):
    """Point the joiner's next DAD round at the victim's exact address."""
    boot = joiner.bootstrap
    joiner.abandon_identity()
    boot.state = "probing"
    boot.round = 0
    boot.requested_name = name
    boot.tentative_ip = victim.ip
    boot._tentative_params = victim.cga_params
    boot.pending_ch = ch
    boot.pending_seq = joiner.next_seq()
    areq = AREQ(sip=victim.ip, seq=boot.pending_seq, domain_name=name, ch=ch)
    boot._seen_areqs.add((areq.sip, areq.seq))
    boot._timer.start(joiner.config.dad_timeout)
    joiner.broadcast(areq, claimed_src=victim.ip)


def test_fig2_duplicate_address_sequence():
    sc = bootstrapped(chain(5, seed=151))
    victim, joiner = sc.hosts[0], sc.hosts[4]   # 4 hops apart
    start = sc.sim.now
    _rig_collision(sc, joiner, victim)
    sc.run(duration=10.0)

    events = [e for e in sc.trace.events if e.time >= start]
    areq_flood = [e for e in events if e.kind == "send" and e.msg_type == "AREQ"]
    defence = [e for e in events if e.kind == "send" and e.msg_type == "AREP"
               and e.node == victim.name]
    accepted = [e for e in events if e.kind == "verdict" and e.detail == "arep.accepted"]

    # The Figure 2 causal chain: flood -> defence (incl. DNS warning) ->
    # challenge-verified acceptance -> fresh address adopted.
    assert len(areq_flood) >= 4          # joiner + relays
    assert len(defence) >= 2             # reverse-RR AREP + DNS warning copy
    assert any(e.payload.to_dns for e in defence)
    assert accepted
    assert joiner.configured and joiner.ip != victim.ip

    print("\nFigure 2 (reproduced), duplicate-address branch:")
    print(transcript(sc.trace, msg_types={"AREQ", "AREP"})[-2500:])


def test_fig2_duplicate_name_sequence():
    sc = bootstrapped(chain(5, seed=157), names={"n0": "shared.manet"})
    joiner = sc.hosts[4]
    start = sc.sim.now
    # Fresh address (no collision) but the *name* is taken: DNS sends DREP.
    joiner.abandon_identity()
    boot = joiner.bootstrap
    boot.state = "idle"
    boot.start("shared.manet")
    sc.run(duration=20.0)

    events = [e for e in sc.trace.events if e.time >= start]
    dreps = [e for e in events if e.kind == "send" and e.msg_type == "DREP"
             and e.node == "dns"]
    assert dreps                                   # the DNS objected
    assert joiner.configured
    assert joiner.domain_name == "shared.manet-2"  # forced to a new name
    assert sc.dns_server.table.lookup("shared.manet").ip == sc.hosts[0].ip

    print("\nFigure 2 (reproduced), duplicate-name branch:")
    print(transcript(sc.trace, msg_types={"AREQ", "DREP"})[-2000:])


def test_one_hop_dad_misses_what_extended_dad_catches():
    """Section 2.2's motivation, measured: same duplicate 4 hops away."""
    from repro.ndp.neighbor_discovery import OneHopDAD

    sc = bootstrapped(chain(5, seed=163))
    victim, joiner = sc.hosts[0], sc.hosts[4]

    # One-hop DAD probing the victim's address: no NA can arrive.
    joiner.abandon_identity()
    dad = OneHopDAD(joiner)
    dad.state = "probing"
    dad._domain_name = ""
    dad.tentative_ip = victim.ip
    dad._tentative_params = victim.cga_params
    from repro.messages.ndp import NeighborSolicitation

    joiner.broadcast(NeighborSolicitation(target=victim.ip), claimed_src=victim.ip)
    dad._timer.start(dad.timeout)
    sc.run(duration=5.0)
    assert joiner.ip == victim.ip   # one-hop DAD: collision UNDETECTED

    # Extended DAD in the identical situation catches it.
    _rig_collision(sc, joiner, victim, ch=777)
    sc.run(duration=10.0)
    assert joiner.ip != victim.ip   # extended DAD: collision resolved


def test_bench_full_dad_round(benchmark):
    """Wall-clock cost of simulating one clean 4-hop DAD round."""

    def one_round():
        sc = bootstrapped(chain(5, seed=167), settle=0.0)
        return sc.configured_count()

    result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result == 5
