"""Experiment P2 -- routing overhead vs hop count.

The protocol's price over plain DSR is the per-hop identity proof in the
SRR (signature + public key + rn per intermediate) plus the signature
checks at the destination.  This sweep measures, per path length:
discovery latency, RREQ growth per hop in bytes, and crypto operations
per discovery -- and compares the secure protocol against plain DSR on
identical topologies (shape: overhead linear in hops; DSR flat).
"""

from repro.routing.dsr import PlainDSRRouter

from _harness import bootstrapped, chain, print_rows

HOPS = (2, 4, 6)


def measure(hops, router=None, seed=241):
    builder = chain(hops + 1, seed=seed)
    if router is not None:
        builder = builder.router(router)
    sc = bootstrapped(builder, settle=2.0)
    m = sc.metrics
    sign0, verify0 = m.crypto_total("sign"), m.crypto_total("verify")

    a, b = sc.hosts[0], sc.hosts[-1]
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    assert a.router.cache.has_route(b.ip, sc.sim.now)

    # RREQ byte accounting over the whole discovery flood.
    from repro.messages.codec import encode_message

    rreq_sizes = [
        len(encode_message(e.payload))
        for e in sc.trace.events
        if e.kind == "send" and e.msg_type == "RREQ"
    ]
    return {
        "hops": hops,
        "latency_ms": m.mean_discovery_latency * 1e3,
        "rreq_min": min(rreq_sizes),
        "rreq_max": max(rreq_sizes),
        "rreq_total": sum(rreq_sizes),
        "signs": m.crypto_total("sign") - sign0,
        "verifies": m.crypto_total("verify") - verify0,
    }


def test_routing_overhead_scaling(benchmark):
    secure = [measure(h) for h in HOPS]
    plain = [measure(h, router=PlainDSRRouter) for h in HOPS]

    # Shape 1: the secure flood costs strictly more bytes at every path
    # length (per-hop identity proofs vs bare route-record entries), and
    # the premium grows with hops.
    premiums = [s["rreq_total"] - p["rreq_total"] for s, p in zip(secure, plain)]
    assert all(d > 0 for d in premiums)
    assert premiums[-1] > premiums[0]
    # Shape 2: crypto work grows with path length under the secure
    # protocol; plain DSR hosts do none (the DNS node always relays
    # securely, so plain runs show only its constant contribution).
    assert secure[-1]["verifies"] > secure[0]["verifies"] > 0
    for s_, p_ in zip(secure, plain):
        assert s_["verifies"] > p_["verifies"]
        assert s_["signs"] > p_["signs"]
    # Shape 3: discovery latency grows with hops for both.
    assert secure[0]["latency_ms"] < secure[-1]["latency_ms"]

    rows = []
    for r, p in zip(secure, plain):
        rows.append([
            r["hops"],
            f'{r["latency_ms"]:.2f} / {p["latency_ms"]:.2f}',
            f'{r["rreq_max"]} / {p["rreq_max"]}',
            f'{r["signs"]} / {p["signs"]}',
            f'{r["verifies"]} / {p["verifies"]}',
        ])
    print_rows(
        "P2: discovery cost, secure / plain DSR",
        ["hops", "latency ms", "max RREQ bytes", "signs", "verifies"],
        rows,
    )

    benchmark.pedantic(lambda: measure(4)["hops"], rounds=2, iterations=1)


def test_crep_saves_a_full_discovery():
    """Cache hits answer locally: fewer flooded RREQ frames, same result."""
    sc = bootstrapped(chain(6, seed=251), settle=2.0)
    s, s_prime, d = sc.hosts[1], sc.hosts[0], sc.hosts[5]
    s.router.send_data(d.ip, b"prime")
    sc.run(duration=5.0)
    rreq_before = sc.metrics.msgs_sent["RREQ"]
    s_prime.router.send_data(d.ip, b"hit")
    sc.run(duration=10.0)
    rreq_during_hit = sc.metrics.msgs_sent["RREQ"] - rreq_before
    assert sc.metrics.creps_used >= 1
    # The flood died at the cache holder (n1): only S' and nodes the
    # flood reached before the CREP short-circuited it sent RREQs.
    assert rreq_during_hit < rreq_before
