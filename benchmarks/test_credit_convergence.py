"""Experiment A5 -- credit convergence ("trusted routes after a while").

Paper (Section 1): "trusted routes can be established after the network
is run for a while"; (Section 5): identity churn is discouraged because
fresh identities start at a low credit.

Measured shape: under steady traffic with a mixed adversary population
(one black hole, one identity churner), honest relays' credits grow
roughly linearly with delivered packets while every adversarial identity
is pinned at or below the initial credit -- the separation the routing
policy feeds on.  Also sweeps the penalty knob to show the ablation
called out in DESIGN.md Section 5.
"""

from repro.scenarios.attacks import add_blackhole, add_identity_churner
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.workloads import CBRTraffic

from _harness import print_rows


def build_mixed(seed=223, **config):
    # Honest detour (n2, n3) + two adversaries flanking the short path.
    sc = (
        ScenarioBuilder(seed=seed)
        .positions([(0, 0), (400, 0), (100, 150), (300, 150)])
        .radio(250.0)
        # DNS parked out of relay range of the n0<->n1 flow so it never
        # competes with the honest detour as a relay.
        .with_dns((200.0, -240.0))
        .config(hostile_mode=True, **config)
        .build()
    )
    bh = add_blackhole(sc, (200.0, 0.0))
    churner = add_identity_churner(sc, (200.0, -60.0), churn_interval=20.0)
    sc.bootstrap_all()
    churner.router.start_churning()
    return sc, bh, churner


def test_credit_separation_over_time(benchmark):
    sc, bh, churner = build_mixed()
    a, b = sc.hosts[0], sc.hosts[1]
    traffic = CBRTraffic(a, b.ip, interval=1.0, count=60)

    snapshots = []

    def snapshot():
        credits = a.router.credits
        honest = max(credits.credit(sc.hosts[2].ip), credits.credit(sc.hosts[3].ip))
        bad = credits.credit(bh.ip) if bh.ip else 0.0
        snapshots.append((sc.sim.now, honest, bad))

    for t in (10.0, 30.0, 60.0, 100.0):
        sc.sim.schedule(t, snapshot)
    sc.run(duration=110.0)

    assert traffic.delivered >= 54  # >=90% despite two live adversaries
    final_honest = snapshots[-1][1]
    final_bad = snapshots[-1][2]
    # Separation: honest relays accumulated credit roughly with traffic;
    # adversaries never rose above the floor.
    assert final_honest > 20 * a.config.credit_initial
    assert final_bad <= a.config.credit_initial
    # Monotone growth of trust in honest relays.
    honest_series = [s[1] for s in snapshots]
    assert honest_series == sorted(honest_series)

    print_rows(
        "A5: credit separation under mixed adversaries (hostile mode)",
        ["t (s)", "best honest relay credit", "black hole credit"],
        [[f"{t:.0f}", f"{h:.1f}", f"{bad:.1f}"] for t, h, bad in snapshots],
    )

    benchmark.pedantic(
        lambda: build_mixed(seed=227)[0].run(duration=30.0),
        rounds=1, iterations=1,
    )


def test_penalty_ablation():
    """DESIGN.md Section 5: the 'very large' penalty matters -- a mild
    penalty lets a black hole re-enter rotation between probe cycles."""
    outcomes = {}
    for penalty in (2.0, 50.0):
        sc, bh, _ = build_mixed(seed=229, credit_penalty=penalty)
        a, b = sc.hosts[0], sc.hosts[1]
        CBRTraffic(a, b.ip, interval=1.0, count=40)
        sc.run(duration=90.0)
        outcomes[penalty] = bh.router.packets_dropped

    # With the paper's large penalty the black hole is starved quickly;
    # with a mild one it keeps being re-selected and eats more packets.
    assert outcomes[50.0] <= outcomes[2.0]

    print_rows(
        "A5 ablation: penalty magnitude vs packets eaten by the black hole",
        ["credit_penalty", "packets eaten"],
        [[p, n] for p, n in sorted(outcomes.items())],
    )
