"""Experiment P4 -- PHY fast path: flood scheduling vs network size.

Two stacked claims, each asserted against its own baseline:

1. **Index asymptotics** (PR 2): one flood round (every node broadcasts
   once) costs O(N^2) under the naive full scan and O(N * degree) under
   the spatial-hash grid.  Measured on the *scalar* delivery loop so the
   comparison isolates the index: **grid >= 3x naive at N = 500**.

2. **Vectorised pipeline** (this PR): at a fixed (grid) index, the
   numpy broadcast pipeline -- cached candidate blocks, one batched
   distance computation, one batched loss draw, batch-scheduled heap
   entries -- against the scalar loop at **N = 1000 with
   loss_rate = 0.1**: **>= 2x**, with byte-identical deliveries
   (asserted event-by-event, not eyeballed), and a flood round encodes
   every distinct message at most once (``encode_call_count``).

Receiver sets, loss draws, and traces are byte-identical across all
index/pipeline combinations (tests/test_medium_equivalence.py and
tests/test_vectorized_equivalence.py pin that); this experiment
establishes the speed and writes the machine-readable
``BENCH_phy.json`` scorecard consumed across PRs.
"""

from __future__ import annotations

import time

from repro.ipv6.address import IPv6Address
from repro.messages.codec import encode_call_count
from repro.messages.ndp import NeighborSolicitation
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.phy.topology import grid_positions
from repro.scenarios import ScenarioBuilder
from repro.sim.kernel import Simulator

from _harness import print_rows, write_bench_json

SIZES = (50, 200, 500)
SPACING = 180.0
RADIO_RANGE = 250.0
SRC_IP = IPv6Address("fec0::bb")
ROUNDS = 3

#: The vectorised-pipeline benchmark: a dense 1000-node deployment
#: (spacing 80 m at 250 m range ~ 26 neighbours) with 10% loss.
VEC_N = 1000
VEC_SPACING = 80.0
VEC_LOSS = 0.1

#: Scorecard accumulated by the tests in this file; flushed to
#: BENCH_phy.json by whichever test runs last.
_BENCH: dict = {}


def _flush_bench() -> None:
    if {"index_scaling", "vectorized"} <= set(_BENCH):
        write_bench_json("phy", _BENCH)


def build_medium(
    n: int,
    index: str,
    vectorized: bool = False,
    spacing: float = SPACING,
    loss_rate: float = 0.0,
) -> tuple[Simulator, WirelessMedium, list]:
    sim = Simulator(seed=1)
    medium = WirelessMedium(
        sim, radio_range=RADIO_RANGE, index=index,
        vectorized=vectorized, loss_rate=loss_rate,
    )
    radios = [
        medium.attach(tuple(pos), lambda f: None)
        for pos in grid_positions(n, spacing)
    ]
    return sim, medium, radios


def flood_round(medium: WirelessMedium, radios: list) -> None:
    for radio in radios:
        medium.broadcast(Frame(radio.link_id, BROADCAST_LINK, SRC_IP, "x", 64))


def timed_flood(
    n: int,
    index: str,
    vectorized: bool = False,
    spacing: float = SPACING,
    loss_rate: float = 0.0,
) -> tuple[float, int]:
    """Best-of-ROUNDS wall-clock for one flood round; also the receiver
    count over all rounds (a cheap cross-check that paths agree)."""
    sim, medium, radios = build_medium(n, index, vectorized, spacing, loss_rate)
    best = float("inf")
    for _ in range(ROUNDS):
        frames_before = medium.total_frames
        start = time.perf_counter()
        flood_round(medium, radios)
        best = min(best, time.perf_counter() - start)
        assert medium.total_frames - frames_before == n
        sim.run()  # drain deliveries between rounds so memory stays flat
    scheduled = sum(r.frames_received for r in radios)
    return best, scheduled


def test_grid_flood_scales_past_naive(benchmark):
    rows = []
    speedups = {}
    for n in SIZES:
        # Scalar path on both sides: this claim is about the *index*.
        naive_t, naive_rx = timed_flood(n, "naive")
        grid_t, grid_rx = timed_flood(n, "grid")
        # same receiver sets => same delivered-frame totals
        assert grid_rx == naive_rx
        speedups[n] = naive_t / grid_t
        rows.append([
            n,
            f"{naive_t * 1e3:.2f}",
            f"{grid_t * 1e3:.2f}",
            f"{speedups[n]:.1f}x",
        ])
    print_rows(
        "Flood round wall-clock: naive full scan vs spatial-hash grid (scalar path)",
        ["N", "naive (ms)", "grid (ms)", "speedup"],
        rows,
    )
    _BENCH["index_scaling"] = {
        "sizes": list(SIZES),
        "spacing_m": SPACING,
        "speedup_at_max_n": round(speedups[SIZES[-1]], 2),
    }
    _flush_bench()

    # The acceptance claim: quadratic -> near-linear pays off >= 3x by
    # N = 500.  (Typically 10x+; 3 keeps slow CI boxes honest.)
    assert speedups[500] >= 3.0, f"grid speedup at N=500 was {speedups[500]:.1f}x"
    # And the advantage grows with N -- the signature of an asymptotic win.
    assert speedups[500] > speedups[50]

    # Time the representative kernel: one grid-indexed flood round at N=500.
    sim, medium, radios = build_medium(500, "grid")

    def round_and_drain():
        flood_round(medium, radios)
        sim.run()

    benchmark(round_and_drain)


def delivery_log(vectorized: bool, rounds: int = 2) -> tuple[list, tuple]:
    """Every (time, receiver, size) delivery of ``rounds`` lossy flood
    rounds at N = VEC_N, plus the medium counters."""
    sim = Simulator(seed=9)
    medium = WirelessMedium(
        sim, radio_range=RADIO_RANGE, index="grid",
        vectorized=vectorized, loss_rate=VEC_LOSS,
    )
    log: list = []
    radios = []
    for i, pos in enumerate(grid_positions(VEC_N, VEC_SPACING)):
        radios.append(
            medium.attach(
                tuple(pos), lambda f, i=i: log.append((sim.now, i, f.size))
            )
        )
    for _ in range(rounds):
        flood_round(medium, radios)
        sim.run()
    counters = (medium.total_frames, medium.total_bytes, medium.dropped_frames)
    return log, counters


def test_vectorized_flood_beats_scalar_at_n1000(benchmark):
    # -- byte-identical first: the speed claim is worthless otherwise.
    scalar_log, scalar_counters = delivery_log(vectorized=False)
    vec_log, vec_counters = delivery_log(vectorized=True)
    assert vec_counters == scalar_counters
    assert vec_log == scalar_log  # every delivery: same time, receiver, size

    # -- then the wall-clock.  One re-measure before failing: shared CI
    # boxes have noisy neighbours, and a single noisy best-of-ROUNDS
    # must not fail a claim that holds comfortably on a quiet machine.
    for attempt in range(2):
        scalar_t, scalar_rx = timed_flood(
            VEC_N, "grid", vectorized=False, spacing=VEC_SPACING, loss_rate=VEC_LOSS
        )
        vec_t, vec_rx = timed_flood(
            VEC_N, "grid", vectorized=True, spacing=VEC_SPACING, loss_rate=VEC_LOSS
        )
        assert vec_rx == scalar_rx
        speedup = scalar_t / vec_t
        if speedup >= 2.0:
            break
    print_rows(
        f"Vectorised broadcast pipeline at N={VEC_N}, loss={VEC_LOSS}",
        ["path", "flood round (ms)", "speedup"],
        [
            ["scalar", f"{scalar_t * 1e3:.2f}", "1.0x"],
            ["vectorized", f"{vec_t * 1e3:.2f}", f"{speedup:.1f}x"],
        ],
    )

    # -- encode-once: a flood round (send + one re-forward of the same
    # copy per node) encodes each distinct message exactly once.
    sc = ScenarioBuilder(seed=3).grid(25, spacing=SPACING).build()
    msgs = [
        NeighborSolicitation(target=IPv6Address("fec0::1"), domain_name=f"n{i}")
        for i in range(len(sc.hosts))
    ]
    encode_base = encode_call_count()
    for node, msg in zip(sc.hosts, msgs):
        node.broadcast(msg)
    for node, msg in zip(sc.hosts, msgs):
        node.broadcast(msg)
    sc.sim.run()
    encode_delta = encode_call_count() - encode_base
    assert encode_delta <= len(msgs), (
        f"{encode_delta} encodes for {len(msgs)} distinct messages"
    )

    _BENCH["vectorized"] = {
        "n": VEC_N,
        "spacing_m": VEC_SPACING,
        "loss_rate": VEC_LOSS,
        "scalar_ms": round(scalar_t * 1e3, 3),
        "vectorized_ms": round(vec_t * 1e3, 3),
        "speedup": round(speedup, 2),
        "deliveries_checked": len(scalar_log),
        "encode_calls_per_distinct_message": encode_delta / len(msgs),
    }
    _flush_bench()

    # The acceptance claim: >= 2x over the scalar path at N = 1000 with
    # loss.  (Typically ~2.5x here; 2 keeps slow CI boxes honest.)
    assert speedup >= 2.0, f"vectorised speedup at N={VEC_N} was {speedup:.1f}x"

    # Time the representative kernel: one vectorised lossy flood round.
    sim, medium, radios = build_medium(
        VEC_N, "grid", vectorized=True, spacing=VEC_SPACING, loss_rate=VEC_LOSS
    )

    def round_and_drain():
        flood_round(medium, radios)
        sim.run()

    benchmark(round_and_drain)
