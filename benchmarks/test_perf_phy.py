"""Experiment P4 -- PHY fast path: flood scheduling vs network size.

One flood round (every node broadcasts once) costs O(N^2) under the
naive full scan -- every broadcast distance-checks every radio -- and
O(N * degree) under the spatial-hash grid.  This benchmark measures the
wall-clock of a flood round at N in {50, 200, 500} on a constant-spacing
grid topology (constant local density, the regime the index is built
for), prints the scaling table, and asserts the claim that matters:
**the grid path wins by >= 3x at N = 500**.

Receiver sets, loss draws, and traces are byte-identical between the two
paths (tests/test_medium_equivalence.py pins that); speed is the only
difference this experiment needs to establish.
"""

from __future__ import annotations

import time

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.phy.topology import grid_positions
from repro.sim.kernel import Simulator

from _harness import print_rows

SIZES = (50, 200, 500)
SPACING = 180.0
RADIO_RANGE = 250.0
SRC_IP = IPv6Address("fec0::bb")
ROUNDS = 3


def build_medium(n: int, index: str) -> tuple[Simulator, WirelessMedium, list]:
    sim = Simulator(seed=1)
    medium = WirelessMedium(sim, radio_range=RADIO_RANGE, index=index)
    radios = [
        medium.attach(tuple(pos), lambda f: None)
        for pos in grid_positions(n, SPACING)
    ]
    return sim, medium, radios


def flood_round(medium: WirelessMedium, radios: list) -> None:
    for radio in radios:
        medium.broadcast(Frame(radio.link_id, BROADCAST_LINK, SRC_IP, "x", 64))


def timed_flood(n: int, index: str) -> tuple[float, int]:
    """Best-of-ROUNDS wall-clock for one flood round; also the receiver
    count of the last round (a cheap cross-check that both paths agree)."""
    sim, medium, radios = build_medium(n, index)
    best = float("inf")
    for _ in range(ROUNDS):
        frames_before = medium.total_frames
        start = time.perf_counter()
        flood_round(medium, radios)
        best = min(best, time.perf_counter() - start)
        assert medium.total_frames - frames_before == n
        sim.run()  # drain deliveries between rounds so memory stays flat
    scheduled = sum(r.frames_received for r in radios)
    return best, scheduled


def test_grid_flood_scales_past_naive(benchmark):
    rows = []
    speedups = {}
    for n in SIZES:
        naive_t, naive_rx = timed_flood(n, "naive")
        grid_t, grid_rx = timed_flood(n, "grid")
        # same receiver sets => same delivered-frame totals
        assert grid_rx == naive_rx
        speedups[n] = naive_t / grid_t
        rows.append([
            n,
            f"{naive_t * 1e3:.2f}",
            f"{grid_t * 1e3:.2f}",
            f"{speedups[n]:.1f}x",
        ])
    print_rows(
        "Flood round wall-clock: naive full scan vs spatial-hash grid",
        ["N", "naive (ms)", "grid (ms)", "speedup"],
        rows,
    )

    # The acceptance claim: quadratic -> near-linear pays off >= 3x by
    # N = 500.  (Typically 10x+; 3 keeps slow CI boxes honest.)
    assert speedups[500] >= 3.0, f"grid speedup at N=500 was {speedups[500]:.1f}x"
    # And the advantage grows with N -- the signature of an asymptotic win.
    assert speedups[500] > speedups[50]

    # Time the representative kernel: one grid-indexed flood round at N=500.
    sim, medium, radios = build_medium(500, "grid")

    def round_and_drain():
        flood_round(medium, radios)
        sim.run()

    benchmark(round_and_drain)
