#!/usr/bin/env python3
"""The PHY fast path: spatial-hash floods at 500 nodes, byte-identical.

Two demonstrations in one script:

1. **Speed** -- a flood round (every node broadcasts once) on a large
   constant-density deployment, timed under the naive O(N^2) full scan
   and under the incremental spatial-hash grid.
2. **Exactness** -- the same seeded scenario executed under both medium
   indices, proving the metrics summary and the full event trace are
   byte-identical: the fast path changes *nothing* but wall-clock.

Set REPRO_EXAMPLE_FAST=1 to shrink N (used by the smoke tests).

Run:  python examples/phy_fast_path.py
"""

import math
import os
import time

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.phy.topology import uniform_positions
from repro.scenarios import ScenarioBuilder
from repro.sim.kernel import Simulator
from repro.sim.rng import SimRNG

SRC_IP = IPv6Address("fec0::cc")
RADIO_RANGE = 250.0
DENSITY = 10.0  # expected neighbors per node


def flood_time(n: int, index: str) -> float:
    """Wall-clock seconds for one flood round over a density-scaled
    uniform deployment (the same sizing rule as the builder's
    ``uniform_density`` knob: area = n * pi * r^2 / density)."""
    side = math.sqrt(n * math.pi * RADIO_RANGE**2 / DENSITY)
    positions = uniform_positions(n, (side, side), SimRNG(11, "example/placement"))
    sim = Simulator(seed=1)
    medium = WirelessMedium(sim, radio_range=RADIO_RANGE, index=index)
    radios = [medium.attach(tuple(p), lambda f: None) for p in positions]
    start = time.perf_counter()
    for radio in radios:
        medium.broadcast(Frame(radio.link_id, BROADCAST_LINK, SRC_IP, "x", 64))
    return time.perf_counter() - start


def run_scenario(index: str):
    sc = (
        ScenarioBuilder(seed=5)
        .grid(9, spacing=180.0)
        .radio(250.0, loss_rate=0.05)
        .with_dns()
        .medium(index)
        .random_waypoint()
        .build()
    )
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[-1]
    sc.send_data(a, z.ip, b"payload over the indexed medium")
    sc.run(duration=10.0)
    trace = [(e.time, e.node, e.kind, e.msg_type, e.detail) for e in sc.trace.events]
    return sc.metrics.summary(), trace


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    n = 120 if fast else 500

    print(f"Flood round at N={n} (constant density ~{DENSITY:.0f} neighbors/node):")
    naive = flood_time(n, "naive")
    grid = flood_time(n, "grid")
    print(f"  naive full scan : {naive * 1e3:8.2f} ms")
    print(f"  spatial grid    : {grid * 1e3:8.2f} ms   ({naive / grid:.1f}x)")

    print("\nSame seed, both indices, mobile scenario with loss:")
    g_summary, g_trace = run_scenario("grid")
    n_summary, n_trace = run_scenario("naive")
    identical = g_summary == n_summary and g_trace == n_trace
    print(f"  summaries identical : {g_summary == n_summary}")
    print(f"  traces identical    : {g_trace == n_trace} "
          f"({len(g_trace)} events)")
    if not identical:
        raise SystemExit("fast path diverged from the reference scan!")
    print(
        "\nReading: the grid answers 'who hears this position?' from 9\n"
        "cells instead of scanning every radio, and visits candidates in\n"
        "ascending link-id order -- the same order as the naive scan --\n"
        "so the loss-RNG draw sequence, and therefore every metric and\n"
        "trace line, is unchanged.  Sweep `medium_index` in a campaign\n"
        "to keep regression-testing that equivalence at scale."
    )


if __name__ == "__main__":
    main()
