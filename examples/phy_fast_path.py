#!/usr/bin/env python3
"""The PHY fast path: vectorised spatial-hash floods, byte-identical.

Three demonstrations in one script:

1. **Index speed** -- a flood round (every node broadcasts once) on a
   large constant-density deployment, timed under the naive O(N^2) full
   scan and under the incremental spatial-hash grid (scalar delivery
   loop on both, isolating the index).
2. **Pipeline speed** -- the same flood under the vectorised broadcast
   pipeline: cached candidate blocks, one numpy distance computation,
   one batched loss draw, batch-scheduled deliveries.
3. **Exactness** -- the same seeded mobile scenario executed under all
   four (index x pipeline) combinations, proving the metrics summary
   and the full event trace are byte-identical: the fast paths change
   *nothing* but wall-clock.

Set REPRO_EXAMPLE_FAST=1 to shrink N (used by the smoke tests).

Run:  python examples/phy_fast_path.py
"""

import itertools
import math
import os
import time

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.phy.topology import uniform_positions
from repro.scenarios import ScenarioBuilder
from repro.sim.kernel import Simulator
from repro.sim.rng import SimRNG

SRC_IP = IPv6Address("fec0::cc")
RADIO_RANGE = 250.0
DENSITY = 10.0  # expected neighbors per node


def flood_time(n: int, index: str, vectorized: bool = False) -> float:
    """Wall-clock seconds for one flood round over a density-scaled
    uniform deployment (the same sizing rule as the builder's
    ``uniform_density`` knob: area = n * pi * r^2 / density)."""
    side = math.sqrt(n * math.pi * RADIO_RANGE**2 / DENSITY)
    positions = uniform_positions(n, (side, side), SimRNG(11, "example/placement"))
    sim = Simulator(seed=1)
    medium = WirelessMedium(
        sim, radio_range=RADIO_RANGE, index=index, vectorized=vectorized,
        loss_rate=0.1,
    )
    radios = [medium.attach(tuple(p), lambda f: None) for p in positions]
    # Warm-up round (populates the candidate/range caches -- protocols
    # flood repeatedly, so the steady state is what matters), then time.
    for radio in radios:
        medium.broadcast(Frame(radio.link_id, BROADCAST_LINK, SRC_IP, "x", 64))
    sim.run()
    start = time.perf_counter()
    for radio in radios:
        medium.broadcast(Frame(radio.link_id, BROADCAST_LINK, SRC_IP, "x", 64))
    return time.perf_counter() - start


def run_scenario(index: str, vectorized: bool):
    sc = (
        ScenarioBuilder(seed=5)
        .grid(9, spacing=180.0)
        .radio(250.0, loss_rate=0.05)
        .with_dns()
        .medium(index, vectorized=vectorized)
        .random_waypoint()
        .build()
    )
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[-1]
    sc.send_data(a, z.ip, b"payload over the indexed medium")
    sc.run(duration=10.0)
    trace = [(e.time, e.node, e.kind, e.msg_type, e.detail) for e in sc.trace.events]
    return sc.metrics.summary(), trace


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    n = 120 if fast else 500

    print(f"Flood round at N={n} (constant density ~{DENSITY:.0f} neighbors/node, 10% loss):")
    naive = flood_time(n, "naive")
    grid = flood_time(n, "grid")
    vec = flood_time(n, "grid", vectorized=True)
    print(f"  naive full scan, scalar : {naive * 1e3:8.2f} ms")
    print(f"  spatial grid, scalar    : {grid * 1e3:8.2f} ms   ({naive / grid:.1f}x)")
    print(f"  spatial grid, vectorised: {vec * 1e3:8.2f} ms   ({naive / vec:.1f}x)")

    print("\nSame seed, all four (index x pipeline) paths, mobile scenario with loss:")
    combos = list(itertools.product(("grid", "naive"), (True, False)))
    results = {c: run_scenario(*c) for c in combos}
    ref_summary, ref_trace = results[combos[0]]
    identical = all(
        summary == ref_summary and trace == ref_trace
        for summary, trace in results.values()
    )
    print(f"  summaries identical : {all(s == ref_summary for s, _ in results.values())}")
    print(f"  traces identical    : {all(t == ref_trace for _, t in results.values())} "
          f"({len(ref_trace)} events)")
    if not identical:
        raise SystemExit("fast path diverged from the reference scan!")
    print(
        "\nReading: the grid answers 'who hears this position?' from a\n"
        "cached 9-cell candidate block instead of scanning every radio,\n"
        "in ascending link-id order -- the same order as the naive scan.\n"
        "The vectorised pipeline then computes every distance in one\n"
        "numpy call and draws every loss variate in one batched draw\n"
        "that consumes the PCG64 stream exactly like scalar draws, so\n"
        "every metric and trace line is unchanged on all four paths.\n"
        "Sweep `medium_index` / `medium_vectorized` in a campaign to\n"
        "keep regression-testing that equivalence at scale."
    )


if __name__ == "__main__":
    main()
