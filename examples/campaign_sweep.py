#!/usr/bin/env python3
"""Campaign engine walkthrough: a 3-axis sweep on 4 workers.

Reproduces a slice of the paper's evaluation matrix as one declarative
campaign: network size x router security level x radio loss rate, two
replicates each, with a forging black hole in every scenario.  The runs
execute across a 4-process pool, each with its own deterministic seed,
and the aggregate shows the secure router holding delivery where plain
DSR degrades.

Set REPRO_EXAMPLE_FAST=1 to shrink the sweep (used by the smoke tests).

Run:  python examples/campaign_sweep.py
"""

import os

from repro.campaign import CampaignSpec, aggregate, report_text, run_campaign


def build_spec(fast: bool = False) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "sweep-demo",
        "seed": 2003,
        "replicates": 1 if fast else 2,
        "base": {
            # Short path n0 -(black hole)- n1, honest 3-hop detour above.
            "topology": {"kind": "positions",
                         "points": [[0.0, 0.0], [400.0, 0.0],
                                    [100.0, 150.0], [300.0, 150.0]]},
            "radio": {"range": 250.0, "loss_rate": 0.0},
            "dns": {"position": [200.0, -400.0]},
        },
        "axes": {
            # axis 1: security level
            "router": ["secure", "plain"],
            # axis 2: network size (grid overrides the base positions)
            "topology": [
                {"kind": "positions",
                 "points": [[0.0, 0.0], [400.0, 0.0],
                            [100.0, 150.0], [300.0, 150.0]]},
            ] if fast else [
                {"kind": "positions",
                 "points": [[0.0, 0.0], [400.0, 0.0],
                            [100.0, 150.0], [300.0, 150.0]]},
                {"kind": "grid", "n": 9, "spacing": 180.0},
            ],
            # axis 3: radio loss
            "radio.loss_rate": [0.0] if fast else [0.0, 0.05, 0.1],
            # axis 4: PHY neighbor index -- grid and naive rows must
            # aggregate identically (the fast path is byte-exact)
            "medium_index": ["grid"] if fast else ["grid", "naive"],
        },
        "adversaries": [
            {"kind": "blackhole", "position": [200.0, 0.0],
             "forge_rreps": True},
        ],
        "workload": {"kind": "cbr", "pairs": [[0, 1]],
                     "interval": 1.0, "count": 4 if fast else 10},
        "duration": 10.0 if fast else 30.0,
        "timeout": 120.0,
    })


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    spec = build_spec(fast=fast)
    workers = 2 if fast else 4
    records = run_campaign(spec, workers=workers, echo=print)

    print()
    print(report_text(aggregate(records)))
    print(
        "\nReading: with the forging black hole parked on the shortest\n"
        "path, the 'secure' rows keep delivering (forgeries fail the CGA\n"
        "check and credit routes around the attacker) while the 'plain'\n"
        "rows lose first-attempt traffic, and loss-rate adds latency to\n"
        "both.  Persist a run with `python -m repro.campaign run` and\n"
        "gate future PRs on it with `compare`."
    )


if __name__ == "__main__":
    main()
