#!/usr/bin/env python3
"""Quickstart: form a MANET, bootstrap securely, route a packet.

Builds a 5-node chain (4 radio hops end to end) with a DNS server, runs
the paper's secure bootstrap (CGA autoconfiguration + extended DAD +
name registration), resolves a name, and sends data over the secure
DSR-derived routing protocol.

Run:  python examples/quickstart.py
"""

from repro.metrics.reports import delivery_report, overhead_report, security_report
from repro.scenarios import ScenarioBuilder


def main() -> None:
    # -- build a network ------------------------------------------------
    scenario = (
        ScenarioBuilder(seed=42)
        .chain(5, spacing=200.0)       # 5 hosts in a line, 200 m apart
        .radio(radio_range=250.0)      # unit-disk radios: only neighbours hear
        .with_dns((400.0, 60.0))       # the trust-anchor DNS server
        .build()
    )

    # -- secure bootstrap (Section 3.1) ----------------------------------
    scenario.bootstrap_all(names={"n0": "alice.manet", "n4": "bob.manet"})
    scenario.run(duration=8.0)  # let name-registration refreshes settle
    print("Configured addresses:")
    for host in scenario.hosts:
        name = f"  ({host.domain_name})" if host.domain_name else ""
        print(f"  {host.name}: {host.ip}{name}")
    print(f"\nDNS table: {scenario.dns_server.table.names()}")

    # -- secure name resolution (Section 3.2) -----------------------------
    alice = scenario.host("n0")
    resolved = []
    alice.dns_client.resolve("bob.manet", resolved.append)
    scenario.run(duration=10.0)
    print(f"\nalice resolved bob.manet -> {resolved[0]}")

    # -- secure route discovery + data (Sections 3.3-3.4) ------------------
    delivered = []
    alice.router.send_data(
        resolved[0], b"hello across four hops",
        on_delivered=lambda: delivered.append(scenario.sim.now),
    )
    scenario.run(duration=10.0)
    print(f"delivered + end-to-end ACKed at t={delivered[0]:.3f}s")
    route = alice.router.cache.routes_to(resolved[0], scenario.sim.now)[0]
    print(f"route used: {[str(h) for h in route.route]}")

    # -- reports --------------------------------------------------------------
    print()
    print(delivery_report(scenario.metrics))
    print()
    print(overhead_report(scenario.metrics))
    print()
    print(security_report(scenario.metrics))


if __name__ == "__main__":
    main()
