#!/usr/bin/env python3
"""Secure DNS services walkthrough (Section 3.2).

The paper's outdoor-event scenario: a public server with a permanent,
pre-established name that nobody can impersonate; hosts registering
names online first-come-first-served; a host changing its IP address and
carrying its DNS binding along via the challenge/response update; and an
attacker trying (and failing) to steal a binding.

Run:  python examples/secure_dns_service.py
"""

from repro.ipv6.cga import cga_address
from repro.scenarios import ScenarioBuilder


def main() -> None:
    scenario = (
        ScenarioBuilder(seed=77)
        .grid(9, spacing=180.0)
        .radio(250.0)
        .with_dns((270.0, 270.0))
        .build()
    )
    dns = scenario.dns_server

    # -- 1. pre-registered public server ----------------------------------
    # The event organiser provisioned "portal.event" before anyone arrived.
    portal = scenario.hosts[4]  # will hold the portal address
    # We know the host's key ahead of time, so we can compute its CGA.
    portal_rn = 31337
    portal_ip = cga_address(portal.public_key, portal_rn)
    dns.preregister("portal.event", portal_ip, portal.public_key, portal_rn)
    print(f"pre-registered portal.event -> {portal_ip}")

    # -- 2. network forms; hosts register online ---------------------------
    names = {"n0": "alice.event", "n8": "bob.event", "n2": "alice.event"}
    scenario.bootstrap_all(names=names)  # n2 loses the FCFS race
    scenario.run(duration=15.0)
    print(f"DNS table after formation: {dns.table.names()}")
    print(f"n0 holds {scenario.host('n0').domain_name!r}, "
          f"n2 was pushed to {scenario.host('n2').domain_name!r}")

    # -- 3. a squatter cannot take the permanent name ----------------------
    rec = dns.table.lookup("portal.event")
    print(f"portal.event still -> {rec.ip} (permanent={rec.permanent})")

    # -- 4. secure resolution ----------------------------------------------
    resolved = []
    scenario.host("n0").dns_client.resolve("bob.event", resolved.append)
    scenario.run(duration=10.0)
    print(f"alice resolved bob.event -> {resolved[0]}")

    # -- 5. authenticated IP change -----------------------------------------
    # Bob moves to a fresh address (new rn, same key) and updates the DNS.
    bob = scenario.host("n8")
    new_rn = 424242
    new_ip = cga_address(bob.public_key, new_rn)
    outcome = []
    bob.dns_client.change_ip(new_ip, new_rn, outcome.append)
    scenario.run(duration=15.0)
    print(f"bob's authenticated IP change accepted: {outcome[0]}")
    print(f"bob.event now -> {dns.table.lookup('bob.event').ip}")

    # -- 6. an attacker cannot move someone else's binding -------------------
    mallory = scenario.host("n3")
    mallory.domain_name = "bob.event"  # pretend
    steal_rn = 666
    steal_ip = cga_address(mallory.public_key, steal_rn)
    stolen = []
    mallory.dns_client.change_ip(steal_ip, steal_rn, stolen.append)
    scenario.run(duration=15.0)
    print(f"mallory's theft attempt accepted: {stolen[0]}")
    print(f"bob.event still -> {dns.table.lookup('bob.event').ip}")


if __name__ == "__main__":
    main()
