#!/usr/bin/env python3
"""Partition-and-heal: fault injection and self-healing in one scenario.

A six-node field network bootstraps, then the fault plan hits it with
the two classic ad-hoc failure shapes:

* a node **crash** with full state loss -- radio off, route caches and
  pending timers gone; recovery is a cold boot through secure DAD,
  re-requesting the name the node held when it died;
* a **partition**: the network splits into two islands that cannot hear
  each other, then merges.  On heal every configured host re-probes its
  address (optimistic re-DAD), because two islands may have configured
  colliding addresses without ever hearing each other.

Every fault is a seeded simulator event: the same seed gives the same
crash, the same split, the same recovery -- byte-identical however the
run is executed.  The metrics summary grows recovery_time /
availability / re_dad_count columns so campaigns can sweep fault plans
like any other axis.

Run:  python examples/partition_heal.py
"""

from repro.scenarios import CBRTraffic, ScenarioBuilder

FAULT_PLAN = {
    "events": [
        # 2 s into the workload: n2 crashes, comes back 6 s later.
        {"kind": "crash", "at": 2.0, "node": 2, "recover_after": 6.0},
        # 12 s in: the network splits {n0,n1,n2} | {n3,n4,n5} for 8 s.
        {"kind": "partition", "at": 12.0, "duration": 8.0,
         "members": [[0, 1, 2], [3, 4, 5]]},
    ]
}


def main() -> None:
    scenario = (
        ScenarioBuilder(seed=2003)
        .chain(6, spacing=180.0)
        .radio(radio_range=250.0)
        .with_dns((450.0, 120.0))
        .faults(FAULT_PLAN)
        .build()
    )
    names = {f"n{i}": f"unit-{i}.field" for i in range(6)}
    scenario.bootstrap_all(names=names)
    print(f"{scenario.configured_count()}/6 hosts configured; "
          "fault plan armed")

    # Cross-network traffic for the whole fault window: n0 -> n5 crosses
    # both the crashed relay and the partition cut.
    CBRTraffic(scenario.hosts[0], scenario.hosts[5].ip,
               interval=1.0, count=30, payload_size=64)
    scenario.run(duration=35.0)

    summary = scenario.metrics.summary()
    print(f"\nfaults injected:     {summary['faults_injected']}")
    print(f"crashes/recoveries:  {summary['fault_crashes']}"
          f"/{summary['fault_recoveries']}")
    print(f"re-DAD runs:         {summary['re_dad_count']} "
          "(1 cold boot + one per host on heal)")
    print(f"recovery time:       {summary['recovery_time_mean']:.2f} s "
          "(crash -> reconfigured)")
    print(f"availability:        {summary['availability']:.3f} "
          "(host-seconds up / total)")
    print(f"frames cut by fault: {summary['frames_suppressed']}")
    print(f"end-to-end PDR:      {summary['pdr']:.2f} "
          "(degraded but nonzero: the network healed itself)")

    # The healed network still resolves and routes: every host is back.
    configured = scenario.configured_count()
    print(f"\n{configured}/6 hosts configured after crash + partition")
    assert configured == 6, "self-healing failed"


if __name__ == "__main__":
    main()
