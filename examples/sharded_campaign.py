#!/usr/bin/env python3
"""Distributed campaign walkthrough: shard, crash, resume, merge.

The campaign engine partitions a run matrix deterministically across
hosts (``campaign run --shard i/N``): run ``index % N == i`` of the
*full* expansion belongs to shard ``i``, and seeds/run_ids are derived
before the split, so the shard count can never change what a run
computes.  Each shard streams its own crash-safe checkpoint into
``shard-i-of-N/`` with a provenance manifest, and ``campaign merge``
fuses the checkpoints into an artifact byte-identical to a single-host
run.

This script plays the whole lifecycle in-process, in one directory:

1. run the same campaign unsharded (the byte-identity anchor);
2. run it again as 3 shards -- with shard 1 "crashing" partway
   (its checkpoint is truncated mid-record, like a power cut);
3. resume the crashed shard from its checkpoint;
4. merge the three shard checkpoints and byte-compare against the
   anchor.

Set REPRO_EXAMPLE_FAST=1 to shrink the matrix (used by the smoke tests).

Run:  python examples/sharded_campaign.py
"""

import json
import os
import tempfile

from repro.campaign import CampaignRunner, CampaignSpec, merge_shards
from repro.campaign.merge import discover_shard_dirs
from repro.campaign.shard import load_shard_manifest


def campaign_spec(fast: bool) -> dict:
    return {
        "name": "sharded-demo",
        "seed": 42,
        "replicates": 2 if fast else 3,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {"router": ["secure", "plain"],
                 "workload.count": [2] if fast else [2, 4]},
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 2},
        "duration": 5.0 if fast else 8.0,
        "timeout": 60.0,
    }


def artifact_bytes(out_dir) -> dict:
    content = {}
    for name in ("results.jsonl", "report.json", "report.txt"):
        with open(os.path.join(out_dir, name), "rb") as fh:
            content[name] = fh.read()
    return content


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    spec_dict = campaign_spec(fast)
    shards = 3

    with tempfile.TemporaryDirectory(prefix="sharded-campaign-") as root:
        # 1. the anchor: one host runs the whole matrix
        anchor_dir = os.path.join(root, "single-host")
        spec = CampaignSpec.from_dict(spec_dict)
        records = CampaignRunner(spec, workers=1, out_dir=anchor_dir).run()
        print(f"single host: {len(records)} runs -> {anchor_dir}")

        # 2. three shards of the same spec, sharing one parent directory
        #    (in production: three hosts, one shared filesystem or a
        #    CI matrix job each uploading its shard as an artifact)
        merged_dir = os.path.join(root, "fleet")
        for index in range(shards):
            spec = CampaignSpec.from_dict(spec_dict)
            spec.shards, spec.shard_index = shards, index
            runner = CampaignRunner(spec, workers=1, out_dir=merged_dir)
            done = runner.run()
            manifest = load_shard_manifest(runner.out_dir)
            print(f"shard {index}/{shards}: {len(done)} runs, manifest "
                  f"status={manifest['status']!r}")

        # 2b. simulate a host dying mid-run: tear shard 1's checkpoint
        shard_dirs = discover_shard_dirs(merged_dir)
        victim = os.path.join(shard_dirs[1], "results.jsonl")
        with open(victim, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(victim, "w", encoding="utf-8") as fh:
            fh.write("".join(lines[:-1]) + lines[-1][:19])  # torn final line
        print(f"crashed shard 1: kept {len(lines) - 1} of {len(lines)} "
              "records plus a torn tail")

        # 3. the replacement host resumes the shard from its checkpoint
        spec = CampaignSpec.from_dict(spec_dict)
        spec.shards, spec.shard_index = shards, 1
        CampaignRunner(spec, workers=1, out_dir=merged_dir).resume()
        print("resumed shard 1 (torn record discarded and re-executed)")

        # 4. fuse the shard checkpoints and byte-compare with the anchor
        summary = merge_shards(
            CampaignSpec.from_dict(spec_dict), shard_dirs, merged_dir,
        )
        print("merge summary: "
              + json.dumps({k: summary[k] for k in
                            ("shards", "per_shard_runs", "runs", "total",
                             "conflicts", "gaps", "complete")}))

        anchor = artifact_bytes(anchor_dir)
        merged = artifact_bytes(merged_dir)
        for name in anchor:
            verdict = "identical" if anchor[name] == merged[name] else "DIFFER"
            print(f"  {name}: single-host vs merged -> {verdict}")
        assert anchor == merged, "merge broke the byte-identity contract"

    print(
        "\nReading: the shard split is execution-only -- seeds and run ids\n"
        "are assigned on the full matrix before partitioning, each shard\n"
        "checkpoints crash-safely under its own provenance manifest, and\n"
        "the merged artifact is byte-identical to the single-host run\n"
        "even after a shard crashed and was resumed elsewhere."
    )


if __name__ == "__main__":
    main()
