#!/usr/bin/env python3
"""Disaster-rescue scenario: the paper's motivating application.

Rescue teams converge on a site with zero infrastructure.  A command
vehicle carries the DNS server with a pre-registered permanent name for
the coordination service ("command.rescue" -- impersonation impossible,
Section 3.2).  Team members autoconfigure on arrival, register their own
names first-come-first-served, resolve the command node and stream
status reports to it while moving (random waypoint).

Run:  python examples/disaster_rescue.py
"""

import numpy as np

from repro.metrics.reports import delivery_report, overhead_report
from repro.scenarios import CBRTraffic, ScenarioBuilder


def main() -> None:
    rng_area = (900.0, 900.0)
    n_rescuers = 12

    builder = (
        ScenarioBuilder(seed=2026)
        .uniform(n_rescuers, rng_area)
        .radio(radio_range=300.0)
        .with_dns((450.0, 450.0))           # command vehicle, mid-site
        .random_waypoint(speed=(0.5, 2.0), pause=20.0)  # searching on foot
    )
    scenario = builder.build()

    # The command node itself runs on the DNS vehicle: pre-register its
    # service name permanently before the network forms.
    command = scenario.dns_node
    scenario.dns_server.preregister("command.rescue", command.ip)

    # Teams arrive over ~20 s and bootstrap with their own names.
    names = {f"n{i}": f"rescuer-{i}.rescue" for i in range(n_rescuers)}
    scenario.bootstrap_all(stagger=1.5, names=names)
    scenario.run(duration=10.0)
    configured = scenario.configured_count()
    print(f"{configured}/{n_rescuers} rescuers configured")
    print(f"registered names: {len(scenario.dns_server.table)} entries")

    # Every rescuer resolves the command service, then streams reports.
    resolved = {}
    for host in scenario.hosts:
        host.dns_client.resolve(
            "command.rescue",
            lambda ip, name=host.name: resolved.__setitem__(name, ip),
        )
    scenario.run(duration=20.0)
    print(f"{len(resolved)}/{n_rescuers} resolved command.rescue")

    flows = [
        CBRTraffic(host, command.ip, interval=5.0, count=12, payload_size=96)
        for host in scenario.hosts
        if resolved.get(host.name) == command.ip
    ]
    scenario.run(duration=90.0)

    total = sum(f.sent for f in flows)
    ok = sum(f.delivered for f in flows)
    print(f"\nstatus reports delivered: {ok}/{total} "
          f"({100 * ok / max(total, 1):.1f}%) while mobile")
    print()
    print(delivery_report(scenario.metrics))
    print()
    print(overhead_report(scenario.metrics))


if __name__ == "__main__":
    main()
