#!/usr/bin/env python3
"""Black-hole defence walkthrough (Section 4 + Section 3.4).

A black hole sits on the shortest path between two hosts; a 3-hop detour
exists.  The script runs the same traffic three times:

1. plain DSR -- the attacker forges route replies and eats the flow;
2. secure protocol, normal mode -- forgery fails, drops are probed,
   the attacker is penalised and routed around;
3. secure protocol, hostile mode -- credit-first route choice.

It prints the per-phase delivery and the attacker's credit as seen by
the source, reproducing the paper's qualitative claim ("such attacks are
unlikely to succeed after the network is stable") as numbers.

Run:  python examples/blackhole_defense.py
"""

from repro.routing import PlainDSRRouter
from repro.scenarios import CBRTraffic, ScenarioBuilder, add_blackhole


def run_phase(label, router=None, hostile=False, forge=False, seed=5, count=25):
    builder = (
        ScenarioBuilder(seed=seed)
        # Short path n0 -(bh)- n1; detour n0 - n2 - n3 - n1.
        .positions([(0, 0), (400, 0), (100, 150), (300, 150)])
        .radio(250.0)
        .with_dns((200.0, -400.0))
        .config(hostile_mode=hostile)
    )
    if router is not None:
        builder = builder.router(router)
    scenario = builder.build()
    bh = add_blackhole(scenario, (200.0, 0.0), forge_rreps=forge)
    scenario.bootstrap_all()
    src, dst = scenario.hosts[0], scenario.hosts[1]
    traffic = CBRTraffic(src, dst.ip, interval=1.0, count=count)
    scenario.run(duration=count + 40.0)

    credit = src.router.credits.credit(bh.ip) if bh.ip else float("nan")
    print(f"{label:<38} delivered {traffic.delivered:>2}/{count}   "
          f"bh dropped {bh.router.packets_dropped:>2}   "
          f"bh forged RREPs {bh.router.rreps_forged:>2}   "
          f"bh credit at src {credit:>6.1f}")
    return traffic, bh


def main() -> None:
    print("Black hole on the shortest path, honest 3-hop detour available\n")
    run_phase("plain DSR + forging black hole", router=PlainDSRRouter, forge=True)
    run_phase("secure protocol (normal mode)", forge=True)
    run_phase("secure protocol (hostile mode)", hostile=True, forge=True)
    print(
        "\nReading: under plain DSR the forged route replies are believed\n"
        "and the black hole keeps eating first-attempt traffic; under the\n"
        "secure protocol the forgeries fail the CGA check, silent drops\n"
        "trigger per-hop probing, the black hole's credit collapses by the\n"
        "penalty amount, and traffic settles on the honest detour."
    )


if __name__ == "__main__":
    main()
