"""Replay and forgery attack experiments (Section 4) as tests."""

import pytest

from repro.routing.bsar_like import EndpointOnlyRouter
from repro.scenarios.attacks import add_forger, add_replayer
from tests.conftest import chain_scenario, two_path_scenario


def test_replayed_rreps_never_accepted():
    """The replayer records RREPs then fires them at later discoveries."""
    sc = chain_scenario(n=4, seed=47).build()
    rep = add_replayer(sc, (300.0, 120.0))
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[3]

    accepted_baseline = 0
    # Round 1: legitimate discovery (replayer records the RREP it hears).
    a.router.send_data(b.ip, b"one")
    sc.run(duration=10.0)
    accepted_baseline = sc.metrics.verdicts["rrep.accepted"]
    assert rep.component("replayer").recorded_rreps

    # Expire the cache, then rediscover: the replayer races the real reply.
    a.router.cache.clear()
    a.router._recent_discoveries.clear()
    a.router.send_data(b.ip, b"two")
    sc.run(duration=10.0)
    assert rep.component("replayer").replays_fired >= 1
    # Replays carry the OLD sequence number: every one rejected as stale.
    assert sc.metrics.verdicts["rrep.rejected.stale_seq"] >= 1
    assert sc.metrics.delivered(a.ip, b.ip) == 2  # real traffic unharmed


def test_replay_everything_is_fully_rejected():
    sc = chain_scenario(n=4, seed=53).build()
    rep = add_replayer(sc, (300.0, 120.0))
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[3]
    a.router.send_data(b.ip, b"one")
    sc.run(duration=10.0)

    accepted_before = {
        k: v for k, v in sc.metrics.verdicts.items()
        if k.endswith(".accepted") and k.split(".")[0] in ("rrep", "crep", "arep")
    }
    fired = rep.component("replayer").replay_everything()
    sc.run(duration=10.0)
    accepted_after = {
        k: v for k, v in sc.metrics.verdicts.items()
        if k.endswith(".accepted") and k.split(".")[0] in ("rrep", "crep", "arep")
    }
    assert fired > 0
    assert accepted_after == accepted_before  # zero replays accepted


def test_spoofed_hop_rejected_by_full_protocol():
    """A relay splicing a fake hop identity is caught by per-hop checks."""
    sc = two_path_scenario(seed=59).build()
    victim_ip_holder = sc.hosts[2]
    sc.bootstrap_all()
    forger = add_forger(sc, (200.0, 0.0), spoof_hop_ip=victim_ip_holder.ip)
    forger.bootstrap.start("")
    sc.run(duration=5.0)

    a, b = sc.hosts[0], sc.hosts[1]
    a.router.send_data(b.ip, b"x")
    sc.run(duration=15.0)
    assert forger.router.hops_spoofed >= 1
    assert sc.metrics.verdicts["rreq.rejected.hop_bad_cga"] >= 1
    # Traffic still flows via the honest path.
    assert sc.metrics.delivered(a.ip, b.ip) == 1


def test_spoofed_hop_accepted_by_endpoint_only_baseline():
    """The BSAR-like baseline cannot see the spoofed hop (the paper's gap)."""
    sc = two_path_scenario(seed=59).router(EndpointOnlyRouter).build()
    victim_ip_holder = sc.hosts[2]
    sc.bootstrap_all()
    forger = add_forger(sc, (200.0, 0.0), spoof_hop_ip=victim_ip_holder.ip)
    forger.bootstrap.start("")
    sc.run(duration=5.0)

    a, b = sc.hosts[0], sc.hosts[1]
    a.router.send_data(b.ip, b"x")
    sc.run(duration=15.0)
    assert forger.router.hops_spoofed >= 1
    # No hop rejection verdict exists -- the forged SRR sailed through.
    assert sc.metrics.verdicts["rreq.rejected.hop_bad_cga"] == 0
    # The poisoned route (containing the victim's spoofed address) may be
    # cached at the destination side; the attack went undetected.


def test_forged_acks_rejected_and_forger_cannot_mask_drops():
    sc = two_path_scenario(seed=61, hostile_mode=True).build()
    sc.bootstrap_all()
    forger = add_forger(sc, (200.0, 0.0), forge_acks=True, drop_data=True)
    forger.bootstrap.start("")
    sc.run(duration=5.0)

    a, b = sc.hosts[0], sc.hosts[1]
    from repro.scenarios.workloads import CBRTraffic

    traffic = CBRTraffic(a, b.ip, interval=1.0, count=15)
    sc.run(duration=60.0)
    if forger.router.acks_forged:
        assert sc.metrics.rejected("ack") >= 1
    # Forged ACKs bought the forger nothing: delivery still completes via
    # the honest detour after detection.
    assert traffic.delivered == traffic.count


def test_forger_gains_no_credit_from_forged_acks():
    sc = two_path_scenario(seed=61, hostile_mode=True).build()
    sc.bootstrap_all()
    forger = add_forger(sc, (200.0, 0.0), forge_acks=True, drop_data=True)
    forger.bootstrap.start("")
    sc.run(duration=5.0)
    a, b = sc.hosts[0], sc.hosts[1]
    from repro.scenarios.workloads import CBRTraffic

    CBRTraffic(a, b.ip, interval=1.0, count=10)
    sc.run(duration=40.0)
    # Credit can only have gone down (penalty) or stayed at initial.
    assert a.router.credits.credit(forger.ip) <= a.config.credit_initial
