"""Shared test fixtures and scenario helpers."""

from __future__ import annotations

import pytest

from repro.crypto.backend import get_backend
from repro.scenarios.builder import ScenarioBuilder


@pytest.fixture
def rsa():
    return get_backend("rsa")


@pytest.fixture
def simsig():
    return get_backend("simsig")


def chain_scenario(n=4, seed=7, spacing=200.0, dns_pos=None, **config):
    """A bootstrapped chain of ``n`` hosts with a DNS server alongside."""
    if dns_pos is None:
        dns_pos = ((n - 1) * spacing / 2, 60.0)
    builder = (
        ScenarioBuilder(seed=seed)
        .chain(n, spacing=spacing)
        .with_dns(dns_pos)
    )
    if config:
        builder = builder.config(**config)
    return builder


def streaming_campaign_dict(**overrides) -> dict:
    """A cheap 12-run campaign for the streaming/determinism harness.

    3 replicates x 2 routers x 2 workload sizes of a 3-node chain; each
    run simulates in ~10-30 ms, so the harness can afford to execute
    the matrix many times over (worker counts x batch sizes x resume
    interruption points) and still byte-compare everything.
    """
    data = {
        "name": "stream",
        "seed": 11,
        "replicates": 3,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {"router": ["secure", "plain"], "workload.count": [2, 3]},
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 2},
        "duration": 6.0,
        "timeout": 60.0,
    }
    data.update(overrides)
    return data


def truncate_jsonl(path, keep_lines: int, torn_bytes: int = 0) -> None:
    """Simulate a crash: keep ``keep_lines`` records, optionally followed
    by the first ``torn_bytes`` bytes of the next line (a torn write)."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    kept = "".join(lines[:keep_lines])
    if torn_bytes and keep_lines < len(lines):
        kept += lines[keep_lines][:torn_bytes]
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(kept)


def campaign_artifacts(out_dir) -> dict[str, bytes]:
    """The byte content of every finalized campaign artifact in a dir."""
    import os

    artifacts = {}
    for name in ("results.jsonl", "report.json", "report.txt"):
        with open(os.path.join(out_dir, name), "rb") as fh:
            artifacts[name] = fh.read()
    return artifacts


def two_path_scenario(seed=5, **config):
    """Four honest hosts forming a short path and a detour around (200, 0).

    Host 0 <-> host 1 have a direct 2-hop path through whatever node is
    placed at (200, 0) (tests add an adversary there) and a 3-hop detour
    via hosts 2 and 3.
    """
    builder = (
        ScenarioBuilder(seed=seed)
        .positions([(0, 0), (400, 0), (100, 150), (300, 150)])
        .radio(250)
        .with_dns((200, -400))
    )
    if config:
        builder = builder.config(**config)
    return builder
