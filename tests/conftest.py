"""Shared test fixtures and scenario helpers."""

from __future__ import annotations

import pytest

from repro.crypto.backend import get_backend
from repro.scenarios.builder import ScenarioBuilder


@pytest.fixture
def rsa():
    return get_backend("rsa")


@pytest.fixture
def simsig():
    return get_backend("simsig")


def chain_scenario(n=4, seed=7, spacing=200.0, dns_pos=None, **config):
    """A bootstrapped chain of ``n`` hosts with a DNS server alongside."""
    if dns_pos is None:
        dns_pos = ((n - 1) * spacing / 2, 60.0)
    builder = (
        ScenarioBuilder(seed=seed)
        .chain(n, spacing=spacing)
        .with_dns(dns_pos)
    )
    if config:
        builder = builder.config(**config)
    return builder


def two_path_scenario(seed=5, **config):
    """Four honest hosts forming a short path and a detour around (200, 0).

    Host 0 <-> host 1 have a direct 2-hop path through whatever node is
    placed at (200, 0) (tests add an adversary there) and a 3-hop detour
    via hosts 2 and 3.
    """
    builder = (
        ScenarioBuilder(seed=seed)
        .positions([(0, 0), (400, 0), (100, 150), (300, 150)])
        .radio(250)
        .with_dns((200, -400))
    )
    if config:
        builder = builder.config(**config)
    return builder
