"""Runner robustness (PR 8): bounded worker-death retry, quarantine,
and SIGINT/SIGTERM graceful shutdown + resume.

Worker death is the one failure ``execute_run`` cannot absorb from the
inside, so the runner re-executes orphans alone with exponential
backoff; a run that keeps killing its worker is quarantined (recorded,
diagnosed in ``quarantine.jsonl``) instead of failing the campaign.  A
stop signal flushes the streaming checkpoint and raises
:class:`CampaignInterrupted`; ``resume`` then finishes the matrix with
artifacts byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from conftest import campaign_artifacts, streaming_campaign_dict
from repro.campaign import CampaignRunner, CampaignSpec, run_campaign
from repro.campaign.runner import (
    CampaignInterrupted,
    validate_quarantine_file,
)
import repro.campaign.runner as runner_mod

_REAL_EXECUTE_RUN = runner_mod.execute_run

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="lethal execute_run is monkeypatched into the runner module "
           "and only fork-started workers inherit that patch",
)


def _die_once_execute_run(run):
    """Run 0 kills its worker on the first attempt only: a transient
    fault (OOM pressure, cosmic ray) that a retry genuinely cures."""
    if run["index"] == 0:
        marker = os.environ["DIE_ONCE_MARKER"]
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(1)
    return _REAL_EXECUTE_RUN(run)


def _always_die_execute_run(run):
    """Run 0 is poison: it kills every worker that ever touches it."""
    if run["index"] == 0:
        os._exit(1)
    return _REAL_EXECUTE_RUN(run)


@fork_only
def test_transient_worker_death_is_cured_by_retry(monkeypatch, tmp_path):
    monkeypatch.setattr(runner_mod, "execute_run", _die_once_execute_run)
    monkeypatch.setenv("DIE_ONCE_MARKER", str(tmp_path / "died-once"))
    spec = CampaignSpec.from_dict(streaming_campaign_dict(
        replicates=1, retry_max_attempts=3, retry_backoff=0.0))
    out = tmp_path / "out"
    records = run_campaign(spec, workers=2, batch_size=4, out_dir=out)
    assert all(r["status"] == "ok" for r in records)
    # a cured run produces its *canonical* record -- no retry residue
    assert "attempts" not in records[0]
    assert not (out / "quarantine.jsonl").exists()


@fork_only
def test_poison_run_is_quarantined_and_campaign_completes(
    monkeypatch, tmp_path
):
    monkeypatch.setattr(runner_mod, "execute_run", _always_die_execute_run)
    spec = CampaignSpec.from_dict(streaming_campaign_dict(
        replicates=1, retry_max_attempts=3, retry_backoff=0.0))
    out = tmp_path / "out"
    records = run_campaign(spec, workers=2, batch_size=4, out_dir=out,
                           telemetry=True)
    statuses = {r["index"]: r["status"] for r in records}
    assert statuses == {0: "quarantined", 1: "ok", 2: "ok", 3: "ok"}
    assert records[0]["attempts"] == 3  # original + 2 retries, all fatal
    assert "worker died" in records[0]["error"]
    # the diagnostic sidecar validates and matches the record
    assert validate_quarantine_file(out / "quarantine.jsonl") == 1
    entry = json.loads((out / "quarantine.jsonl").read_text())
    assert entry["run_id"] == records[0]["run_id"]
    assert entry["attempts"] == 3
    # telemetry schema still validates with the retried batch records
    from repro.obs.telemetry import validate_telemetry_file

    assert validate_telemetry_file(out / "telemetry.jsonl") >= 3


def test_validate_quarantine_file_rejects_malformed_lines(tmp_path):
    path = tmp_path / "quarantine.jsonl"
    good = {"run_id": "c-0000", "index": 0, "seed": 1, "params": {},
            "attempts": 3, "error": "worker died: x"}
    path.write_text(json.dumps(good) + "\n")
    assert validate_quarantine_file(path) == 1

    for mutate in (
        lambda e: e.pop("attempts"),
        lambda e: e.update(attempts=0),
        lambda e: e.update(attempts=True),
        lambda e: e.update(index="zero"),
    ):
        entry = dict(good)
        mutate(entry)
        path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(ValueError):
            validate_quarantine_file(path)


def test_retry_knobs_never_block_resume(tmp_path):
    """retry_max_attempts/retry_backoff are execution-only, like
    batch_size: a resume under different values must not be refused."""
    spec = CampaignSpec.from_dict(streaming_campaign_dict(replicates=1))
    out = tmp_path / "out"
    run_campaign(spec, workers=1, out_dir=out)
    changed = CampaignSpec.from_dict(streaming_campaign_dict(
        replicates=1, retry_max_attempts=7, retry_backoff=2.0))
    records = CampaignRunner(changed, workers=1, out_dir=out).resume()
    assert len(records) == 4


# -- graceful shutdown -------------------------------------------------------

def _sigterm_mid_campaign_execute_run(run):
    """Run index 4 SIGTERMs the coordinating process (workers=1: that is
    this process) mid-campaign -- the deterministic stand-in for an
    operator's kill."""
    if run["index"] == 4:
        os.kill(os.getpid(), signal.SIGTERM)
    return _REAL_EXECUTE_RUN(run)


def test_sigterm_flushes_checkpoint_and_resume_is_byte_identical(
    monkeypatch, tmp_path
):
    monkeypatch.setattr(runner_mod, "execute_run",
                        _sigterm_mid_campaign_execute_run)
    spec = CampaignSpec.from_dict(streaming_campaign_dict())
    out = tmp_path / "out"
    runner = CampaignRunner(spec, workers=1, batch_size=1, out_dir=out,
                            telemetry=True)
    with pytest.raises(CampaignInterrupted) as excinfo:
        runner.run()
    assert excinfo.value.signum == signal.SIGTERM

    # the checkpoint holds exactly the runs that landed before the stop
    # (index 4's own batch still completes; the loop breaks after it)
    lines = (out / "results.jsonl").read_text().splitlines()
    assert [json.loads(line)["index"] for line in lines] == [0, 1, 2, 3, 4]

    # telemetry narrates the interruption: valid file, ends with
    # `abandoned` (not `finish`); inline mode has nothing in flight
    from repro.obs.telemetry import validate_telemetry_file

    assert validate_telemetry_file(out / "telemetry.jsonl") >= 2
    last = json.loads(
        (out / "telemetry.jsonl").read_text().splitlines()[-1]
    )
    assert last["kind"] == "abandoned"
    assert last["signal"] == "SIGTERM"
    assert last["in_flight"] == []
    assert last["done"] == 5

    # resume (with the real execute_run) finishes the campaign with
    # artifacts byte-identical to one that was never interrupted
    monkeypatch.setattr(runner_mod, "execute_run", _REAL_EXECUTE_RUN)
    CampaignRunner(spec, workers=1, batch_size=1, out_dir=out).resume()
    ref = tmp_path / "ref"
    run_campaign(spec, workers=1, batch_size=1, out_dir=ref)
    assert campaign_artifacts(out) == campaign_artifacts(ref)


@fork_only
def test_cli_sigterm_exits_143_and_resume_completes(tmp_path):
    """End-to-end: `campaign run` killed with SIGTERM exits 128+15 after
    flushing its checkpoint; `campaign resume` finishes byte-identically
    to an uninterrupted run."""
    spec_dict = streaming_campaign_dict(replicates=6, duration=12.0)
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec_dict))
    out = tmp_path / "out"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath("src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "run", str(spec_path),
         "--workers", "2", "--batch-size", "1", "--quiet",
         "--out", str(out), "--telemetry"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    results = out / "results.jsonl"
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if results.exists() and results.read_text().count("\n") >= 2:
            break
        if proc.poll() is not None:
            pytest.fail("campaign finished before it could be killed; "
                        "make the matrix bigger")
        time.sleep(0.02)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60.0) == 128 + signal.SIGTERM

    # the interrupted artifacts are a valid checkpoint + telemetry story
    from repro.obs.telemetry import validate_telemetry_file

    assert validate_telemetry_file(out / "telemetry.jsonl") >= 1
    kinds = [json.loads(line)["kind"]
             for line in (out / "telemetry.jsonl").read_text().splitlines()]
    assert kinds[-1] == "abandoned" and "finish" not in kinds

    # resume completes and matches the uninterrupted reference
    spec = CampaignSpec.from_dict(spec_dict)
    CampaignRunner(spec, workers=2, batch_size=1, out_dir=out).resume()
    ref = tmp_path / "ref"
    run_campaign(spec, workers=1, batch_size=1, out_dir=ref)
    assert campaign_artifacts(out) == campaign_artifacts(ref)
