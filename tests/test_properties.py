"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.crypto.backend import get_backend
from repro.crypto.hashes import cga_hash
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import CGAParams, cga_address, verify_cga
from repro.ipv6.prefixes import is_site_local, site_local_from_interface_id, split_fields
from repro.messages.base import CodecError
from repro.messages.codec import decode_message, encode_message
from repro.sim.kernel import Simulator

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

u128 = st.integers(min_value=0, max_value=(1 << 128) - 1)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
addresses = u128.map(IPv6Address)
routes = st.lists(addresses, max_size=6).map(tuple)
names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    max_size=32,
)

_simsig = get_backend("simsig")
_KEYS = [_simsig.generate_keypair(f"prop-{i}".encode()).public for i in range(4)]
keys = st.sampled_from(_KEYS)


# ---------------------------------------------------------------------------
# IPv6 address properties
# ---------------------------------------------------------------------------

@given(u128)
def test_address_int_roundtrip(v):
    assert IPv6Address(v).value == v


@given(u128)
def test_address_packed_roundtrip(v):
    a = IPv6Address(v)
    assert IPv6Address(a.packed) == a


@given(u128)
def test_address_text_roundtrip(v):
    a = IPv6Address(v)
    assert IPv6Address(str(a)) == a


@given(u128, u128)
def test_address_ordering_matches_int(v1, v2):
    assert (IPv6Address(v1) < IPv6Address(v2)) == (v1 < v2)


@given(u128)
def test_groups_reassemble(v):
    a = IPv6Address(v)
    reassembled = 0
    for g in a.groups:
        reassembled = (reassembled << 16) | g
    assert reassembled == v


# ---------------------------------------------------------------------------
# CGA properties
# ---------------------------------------------------------------------------

@given(keys, u64)
def test_cga_roundtrip_always_verifies(key, rn):
    addr = cga_address(key, rn)
    assert verify_cga(addr, CGAParams(key, rn))
    assert is_site_local(addr)


@given(keys, u64, st.integers(min_value=0, max_value=0xFFFF))
def test_figure1_fields_always_consistent(key, rn, subnet):
    addr = cga_address(key, rn, subnet_id=subnet)
    prefix, zeros, sub, iface = split_fields(addr)
    assert prefix == 0b1111111011
    assert zeros == 0
    assert sub == subnet
    assert iface == cga_hash(key.encode(), rn)


@given(keys, u64, u64)
def test_cga_wrong_rn_never_verifies(key, rn, other_rn):
    if rn == other_rn:
        return
    addr = cga_address(key, rn)
    # A different modifier verifying would mean a 64-bit hash collision;
    # astronomically unlikely under SHA-256 truncation.
    assert not verify_cga(addr, CGAParams(key, other_rn))


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_site_local_interface_id_preserved(iface):
    addr = site_local_from_interface_id(iface)
    assert addr.interface_id == iface


# ---------------------------------------------------------------------------
# signature properties
# ---------------------------------------------------------------------------

@given(st.binary(max_size=256))
def test_simsig_sign_verify_any_message(payload):
    kp = _simsig.generate_keypair(b"prop-sign")
    assert _simsig.verify(kp.public, payload, _simsig.sign(kp.private, payload))


@given(st.binary(max_size=128), st.binary(max_size=128))
def test_simsig_distinct_messages_distinct_tags(m1, m2):
    if m1 == m2:
        return
    kp = _simsig.generate_keypair(b"prop-sign2")
    assert _simsig.sign(kp.private, m1) != _simsig.sign(kp.private, m2)


@given(st.binary(min_size=16, max_size=16), st.binary(max_size=64))
def test_simsig_random_tag_never_verifies(tag, payload):
    kp = _simsig.generate_keypair(b"prop-sign3")
    real = _simsig.sign(kp.private, payload)
    if tag == real:
        return
    assert not _simsig.verify(kp.public, payload, tag)


# ---------------------------------------------------------------------------
# codec properties
# ---------------------------------------------------------------------------

@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(addresses, u64, names, u64, routes)
def test_areq_roundtrip(sip, seq, dn, ch, rr):
    from repro.messages.bootstrap import AREQ

    msg = AREQ(sip=sip, seq=seq, domain_name=dn, ch=ch, route_record=rr,
               hop_limit=17)
    assert decode_message(encode_message(msg)) == msg


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(addresses, addresses, u64, routes, st.binary(max_size=64), keys, u64)
def test_rrep_roundtrip(sip, dip, seq, route, sig, key, rn):
    from repro.messages.routing import RREP

    msg = RREP(sip=sip, dip=dip, seq=seq, route=route, signature=sig,
               public_key=key, rn=rn)
    assert decode_message(encode_message(msg)) == msg


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(addresses, addresses, u64, routes, st.binary(max_size=128),
       st.integers(min_value=-1, max_value=100))
def test_data_packet_roundtrip(sip, dip, seq, route, payload, seg):
    from repro.messages.data import DataPacket

    msg = DataPacket(sip=sip, dip=dip, seq=seq, route=route, payload=payload,
                     segment_index=seg, sent_at=0.25)
    assert decode_message(encode_message(msg)) == msg


@given(st.binary(max_size=64))
def test_decoder_never_crashes_on_junk(junk):
    """Arbitrary bytes either decode to a message or raise CodecError."""
    try:
        decode_message(junk)
    except CodecError:
        pass


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(addresses, u64, names, u64, routes)
def test_mutated_encoding_never_equals_original(sip, seq, dn, ch, rr):
    """Flipping any byte either fails decode or yields a different message."""
    from repro.messages.bootstrap import AREQ

    msg = AREQ(sip=sip, seq=seq, domain_name=dn, ch=ch, route_record=rr)
    data = bytearray(encode_message(msg))
    for pos in range(1, min(len(data), 24)):  # skip the type byte
        data[pos] ^= 0xFF
        try:
            other = decode_message(bytes(data))
            assert other != msg
        except CodecError:
            pass
        data[pos] ^= 0xFF


# ---------------------------------------------------------------------------
# kernel properties
# ---------------------------------------------------------------------------

@settings(deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=40))
def test_events_always_execute_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30))
def test_fifo_among_equal_times(tags):
    sim = Simulator()
    fired = []
    for t in tags:
        sim.schedule(1.0, fired.append, t)
    sim.run()
    assert fired == tags


# ---------------------------------------------------------------------------
# route cache properties
# ---------------------------------------------------------------------------

@settings(deadline=None)
@given(st.lists(st.tuples(u128, routes), min_size=1, max_size=50))
def test_route_cache_never_exceeds_capacity(entries):
    from repro.routing.route_cache import CachedRoute, RouteCache

    cache = RouteCache(capacity=8, ttl=100.0)
    for dest_int, route in entries:
        cache.put(CachedRoute(dest=IPv6Address(dest_int), route=route,
                              created_at=0.0))
    assert len(cache) <= 8


@settings(deadline=None)
@given(st.lists(u128, min_size=1, max_size=20), u128)
def test_invalidate_host_removes_all_matching(route_ints, host_int):
    from repro.routing.route_cache import CachedRoute, RouteCache

    host = IPv6Address(host_int)
    cache = RouteCache(capacity=64, ttl=100.0)
    for i, r in enumerate(route_ints):
        cache.put(CachedRoute(dest=IPv6Address(i + 1),
                              route=(IPv6Address(r),), created_at=0.0))
    cache.invalidate_host(host)
    for entry in cache._entries.values():
        assert not entry.contains_host(host)


# ---------------------------------------------------------------------------
# credit properties
# ---------------------------------------------------------------------------

@settings(deadline=None)
@given(st.lists(st.sampled_from(["reward", "penalize"]), max_size=60))
def test_credit_accounting_is_exact(ops):
    from repro.credit.manager import CreditManager

    cm = CreditManager(initial=1.0, reward=1.0, penalty=50.0)
    host = IPv6Address("fec0::77")
    expected = 1.0
    for op in ops:
        if op == "reward":
            cm.reward(host)
            expected += 1.0
        else:
            cm.penalize(host)
            expected -= 50.0
    assert cm.credit(host) == pytest.approx(expected)
    assert cm.is_suspect(host) == (expected < 0)


@settings(deadline=None)
@given(st.lists(routes, min_size=1, max_size=8), st.booleans())
def test_select_route_always_returns_a_candidate(candidates, hostile):
    from repro.credit.manager import CreditManager
    from repro.credit.policy import RoutePolicy, select_route

    cm = CreditManager()
    chosen = select_route(cm, candidates, RoutePolicy(hostile_mode=hostile))
    assert chosen in candidates
