"""Integration tests for the DNS service (Section 3.2)."""

import pytest

from repro.ipv6.cga import cga_address
from tests.conftest import chain_scenario


def bootstrapped(names=None, n=4, seed=11, **config):
    sc = chain_scenario(n=n, seed=seed, **config).build()
    sc.bootstrap_all(names=names or {})
    sc.run(duration=8.0)  # let registration refreshes land
    return sc


def test_names_register_fcfs_during_dad():
    sc = bootstrapped(names={"n0": "alice.manet", "n3": "bob.manet"})
    assert set(sc.dns_server.table.names()) == {"alice.manet", "bob.manet"}
    assert sc.dns_server.table.lookup("alice.manet").ip == sc.hosts[0].ip


def test_resolution_returns_registered_binding():
    sc = bootstrapped(names={"n3": "bob.manet"})
    results = []
    sc.hosts[0].dns_client.resolve("bob.manet", results.append)
    sc.run(duration=10.0)
    assert results == [sc.hosts[3].ip]
    assert sc.metrics.verdicts["dns_client.response_accepted"] >= 1


def test_resolution_miss_returns_none():
    sc = bootstrapped()
    results = []
    sc.hosts[1].dns_client.resolve("ghost.manet", results.append)
    sc.run(duration=10.0)
    assert results == [None]
    assert sc.metrics.verdicts["dns.query_miss"] == 1


def test_duplicate_name_gets_drep_and_new_name():
    """Second claimant of the same name must end up with a derived name."""
    sc = chain_scenario(n=4, seed=31).build()
    sc.bootstrap_all(names={"n0": "team.manet", "n2": "team.manet"})
    sc.run(duration=20.0)
    table = sc.dns_server.table
    assert table.lookup("team.manet") is not None
    # Exactly one of the two hosts holds the original; the other was
    # pushed to a -2 suffix (via DREP during DAD or post-refresh DREP).
    names = {sc.hosts[0].domain_name, sc.hosts[2].domain_name}
    assert "team.manet" in names
    assert "team.manet-2" in names
    assert sc.metrics.name_conflicts_detected >= 1


def test_preregistered_permanent_name_resists_online_claim():
    """Paper: impersonating pre-registered hosts is impossible."""
    from repro.crypto.backend import get_backend

    server_key = get_backend("simsig").generate_keypair(b"web-server")
    server_ip = cga_address(server_key.public, rn=424242)
    builder = chain_scenario(n=3, seed=37)
    builder = builder.preregister("www.rescue.org", server_ip)
    sc = builder.build()
    sc.bootstrap_all(names={"n1": "www.rescue.org"})  # squatter attempt
    sc.run(duration=20.0)
    rec = sc.dns_server.table.lookup("www.rescue.org")
    assert rec.ip == server_ip          # binding unchanged
    assert rec.permanent
    assert sc.hosts[1].domain_name != "www.rescue.org"  # squatter renamed


def test_authenticated_ip_change_accepted():
    sc = bootstrapped(names={"n0": "alice.manet"})
    alice = sc.hosts[0]
    # Draw the new address from alice's own key (new modifier, same key).
    new_rn = 777777
    new_ip = cga_address(alice.public_key, new_rn)
    outcomes = []
    alice.dns_client.change_ip(new_ip, new_rn, outcomes.append)
    sc.run(duration=15.0)
    assert outcomes == [True]
    assert sc.dns_server.table.lookup("alice.manet").ip == new_ip
    assert sc.metrics.verdicts["dns.update.accepted"] == 1


def test_ip_change_with_foreign_key_rejected():
    """An attacker cannot move someone else's binding to its own address."""
    sc = bootstrapped(names={"n0": "alice.manet"})
    alice, mallory = sc.hosts[0], sc.hosts[2]
    # Mallory crafts an update for alice's name using mallory's key.
    new_rn = 888888
    new_ip = cga_address(mallory.public_key, new_rn)
    outcomes = []
    # Force the client to act for a foreign name.
    mallory.domain_name = "alice.manet"
    mallory.dns_client.change_ip(new_ip, new_rn, outcomes.append)
    sc.run(duration=15.0)
    assert outcomes == [False]
    assert sc.dns_server.table.lookup("alice.manet").ip == alice.ip
    rejected = [k for k in sc.metrics.verdicts if k.startswith("dns.update.rejected")]
    assert rejected


def test_ip_change_old_cga_must_match_key():
    """old_ip not a CGA of the presented key => rejected (old_cga/old_ip)."""
    sc = bootstrapped(names={"n0": "alice.manet"})
    alice = sc.hosts[0]
    mallory = sc.hosts[2]
    # Mallory claims alice's old ip with mallory's key via raw request.
    from repro.messages import signing
    from repro.messages.codec import encode_message
    from repro.messages.dns import DNSUpdateRequest

    new_rn = 999
    new_ip = cga_address(mallory.public_key, new_rn)
    # Phase 1 intent under alice's name from mallory.
    intent = DNSUpdateRequest(
        domain_name="alice.manet",
        old_ip=alice.ip,  # not a CGA of mallory's key
        new_ip=new_ip,
        old_rn=0,
        new_rn=new_rn,
        public_key=mallory.public_key,
        signature=b"",
    )
    mallory.router.send_data(
        mallory.dns_client.server_address, encode_message(intent)
    )
    sc.run(duration=15.0)
    assert sc.dns_server.table.lookup("alice.manet").ip == alice.ip


def test_warning_arep_cancels_pending_registration():
    """A duplicate holder's warning stops the DNS from registering (DN, SIP)."""
    sc = chain_scenario(n=3, seed=41).build()
    sc.bootstrap_all()
    victim = sc.hosts[0]

    # A joiner (n2, re-bootstrapping) probes the victim's address with a name.
    joiner = sc.hosts[2]
    joiner.abandon_identity()
    boot = joiner.bootstrap
    boot.state = "probing"
    boot.tentative_ip = victim.ip
    boot._tentative_params = victim.cga_params
    boot.pending_ch = 1234
    boot.pending_seq = joiner.next_seq()
    from repro.messages.bootstrap import AREQ

    areq = AREQ(sip=victim.ip, seq=boot.pending_seq,
                domain_name="thief.manet", ch=1234, route_record=())
    boot._seen_areqs.add((areq.sip, areq.seq))
    boot._timer.start(joiner.config.dad_timeout)
    joiner.broadcast(areq, claimed_src=victim.ip)
    sc.run(duration=10.0)
    # The victim's warning AREP reached the DNS before the quiet window
    # closed, so "thief.manet" never bound to the victim's address.
    assert "thief.manet" not in sc.dns_server.table
    assert sc.metrics.verdicts["dns.warning_arep.accepted"] >= 1


def test_dns_answers_route_discovery_for_anycast():
    sc = bootstrapped()
    host = sc.hosts[0]
    from repro.ipv6.prefixes import DNS_ANYCAST_ADDRESSES

    delivered = []
    host.router.send_data(
        DNS_ANYCAST_ADDRESSES[0], b"ping", on_delivered=lambda: delivered.append(1)
    )
    sc.run(duration=10.0)
    assert delivered == [1]
