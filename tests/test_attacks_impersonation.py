"""Impersonation attack experiments (Section 4) as tests."""

import pytest

from repro.adversary.impersonator import attempt_address_takeover
from repro.ipv6.cga import cga_address
from repro.scenarios.attacks import add_dns_impersonator
from tests.conftest import chain_scenario


def test_dns_impersonator_cannot_poison_resolution():
    """An on-path forger answers DNS queries; the client rejects them all."""
    sc = chain_scenario(n=4, seed=67).build()
    sc.bootstrap_all(names={"n3": "bob.manet"})
    sc.run(duration=8.0)

    # Attacker's chosen poison target address.
    mallory_answer = cga_address(sc.hosts[1].public_key, rn=123)
    imp = add_dns_impersonator(sc, (300.0, 30.0), fake_answer=mallory_answer,
                               drop_real_query=False)
    imp.bootstrap.start("")
    sc.run(duration=5.0)

    results = []
    sc.hosts[0].dns_client.resolve("bob.manet", results.append)
    sc.run(duration=15.0)
    # Whether or not the forgery raced ahead, the accepted answer is real.
    assert results == [sc.hosts[3].ip]
    if imp.router.responses_forged:
        assert sc.metrics.verdicts["dns_client.response_rejected"] >= 1


def test_dns_impersonator_dropping_queries_causes_timeout_not_poison():
    """Worst case for the client is a timeout -- never a wrong answer."""
    sc = chain_scenario(n=4, seed=71).build()
    sc.bootstrap_all(names={"n3": "bob.manet"})
    sc.run(duration=8.0)
    mallory_answer = cga_address(sc.hosts[1].public_key, rn=99)

    # Park the impersonator directly between n0 and the DNS.
    imp = add_dns_impersonator(sc, (250.0, 45.0), fake_answer=mallory_answer,
                               drop_real_query=True)
    imp.bootstrap.start("")
    sc.run(duration=5.0)

    results = []
    sc.hosts[0].dns_client.resolve("bob.manet", results.append, timeout=8.0)
    sc.run(duration=20.0)
    assert len(results) == 1
    assert results[0] in (sc.hosts[3].ip, None)  # truth or timeout
    assert results[0] != mallory_answer          # never the poison


def test_address_takeover_fails_identity_checks():
    """A thief adopting someone's IP cannot answer discoveries for it."""
    sc = chain_scenario(n=4, seed=73).build()
    sc.bootstrap_all()
    victim = sc.hosts[3]
    thief = sc.hosts[1]
    victim_ip = victim.ip

    # The victim leaves; the thief squats its address.
    sc.medium.set_enabled(victim.link_id, False)
    attempt_address_takeover(thief, victim_ip)

    searcher = sc.hosts[0]
    failures = []
    searcher.router.send_data(victim_ip, b"secret",
                              on_failed=lambda: failures.append(1))
    sc.run(duration=30.0)
    # The thief answered the RREQ as destination, but its RREP cannot pass
    # the CGA check (its key does not hash to the victim's address).
    assert sc.metrics.verdicts["rrep.rejected.bad_cga"] >= 1
    assert sc.metrics.delivered(searcher.ip, victim_ip) == 0 or failures


def test_address_takeover_cannot_defend_in_dad():
    """The thief cannot even keep a new joiner off the stolen address:
    its AREP fails verification, so DAD concludes the address is free."""
    sc = chain_scenario(n=3, seed=79).build()
    sc.bootstrap_all()
    thief = sc.hosts[1]
    target_addr = sc.hosts[0].ip

    # Victim departs; thief squats.
    sc.medium.set_enabled(sc.hosts[0].link_id, False)
    attempt_address_takeover(thief, target_addr)

    # A fresh joiner probes exactly that address.
    joiner = sc.hosts[2]
    joiner.abandon_identity()
    boot = joiner.bootstrap
    boot.state = "probing"
    boot.tentative_ip = target_addr
    from repro.ipv6.cga import CGAParams

    boot._tentative_params = CGAParams(joiner.public_key, 0)  # placeholder
    boot.pending_ch = 555
    boot.pending_seq = joiner.next_seq()
    from repro.messages.bootstrap import AREQ

    areq = AREQ(sip=target_addr, seq=boot.pending_seq, domain_name="", ch=555)
    boot._seen_areqs.add((areq.sip, areq.seq))
    boot._timer.start(joiner.config.dad_timeout)
    joiner.broadcast(areq, claimed_src=target_addr)
    sc.run(duration=10.0)

    # The thief's defence AREP was rejected; the joiner adopted the address.
    assert sc.metrics.verdicts["arep.rejected.bad_cga"] >= 1
    assert joiner.configured and joiner.ip == target_addr
