"""Crypto fast-path equivalence: byte-identical across the 2x2x2 matrix.

The crypto fast path (scenario-wide shared verify cache, batched SRR
verification, process-wide keypair pool) must not change *anything*
observable: same seed + same scenario must yield identical metrics
summaries, identical traces, identical medium counters, and the same
number of kernel events whichever flag combination ran.  These tests
mirror tests/test_vectorized_equivalence.py across the full 2x2x2
matrix (``crypto_shared_cache`` x ``crypto_batch_verify`` x
``crypto_keypair_pool``) under loss, random-waypoint mobility, churn --
and, critically, under active adversaries: a cached *negative* verdict
must never mask a forged signature, and a cached *positive* verdict
must never launder a replayed or impersonated message.
"""

import itertools

from repro.phy.mobility import ChurnModel
from repro.scenarios import ScenarioBuilder
from repro.scenarios.attacks import add_dns_impersonator, add_forger, add_replayer
from tests.conftest import chain_scenario, two_path_scenario

#: Every (shared_cache, batch_verify, keypair_pool) combination; the
#: all-off corner (the pre-fast-path behaviour) is the reference.
COMBOS = list(itertools.product((False, True), repeat=3))


def crypto_flags(combo) -> dict:
    shared, batch, pool = combo
    return {
        "crypto_shared_cache": shared,
        "crypto_batch_verify": batch,
        "crypto_keypair_pool": pool,
    }


def fingerprint(scenario) -> dict:
    """Everything observable about a finished run."""
    return {
        "summary": scenario.metrics.summary(),
        "verdicts": dict(scenario.metrics.verdicts),
        "trace": [
            (e.time, e.node, e.kind, e.msg_type, e.detail)
            for e in scenario.trace.events
        ],
        "medium": (
            scenario.medium.total_frames,
            scenario.medium.total_bytes,
            scenario.medium.dropped_frames,
        ),
        "events": scenario.sim.events_executed,
    }


def assert_all_identical(fingerprints: dict) -> None:
    (ref_combo, ref), *rest = fingerprints.items()
    for combo, fp in rest:
        for key in ref:
            assert fp[key] == ref[key], (
                f"{combo} diverges from {ref_combo} on {key!r}"
            )


def run_lossy_grid(combo) -> dict:
    """Static grid under loss with per-hop verification: multi-entry SRRs
    exercise the batched verify path at both relays and destinations."""
    sc = (
        ScenarioBuilder(seed=42)
        .grid(12, spacing=180.0)
        .radio(250.0, loss_rate=0.1)
        .with_dns()
        .config(verify_at_intermediate=True, **crypto_flags(combo))
        .build()
    )
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[-1]
    for k in range(5):
        sc.sim.schedule(k * 1.0, sc.send_data, a, z.ip, b"x" * 32)
    sc.run(duration=20.0)
    return fingerprint(sc)


def run_mobile_with_churn(combo) -> dict:
    sc = (
        ScenarioBuilder(seed=7)
        .uniform(10, (700.0, 700.0))
        .radio(250.0, loss_rate=0.05)
        .with_dns()
        .random_waypoint(speed=(2.0, 8.0), pause=2.0)
        .config(**crypto_flags(combo))
        .build()
    )
    churn = ChurnModel(
        sc.sim, sc.medium, [h.link_id for h in sc.hosts],
        interval=5.0, min_present=4,
    )
    churn.start()
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[1]
    for k in range(4):
        sc.sim.schedule(k * 2.0, sc.send_data, a, z.ip, b"y" * 48)
    sc.run(duration=25.0)
    return fingerprint(sc)


def run_forger(combo) -> dict:
    """Hop-identity forgery: the spoofed SRR entry must be rejected with
    ``hop_bad_cga`` in every combination -- a shared cache or batch pass
    may never let the forged hop through."""
    sc = two_path_scenario(seed=59, verify_at_intermediate=True,
                           **crypto_flags(combo)).build()
    victim = sc.hosts[2]
    sc.bootstrap_all()
    forger = add_forger(sc, (200.0, 0.0), spoof_hop_ip=victim.ip)
    forger.bootstrap.start("")
    sc.run(duration=5.0)
    a, b = sc.hosts[0], sc.hosts[1]
    a.router.send_data(b.ip, b"x")
    sc.run(duration=15.0)
    return fingerprint(sc)


def run_replayer(combo) -> dict:
    """Replayed RREPs carry valid signatures over stale sequence numbers:
    a cached *positive* verdict must still be rejected as stale."""
    sc = chain_scenario(n=4, seed=47, **crypto_flags(combo)).build()
    add_replayer(sc, (300.0, 120.0))
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[3]
    a.router.send_data(b.ip, b"one")
    sc.run(duration=10.0)
    a.router.cache.clear()
    a.router._recent_discoveries.clear()
    a.router.send_data(b.ip, b"two")
    sc.run(duration=10.0)
    return fingerprint(sc)


def run_dns_impersonator(combo) -> dict:
    """A rogue resolver answers name lookups with a forged binding; the
    impersonated answer fails verification identically in every combo."""
    from repro.ipv6.cga import cga_address

    sc = chain_scenario(n=4, seed=67, **crypto_flags(combo)).build()
    sc.bootstrap_all(names={"n3": "bob.manet"})
    sc.run(duration=8.0)
    mallory_answer = cga_address(sc.hosts[1].public_key, rn=123)
    imp = add_dns_impersonator(sc, (300.0, 30.0), fake_answer=mallory_answer,
                               drop_real_query=False)
    imp.bootstrap.start("")
    sc.run(duration=5.0)
    results = []
    sc.hosts[0].dns_client.resolve("bob.manet", results.append)
    sc.run(duration=15.0)
    assert results == [sc.hosts[3].ip]  # never the poison, in any combo
    return fingerprint(sc)


def test_lossy_grid_is_byte_identical():
    assert_all_identical({c: run_lossy_grid(c) for c in COMBOS})


def test_mobile_churn_is_byte_identical():
    assert_all_identical({c: run_mobile_with_churn(c) for c in COMBOS})


def test_forger_rejected_identically_across_matrix():
    results = {c: run_forger(c) for c in COMBOS}
    # the attack actually fired and was caught in the reference...
    ref = results[COMBOS[0]]
    assert ref["verdicts"]["rreq.rejected.hop_bad_cga"] >= 1
    # ... and every fast-path combination saw the byte-identical story
    assert_all_identical(results)


def test_replayer_rejected_identically_across_matrix():
    results = {c: run_replayer(c) for c in COMBOS}
    ref = results[COMBOS[0]]
    assert ref["verdicts"]["rrep.rejected.stale_seq"] >= 1
    assert_all_identical(results)


def test_dns_impersonator_rejected_identically_across_matrix():
    results = {c: run_dns_impersonator(c) for c in COMBOS}
    assert_all_identical(results)
