"""Unit tests for the wireless medium."""

import pytest

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.sim.kernel import Simulator

SRC_IP = IPv6Address("fec0::aa")


def make_medium(seed=1, **kw):
    sim = Simulator(seed=seed)
    return sim, WirelessMedium(sim, radio_range=100.0, **kw)


def test_broadcast_reaches_only_nodes_in_range():
    sim, medium = make_medium()
    got = {i: [] for i in range(3)}
    r0 = medium.attach((0, 0), lambda f: got[0].append(f))
    r1 = medium.attach((50, 0), lambda f: got[1].append(f))
    r2 = medium.attach((500, 0), lambda f: got[2].append(f))
    medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "hi", 100))
    sim.run()
    assert len(got[1]) == 1 and got[1][0].payload == "hi"
    assert got[2] == []
    assert got[0] == []  # no self-delivery


def test_unicast_delivers_and_reports_success():
    sim, medium = make_medium()
    got, ok = [], []
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), got.append)
    medium.unicast(
        Frame(r0.link_id, r1.link_id, SRC_IP, "pkt", 64),
        on_success=lambda f: ok.append(f),
    )
    sim.run()
    assert len(got) == 1 and len(ok) == 1


def test_unicast_out_of_range_fails_after_retries():
    sim, medium = make_medium()
    failed = []
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((500, 0), lambda f: pytest.fail("should not deliver"))
    medium.unicast(
        Frame(r0.link_id, r1.link_id, SRC_IP, "pkt", 64),
        on_fail=lambda f: failed.append(sim.now),
    )
    sim.run()
    assert len(failed) == 1
    # 1 try + mac_retries retries, each waiting ack_timeout, + final verdict.
    expected = (medium.mac_retries + 1) * medium.ack_timeout
    assert failed[0] == pytest.approx(expected)


def test_unicast_to_broadcast_link_rejected():
    sim, medium = make_medium()
    r0 = medium.attach((0, 0), lambda f: None)
    with pytest.raises(ValueError):
        medium.unicast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 1))


def test_delivery_delay_includes_tx_time():
    sim, medium = make_medium()
    times = []
    r0 = medium.attach((0, 0), lambda f: None)
    medium.attach((30, 0), lambda f: times.append(sim.now))
    size = 1000
    medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", size))
    sim.run()
    assert len(times) == 1
    assert times[0] >= medium.tx_delay(size)  # 4 ms at 2 Mb/s
    assert times[0] == pytest.approx(
        medium.tx_delay(size) + 30 / 299_792_458.0 + medium.proc_delay
    )


def test_loss_rate_drops_some_broadcasts():
    sim, medium = make_medium(loss_rate=0.5)
    got = []
    r0 = medium.attach((0, 0), lambda f: None)
    medium.attach((50, 0), got.append)
    for _ in range(200):
        medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    sim.run()
    assert 60 < len(got) < 140  # ~100 expected
    assert medium.dropped_frames == 200 - len(got)


def test_unicast_retries_overcome_moderate_loss():
    sim, medium = make_medium(loss_rate=0.3)
    delivered, failed = [], []
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), delivered.append)
    for _ in range(100):
        medium.unicast(
            Frame(r0.link_id, r1.link_id, SRC_IP, "x", 10),
            on_fail=lambda f: failed.append(f),
        )
    sim.run()
    # P(all 4 attempts lost) = 0.3^4 ≈ 0.8%; expect almost all delivered.
    assert len(delivered) >= 95
    assert len(delivered) + len(failed) == 100


def test_disabled_radio_neither_sends_nor_receives():
    sim, medium = make_medium()
    got = []
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), got.append)
    medium.set_enabled(r1.link_id, False)
    medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    sim.run()
    assert got == []
    medium.set_enabled(r0.link_id, False)
    assert medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 10)) == 0


def test_receiver_detaching_mid_flight_drops_frame():
    sim, medium = make_medium()
    got = []
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), got.append)
    medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    medium.detach(r1.link_id)  # before delivery event fires
    sim.run()
    assert got == []


def test_position_updates_affect_range():
    sim, medium = make_medium()
    got = []
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((500, 0), got.append)
    assert not medium.in_range(r0.link_id, r1.link_id)
    medium.set_position(r1.link_id, (80, 0))
    assert medium.in_range(r0.link_id, r1.link_id)
    assert medium.neighbors(r0.link_id) == [r1.link_id]
    assert medium.distance(r0.link_id, r1.link_id) == pytest.approx(80.0)


def test_counters_track_traffic():
    sim, medium = make_medium()
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), lambda f: None)
    medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 42))
    sim.run()
    assert medium.total_frames == 1
    assert medium.total_bytes == 42
    assert r0.frames_sent == 1 and r0.bytes_sent == 42
    assert r1.frames_received == 1 and r1.bytes_received == 42


def test_constructor_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        WirelessMedium(sim, radio_range=0)
    with pytest.raises(ValueError):
        WirelessMedium(sim, loss_rate=1.0)
    with pytest.raises(ValueError):
        WirelessMedium(sim, index="octree")


def test_set_position_and_enabled_on_detached_link_are_noops():
    """A churn model racing a detach must not crash the run (bugfix)."""
    sim, medium = make_medium()
    r0 = medium.attach((0, 0), lambda f: None)
    medium.detach(r0.link_id)
    medium.set_position(r0.link_id, (10, 10))  # no KeyError
    medium.set_enabled(r0.link_id, False)  # no KeyError
    assert not medium.has_link(r0.link_id)
    # never-attached ids are equally harmless
    medium.set_position(999, (1, 1))
    medium.set_enabled(999, True)


def test_detached_link_noops_leave_a_trace_note():
    from repro.trace.recorder import TraceRecorder

    sim, medium = make_medium()
    medium.trace = TraceRecorder()
    r0 = medium.attach((0, 0), lambda f: None)
    medium.detach(r0.link_id)
    medium.set_position(r0.link_id, (10, 10))
    medium.set_enabled(r0.link_id, True)
    notes = [e.detail for e in medium.trace.filter(kind="note")]
    assert len(notes) == 2
    assert all(f"detached link {r0.link_id}" in n for n in notes)


def test_broadcast_spans_grid_cell_borders():
    """Receivers just inside range but in a diagonal neighbor cell."""
    sim, medium = make_medium()  # range 100 => cell size 100
    got = []
    r0 = medium.attach((95.0, 95.0), lambda f: None)
    medium.attach((165.0, 165.0), got.append)  # ~99m away, cell (1, 1)
    medium.attach((-4.0, 95.0), got.append)  # 99m away, cell (-1, 0)
    n = medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "hi", 10))
    sim.run()
    assert n == 2 and len(got) == 2


def test_detached_radio_disappears_from_neighbors():
    sim, medium = make_medium()
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), lambda f: None)
    assert medium.neighbors(r0.link_id) == [r1.link_id]
    medium.detach(r1.link_id)
    assert medium.neighbors(r0.link_id) == []
    assert medium.broadcast(Frame(r0.link_id, BROADCAST_LINK, SRC_IP, "x", 1)) == 0


def test_detach_forgets_promiscuous_membership():
    """A departed snoop must not haunt the unicast path: detach() has to
    restore the empty-set fast path, not leave a stale id in the sorted
    snapshot forever."""
    sim, medium = make_medium()
    r0 = medium.attach((0, 0), lambda f: None)
    r1 = medium.attach((50, 0), lambda f: None)
    snoop = medium.attach((25, 0), lambda f: None)
    medium.set_promiscuous(snoop.link_id, True)
    medium.detach(snoop.link_id)
    assert not medium._promiscuous
    assert medium._promiscuous_sorted == ()
    medium.unicast(Frame(r0.link_id, r1.link_id, SRC_IP, "pkt", 64))
    sim.run()
    # a detach of a non-promiscuous radio leaves the set alone
    medium.set_promiscuous(r1.link_id, True)
    medium.detach(r0.link_id)
    assert medium._promiscuous_sorted == (r1.link_id,)
