"""Unit tests for the DSR route cache."""

import pytest

from repro.ipv6.address import IPv6Address
from repro.routing.route_cache import CachedRoute, RouteCache

S = IPv6Address("fec0::5")
A = IPv6Address("fec0::a")
B = IPv6Address("fec0::b")
C = IPv6Address("fec0::c")
D = IPv6Address("fec0::d")


def entry(dest=D, route=(A, B), t=0.0, shareable=False):
    kw = {}
    if shareable:
        kw = dict(crep_seq=1, crep_signature=b"sig", crep_public_key=None, crep_rn=0)
    return CachedRoute(dest=dest, route=route, created_at=t, **kw)


def test_put_and_lookup():
    cache = RouteCache()
    cache.put(entry())
    routes = cache.routes_to(D, now=1.0)
    assert len(routes) == 1
    assert routes[0].route == (A, B)
    assert cache.has_route(D, now=1.0)
    assert not cache.has_route(A, now=1.0)


def test_multiple_routes_same_destination_coexist():
    cache = RouteCache()
    cache.put(entry(route=(A, B)))
    cache.put(entry(route=(C,)))
    assert len(cache.routes_to(D, now=0.0)) == 2


def test_duplicate_route_replaces():
    cache = RouteCache()
    cache.put(entry(t=0.0))
    cache.put(entry(t=5.0))
    routes = cache.routes_to(D, now=5.0)
    assert len(routes) == 1
    assert routes[0].created_at == 5.0


def test_ttl_expiry():
    cache = RouteCache(ttl=10.0)
    cache.put(entry(t=0.0))
    assert cache.has_route(D, now=9.0)
    assert not cache.has_route(D, now=11.0)
    assert len(cache) == 0  # pruned


def test_lru_eviction_at_capacity():
    cache = RouteCache(capacity=3)
    dests = [IPv6Address(i + 1) for i in range(4)]
    for d in dests:
        cache.put(entry(dest=d, route=(A,)))
    assert not cache.has_route(dests[0], now=0.0)  # oldest evicted
    assert all(cache.has_route(d, now=0.0) for d in dests[1:])


def test_best_shareable_prefers_shortest():
    cache = RouteCache()
    cache.put(entry(route=(A, B, C), shareable=True))
    cache.put(entry(route=(A,), shareable=True))
    cache.put(entry(route=()))  # shorter but not shareable
    best = cache.best_shareable(D, now=0.0)
    assert best.route == (A,)


def test_best_shareable_none_when_only_secondhand():
    cache = RouteCache()
    cache.put(entry(route=(A,)))
    assert cache.best_shareable(D, now=0.0) is None


def test_invalidate_link_directional():
    cache = RouteCache()
    cache.put(entry(route=(A, B)))  # path S->A->B->D
    assert cache.invalidate_link(B, A, src=S) == 0  # reverse direction: no hit
    assert cache.invalidate_link(A, B, src=S) == 1
    assert not cache.has_route(D, now=0.0)


def test_invalidate_link_first_and_last_hops():
    cache = RouteCache()
    cache.put(entry(route=(A, B)))
    assert cache.invalidate_link(S, A, src=S) == 1  # source's own first hop
    cache.put(entry(route=(A, B)))
    assert cache.invalidate_link(B, D, src=S) == 1  # final hop to dest


def test_invalidate_host():
    cache = RouteCache()
    cache.put(entry(dest=D, route=(A, B)))
    cache.put(entry(dest=C, route=(B,)))
    cache.put(entry(dest=C, route=(A,)))
    assert cache.invalidate_host(B) == 2
    assert cache.has_route(C, now=0.0)


def test_invalidate_host_as_destination():
    cache = RouteCache()
    cache.put(entry(dest=D, route=(A,)))
    assert cache.invalidate_host(D) == 1


def test_invalidate_dest():
    cache = RouteCache()
    cache.put(entry(dest=D, route=(A,)))
    cache.put(entry(dest=D, route=(B,)))
    cache.put(entry(dest=C, route=(B,)))
    assert cache.invalidate_dest(D) == 2
    assert cache.has_route(C, now=0.0)


def test_hops_and_contains():
    e = entry(route=(A, B))
    assert e.hops() == 3
    assert e.contains_host(A) and e.contains_host(D)
    assert not e.contains_host(C)
    assert e.contains_link(A, B, src=S)
    assert e.contains_link(S, A, src=S)
    assert e.contains_link(B, D, src=S)
    assert not e.contains_link(A, C, src=S)


def test_clear():
    cache = RouteCache()
    cache.put(entry())
    cache.clear()
    assert len(cache) == 0


def test_constructor_validation():
    with pytest.raises(ValueError):
        RouteCache(capacity=0)
    with pytest.raises(ValueError):
        RouteCache(ttl=0.0)
