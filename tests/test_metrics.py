"""Unit tests for metrics collection and reports."""

from repro.ipv6.address import IPv6Address
from repro.metrics.collector import FlowStats, MetricsCollector
from repro.metrics.reports import (
    crypto_report,
    delivery_report,
    format_table,
    overhead_report,
    security_report,
)

A = IPv6Address("fec0::a")
B = IPv6Address("fec0::b")


def test_flow_stats_pdr_and_latency():
    st = FlowStats()
    assert st.pdr == 0.0 and st.mean_latency == 0.0
    st.sent = 4
    st.delivered = 3
    st.latencies = [0.1, 0.2, 0.3]
    assert st.pdr == 0.75
    assert abs(st.mean_latency - 0.2) < 1e-12


def test_message_accounting():
    m = MetricsCollector()
    m.on_send("RREQ", 100)
    m.on_send("RREQ", 120)
    m.on_send("DATA", 500)
    m.on_receive("RREQ")
    assert m.msgs_sent["RREQ"] == 2
    assert m.bytes_sent["RREQ"] == 220
    assert m.control_bytes() == 220       # DATA excluded
    assert m.control_messages() == 2
    assert m.msgs_received["RREQ"] == 1


def test_flow_accounting_and_aggregate_pdr():
    m = MetricsCollector()
    m.on_data_sent(A, B)
    m.on_data_sent(A, B)
    m.on_data_delivered(A, B, 0.05)
    m.on_data_acked(A, B)
    m.on_data_dropped(A, B)
    assert m.delivered(A, B) == 1
    assert m.pdr(A, B) == 0.5
    m.on_data_sent(B, A)
    m.on_data_delivered(B, A, 0.01)
    assert m.pdr() == 2 / 3


def test_verdict_accounting():
    m = MetricsCollector()
    m.on_verdict("rrep.accepted")
    m.on_verdict("rrep.rejected.bad_cga")
    m.on_verdict("rrep.rejected.bad_signature")
    assert m.accepted("rrep") == 1
    assert m.rejected("rrep") == 2
    assert m.rejected("arep") == 0


def test_crypto_accounting():
    m = MetricsCollector()
    m.on_crypto("simsig", "sign")
    m.on_crypto("simsig", "verify")
    m.on_crypto("rsa", "verify")
    assert m.crypto_total() == 3
    assert m.crypto_total("verify") == 2
    assert m.crypto_total("sign") == 1


def test_discovery_accounting():
    m = MetricsCollector()
    m.on_discovery_started()
    m.on_discovery_succeeded(0.2)
    m.on_discovery_succeeded(0.4, via_crep=True)
    assert m.discoveries_succeeded == 2
    assert m.creps_used == 1
    assert abs(m.mean_discovery_latency - 0.3) < 1e-12


def test_format_table_alignment():
    out = format_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "n" in lines[1]
    assert len(lines) == 5
    # all data rows equally wide
    assert len(lines[3]) == len(lines[4])


def test_reports_render_without_error():
    m = MetricsCollector()
    m.on_send("RREQ", 64)
    m.on_data_sent(A, B)
    m.on_data_delivered(A, B, 0.1)
    m.on_verdict("rrep.accepted")
    m.on_crypto("simsig", "sign")
    for report in (delivery_report, overhead_report, security_report, crypto_report):
        text = report(m)
        assert isinstance(text, str) and text
