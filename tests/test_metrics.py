"""Unit tests for metrics collection and reports."""

import json

import pytest

from repro.ipv6.address import IPv6Address
from repro.metrics.collector import FlowStats, MetricsCollector, percentile
from repro.metrics.reports import (
    crypto_report,
    delivery_report,
    format_table,
    overhead_report,
    security_report,
)

A = IPv6Address("fec0::a")
B = IPv6Address("fec0::b")


def test_flow_stats_pdr_and_latency():
    st = FlowStats()
    assert st.pdr == 0.0 and st.mean_latency == 0.0
    st.sent = 4
    st.delivered = 3
    st.latencies = [0.1, 0.2, 0.3]
    assert st.pdr == 0.75
    assert abs(st.mean_latency - 0.2) < 1e-12


def test_message_accounting():
    m = MetricsCollector()
    m.on_send("RREQ", 100)
    m.on_send("RREQ", 120)
    m.on_send("DATA", 500)
    m.on_receive("RREQ")
    assert m.msgs_sent["RREQ"] == 2
    assert m.bytes_sent["RREQ"] == 220
    assert m.control_bytes() == 220       # DATA excluded
    assert m.control_messages() == 2
    assert m.msgs_received["RREQ"] == 1


def test_flow_accounting_and_aggregate_pdr():
    m = MetricsCollector()
    m.on_data_sent(A, B)
    m.on_data_sent(A, B)
    m.on_data_delivered(A, B, 0.05)
    m.on_data_acked(A, B)
    m.on_data_dropped(A, B)
    assert m.delivered(A, B) == 1
    assert m.pdr(A, B) == 0.5
    m.on_data_sent(B, A)
    m.on_data_delivered(B, A, 0.01)
    assert m.pdr() == 2 / 3


def test_verdict_accounting():
    m = MetricsCollector()
    m.on_verdict("rrep.accepted")
    m.on_verdict("rrep.rejected.bad_cga")
    m.on_verdict("rrep.rejected.bad_signature")
    assert m.accepted("rrep") == 1
    assert m.rejected("rrep") == 2
    assert m.rejected("arep") == 0


def test_crypto_accounting():
    m = MetricsCollector()
    m.on_crypto("simsig", "sign")
    m.on_crypto("simsig", "verify")
    m.on_crypto("rsa", "verify")
    assert m.crypto_total() == 3
    assert m.crypto_total("verify") == 2
    assert m.crypto_total("sign") == 1


def test_discovery_accounting():
    m = MetricsCollector()
    m.on_discovery_started()
    m.on_discovery_succeeded(0.2)
    m.on_discovery_succeeded(0.4, via_crep=True)
    assert m.discoveries_succeeded == 2
    assert m.creps_used == 1
    assert abs(m.mean_discovery_latency - 0.3) < 1e-12


def test_format_table_alignment():
    out = format_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "n" in lines[1]
    assert len(lines) == 5
    # all data rows equally wide
    assert len(lines[3]) == len(lines[4])


def test_percentile_interpolates():
    assert percentile([], 95.0) == 0.0
    assert percentile([3.0], 50.0) == 3.0
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 0.0) == 1.0
    assert percentile(vals, 100.0) == 4.0
    assert percentile(vals, 50.0) == 2.5
    with pytest.raises(ValueError):
        percentile(vals, 101.0)


def _populated_collector(latency_scale=1.0):
    m = MetricsCollector()
    m.on_send("RREQ", 100)
    m.on_send("DATA", 500)
    m.on_receive("RREQ")
    for i in range(4):
        m.on_data_sent(A, B)
    for i in range(3):
        m.on_data_delivered(A, B, latency_scale * (i + 1) * 0.1)
    m.on_data_dropped(A, B)
    m.on_verdict("rrep.accepted")
    m.on_verdict("rrep.rejected.bad_signature")
    m.on_crypto("simsig", "sign")
    m.on_crypto("simsig", "verify")
    m.on_dad_round("n0")
    m.on_address_configured("n0", 2.5)
    m.on_discovery_started()
    m.on_discovery_succeeded(0.2)
    return m


def test_summary_is_flat_and_json_serializable():
    summary = _populated_collector().summary()
    # flat: every value a plain number, round-trips through JSON
    assert all(isinstance(v, (int, float)) for v in summary.values())
    assert json.loads(json.dumps(summary)) == summary
    assert summary["data_sent"] == 4
    assert summary["data_delivered"] == 3
    assert summary["pdr"] == 0.75
    assert summary["latency_p50"] == pytest.approx(0.2)
    assert summary["latency_p95"] == pytest.approx(0.29)
    assert summary["control_bytes"] == 100  # DATA excluded
    assert summary["verdicts_accepted"] == 1
    assert summary["verdicts_rejected"] == 1
    assert summary["crypto_sign_ops"] == 1
    assert summary["configured_nodes"] == 1
    assert summary["bootstrap_time_max"] == 2.5
    assert summary["discoveries_succeeded"] == 1


def test_merge_sums_counters_and_concatenates_latencies():
    a = _populated_collector()
    b = _populated_collector(latency_scale=2.0)
    merged = MetricsCollector.merge([a, b])
    assert merged.msgs_sent["RREQ"] == 2
    assert merged.flows[(A, B)].sent == 8
    assert merged.flows[(A, B)].delivered == 6
    assert len(merged.flows[(A, B)].latencies) == 6
    assert merged.verdicts["rrep.accepted"] == 2
    assert merged.crypto_ops["simsig.sign"] == 2
    assert merged.dad_rounds["n0"] == 2
    # dad_time keeps the worst observed value on name collision
    assert merged.dad_time["n0"] == 2.5
    assert merged.discoveries_succeeded == 2
    # summary of a merge is still well-formed
    assert merged.summary()["pdr"] == 0.75


def test_merge_of_nothing_is_empty():
    merged = MetricsCollector.merge([])
    assert merged.summary()["data_sent"] == 0
    assert merged.summary()["pdr"] == 0.0


def test_reports_render_without_error():
    m = MetricsCollector()
    m.on_send("RREQ", 64)
    m.on_data_sent(A, B)
    m.on_data_delivered(A, B, 0.1)
    m.on_verdict("rrep.accepted")
    m.on_crypto("simsig", "sign")
    for report in (delivery_report, overhead_report, security_report, crypto_report):
        text = report(m)
        assert isinstance(text, str) and text
