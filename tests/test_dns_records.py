"""Unit tests for the domain-name table and challenge ledger."""

import pytest

from repro.dns.records import DomainNameTable
from repro.dns.secure_update import ChallengeLedger
from repro.ipv6.address import IPv6Address

IP1 = IPv6Address("fec0::1")
IP2 = IPv6Address("fec0::2")


def test_preregister_permanent_entry():
    t = DomainNameTable()
    rec = t.preregister("server.manet", IP1)
    assert rec.permanent
    assert t.lookup("server.manet").ip == IP1
    assert "server.manet" in t
    assert len(t) == 1


def test_preregister_duplicate_rejected():
    t = DomainNameTable()
    t.preregister("a", IP1)
    with pytest.raises(ValueError):
        t.preregister("a", IP2)


def test_online_registration_fcfs():
    t = DomainNameTable()
    r1 = t.register_online("a", IP1, public_key=None, rn=1, now=1.0)
    assert r1 is not None and not r1.permanent
    assert t.register_online("a", IP2, public_key=None, rn=2, now=2.0) is None
    assert t.lookup("a").ip == IP1


def test_online_registration_cannot_displace_permanent():
    t = DomainNameTable()
    t.preregister("server.manet", IP1)
    assert t.register_online("server.manet", IP2, None, 0, now=1.0) is None
    assert t.lookup("server.manet").ip == IP1


def test_conflicts():
    t = DomainNameTable()
    t.preregister("a", IP1)
    assert t.conflicts("a", IP2)
    assert not t.conflicts("a", IP1)  # same binding: no conflict
    assert not t.conflicts("b", IP2)  # unknown name: no conflict


def test_update_ip_keeps_name_and_key():
    t = DomainNameTable()
    t.register_online("a", IP1, public_key=None, rn=7, now=0.0)
    t.update_ip("a", IP2, new_rn=9)
    rec = t.lookup("a")
    assert rec.ip == IP2 and rec.rn == 9


def test_reverse_lookup_and_remove():
    t = DomainNameTable()
    t.preregister("a", IP1)
    assert t.lookup_ip(IP1).name == "a"
    assert t.lookup_ip(IP2) is None
    assert t.remove("a")
    assert not t.remove("a")
    assert t.names() == []


# ---------------------------------------------------------------------------
# ChallengeLedger
# ---------------------------------------------------------------------------

def test_registration_ledger_roundtrip():
    led = ChallengeLedger(ttl=10.0)
    led.open_registration("a", IP1, ch=5, now=0.0)
    assert led.pending_count() == 1
    pending = led.find_registration(IP1, 5, now=1.0)
    assert pending is not None and pending.name == "a"
    led.close_registration(IP1, 5)
    assert led.find_registration(IP1, 5, now=1.0) is None


def test_registration_ledger_expires():
    led = ChallengeLedger(ttl=10.0)
    led.open_registration("a", IP1, ch=5, now=0.0)
    assert led.find_registration(IP1, 5, now=11.0) is None
    assert led.pending_count() == 0


def test_update_challenge_consumed_once():
    led = ChallengeLedger(ttl=10.0)
    led.issue_update_challenge("a", ch=42, now=0.0)
    assert led.consume_update_challenge("a", now=1.0) == 42
    assert led.consume_update_challenge("a", now=1.0) is None  # one-shot


def test_update_challenge_expires():
    led = ChallengeLedger(ttl=10.0)
    led.issue_update_challenge("a", ch=42, now=0.0)
    assert led.consume_update_challenge("a", now=20.0) is None


def test_ledger_validation():
    with pytest.raises(ValueError):
        ChallengeLedger(ttl=0.0)
