"""Determinism harness for the batched, streaming, resumable runner.

The campaign engine's contract is that execution strategy is invisible:
*worker count, batch size, and resume interruption points never change
results*.  Per-run determinism already hangs only on the ``RunSpec``
seed, so these tests prove the orchestration layer keeps its hands off
-- the same small campaign is executed across worker counts x batch
sizes x kill-and-resume points and every finalized artifact
(``results.jsonl``, ``report.json``, ``report.txt``) must be
*byte-identical* to the uninterrupted single-worker, single-run-batch
reference.

Also covered here: the batch-safe per-run SIGALRM deadline, the
torn-tail recovery parser, checkpoint validation against spec drift,
partial ``report`` on an in-flight campaign, and worker-death isolation
inside a batch.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import campaign_artifacts, streaming_campaign_dict, truncate_jsonl
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    auto_batch_size,
    execute_batch,
    read_jsonl_partial,
    run_campaign,
)
from repro.campaign.runner import RunTimeout, deadline
import repro.campaign.runner as runner_mod


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """The uninterrupted reference execution: workers=1, batch_size=1."""
    out = tmp_path_factory.mktemp("golden") / "out"
    spec = CampaignSpec.from_dict(streaming_campaign_dict())
    records = run_campaign(spec, workers=1, batch_size=1, out_dir=out)
    assert [r["status"] for r in records] == ["ok"] * 12
    return {"out": out, "artifacts": campaign_artifacts(out)}


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(streaming_campaign_dict())


def _seed_resume_dir(golden, tmp_path, name, keep_lines, torn_bytes=0):
    """An interrupted-campaign directory: truncated checkpoint + spec."""
    out = tmp_path / name
    out.mkdir()
    results = out / "results.jsonl"
    results.write_bytes((golden["out"] / "results.jsonl").read_bytes())
    truncate_jsonl(results, keep_lines, torn_bytes=torn_bytes)
    (out / "spec.json").write_bytes((golden["out"] / "spec.json").read_bytes())
    return out


# -- workers x batch size ----------------------------------------------------

@pytest.mark.parametrize("workers,batch_size", [
    (1, 2),       # inline, batched
    (1, None),    # inline, auto-tuned
    (2, 1),       # pool, one run per task (the PR-1 strategy)
    (2, 3),       # pool, batches that straddle the matrix unevenly
    (3, None),    # pool, auto-tuned
])
def test_artifacts_byte_identical_across_workers_and_batch(
    golden, tmp_path, workers, batch_size
):
    out = tmp_path / "out"
    records = run_campaign(_spec(), workers=workers, batch_size=batch_size,
                           out_dir=out)
    assert len(records) == 12
    assert campaign_artifacts(out) == golden["artifacts"]


# -- kill-and-resume at every record boundary --------------------------------

def test_resume_at_every_truncation_point_is_byte_identical(golden, tmp_path):
    """Property-style: truncate the checkpoint after k = 0..12 records,
    resume (cycling worker counts and batch sizes), and require the
    finalized artifacts byte-identical to the uninterrupted campaign --
    including k = 12, where resume only re-finalizes."""
    configs = [(1, 1), (1, 2), (2, 3), (1, None)]
    for keep in range(13):
        out = _seed_resume_dir(golden, tmp_path, f"resume-{keep}", keep)
        workers, batch_size = configs[keep % len(configs)]
        records = CampaignRunner(
            _spec(), workers=workers, batch_size=batch_size, out_dir=out
        ).resume()
        assert len(records) == 12, f"truncation point {keep}"
        assert campaign_artifacts(out) == golden["artifacts"], \
            f"truncation point {keep} (workers={workers}, batch={batch_size})"


def test_resume_discards_torn_tail_reruns_it_and_warns(golden, tmp_path):
    """A crash mid-append leaves a torn final line: resume must drop it,
    warn, re-run that index, and still finalize byte-identical."""
    out = _seed_resume_dir(golden, tmp_path, "torn", 5, torn_bytes=37)
    messages = []
    records = CampaignRunner(
        _spec(), workers=1, out_dir=out, echo=messages.append
    ).resume()
    assert len(records) == 12
    assert campaign_artifacts(out) == golden["artifacts"]
    warnings = [m for m in messages if m.startswith("warning:")]
    assert len(warnings) == 1 and "torn final line" in warnings[0]
    # the resume header accounts for the torn record as *not* checkpointed
    assert any("5 of 12 runs checkpointed, 7 left" in m for m in messages)


def test_resume_discards_drifted_and_duplicate_records(golden, tmp_path):
    out = _seed_resume_dir(golden, tmp_path, "drift", 4)
    results = out / "results.jsonl"
    lines = results.read_text().splitlines()
    doctored = json.loads(lines[2])
    doctored["seed"] += 1  # a record from some other campaign seed
    lines[2] = json.dumps(doctored, sort_keys=True)
    lines.append(lines[0])  # duplicate of index 0
    results.write_text("".join(line + "\n" for line in lines))

    messages = []
    records = CampaignRunner(
        _spec(), workers=1, out_dir=out, echo=messages.append
    ).resume()
    assert len(records) == 12
    assert campaign_artifacts(out) == golden["artifacts"]
    warnings = "\n".join(m for m in messages if m.startswith("warning:"))
    assert "do not match the spec" in warnings
    assert "duplicate checkpoint record for index 0" in warnings


def test_resume_refuses_a_different_specs_directory(golden, tmp_path):
    out = _seed_resume_dir(golden, tmp_path, "other", 3)
    other = CampaignSpec.from_dict(streaming_campaign_dict(seed=999))
    with pytest.raises(ValueError, match="different .* spec"):
        CampaignRunner(other, workers=1, out_dir=out).resume()
    # ...but a batch_size-only difference is execution-only: resumable
    rebatched = CampaignSpec.from_dict(streaming_campaign_dict(batch_size=4))
    records = CampaignRunner(rebatched, workers=1, out_dir=out).resume()
    assert len(records) == 12
    assert campaign_artifacts(out)["results.jsonl"] == \
        golden["artifacts"]["results.jsonl"]


def test_resume_requires_an_existing_checkpoint(tmp_path):
    with pytest.raises(ValueError, match="output directory"):
        CampaignRunner(_spec(), workers=1).resume()
    with pytest.raises(FileNotFoundError):
        CampaignRunner(_spec(), workers=1, out_dir=tmp_path / "void").resume()


# -- streaming behaviour -----------------------------------------------------

def test_records_stream_to_disk_during_the_run(tmp_path):
    """results.jsonl grows record by record while the campaign is still
    in flight -- the PR-1 engine only wrote it at the very end."""
    spec = CampaignSpec.from_dict(streaming_campaign_dict(replicates=1))  # 4 runs
    out = tmp_path / "out"
    results = out / "results.jsonl"
    on_disk = []

    def watch(_msg):
        on_disk.append(len(results.read_text().splitlines())
                       if results.exists() else 0)

    run_campaign(spec, workers=1, batch_size=1, out_dir=out, echo=watch)
    assert on_disk == sorted(on_disk), "streamed file must only grow"
    assert any(0 < seen < 4 for seen in on_disk), \
        "no partial state ever hit the disk: results were buffered"
    assert on_disk[-1] == 4


def test_progress_ticker_prints_to_stderr(tmp_path, capsys):
    spec = CampaignSpec.from_dict(streaming_campaign_dict(replicates=1))
    run_campaign(spec, workers=1, batch_size=2, out_dir=tmp_path / "out",
                 progress=True)
    err = capsys.readouterr().err
    assert "progress: 2/4 done (2 ok, 0 failed)" in err
    assert "progress: 4/4 done (4 ok, 0 failed)" in err


def test_cli_resume_verb_end_to_end(golden, tmp_path, capsys):
    from repro.campaign.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(streaming_campaign_dict()))
    out = _seed_resume_dir(golden, tmp_path, "cli-resume", 7, torn_bytes=12)
    assert main(["resume", str(spec_path), "--workers", "2",
                 "--batch-size", "2", "--out", str(out), "--quiet"]) == 0
    assert "Campaign aggregate (12/12 runs ok)" in capsys.readouterr().out
    assert campaign_artifacts(out) == golden["artifacts"]
    # resuming a directory that holds no checkpoint is a usage error
    assert main(["resume", str(spec_path), "--out",
                 str(tmp_path / "nothing-here"), "--quiet"]) == 2


def test_report_works_on_an_in_flight_campaign(golden, tmp_path, capsys):
    """``report`` on a partial, torn results file: warns, aggregates."""
    from repro.campaign.cli import main

    out = _seed_resume_dir(golden, tmp_path, "inflight", 6, torn_bytes=25)
    assert main(["report", str(out)]) == 0
    captured = capsys.readouterr()
    assert "torn final line" in captured.err
    assert "Campaign aggregate (6/6 runs ok)" in captured.out


# -- the recovery parser -----------------------------------------------------

def test_read_jsonl_partial_accepts_clean_and_torn_files(tmp_path):
    path = tmp_path / "r.jsonl"
    full = [{"index": i, "x": "y" * 10} for i in range(3)]
    path.write_text("".join(json.dumps(r) + "\n" for r in full))
    records, warnings = read_jsonl_partial(path)
    assert (records, warnings) == (full, [])

    # torn tail: the last line is a prefix of a record
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in full[:2])
        + json.dumps(full[2])[:9]
    )
    records, warnings = read_jsonl_partial(path)
    assert records == full[:2]
    assert len(warnings) == 1 and "torn final line 3" in warnings[0]

    # a torn *non-object* tail (e.g. a bare literal) is also discarded
    path.write_text(json.dumps(full[0]) + "\n" + "42")
    records, warnings = read_jsonl_partial(path)
    assert records == full[:1] and len(warnings) == 1

    # empty and whitespace-only files are just "no records yet"
    path.write_text("")
    assert read_jsonl_partial(path) == ([], [])
    path.write_text("\n\n")
    assert read_jsonl_partial(path) == ([], [])


def test_read_jsonl_partial_rejects_mid_file_corruption(tmp_path):
    """Only the *final* line can legitimately be torn; damage anywhere
    else means the file is not an append-only checkpoint -- refuse to
    silently drop data from it."""
    path = tmp_path / "r.jsonl"
    path.write_text('{"index": 0}\n{"torn...\n{"index": 2}\n')
    with pytest.raises(ValueError, match="corrupt line 2"):
        read_jsonl_partial(path)
    path.write_text('{"index": 0}\n[1, 2]\n{"index": 2}\n')
    with pytest.raises(ValueError, match="corrupt line 2"):
        read_jsonl_partial(path)


# -- batched dispatch mechanics ----------------------------------------------

def test_auto_batch_size_amortises_without_starving_the_pool():
    assert auto_batch_size(0, 2) == 1
    assert auto_batch_size(8, 2) == 1       # small matrix: batching can't pay
    assert auto_batch_size(64, 2) == 8      # ~4 batches per worker
    assert auto_batch_size(64, 1) == 16
    assert auto_batch_size(10_000, 4) == 32  # capped: streaming cadence
    assert auto_batch_size(5, 0) == 2        # workers clamped to >= 1


def test_spec_batch_size_round_trips_and_validates():
    spec = CampaignSpec.from_dict(streaming_campaign_dict(batch_size=5))
    assert spec.batch_size == 5
    assert CampaignSpec.from_dict(spec.to_dict()).batch_size == 5
    assert CampaignSpec.from_dict(streaming_campaign_dict()).batch_size is None
    with pytest.raises(ValueError, match="batch_size"):
        CampaignSpec.from_dict(streaming_campaign_dict(batch_size=0))
    with pytest.raises(ValueError, match="batch_size"):
        CampaignRunner(_spec(), batch_size=0)


def test_runner_honours_spec_batch_size_unless_overridden():
    spec = CampaignSpec.from_dict(streaming_campaign_dict(batch_size=5))
    messages = []
    CampaignRunner(spec, workers=1, echo=messages.append).run()
    assert "batch size 5" in messages[0]
    messages.clear()
    CampaignRunner(spec, workers=1, batch_size=2, echo=messages.append).run()
    assert "batch size 2" in messages[0]


def _lethal_index0_execute_run(run):
    """Module-level so fork children resolve it; run 0 dies like an
    OOM-kill, taking its whole batch's worker with it."""
    if run["index"] == 0:
        os._exit(1)
    return _REAL_EXECUTE_RUN(run)


_REAL_EXECUTE_RUN = runner_mod.execute_run


@pytest.mark.skipif(
    __import__("multiprocessing").get_start_method() != "fork",
    reason="the lethal execute_run is monkeypatched into the runner module "
           "and only fork-started workers inherit that patch",
)
def test_worker_death_inside_a_batch_only_loses_the_lethal_run(
    monkeypatch, tmp_path
):
    """One batch holds runs 0..3; run 0 kills the worker.  Its innocent
    batchmates must be retried and complete; only run 0 is quarantined."""
    monkeypatch.setattr(runner_mod, "execute_run", _lethal_index0_execute_run)
    spec = CampaignSpec.from_dict(streaming_campaign_dict(
        replicates=1, retry_max_attempts=2, retry_backoff=0.0))
    out = tmp_path / "out"
    records = run_campaign(spec, workers=2, batch_size=4, out_dir=out)
    statuses = {r["index"]: r["status"] for r in records}
    assert statuses == {0: "quarantined", 1: "ok", 2: "ok", 3: "ok"}
    assert "worker died" in records[0]["error"]
    assert records[0]["attempts"] == 2
    assert [r["index"] for r in records] == [0, 1, 2, 3]  # finalized sorted
    on_disk = [json.loads(line)
               for line in (out / "results.jsonl").read_text().splitlines()]
    assert on_disk == records
    assert runner_mod.validate_quarantine_file(out / "quarantine.jsonl") == 1


# -- batch-safe per-run deadlines --------------------------------------------

def _napping_body(run):
    """Sleeps per run: long for index 1, short otherwise."""
    time.sleep(0.45 if run["index"] == 1 else 0.06)
    return {"napped": True}


def test_each_run_in_a_batch_gets_its_own_timeout_budget(monkeypatch):
    """Regression (satellite): the deadline must re-arm per run.  Five
    0.06 s runs under a 0.2 s per-run budget sum to 0.3 s -- a single
    batch-scoped alarm would kill the later runs; per-run arming passes
    them all."""
    monkeypatch.setattr(runner_mod, "_run_body",
                        lambda run: (time.sleep(0.06), {"ok": 1})[1])
    payloads = [r.to_dict() for r in
                CampaignSpec.from_dict(
                    streaming_campaign_dict(replicates=5, axes={},
                                            timeout=0.2)).expand()]
    assert len(payloads) == 5
    records = execute_batch(payloads)
    assert [r["status"] for r in records] == ["ok"] * 5


def test_slow_run_times_out_alone_its_batchmates_complete(monkeypatch):
    monkeypatch.setattr(runner_mod, "_run_body", _napping_body)
    payloads = [r.to_dict() for r in
                CampaignSpec.from_dict(
                    streaming_campaign_dict(replicates=4, axes={},
                                            timeout=0.25)).expand()]
    records = execute_batch(payloads)
    assert [r["status"] for r in records] == ["ok", "timeout", "ok", "ok"]
    assert "wall-clock" in records[1]["error"]


def test_no_alarm_leaks_out_of_a_finished_deadline():
    with deadline(0.05):
        pass
    time.sleep(0.12)  # a leaked alarm would raise RunTimeout here


def test_nested_deadline_restores_the_outer_timer():
    """The handler *and* the enclosing timer's remaining budget are
    restored on exit, so an outer deadline still fires after an inner
    one was armed and disarmed."""
    started = time.monotonic()
    with pytest.raises(RunTimeout):
        with deadline(0.5):
            with deadline(0.1):
                time.sleep(0.03)  # inner survives
            time.sleep(5.0)  # outer must fire at ~0.5 s
    elapsed = time.monotonic() - started
    assert elapsed < 2.0, "outer deadline was lost by the inner one"
