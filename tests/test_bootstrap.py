"""Integration tests for secure address autoconfiguration (Section 3.1)."""

import pytest

from repro.ipv6.prefixes import is_site_local
from tests.conftest import chain_scenario


def test_all_hosts_configure_unique_site_local_addresses():
    sc = chain_scenario(n=5).build()
    sc.bootstrap_all()
    assert sc.configured_count() == 5
    addrs = [h.ip for h in sc.hosts]
    assert len(set(addrs)) == 5
    assert all(is_site_local(a) for a in addrs)


def test_addresses_are_cga_of_each_nodes_key():
    from repro.ipv6.cga import verify_cga

    sc = chain_scenario(n=3).build()
    sc.bootstrap_all()
    for h in sc.hosts:
        assert verify_cga(h.ip, h.cga_params)
        assert h.cga_params.public_key == h.public_key


def test_bootstrap_deterministic_across_runs():
    def addresses(seed):
        sc = chain_scenario(n=4, seed=seed).build()
        sc.bootstrap_all()
        return [str(h.ip) for h in sc.hosts]

    assert addresses(3) == addresses(3)
    assert addresses(3) != addresses(4)


def test_dad_round_metrics_recorded():
    sc = chain_scenario(n=3).build()
    sc.bootstrap_all()
    for h in sc.hosts:
        assert sc.metrics.dad_rounds[h.name] >= 1
        assert h.name in sc.metrics.dad_time
        assert sc.metrics.dad_time[h.name] >= h.config.dad_timeout


def test_duplicate_address_triggers_arep_and_new_rn():
    """Force a collision: a second node claims an existing address in DAD."""
    sc = chain_scenario(n=3, seed=13).build()
    sc.bootstrap_all()
    victim = sc.hosts[0]
    joiner = sc.hosts[2]

    # Rig the joiner's next DAD round to probe the victim's exact address.
    boot = joiner.bootstrap
    joiner.abandon_identity()
    boot.state = "probing"
    boot.round = 0
    boot.requested_name = ""
    boot.tentative_ip = victim.ip
    boot._tentative_params = victim.cga_params  # pretend same hash came up
    boot.pending_ch = 999
    boot.pending_seq = joiner.next_seq()
    from repro.messages.bootstrap import AREQ

    areq = AREQ(sip=victim.ip, seq=boot.pending_seq, domain_name="",
                ch=999, route_record=())
    boot._seen_areqs.add((areq.sip, areq.seq))
    boot._timer.start(joiner.config.dad_timeout)
    joiner.broadcast(areq, claimed_src=victim.ip)

    sc.run(duration=10.0)
    # The victim defended; the joiner detected the collision and retried
    # with a fresh rn, ending on a *different* address.
    assert sc.metrics.collisions_detected >= 1
    assert sc.metrics.verdicts["arep.accepted"] >= 1
    assert joiner.configured
    assert joiner.ip != victim.ip


def test_forged_arep_does_not_stop_dad():
    """An attacker without the key cannot push a joiner off its address."""
    sc = chain_scenario(n=3, seed=17).build()
    # Bootstrap only n0 and n1 first.
    sc.sim.schedule(0.0, sc.hosts[0].bootstrap.start, "")
    sc.sim.schedule(0.3, sc.hosts[1].bootstrap.start, "")
    sc.run(duration=5.0)

    joiner = sc.hosts[2]
    attacker = sc.hosts[1]
    joiner.bootstrap.start("")
    sc.run(duration=0.2)  # AREQ is out; joiner still probing
    tentative = joiner.bootstrap.tentative_ip
    assert tentative is not None

    # Attacker claims the tentative address with its own key: AREP whose
    # CGA check must fail at the joiner.
    from repro.messages import signing
    from repro.messages.bootstrap import AREP

    ch = joiner.bootstrap.pending_ch
    forged = AREP(
        sip=tentative,
        route_record=(),
        signature=attacker.sign(signing.arep_payload(tentative, ch)),
        public_key=attacker.public_key,
        rn=attacker.cga_params.rn,
        ch=ch,
    )
    attacker.broadcast(forged)
    sc.run(duration=5.0)
    assert joiner.configured
    assert joiner.ip == tentative  # forgery did not displace the address
    assert sc.metrics.verdicts["arep.rejected.bad_cga"] >= 1


def test_replayed_arep_rejected_by_challenge():
    """An AREP recorded in one round cannot answer a later round's challenge."""
    sc = chain_scenario(n=2, seed=19).build()
    victim, joiner = sc.hosts[0], sc.hosts[1]
    sc.sim.schedule(0.0, victim.bootstrap.start, "")
    sc.run(duration=5.0)

    # Round 1: joiner probes the victim's address; victim answers AREP.
    boot = joiner.bootstrap
    boot.state = "probing"
    boot.tentative_ip = victim.ip
    boot._tentative_params = victim.cga_params
    boot.pending_ch = 111
    boot.pending_seq = joiner.next_seq()
    from repro.messages.bootstrap import AREQ

    areq = AREQ(sip=victim.ip, seq=boot.pending_seq, domain_name="", ch=111)
    boot._seen_areqs.add((areq.sip, areq.seq))
    boot._timer.start(joiner.config.dad_timeout)
    joiner.broadcast(areq, claimed_src=victim.ip)
    sc.run(duration=1.0)
    accepted_before = sc.metrics.verdicts["arep.accepted"]
    assert accepted_before >= 1

    # Capture the genuine AREP and replay it against a *new* challenge.
    recorded = [
        e.payload for e in sc.trace.events
        if e.kind == "send" and e.msg_type == "AREP" and e.node == victim.name
    ]
    sc.run(duration=8.0)  # let round 2 begin (joiner drew a fresh rn)

    boot.pending_ch = 222  # fresh challenge now pending
    boot.state = "probing"
    boot.tentative_ip = victim.ip
    boot._timer.start(joiner.config.dad_timeout)
    # Replay the old AREP directly into the joiner.
    from repro.phy.medium import Frame

    for old in recorded:
        joiner._on_frame(Frame(victim.link_id, joiner.link_id, victim.ip, old, 10))
    assert sc.metrics.verdicts["arep.rejected.bad_signature"] >= 1
    assert sc.metrics.verdicts["arep.accepted"] == accepted_before


def test_unconfigured_nodes_do_not_relay():
    """A flood cannot be relayed by hosts that have no address yet."""
    sc = chain_scenario(n=3, seed=23).build()
    # Nobody bootstrapped: n0's AREQ reaches only n1, which must stay quiet.
    sc.hosts[0].bootstrap.start("")
    sc.run(duration=1.0)
    areq_sends = [e for e in sc.trace.events if e.kind == "send" and e.msg_type == "AREQ"]
    senders = {e.node for e in areq_sends}
    assert senders == {"n0", "dns"}  # only the joiner itself and the (configured) DNS relay


def test_dad_gives_up_after_max_retries():
    sc = chain_scenario(n=2, seed=29, dad_max_retries=2).build()
    sc.sim.schedule(0.0, sc.hosts[0].bootstrap.start, "")
    sc.run(duration=5.0)
    victim, joiner = sc.hosts[0], sc.hosts[1]
    boot = joiner.bootstrap
    failures = []
    boot.on_failed.append(lambda n: failures.append(n))

    # Force every round to collide by pinning the tentative address.
    original = boot._new_address_round

    def rigged(new_rn):
        original(new_rn=False)  # never draw a fresh rn
        boot.tentative_ip = victim.ip
        boot._tentative_params = victim.cga_params

    boot._new_address_round = rigged
    boot.state = "probing"
    boot.round = 0
    rigged(True)
    # Re-flood manually with the rigged address each round is complex;
    # instead simply deliver victim's AREP each round via the real flow.
    from repro.messages.bootstrap import AREQ

    def flood_round():
        if boot.state != "probing":
            return
        areq = AREQ(sip=victim.ip, seq=joiner.next_seq(), domain_name="",
                    ch=boot.pending_ch, route_record=())
        joiner.broadcast(areq, claimed_src=victim.ip)
        sc.sim.schedule(1.0, flood_round)

    flood_round()
    sc.run(duration=30.0)
    assert boot.state == "failed"
    assert failures and failures[0] is joiner
