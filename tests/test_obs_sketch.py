"""Correctness tests for the streaming sketches behind campaign reports.

The contract under test: in the exact regime (small N) the sketches
reproduce the exact estimators bit-for-bit; beyond it they stay bounded,
monotone, and deterministic -- and the sketch-mode campaign report is
byte-stable across repeated and reordered aggregation.
"""

from __future__ import annotations

import json
import math
import random
import statistics

import pytest

from repro.campaign.aggregate import aggregate
from repro.metrics.collector import percentile
from repro.obs.sketch import (
    ExactSum,
    FixedGridHistogram,
    MetricSketch,
    P2Quantile,
    Reservoir,
    StreamingQuantile,
    Welford,
    quantile_sorted,
)


def _values(n, seed=3):
    rng = random.Random(seed)
    return [rng.uniform(-50.0, 150.0) for _ in range(n)]


# -- ExactSum ----------------------------------------------------------------

def test_exact_sum_matches_fsum():
    values = _values(500) + [1e16, 1.0, -1e16, 1e-9] * 25
    acc = ExactSum()
    for v in values:
        acc.add(v)
    assert acc.value() == math.fsum(values)


def test_exact_sum_is_order_independent():
    """The property report --follow hangs on: completion order vs index
    order must produce the same mean bits."""
    values = _values(300) + [1e15, -1e15, 0.1, 0.2, 0.3]
    sums = []
    for seed in range(5):
        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        acc = ExactSum()
        for v in shuffled:
            acc.add(v)
        sums.append(acc.value())
    assert len(set(sums)) == 1
    # naive left-to-right addition would NOT survive this reordering
    assert sums[0] == math.fsum(values)


def test_exact_sum_merge_equals_single_feed():
    values = _values(200)
    left, right, whole = ExactSum(), ExactSum(), ExactSum()
    for v in values[:90]:
        left.add(v)
    for v in values[90:]:
        right.add(v)
    for v in values:
        whole.add(v)
    left.merge(right)
    assert left.value() == whole.value()


# -- Welford -----------------------------------------------------------------

def test_welford_matches_statistics_module():
    values = _values(400)
    w = Welford()
    for v in values:
        w.add(v)
    assert w.count == len(values)
    assert w.mean == pytest.approx(statistics.fmean(values), rel=1e-12)
    assert w.variance == pytest.approx(statistics.pvariance(values), rel=1e-9)


def test_welford_merge_matches_single_pass():
    values = _values(300, seed=9)
    parts = [values[:50], values[50:210], values[210:]]
    merged = Welford()
    for part in parts:
        shard = Welford()
        for v in part:
            shard.add(v)
        merged.merge(shard)
    single = Welford()
    for v in values:
        single.add(v)
    assert merged.count == single.count
    assert merged.mean == pytest.approx(single.mean, rel=1e-12)
    assert merged.variance == pytest.approx(single.variance, rel=1e-9)


# -- P^2 / StreamingQuantile: the exact-equality regime ----------------------

@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("q", [0.5, 0.95])
def test_p2_is_exact_up_to_five_observations(n, q):
    values = _values(n, seed=n)
    est = P2Quantile(q)
    for v in values:
        est.add(v)
    assert est.value() == percentile(values, q * 100.0)


@pytest.mark.parametrize("n", [1, 5, 20, 64])
def test_streaming_quantile_exact_below_buffer_limit(n):
    values = _values(n, seed=n)
    for q in (0.5, 0.95):
        est = StreamingQuantile(q, exact_limit=64)
        for v in values:
            est.add(v)
        assert est.value() == percentile(values, q * 100.0), f"n={n} q={q}"


def test_quantile_sorted_agrees_with_collector_percentile():
    values = _values(37)
    ordered = sorted(values)
    for q in (0.0, 25.0, 50.0, 95.0, 100.0):
        assert quantile_sorted(ordered, q) == percentile(values, q)


# -- P^2 beyond the exact regime: bounded, accurate, deterministic -----------

def test_p2_stays_within_observed_bounds():
    values = _values(5000, seed=17)
    for q in (0.05, 0.5, 0.95):
        est = P2Quantile(q)
        for v in values:
            est.add(v)
        assert min(values) <= est.value() <= max(values)


def test_p2_accuracy_on_large_uniform_stream():
    rng = random.Random(23)
    values = [rng.uniform(0.0, 1.0) for _ in range(20000)]
    for q in (0.5, 0.95):
        est = P2Quantile(q)
        for v in values:
            est.add(v)
        assert est.value() == pytest.approx(q, abs=0.02)


def test_p2_is_deterministic_for_a_fixed_feed_order():
    values = _values(1000, seed=31)
    results = set()
    for _ in range(3):
        est = P2Quantile(0.95)
        for v in values:
            est.add(v)
        results.add(est.value())
    assert len(results) == 1


def test_metric_sketch_quantiles_are_monotone_in_q():
    sketch = MetricSketch()
    for v in _values(2000, seed=41):
        sketch.add(v)
    stats = sketch.stats(sketch=True)
    assert stats["min"] <= stats["p50"] <= stats["p95"] <= stats["max"]
    assert stats["min"] <= stats["mean"] <= stats["max"]


# -- FixedGridHistogram: exact merge algebra ---------------------------------

def test_histogram_merge_is_associative_and_commutative():
    chunks = [_values(70, seed=s) for s in (1, 2, 3)]

    def build(feed):
        h = FixedGridHistogram(-50.0, 150.0, bins=64)
        for v in feed:
            h.add(v)
        return h

    def state(h):
        return (h.counts, h.count, h.min, h.max)

    a, b, c = (build(chunk) for chunk in chunks)
    ab_c = build(chunks[0])
    ab_c.merge(b)
    ab_c.merge(c)

    a2, b2, c2 = (build(chunk) for chunk in chunks)
    bc = b2
    bc.merge(c2)
    a_bc = a2
    a_bc.merge(bc)

    single = build(chunks[0] + chunks[1] + chunks[2])
    reordered = build(chunks[2] + chunks[0] + chunks[1])

    assert state(ab_c) == state(a_bc) == state(single) == state(reordered)


def test_histogram_quantile_monotone_and_clamped():
    h = FixedGridHistogram(0.0, 100.0, bins=32)
    for v in _values(500, seed=7):
        h.add(v)  # includes values outside [0, 100]: clamped into edge bins
    qs = [h.quantile(q) for q in (0.0, 10.0, 50.0, 90.0, 100.0)]
    assert qs == sorted(qs)
    assert all(h.min <= v <= h.max for v in qs)


def test_histogram_rejects_mismatched_grids():
    a = FixedGridHistogram(0.0, 1.0, bins=8)
    b = FixedGridHistogram(0.0, 2.0, bins=8)
    with pytest.raises(ValueError):
        a.merge(b)


# -- Reservoir ---------------------------------------------------------------

def test_reservoir_is_deterministic_and_bounded():
    feeds = [list(range(1000)), list(range(1000))]
    samples = []
    for feed in feeds:
        r = Reservoir(capacity=32, seed=5)
        for v in feed:
            r.add(v)
        assert len(r.items) == 32
        assert r.count == 1000
        samples.append(list(r.items))
    assert samples[0] == samples[1]


def test_reservoir_keeps_everything_below_capacity():
    r = Reservoir(capacity=16, seed=0)
    for v in range(10):
        r.add(v)
    assert r.items == list(range(10))


# -- sketch-mode campaign reports: pinned bytes ------------------------------

def _fake_records(n_groups=3, replicates=10, seed=13):
    rng = random.Random(seed)
    records = []
    index = 0
    for g in range(n_groups):
        for _ in range(replicates):
            records.append({
                "run_id": f"fake-{index:04d}",
                "index": index,
                "status": "ok",
                "params": {"router": f"r{g}"},
                "summary": {
                    "pdr": rng.uniform(0.5, 1.0),
                    "latency_p50": rng.uniform(0.001, 0.2),
                    "control_bytes": float(rng.randint(1000, 9000)),
                },
            })
            index += 1
    return records


def test_sketch_report_bytes_are_pinned_across_runs_and_order():
    """aggregate(mode=\"sketch\") must be byte-deterministic -- and, with
    groups inside the exact-quantile buffer, order-independent too."""
    records = _fake_records()
    baseline = json.dumps(aggregate(records, mode="sketch"), sort_keys=True)
    assert json.dumps(aggregate(records, mode="sketch"),
                      sort_keys=True) == baseline
    shuffled = list(records)
    random.Random(99).shuffle(shuffled)
    assert json.dumps(aggregate(shuffled, mode="sketch"),
                      sort_keys=True) == baseline
    report = json.loads(baseline)
    assert report["summary_mode"] == "sketch"
    for group in report["groups"]:
        for stats in group["metrics"].values():
            assert {"count", "mean", "min", "max", "p50", "p95"} <= set(stats)


def test_sketch_mode_quantiles_exact_for_small_groups():
    """Groups within EXACT_QUANTILE_LIMIT report the same p50/p95 an
    exact percentile pass over the buffered values would."""
    records = _fake_records(n_groups=1, replicates=40)
    values = [r["summary"]["pdr"] for r in records]
    report = aggregate(records, mode="sketch")
    stats = report["groups"][0]["metrics"]["pdr"]
    assert stats["p50"] == percentile(values, 50.0)
    assert stats["p95"] == percentile(values, 95.0)
    assert stats["count"] == 40


def test_exact_mode_report_has_no_sketch_fields():
    report = aggregate(_fake_records(), mode="exact")
    assert "summary_mode" not in report
    for group in report["groups"]:
        for stats in group["metrics"].values():
            assert set(stats) == {"mean", "min", "max"}
