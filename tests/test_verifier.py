"""Unit tests for the two-step identity verification."""

import pytest

from repro.bootstrap.verifier import IdentityCheck, verify_identity
from repro.crypto.backend import get_backend
from repro.ipv6.cga import cga_address, generate_cga
from repro.messages import signing
from repro.sim.rng import SimRNG


@pytest.fixture(scope="module")
def backend():
    return get_backend("simsig")


@pytest.fixture(scope="module")
def identity(backend):
    kp = backend.generate_keypair(b"verifier-tests")
    addr, params = generate_cga(kp.public, SimRNG(1, "v"))
    return kp, addr, params


def test_valid_identity_passes(backend, identity):
    kp, addr, params = identity
    payload = signing.arep_payload(addr, 123)
    sig = backend.sign(kp.private, payload)
    check = verify_identity(backend, addr, kp.public, params.rn, sig, payload)
    assert check
    assert check.reason == ""


def test_wrong_rn_fails_cga(backend, identity):
    kp, addr, params = identity
    payload = signing.arep_payload(addr, 123)
    sig = backend.sign(kp.private, payload)
    check = verify_identity(
        backend, addr, kp.public, (params.rn + 1) % (1 << 64), sig, payload
    )
    assert not check and check.reason == "bad_cga"


def test_invalid_rn_range_fails_cga_not_crash(backend, identity):
    kp, addr, params = identity
    payload = b"x"
    check = verify_identity(backend, addr, kp.public, 1 << 64, b"", payload)
    assert not check and check.reason == "bad_cga"


def test_wrong_key_fails_cga(backend, identity):
    kp, addr, params = identity
    other = backend.generate_keypair(b"other")
    payload = signing.arep_payload(addr, 123)
    sig = backend.sign(other.private, payload)
    check = verify_identity(backend, addr, other.public, params.rn, sig, payload)
    assert not check and check.reason == "bad_cga"


def test_impersonation_with_own_cga_but_foreign_address_fails(backend, identity):
    """Attacker presents *its own* valid (PK, rn) but claims someone else's IP."""
    kp, victim_addr, _ = identity
    attacker = backend.generate_keypair(b"attacker")
    att_addr, att_params = generate_cga(attacker.public, SimRNG(2, "a"))
    payload = signing.arep_payload(victim_addr, 99)
    sig = backend.sign(attacker.private, payload)
    check = verify_identity(
        backend, victim_addr, attacker.public, att_params.rn, sig, payload
    )
    assert not check and check.reason == "bad_cga"


def test_valid_cga_but_bad_signature_fails(backend, identity):
    kp, addr, params = identity
    payload = signing.arep_payload(addr, 123)
    check = verify_identity(
        backend, addr, kp.public, params.rn, b"\x00" * 16, payload
    )
    assert not check and check.reason == "bad_signature"


def test_signature_over_different_payload_fails(backend, identity):
    """Challenge binding: a signature over ch=1 never validates ch=2."""
    kp, addr, params = identity
    sig = backend.sign(kp.private, signing.arep_payload(addr, 1))
    check = verify_identity(
        backend, addr, kp.public, params.rn, sig, signing.arep_payload(addr, 2)
    )
    assert not check and check.reason == "bad_signature"


def test_cross_context_signature_rejected(backend, identity):
    """Domain separation: an SRR-entry signature can't pose as a RERR proof."""
    kp, addr, params = identity
    srr_sig = backend.sign(kp.private, signing.srr_entry_payload(addr, 5))
    rerr_payload = signing.rerr_payload(addr, addr)
    check = verify_identity(backend, addr, kp.public, params.rn, srr_sig, rerr_payload)
    assert not check and check.reason == "bad_signature"


def test_custom_verify_fn_is_used(backend, identity):
    kp, addr, params = identity
    payload = signing.arep_payload(addr, 123)
    sig = backend.sign(kp.private, payload)
    calls = []

    def spy(public, data, signature):
        calls.append(1)
        return backend.verify(public, data, signature)

    assert verify_identity(backend, addr, kp.public, params.rn, sig, payload, verify_fn=spy)
    assert calls == [1]


def test_identity_check_bool():
    assert bool(IdentityCheck(True)) is True
    assert bool(IdentityCheck(False, "x")) is False


def test_works_with_rsa_backend():
    rsa = get_backend("rsa")
    kp = rsa.generate_keypair(b"rsa-verify")
    addr, params = generate_cga(kp.public, SimRNG(3, "r"))
    payload = signing.rreq_source_payload(addr, 7)
    sig = rsa.sign(kp.private, payload)
    assert verify_identity(rsa, addr, kp.public, params.rn, sig, payload)
