"""Regression pins for the medium's delivery contract (PR 8 satellite).

The contract (documented on ``WirelessMedium.broadcast``/``_deliver``):
a receiver gets a frame iff it was attached and enabled **at send time**
(candidacy + loss-draw consumption) AND is still attached and enabled
**at delivery time**.  In particular, disabling or detaching a node
while a batched broadcast is in flight must not deliver to it, and a
node disabled at send time cannot resurrect the copy by re-enabling
before the would-be delivery instant.
"""

import pytest

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.sim.kernel import Simulator

SRC_IP = IPv6Address("fec0::aa")


def make_medium(seed=1, **kw):
    sim = Simulator(seed=seed)
    return sim, WirelessMedium(sim, radio_range=100.0, **kw)


def bcast(medium, handle, payload="hi", size=100):
    return medium.broadcast(
        Frame(handle.link_id, BROADCAST_LINK, SRC_IP, payload, size)
    )


@pytest.mark.parametrize("vectorized", [True, False])
def test_disabled_at_send_is_not_a_candidate_and_draws_no_loss(vectorized):
    """A radio disabled at send time consumes no phy/loss draw, on both
    pipelines -- so toggling one bystander never shifts the loss stream
    seen by everyone else."""
    sim, medium = make_medium(vectorized=vectorized)
    got = []
    tx = medium.attach((0, 0), lambda f: None)
    medium.attach((50, 0), got.append)
    sleeper = medium.attach((60, 0), lambda f: pytest.fail("asleep at send"))

    medium.set_enabled(sleeper.link_id, False)
    assert bcast(medium, tx) == 1  # only the awake receiver is a candidate
    sim.run()
    assert len(got) == 1
    # exactly one loss draw was consumed (the awake receiver's): the next
    # value from the medium's stream matches a reference stream advanced
    # by exactly one draw (random_batch(1) is stream-identical to one
    # random(), so this holds on both pipelines)
    ref = Simulator(seed=1).rng("phy/loss")
    ref.random()
    assert medium._rng.random() == ref.random()


@pytest.mark.parametrize("vectorized", [True, False])
def test_disable_while_in_flight_eats_the_copy(vectorized):
    """Enabled at send, disabled before the delivery instant: no delivery."""
    sim, medium = make_medium(vectorized=vectorized)
    got = []
    tx = medium.attach((0, 0), lambda f: None)
    rx = medium.attach((50, 0), got.append)
    assert bcast(medium, tx) == 1
    # the frame is now a scheduled event; the radio sleeps before it lands
    sim.schedule(0.0, medium.set_enabled, rx.link_id, False)
    sim.run()
    assert got == []


@pytest.mark.parametrize("vectorized", [True, False])
def test_detach_while_in_flight_eats_the_copy(vectorized):
    sim, medium = make_medium(vectorized=vectorized)
    got = []
    tx = medium.attach((0, 0), lambda f: None)
    rx = medium.attach((50, 0), got.append)
    assert bcast(medium, tx) == 1
    sim.schedule(0.0, medium.detach, rx.link_id)
    sim.run()
    assert got == []


@pytest.mark.parametrize("vectorized", [True, False])
def test_reenabling_before_delivery_time_cannot_resurrect_the_frame(
    vectorized,
):
    """Disabled at send time means excluded at send time: re-enabling a
    split second later (still before the would-be delivery) must not
    conjure a copy that was never scheduled."""
    sim, medium = make_medium(vectorized=vectorized)
    got = []
    tx = medium.attach((0, 0), lambda f: None)
    rx = medium.attach((50, 0), got.append)
    medium.set_enabled(rx.link_id, False)
    assert bcast(medium, tx) == 0
    sim.schedule(0.0, medium.set_enabled, rx.link_id, True)  # too late
    sim.run(until=1.0)
    assert got == []
    # ... whereas a fresh broadcast after the wake-up does arrive
    assert bcast(medium, tx) == 1
    sim.run()
    assert len(got) == 1


@pytest.mark.parametrize("vectorized", [True, False])
def test_sleep_then_wake_while_in_flight_still_delivers(vectorized):
    """Enabled at send AND enabled at delivery is the whole contract:
    a nap strictly between those instants is invisible."""
    sim, medium = make_medium(vectorized=vectorized)
    got = []
    tx = medium.attach((0, 0), lambda f: None)
    rx = medium.attach((50, 0), got.append)
    assert bcast(medium, tx) == 1
    sim.schedule(0.0, medium.set_enabled, rx.link_id, False)
    sim.schedule(1e-7, medium.set_enabled, rx.link_id, True)
    sim.run()
    assert len(got) == 1


@pytest.mark.parametrize("vectorized", [True, False])
def test_receiver_disabling_a_later_receiver_of_the_same_broadcast(
    vectorized,
):
    """A delivery handler that powers down a *later* receiver of the same
    batched broadcast (e.g. a crash fault firing from a delivery) must
    prevent that later delivery: both copies were scheduled at send
    time, but the second receiver is disabled at its delivery instant."""
    sim, medium = make_medium(vectorized=vectorized)
    got_far = []
    tx = medium.attach((0, 0), lambda f: None)

    # near receiver's handler kills the far receiver; distance ordering
    # guarantees near's delivery event fires first
    def near_handler(frame):
        medium.set_enabled(far.link_id, False)

    medium.attach((10, 0), near_handler)
    far = medium.attach((90, 0), got_far.append)
    assert bcast(medium, tx) == 2
    sim.run()
    assert got_far == []
