"""Unit tests for the from-scratch RSA backend."""

import pytest

from repro.crypto.rsa import (
    RSABackend,
    generate_prime,
    is_probable_prime,
    modinv,
)


def test_is_probable_prime_small_values():
    primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
    for n in range(2, 38):
        assert is_probable_prime(n) == (n in primes)
    assert not is_probable_prime(0)
    assert not is_probable_prime(1)
    assert not is_probable_prime(-7)


def test_is_probable_prime_known_larger_values():
    assert is_probable_prime(104729)       # 10000th prime
    assert not is_probable_prime(104730)
    assert is_probable_prime(2**61 - 1)     # Mersenne prime
    assert not is_probable_prime(2**62 - 1)


def test_carmichael_numbers_rejected():
    # Carmichael numbers fool Fermat tests; Miller-Rabin must not be fooled.
    for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
        assert not is_probable_prime(n)


def test_generate_prime_deterministic_and_sized():
    p1 = generate_prime(b"seed", b"p", 256)
    p2 = generate_prime(b"seed", b"p", 256)
    assert p1 == p2
    assert p1.bit_length() == 256
    assert is_probable_prime(p1)
    assert generate_prime(b"seed", b"q", 256) != p1


def test_modinv():
    assert modinv(3, 11) == 4
    assert (modinv(65537, 100000007 - 1) * 65537) % (100000007 - 1) == 1
    with pytest.raises(ValueError):
        modinv(6, 9)  # gcd != 1


@pytest.fixture(scope="module")
def backend():
    return RSABackend(bits=512)


@pytest.fixture(scope="module")
def keypair(backend):
    return backend.generate_keypair(b"test-node")


def test_keygen_deterministic(backend):
    k1 = backend.generate_keypair(b"abc")
    k2 = backend.generate_keypair(b"abc")
    assert k1.public == k2.public
    assert backend.generate_keypair(b"abd").public != k1.public


def test_modulus_size(backend, keypair):
    n, e = keypair.public.material
    assert n.bit_length() == 512
    assert e == 65537


def test_sign_verify_roundtrip(backend, keypair):
    msg = b"the quick brown fox"
    sig = backend.sign(keypair.private, msg)
    assert len(sig) == backend.signature_size() == 64
    assert backend.verify(keypair.public, msg, sig)


def test_verify_rejects_tampered_message(backend, keypair):
    sig = backend.sign(keypair.private, b"original")
    assert not backend.verify(keypair.public, b"tampered", sig)


def test_verify_rejects_tampered_signature(backend, keypair):
    sig = bytearray(backend.sign(keypair.private, b"msg"))
    sig[5] ^= 0xFF
    assert not backend.verify(keypair.public, b"msg", bytes(sig))


def test_verify_rejects_wrong_key(backend, keypair):
    other = backend.generate_keypair(b"other-node")
    sig = backend.sign(keypair.private, b"msg")
    assert not backend.verify(other.public, b"msg", sig)


def test_verify_rejects_wrong_length_signature(backend, keypair):
    assert not backend.verify(keypair.public, b"msg", b"short")
    assert not backend.verify(keypair.public, b"msg", b"\x00" * 128)


def test_verify_rejects_signature_ge_modulus(backend, keypair):
    n, _ = keypair.public.material
    too_big = (n + 1).to_bytes(64, "big") if (n + 1).bit_length() <= 512 else b"\xff" * 64
    assert not backend.verify(keypair.public, b"msg", too_big)


def test_public_key_encode_decode_roundtrip(backend, keypair):
    data = backend.encode_public_key(keypair.public)
    assert len(data) == backend.public_key_size() == 68
    decoded = backend.decode_public_key(data)
    assert decoded == keypair.public


def test_decode_public_key_rejects_bad_length(backend):
    with pytest.raises(ValueError):
        backend.decode_public_key(b"\x00" * 10)


def test_signature_deterministic(backend, keypair):
    assert backend.sign(keypair.private, b"m") == backend.sign(keypair.private, b"m")


def test_sign_rejects_foreign_key(backend):
    from repro.crypto.simsig import SimSigBackend

    sim_kp = SimSigBackend().generate_keypair(b"x")
    with pytest.raises(ValueError):
        backend.sign(sim_kp.private, b"m")


def test_crt_power_matches_plain_pow(backend, keypair):
    mat = keypair.private.material
    m = 0x1234567890ABCDEF
    assert mat.power(m) == pow(m, mat.d, mat.n)


def test_distinct_bit_sizes_have_distinct_names():
    assert RSABackend(bits=512).name == "rsa"
    assert RSABackend(bits=768).name == "rsa768"
    with pytest.raises(ValueError):
        RSABackend(bits=100)
    with pytest.raises(ValueError):
        RSABackend(bits=513)
