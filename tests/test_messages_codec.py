"""Codec round-trip and robustness tests for every message type (Table 1)."""

import pytest

from repro.crypto.backend import get_backend
from repro.ipv6.address import IPv6Address
from repro.messages.base import CodecError
from repro.messages.bootstrap import AREP, AREQ, DREP
from repro.messages.codec import (
    MESSAGE_TYPES,
    decode_message,
    encode_message,
    register_message_type,
    table1_rows,
    wire_size,
)
from repro.messages.data import AckPacket, DataPacket
from repro.messages.dns import (
    DNSQuery,
    DNSResponse,
    DNSUpdateChallenge,
    DNSUpdateReply,
    DNSUpdateRequest,
)
from repro.messages.ndp import NeighborAdvertisement, NeighborSolicitation
from repro.messages.routing import CREP, RERR, RREP, RREQ, SRREntry

KEY = get_backend("simsig").generate_keypair(b"codec-tests").public
A1 = IPv6Address("fec0::1")
A2 = IPv6Address("fec0::2")
A3 = IPv6Address("fec0::3")


def sample_messages():
    """One representative instance of every wire-registered message."""
    entry = SRREntry(ip=A2, signature=b"\x01" * 16, public_key=KEY, rn=42)
    return [
        NeighborSolicitation(target=A1, domain_name="a.manet"),
        NeighborAdvertisement(target=A1, domain_name="a.manet", duplicate_name=True),
        AREQ(sip=A1, seq=9, domain_name="host.manet", ch=777, route_record=(A2, A3)),
        AREP(sip=A1, route_record=(A2,), signature=b"\x05" * 16,
             public_key=KEY, rn=3, ch=777, to_dns=True),
        DREP(sip=A1, route_record=(A2, A3), domain_name="host.manet",
             signature=b"\x06" * 16),
        RREQ(sip=A1, dip=A3, seq=5, srr=(entry, entry),
             source_signature=b"\x07" * 16, source_public_key=KEY, source_rn=1),
        RREP(sip=A1, dip=A3, seq=5, route=(A2,), signature=b"\x08" * 16,
             public_key=KEY, rn=2),
        CREP(sprime_ip=A1, sip=A2, dip=A3, fresh_seq=6, fresh_route=(),
             fresh_signature=b"\x09" * 16, fresh_public_key=KEY, fresh_rn=4,
             cached_seq=2, cached_route=(A1,), cached_signature=b"\x0a" * 16,
             cached_public_key=KEY, cached_rn=5),
        RERR(reporter_ip=A2, broken_next_hop=A3, signature=b"\x0b" * 16,
             public_key=KEY, rn=6, sip=A1, return_route=(A2,)),
        DataPacket(sip=A1, dip=A3, seq=11, route=(A2,), payload=b"hello",
                   segment_index=0, sent_at=1.5),
        AckPacket(sip=A1, dip=A3, seq=11, route=(A2,), signature=b"\x0c" * 16,
                  public_key=KEY, rn=7),
        DNSQuery(sip=A1, domain_name="host.manet", ch=33),
        DNSResponse(domain_name="host.manet", ip=A3, found=True, ch=33,
                    signature=b"\x0d" * 16),
        DNSUpdateChallenge(domain_name="host.manet", ch=44),
        DNSUpdateRequest(domain_name="host.manet", old_ip=A1, new_ip=A2,
                         old_rn=1, new_rn=2, public_key=KEY,
                         signature=b"\x0e" * 16),
        DNSUpdateReply(domain_name="host.manet", new_ip=A2, accepted=True,
                       ch=44, signature=b"\x0f" * 16),
    ]


@pytest.mark.parametrize("msg", sample_messages(), ids=lambda m: type(m).__name__)
def test_roundtrip(msg):
    data = encode_message(msg)
    decoded = decode_message(data)
    assert decoded == msg
    assert wire_size(msg) == len(data)


@pytest.mark.parametrize("msg", sample_messages(), ids=lambda m: type(m).__name__)
def test_truncation_raises(msg):
    data = encode_message(msg)
    for cut in (1, len(data) // 2, len(data) - 1):
        with pytest.raises(CodecError):
            decode_message(data[:cut])


@pytest.mark.parametrize("msg", sample_messages(), ids=lambda m: type(m).__name__)
def test_trailing_garbage_raises(msg):
    with pytest.raises(CodecError):
        decode_message(encode_message(msg) + b"\x00")


def test_empty_and_unknown_type_rejected():
    with pytest.raises(CodecError):
        decode_message(b"")
    with pytest.raises(CodecError):
        decode_message(bytes([250]))


def test_all_type_ids_unique():
    ids = [cls.META.type_id for cls in MESSAGE_TYPES.values()]
    assert len(ids) == len(set(ids))


def test_register_duplicate_id_rejected():
    from dataclasses import dataclass
    from typing import ClassVar

    from repro.messages.base import Message, MessageMeta

    @dataclass(frozen=True)
    class Imposter(Message):
        META: ClassVar[MessageMeta] = MessageMeta(10, "IMP", "imposter", "()")

    with pytest.raises(ValueError):
        register_message_type(Imposter)


def test_unregistered_message_cannot_encode():
    from dataclasses import dataclass
    from typing import ClassVar

    from repro.messages.base import Message, MessageMeta

    @dataclass(frozen=True)
    class Stranger(Message):
        META: ClassVar[MessageMeta] = MessageMeta(200, "STR", "stranger", "()")

    with pytest.raises(CodecError):
        encode_message(Stranger())


def test_table1_rows_match_paper():
    rows = table1_rows()
    assert [r[0] for r in rows] == ["AREQ", "AREP", "DREP", "RREQ", "RREP", "CREP", "RERR"]
    # Spot-check the parameter columns against Table 1.
    by_type = {r[0]: r[2] for r in rows}
    assert by_type["AREQ"] == "(SIP, seq, DN, ch, RR)"
    assert by_type["RREQ"] == "(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)"
    assert by_type["RERR"] == "(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)"


def test_rsa_public_key_roundtrips_in_message():
    rsa_key = get_backend("rsa").generate_keypair(b"codec-rsa").public
    msg = RREP(sip=A1, dip=A3, seq=1, route=(), signature=b"\x01" * 64,
               public_key=rsa_key, rn=0)
    assert decode_message(encode_message(msg)) == msg


def test_data_packet_negative_segment_roundtrip():
    msg = DataPacket(sip=A1, dip=A2, seq=1, route=(), segment_index=-1)
    assert decode_message(encode_message(msg)).segment_index == -1


def test_wire_size_scales_with_route_length():
    short = AREQ(sip=A1, seq=1, domain_name="", ch=0, route_record=())
    long = AREQ(sip=A1, seq=1, domain_name="", ch=0, route_record=(A2,) * 10)
    assert wire_size(long) == wire_size(short) + 10 * 16


def test_private_key_never_in_encoded_form():
    """No message field can carry a PrivateKey -- the codec has no encoder."""
    from repro.crypto.keys import PrivateKey
    from repro.messages.base import Writer

    w = Writer()
    with pytest.raises(AttributeError):
        w.public_key(PrivateKey("simsig", b"secret"))  # type: ignore[arg-type]
