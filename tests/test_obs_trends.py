"""Cross-campaign trends: series extraction, sparklines, CLI dashboard."""

from __future__ import annotations

import json
import os

from repro.campaign.cli import main
from repro.obs.trends import (
    SPARK_CHARS,
    collect_sources,
    flatten_numeric,
    sparkline,
    trend_series,
    trends_html,
    trends_text,
)


# -- sparkline ---------------------------------------------------------------

def test_sparkline_maps_extremes_to_edge_glyphs():
    s = sparkline([0.0, 5.0, 10.0])
    assert len(s) == 3
    assert s[0] == SPARK_CHARS[0]
    assert s[-1] == SPARK_CHARS[-1]
    assert all(ch in SPARK_CHARS for ch in s)


def test_sparkline_flat_and_empty_series():
    assert sparkline([]) == ""
    flat = sparkline([3.0, 3.0, 3.0, 3.0])
    assert len(flat) == 4 and len(set(flat)) == 1


def test_sparkline_is_monotone_for_monotone_input():
    s = sparkline(list(range(16)))
    levels = [SPARK_CHARS.index(ch) for ch in s]
    assert levels == sorted(levels)


# -- flattening --------------------------------------------------------------

def test_flatten_numeric_takes_leaves_skips_bools_and_strings():
    payload = {
        "a": {"b": 1, "c": 2.5, "note": "text", "flag": True},
        "top": 7,
        "list": [1, 2, 3],  # lists are not flattened
    }
    assert flatten_numeric(payload) == {"a.b": 1.0, "a.c": 2.5, "top": 7.0}


# -- source collection -------------------------------------------------------

def _bench(path, payload):
    path.write_text(json.dumps(payload))


def _report(path, campaign, pdr):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "campaign": campaign, "runs": 4, "ok": 4, "failed": [],
        "groups": [{
            "params": {}, "runs": 4,
            "metrics": {"pdr": {"mean": pdr, "min": pdr, "max": pdr}},
        }],
    }))


def test_collect_sources_orders_history_by_mtime(tmp_path):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    _bench(bench_dir / "BENCH_kernel.json",
           {"scorecard": {"events_per_sec": 50000.0}})
    old = tmp_path / "campaigns" / "old" / "report.json"
    new = tmp_path / "campaigns" / "new" / "report.json"
    _report(old, "sweep", 0.8)
    _report(new, "sweep", 0.95)
    os.utime(old, (1000, 1000))
    os.utime(new, (2000, 2000))

    sources, notes = collect_sources([bench_dir, tmp_path / "campaigns"])
    assert notes == []
    assert len(sources) == 3

    history, _ = trend_series([bench_dir, tmp_path / "campaigns"])
    assert history["campaign.sweep.pdr"] == [
        (1000.0, str(old), 0.8), (2000.0, str(new), 0.95)]
    assert "bench.kernel.scorecard.events_per_sec" in history


def test_unparseable_sources_become_notes_not_errors(tmp_path):
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    (tmp_path / "report.json").write_text('"just a string"')
    sources, notes = collect_sources([tmp_path])
    assert sources == []
    assert len(notes) == 2
    text = trends_text([tmp_path])
    assert "no trend sources found" in text
    assert "note: skipped" in text


def test_trends_text_renders_sparkline_rows(tmp_path):
    _report(tmp_path / "a" / "report.json", "sweep", 0.5)
    _report(tmp_path / "b" / "report.json", "sweep", 1.0)
    os.utime(tmp_path / "a" / "report.json", (1000, 1000))
    os.utime(tmp_path / "b" / "report.json", (2000, 2000))
    text = trends_text([tmp_path])
    assert "campaign.sweep.pdr" in text
    assert "(2 pt)" in text
    assert "0.5 -> 1" in text
    assert any(ch in SPARK_CHARS for ch in text)


def test_trends_html_is_escaped_and_self_contained(tmp_path):
    _report(tmp_path / "x" / "report.json", "a<b&c", 0.9)
    html = trends_html([tmp_path])
    assert html.startswith("<!doctype html>")
    assert "a&lt;b&amp;c" in html
    assert "a<b&c" not in html


# -- CLI ---------------------------------------------------------------------

def test_cli_trends_dashboard_and_html_export(tmp_path, capsys):
    _report(tmp_path / "one" / "report.json", "sweep", 0.7)
    html_out = tmp_path / "trends.html"
    assert main(["trends", str(tmp_path), "--html", str(html_out)]) == 0
    captured = capsys.readouterr()
    assert "campaign.sweep.pdr" in captured.out
    assert html_out.exists()
    assert "campaign.sweep.pdr" in html_out.read_text()


def test_cli_trends_missing_paths_error(tmp_path, capsys):
    assert main(["trends", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err
