"""Kernel profiling hooks: zero-cost when off, observation-only when on.

The two contracts under test:

* **disabled == absent** -- an uninstrumented simulator carries no sink,
  its summaries contain no ``kernel_stats`` block, and nothing about its
  behavior changes when another simulator happens to be instrumented;
* **enabled == observation-only** -- an instrumented run executes the
  byte-identical simulation (traces, metrics, clock, RNG) and the sink's
  deterministic counters (heap high-water, cancelled skips, handler call
  counts) reflect exactly what the kernel did, including across PR 4's
  mid-run auto-compaction scenario.
"""

from __future__ import annotations

import pytest

from conftest import chain_scenario
from repro.obs.kernel_stats import KernelStats, handler_kind
from repro.sim.kernel import AUTO_COMPACT_MIN_HEAP, Simulator


# -- sink mechanics ----------------------------------------------------------

def test_stats_absent_by_default():
    sim = Simulator()
    assert sim.stats is None
    assert sim.stats_summary() is None
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.stats is None


def test_enable_returns_sink_and_disable_detaches_it():
    sim = Simulator()
    stats = sim.enable_stats()
    assert sim.stats is stats
    assert isinstance(stats, KernelStats)
    assert sim.disable_stats() is stats
    assert sim.stats is None
    assert sim.disable_stats() is None


def test_handler_kind_uses_qualname():
    assert handler_kind(Simulator.run) == "Simulator.run"
    sim = Simulator()
    assert handler_kind(sim.run) == "Simulator.run"


# -- enabled vs disabled: identical observable simulation --------------------

def _run_reference_scenario(instrumented: bool):
    scenario = chain_scenario(n=4, seed=7).build()
    if instrumented:
        scenario.enable_kernel_stats()
    scenario.bootstrap_all()
    scenario.send_data(scenario.hosts[0], scenario.hosts[3].ip, b"ping")
    scenario.run(duration=10.0)
    # close the encode window: scenarios here run sequentially in one
    # process, and a still-live collector absorbs later runs' encodes
    scenario.metrics.freeze()
    return scenario


def test_instrumented_run_is_observation_identical():
    # warm the process-global wire-encode cache first: the *first*
    # scenario in a process pays extra encode_calls whether or not it is
    # instrumented, which would masquerade as an instrumentation diff
    _run_reference_scenario(instrumented=False)

    plain = _run_reference_scenario(instrumented=False)
    instrumented = _run_reference_scenario(instrumented=True)

    plain_summary = plain.metrics.summary()
    inst_summary = instrumented.metrics.summary()
    stats_block = inst_summary.pop("kernel_stats")
    assert "kernel_stats" not in plain_summary
    assert inst_summary == plain_summary

    assert [str(e) for e in plain.trace.filter()] == \
           [str(e) for e in instrumented.trace.filter()]
    assert plain.sim.now == instrumented.sim.now
    assert plain.sim.events_executed == instrumented.sim.events_executed

    # the block itself is coherent
    assert stats_block["events_executed"] == instrumented.sim.events_executed
    assert stats_block["heap_high_water"] >= 1
    assert stats_block["wall_seconds"] > 0.0
    assert stats_block["events_per_sec"] > 0.0
    assert stats_block["handlers"]
    for entry in stats_block["handlers"].values():
        assert entry["calls"] >= 1
        assert entry["wall_ms"] >= 0.0


def test_handler_buckets_key_on_qualified_names():
    scenario = _run_reference_scenario(instrumented=True)
    handlers = scenario.metrics.summary()["kernel_stats"]["handlers"]
    assert "BootstrapManager.start" in handlers
    total_calls = sum(entry["calls"] for entry in handlers.values())
    assert total_calls == scenario.sim.events_executed


# -- deterministic counters on bare simulators -------------------------------

def test_cancelled_skips_and_high_water_counted():
    sim = Simulator()
    stats = sim.enable_stats()
    keep = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    drop = [sim.schedule(0.5, lambda: None) for _ in range(3)]
    for h in drop:
        h.cancel()
    sim.run()
    assert stats.cancelled_skipped == 3
    assert stats.heap_high_water == len(keep) + len(drop)
    assert stats.instrumented_events == len(keep)
    summary = sim.stats_summary()
    assert summary["events_cancelled"] == 3
    assert summary["heap_high_water"] == 7
    assert summary["events_executed"] == 4
    assert summary["events_pending"] == 0


def test_high_water_covers_mid_run_auto_compaction():
    """PR 4's regression scenario, instrumented: the sink must observe
    the pre-compaction heap peak (compaction fires mid-callback, between
    the run loop's boundary samples) and fold the compaction count in."""
    sim = Simulator()
    stats = sim.enable_stats()
    fired = []
    n = AUTO_COMPACT_MIN_HEAP + 200
    cancelled = n // 2 + 2
    handles = [sim.schedule(10.0 + i, fired.append, i) for i in range(n)]

    def cancel_many():
        for h in handles[:cancelled]:
            h.cancel()
        assert sim.compactions >= 1
        sim.schedule(1.0, fired.append, "post-compaction")

    sim.schedule(0.5, cancel_many)
    sim.run()

    # same simulation outcome as the uninstrumented original test
    assert fired == ["post-compaction"] + list(range(cancelled, n))
    assert sim.cancelled_pending == 0

    # n scheduled events + the cancel_many trigger were all in the heap
    # when cancellation (and with it the compaction peak) hit
    assert stats.heap_high_water == n + 1
    summary = sim.stats_summary()
    assert summary["compactions"] == sim.compactions >= 1
    # compaction dropped most cancelled entries before they were popped,
    # so skips-on-pop only see the post-compaction stragglers
    assert summary["events_cancelled"] == stats.cancelled_skipped < 100
    assert summary["events_executed"] == sim.events_executed


def test_step_feeds_the_sink_too():
    sim = Simulator()
    stats = sim.enable_stats()
    handle = sim.schedule(0.5, lambda: None)
    sim.schedule(1.0, lambda: None)
    handle.cancel()
    assert sim.step() is True  # skips the cancelled entry, runs the live one
    assert sim.step() is False
    assert stats.cancelled_skipped == 1
    assert stats.heap_high_water == 2


def test_shared_sink_accumulates_across_runs():
    sim = Simulator()
    stats = sim.enable_stats()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert stats.instrumented_events == 2
    assert sim.events_executed == 2


def test_events_per_sec_zero_before_any_run():
    stats = KernelStats()
    assert stats.events_per_sec == 0.0
    assert stats.summary()["events_per_sec"] == 0.0
