"""Scalar / vectorised broadcast-pipeline equivalence: byte-identical runs.

The vectorised pipeline (cached candidate blocks -> one numpy distance
computation -> one batched loss draw -> batch-scheduled deliveries) must
not change *anything* observable versus the scalar loop it replaces:
same seed + same scenario must yield identical metrics summaries,
identical traces, and identical medium counters whichever path ran --
and whichever neighbor index fed it.  These tests mirror
tests/test_medium_equivalence.py across the full 2x2 matrix
(``medium_index`` x ``vectorized``) under loss, random-waypoint
mobility, churn, and promiscuous (monitor-mode) radios.
"""

import itertools

import pytest

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.phy.mobility import ChurnModel
from repro.scenarios import ScenarioBuilder
from repro.sim.kernel import Simulator

SRC_IP = IPv6Address("fec0::aa")

#: Every (index, vectorized) combination; the first is the reference.
COMBOS = list(itertools.product(("grid", "naive"), (True, False)))


def fingerprint(scenario) -> dict:
    """Everything observable about a finished run."""
    return {
        "summary": scenario.metrics.summary(),
        "trace": [
            (e.time, e.node, e.kind, e.msg_type, e.detail)
            for e in scenario.trace.events
        ],
        "medium": (
            scenario.medium.total_frames,
            scenario.medium.total_bytes,
            scenario.medium.dropped_frames,
        ),
        "events": scenario.sim.events_executed,
    }


def assert_all_identical(fingerprints: dict) -> None:
    (ref_combo, ref), *rest = fingerprints.items()
    for combo, fp in rest:
        for key in ref:
            assert fp[key] == ref[key], (
                f"{combo} diverges from {ref_combo} on {key!r}"
            )


def run_static(index: str, vectorized: bool) -> dict:
    sc = (
        ScenarioBuilder(seed=42)
        .grid(12, spacing=180.0)
        .radio(250.0, loss_rate=0.1)
        .with_dns()
        .medium(index, vectorized=vectorized)
        .build()
    )
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[-1]
    for k in range(5):
        sc.sim.schedule(k * 1.0, sc.send_data, a, z.ip, b"x" * 32)
    sc.run(duration=20.0)
    return fingerprint(sc)


def run_mobile_with_churn(index: str, vectorized: bool) -> dict:
    sc = (
        ScenarioBuilder(seed=7)
        .uniform(10, (700.0, 700.0))
        .radio(250.0, loss_rate=0.05)
        .with_dns()
        .medium(index, vectorized=vectorized)
        .random_waypoint(speed=(2.0, 8.0), pause=2.0)
        .build()
    )
    churn = ChurnModel(
        sc.sim, sc.medium, [h.link_id for h in sc.hosts],
        interval=5.0, min_present=4,
    )
    churn.start()
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[1]
    for k in range(4):
        sc.sim.schedule(k * 2.0, sc.send_data, a, z.ip, b"y" * 48)
    sc.run(duration=25.0)
    return fingerprint(sc)


def test_static_scenario_with_loss_is_byte_identical():
    assert_all_identical({c: run_static(*c) for c in COMBOS})


def test_mobile_churn_scenario_is_byte_identical():
    assert_all_identical({c: run_mobile_with_churn(*c) for c in COMBOS})


def test_broadcasts_with_promiscuous_snoops_are_byte_identical():
    """Monitor-mode radios draw loss per overheard unicast; interleaving
    unicasts with floods must keep the single ``phy/loss`` stream -- and
    so every delivery time -- identical across all four paths."""

    def run(index, vectorized):
        sim = Simulator(seed=11)
        medium = WirelessMedium(
            sim, radio_range=100.0, loss_rate=0.3,
            index=index, vectorized=vectorized,
        )
        log = []
        radios = [
            medium.attach((i * 40.0, 0.0), lambda f, i=i: log.append((sim.now, i)))
            for i in range(6)
        ]
        for snoop in (2, 4, 3):  # insertion order must not matter
            medium.set_promiscuous(radios[snoop].link_id)
        for k in range(30):
            medium.unicast(
                Frame(radios[0].link_id, radios[1].link_id, SRC_IP, f"m{k}", 20),
                on_fail=lambda f: log.append((sim.now, "fail")),
            )
            medium.broadcast(
                Frame(radios[k % 6].link_id, BROADCAST_LINK, SRC_IP, f"b{k}", 24)
            )
        sim.run()
        return log, medium.total_frames, medium.dropped_frames

    results = {c: run(*c) for c in COMBOS}
    ref = results[COMBOS[0]]
    for combo, res in results.items():
        assert res == ref, f"{combo} diverges"


@pytest.mark.parametrize("index", ["grid", "naive"])
def test_mobility_invalidates_candidate_cache(index):
    """A radio that moves between broadcasts must be seen at its *new*
    position -- the per-sender range cache may never serve stale
    distances or stale membership."""
    sim = Simulator(seed=5)
    medium = WirelessMedium(sim, radio_range=100.0, index=index, vectorized=True)
    heard = []
    a = medium.attach((0.0, 0.0), lambda f: None)
    b = medium.attach((90.0, 0.0), lambda f: heard.append(sim.now))
    medium.broadcast(Frame(a.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    sim.run()
    assert len(heard) == 1
    # b walks out of range: the cached receiver set must be recomputed
    medium.set_position(b.link_id, (500.0, 0.0))
    medium.broadcast(Frame(a.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    sim.run()
    assert len(heard) == 1
    # ... and back in range, closer: delivered again, at the new distance
    medium.set_position(b.link_id, (10.0, 0.0))
    medium.broadcast(Frame(a.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    sim.run()
    assert len(heard) == 2
    # disabling a receiver invalidates too
    medium.set_enabled(b.link_id, False)
    medium.broadcast(Frame(a.link_id, BROADCAST_LINK, SRC_IP, "x", 10))
    sim.run()
    assert len(heard) == 2


def test_medium_vectorized_spec_round_trips():
    builder = ScenarioBuilder(seed=5).chain(3).medium("naive", vectorized=False)
    spec = builder.to_spec()
    assert spec["medium_index"] == "naive"
    assert spec["medium_vectorized"] is False
    rebuilt = ScenarioBuilder.from_spec(spec)
    assert rebuilt._medium_index == "naive"
    assert rebuilt._medium_vectorized is False
    # the default (vectorized) serializes compactly: no key at all
    default = ScenarioBuilder(seed=5).chain(3)
    assert "medium_vectorized" not in default.to_spec()
    sc = ScenarioBuilder.from_spec(spec).build()
    assert sc.medium.vectorized is False
    assert ScenarioBuilder(seed=1).chain(3).build().medium.vectorized is True
