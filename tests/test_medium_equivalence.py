"""Grid-index / naive-scan equivalence: byte-identical runs.

The spatial-hash fast path must not change *anything* observable: same
seed + same scenario must yield identical metrics summaries, identical
traces, and identical medium counters whichever index computed receiver
sets.  These tests pin that claim across static and random-waypoint
topologies, with loss, churn, and promiscuous (monitor-mode) radios.
"""

import pytest

from repro.ipv6.address import IPv6Address
from repro.phy.medium import BROADCAST_LINK, Frame, WirelessMedium
from repro.phy.mobility import ChurnModel
from repro.scenarios import ScenarioBuilder
from repro.sim.kernel import Simulator

SRC_IP = IPv6Address("fec0::aa")


def fingerprint(scenario) -> dict:
    """Everything observable about a finished run."""
    return {
        "summary": scenario.metrics.summary(),
        "trace": [
            (e.time, e.node, e.kind, e.msg_type, e.detail)
            for e in scenario.trace.events
        ],
        "medium": (
            scenario.medium.total_frames,
            scenario.medium.total_bytes,
            scenario.medium.dropped_frames,
        ),
        "events": scenario.sim.events_executed,
    }


def run_static(index: str) -> dict:
    sc = (
        ScenarioBuilder(seed=42)
        .grid(12, spacing=180.0)
        .radio(250.0, loss_rate=0.1)
        .with_dns()
        .medium(index)
        .build()
    )
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[-1]
    for k in range(5):
        sc.sim.schedule(k * 1.0, sc.send_data, a, z.ip, b"x" * 32)
    sc.run(duration=20.0)
    return fingerprint(sc)


def run_mobile_with_churn(index: str) -> dict:
    sc = (
        ScenarioBuilder(seed=7)
        .uniform(10, (700.0, 700.0))
        .radio(250.0, loss_rate=0.05)
        .with_dns()
        .medium(index)
        .random_waypoint(speed=(2.0, 8.0), pause=2.0)
        .build()
    )
    churn = ChurnModel(
        sc.sim, sc.medium, [h.link_id for h in sc.hosts],
        interval=5.0, min_present=4,
    )
    churn.start()
    sc.bootstrap_all()
    a, z = sc.hosts[0], sc.hosts[1]
    for k in range(4):
        sc.sim.schedule(k * 2.0, sc.send_data, a, z.ip, b"y" * 48)
    sc.run(duration=25.0)
    return fingerprint(sc)


def assert_identical(grid: dict, naive: dict) -> None:
    assert grid["summary"] == naive["summary"]
    assert grid["medium"] == naive["medium"]
    assert grid["events"] == naive["events"]
    assert grid["trace"] == naive["trace"]


def test_static_scenario_with_loss_is_byte_identical():
    assert_identical(run_static("grid"), run_static("naive"))


def test_mobile_churn_scenario_is_byte_identical():
    assert_identical(run_mobile_with_churn("grid"), run_mobile_with_churn("naive"))


def test_unicast_with_promiscuous_snoops_is_byte_identical():
    """Monitor-mode overhearing draws loss per snoop; the draw order (and
    so every delivery) must match between index implementations."""

    def run(index):
        sim = Simulator(seed=11)
        medium = WirelessMedium(
            sim, radio_range=100.0, loss_rate=0.3, index=index
        )
        log = []
        radios = [
            medium.attach((i * 40.0, 0.0), lambda f, i=i: log.append((sim.now, i)))
            for i in range(6)
        ]
        for snoop in (2, 4, 3):  # insertion order must not matter
            medium.set_promiscuous(radios[snoop].link_id)
        for k in range(30):
            medium.unicast(
                Frame(radios[0].link_id, radios[1].link_id, SRC_IP, f"m{k}", 20),
                on_fail=lambda f: log.append((sim.now, "fail")),
            )
        sim.run()
        return log, medium.total_frames, medium.dropped_frames

    assert run("grid") == run("naive")


@pytest.mark.parametrize("index", ["grid", "naive"])
def test_neighbors_matches_brute_force(index):
    sim = Simulator(seed=3)
    medium = WirelessMedium(sim, radio_range=120.0, index=index)
    rng = sim.rng("test/placement")
    handles = [
        medium.attach((rng.uniform(0, 500), rng.uniform(0, 500)), lambda f: None)
        for _ in range(30)
    ]
    medium.set_enabled(handles[4].link_id, False)
    for h in handles:
        expected = [
            o.link_id for o in handles
            if o.link_id != h.link_id and medium.in_range(h.link_id, o.link_id)
        ]
        assert medium.neighbors(h.link_id) == expected
