"""Fault injection (PR 8 tentpole): plan validation, injector behaviour,
graceful degradation metrics, and the determinism matrix.

The two contracts everything here leans on:

* a fault run is byte-identical for a given seed across worker counts
  and batch sizes (all fault randomness lives in dedicated ``faults/*``
  RNG streams, all actions are simulator events);
* a plan with no events is byte-identical to no plan at all -- the
  medium hook is never installed, no stream is consumed, and the
  metrics summary carries no fault columns.
"""

from __future__ import annotations

import pytest

from conftest import campaign_artifacts, chain_scenario, streaming_campaign_dict
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.faults import FaultInjector, FaultPlan
from repro.scenarios.builder import ScenarioBuilder


# -- plan validation ---------------------------------------------------------

def test_plan_accepts_every_kind_and_round_trips():
    events = [
        {"kind": "crash", "at": 1.0, "node": 0, "recover_after": 2.0},
        {"kind": "link_flap", "at": 0.5, "a": 0, "b": 1, "duration": 1.0},
        {"kind": "partition", "at": 2.0, "duration": 3.0, "groups": 2},
        {"kind": "partition", "at": 2.0, "duration": 3.0,
         "members": [[0], [1, 2]], "reprobe_stagger": 0.1},
        {"kind": "loss_surge", "at": 0.0, "duration": 1.0, "loss": 0.5},
        {"kind": "corrupt", "at": 0.0, "duration": 1.0, "rate": 1.0},
    ]
    plan = FaultPlan.from_spec({"events": events})
    assert len(plan.events) == 6 and bool(plan)
    assert FaultPlan.from_spec(plan.to_spec()).to_spec() == plan.to_spec()
    assert not FaultPlan.from_spec({"events": []})


@pytest.mark.parametrize("bad", [
    {"kind": "meteor", "at": 0.0},                          # unknown kind
    {"kind": "crash"},                                       # missing at
    {"kind": "crash", "at": -1.0, "node": 0},                # negative at
    {"kind": "crash", "at": 0.0},                            # missing node
    {"kind": "crash", "at": 0.0, "node": 0, "x": 1},         # unknown key
    {"kind": "partition", "at": 0.0, "duration": 1.0, "groups": 1},
    {"kind": "partition", "at": 0.0, "duration": 1.0, "members": [[0]]},
    {"kind": "loss_surge", "at": 0.0, "duration": 1.0, "loss": 1.0},
    {"kind": "corrupt", "at": 0.0, "duration": 1.0, "rate": 1.5},
    {"kind": "link_flap", "at": 0.0, "a": 0, "b": 1, "duration": -0.1},
])
def test_plan_rejects_malformed_events(bad):
    with pytest.raises(ValueError):
        FaultPlan.from_spec({"events": [bad]})


def test_builder_spec_round_trips_fault_plans():
    spec = chain_scenario(3).faults({"events": [
        {"kind": "crash", "at": 1.0, "node": 1, "recover_after": 2.0},
    ]}).to_spec()
    assert ScenarioBuilder.from_spec(spec).to_spec() == spec
    # an event-free plan is dropped from the spec entirely
    assert "faults" not in chain_scenario(3).faults({"events": []}).to_spec()


# -- crash / recover ---------------------------------------------------------

def test_crash_without_recovery_degrades_availability():
    scenario = chain_scenario(4).faults({"events": [
        {"kind": "crash", "at": 0.5, "node": 1},
    ]}).build()
    scenario.bootstrap_all()
    assert scenario.faults is not None and scenario.faults.armed
    scenario.run(duration=10.0)
    stats = scenario.faults.stats()
    assert stats["fault_crashes"] == 1 and stats["fault_recoveries"] == 0
    assert stats["availability"] < 1.0
    assert scenario.hosts[1].bootstrap.state == "idle"  # still dark
    summary = scenario.metrics.summary()
    assert summary["fault_crashes"] == 1  # columns merged into the summary


def test_crash_then_recover_re_dads_and_measures_recovery_time():
    scenario = chain_scenario(4).faults({"events": [
        {"kind": "crash", "at": 0.5, "node": 1, "recover_after": 2.0},
    ]}).build()
    scenario.bootstrap_all()
    crashed = scenario.hosts[1]
    old_ip = crashed.ip
    scenario.run(duration=15.0)
    assert crashed.bootstrap.state == "configured"  # cold boot completed
    assert crashed.ip is not None and crashed.ip != old_ip  # fresh identity
    stats = scenario.faults.stats()
    assert stats["fault_crashes"] == 1 and stats["fault_recoveries"] == 1
    assert stats["re_dad_count"] >= 1
    assert stats["recovery_time_mean"] > 0.0
    assert stats["recovery_time_max"] >= stats["recovery_time_mean"]
    assert 0.0 < stats["availability"] < 1.0


# -- partition / heal --------------------------------------------------------

def test_partition_suppresses_cross_group_traffic_then_reprobes_on_heal():
    scenario = chain_scenario(3).faults({"events": [
        {"kind": "partition", "at": 0.5, "duration": 4.0,
         "members": [[0], [1, 2]]},
    ]}).build()
    scenario.bootstrap_all()
    n0, n1 = scenario.hosts[0], scenario.hosts[1]
    # inside the window: n0 and n1 are in different groups, so route
    # discovery across the cut dies in the medium hook
    scenario.run(duration=1.0)
    scenario.send_data(n0, n1.ip, b"across the cut")
    scenario.run(duration=2.0)
    assert scenario.medium.suppressed_frames > 0
    # after the heal every configured host re-probes its address
    scenario.run(duration=10.0)
    stats = scenario.faults.stats()
    assert stats["re_dad_count"] == 3
    assert all(h.bootstrap.state == "configured" for h in scenario.hosts)
    # healed network carries traffic again
    before = scenario.metrics.summary()["data_delivered"]
    scenario.send_data(n0, n1.ip, b"after the heal")
    scenario.run(duration=5.0)
    assert scenario.metrics.summary()["data_delivered"] == before + 1


def test_seeded_partition_assignment_is_deterministic():
    def group_sizes():
        scenario = chain_scenario(4).faults({"events": [
            {"kind": "partition", "at": 0.5, "duration": 2.0, "groups": 2,
             "reprobe": False},
        ]}).build()
        scenario.bootstrap_all()
        scenario.run(duration=1.0)  # inside the window
        groups = scenario.faults._groups
        assert groups is not None
        return sorted(groups.values())

    assert group_sizes() == group_sizes()


# -- corruption --------------------------------------------------------------

def test_corruption_flips_signatures_and_the_crypto_layer_rejects_them():
    scenario = chain_scenario(3).faults({"events": [
        {"kind": "corrupt", "at": 0.5, "duration": 5.0, "rate": 1.0},
    ]}).build()
    scenario.bootstrap_all()
    rejected_before = scenario.metrics.summary()["verdicts_rejected"]
    scenario.run(duration=1.0)
    scenario.send_data(scenario.hosts[0], scenario.hosts[1].ip, b"x")
    scenario.run(duration=3.0)
    stats = scenario.faults.stats()
    assert stats["frames_corrupted"] > 0
    assert scenario.metrics.summary()["verdicts_rejected"] > rejected_before


# -- faults-off byte-identity ------------------------------------------------

def test_event_free_plan_is_identical_to_no_plan():
    def run(plan):
        builder = chain_scenario(3)
        if plan is not None:
            builder = builder.faults(plan)
        scenario = builder.build()
        scenario.bootstrap_all()
        scenario.send_data(scenario.hosts[0], scenario.hosts[2].ip, b"pkt")
        scenario.run(duration=5.0)
        return scenario, scenario.metrics.summary()

    bare_scenario, bare = run(None)
    empty_scenario, empty = run({"events": []})
    assert empty_scenario.faults is None  # not even constructed
    assert bare == empty  # summaries identical, no fault columns in either
    assert "faults_injected" not in bare


# -- determinism matrix ------------------------------------------------------

def faulted_campaign_dict(**overrides) -> dict:
    """Streaming harness campaign with a faults on/off axis: every run
    matrix point executes once with no faults and once under a
    crash + partition-and-heal plan."""
    data = streaming_campaign_dict(
        name="chaos",
        replicates=2,
        duration=9.0,
        axes={
            "router": ["secure"],
            "faults": [
                {"events": []},
                {"events": [
                    {"kind": "crash", "at": 0.5, "node": 1,
                     "recover_after": 2.0},
                    {"kind": "partition", "at": 4.0, "duration": 1.5,
                     "members": [[0], [1, 2]]},
                ]},
            ],
        },
    )
    data.update(overrides)
    return data


@pytest.mark.parametrize("workers,batch_size", [(4, 2), (1, 3)])
def test_fault_campaigns_are_byte_identical_across_execution(
    tmp_path, workers, batch_size
):
    """workers=1/batch=1 is the reference; every other execution shape
    must produce byte-identical artifacts, faults and all."""
    spec = CampaignSpec.from_dict(faulted_campaign_dict())
    ref_dir, alt_dir = tmp_path / "ref", tmp_path / "alt"
    ref_records = run_campaign(spec, workers=1, batch_size=1, out_dir=ref_dir)
    run_campaign(spec, workers=workers, batch_size=batch_size, out_dir=alt_dir)
    assert campaign_artifacts(ref_dir) == campaign_artifacts(alt_dir)
    # the faulted half of the matrix really degraded and really recovered
    faulted = [r for r in ref_records if r["params"]["faults"]["events"]]
    assert faulted and all(r["status"] == "ok" for r in ref_records)
    for record in faulted:
        summary = record["summary"]
        assert summary["fault_crashes"] == 1
        assert summary["availability"] < 1.0
        assert summary["re_dad_count"] >= 1
    # the fault-free half carries no fault columns at all
    for record in ref_records:
        if not record["params"]["faults"]["events"]:
            assert "faults_injected" not in record["summary"]
