"""ScenarioBuilder <-> plain-dict spec round-trips.

Campaign files store scenarios as JSON, so every builder option must
serialize (``to_spec``), deserialize (``from_spec``), and rebuild the
*same* network deterministically.
"""

import json

import pytest

from repro.routing import EndpointOnlyRouter, PlainDSRRouter, SecureDSRRouter
from repro.scenarios import ScenarioBuilder
from repro.scenarios.builder import router_class, router_name


def _assert_round_trip(builder: ScenarioBuilder) -> dict:
    spec = builder.to_spec()
    # JSON-clean
    assert json.loads(json.dumps(spec)) == spec
    rebuilt = ScenarioBuilder.from_spec(spec)
    assert rebuilt.to_spec() == spec
    return spec


def _positions_of(builder: ScenarioBuilder):
    scenario = builder.build()
    return [tuple(node.position) for node in scenario.all_nodes]


@pytest.mark.parametrize(
    "shape",
    [
        lambda b: b.chain(4, spacing=210.0),
        lambda b: b.grid(9, spacing=170.0),
        lambda b: b.uniform(6, (600.0, 600.0)),
        lambda b: b.uniform(6, (600.0, 600.0), require_connected=False),
        lambda b: b.uniform_density(12, density=6.0),
        lambda b: b.clustered(8, 2, (500.0, 500.0), cluster_std=40.0),
        lambda b: b.positions([(0.0, 0.0), (100.0, 0.0), (200.0, 50.0)]),
    ],
    ids=["chain", "grid", "uniform", "uniform-loose", "uniform-density",
         "clustered", "positions"],
)
def test_every_topology_round_trips(shape):
    builder = shape(ScenarioBuilder(seed=13))
    spec = _assert_round_trip(builder)
    assert _positions_of(ScenarioBuilder.from_spec(spec)) == _positions_of(builder)


@pytest.mark.parametrize(
    "cls,name",
    [
        (SecureDSRRouter, "secure"),
        (PlainDSRRouter, "plain"),
        (EndpointOnlyRouter, "endpoint"),
    ],
)
def test_every_router_round_trips(cls, name):
    assert router_name(cls) == name
    assert router_class(name) is cls
    builder = ScenarioBuilder(seed=1).chain(3).router(cls)
    spec = _assert_round_trip(builder)
    assert spec["router"] == name
    rebuilt = ScenarioBuilder.from_spec(spec).build()
    assert all(type(h.router) is cls for h in rebuilt.hosts)


def test_medium_index_round_trips():
    builder = ScenarioBuilder(seed=5).chain(3).medium("naive")
    spec = _assert_round_trip(builder)
    assert spec["medium_index"] == "naive"
    assert ScenarioBuilder.from_spec(spec).build().medium.index_kind == "naive"

    # the default is sparse: grid-indexed specs carry no key and old
    # (pre-fast-path) specs keep parsing
    default = ScenarioBuilder(seed=5).chain(3)
    assert "medium_index" not in default.to_spec()
    assert default.build().medium.index_kind == "grid"
    with pytest.raises(ValueError):
        ScenarioBuilder(seed=5).medium("octree")


def test_medium_knobs_compose_in_either_order():
    """Setting one medium knob must not clobber the other, whichever
    order the calls arrive in."""
    for builder in (
        ScenarioBuilder(seed=5).chain(3).medium(vectorized=False).medium("naive"),
        ScenarioBuilder(seed=5).chain(3).medium("naive").medium(vectorized=False),
    ):
        spec = builder.to_spec()
        assert spec["medium_index"] == "naive"
        assert spec["medium_vectorized"] is False


def test_uniform_density_scales_area_with_n():
    """Same density, more nodes => bigger area, roughly constant degree."""
    small = ScenarioBuilder(seed=9).uniform_density(20, density=8.0).build()
    large = ScenarioBuilder(seed=9).uniform_density(80, density=8.0).build()

    def mean_degree(sc):
        degrees = [len(sc.medium.neighbors(h.link_id)) for h in sc.hosts]
        return sum(degrees) / len(degrees)

    def extent(sc):
        xs = [h.position[0] for h in sc.hosts]
        return max(xs) - min(xs)

    assert extent(large) > 1.5 * extent(small)
    # degree concentrates around the requested density (loose bounds;
    # it's a random placement)
    assert 3.0 < mean_degree(small) < 16.0
    assert 3.0 < mean_degree(large) < 16.0


def test_unregistered_router_serializes_by_dotted_path():
    class WeirdRouter(SecureDSRRouter):
        pass

    # a module-level class round-trips via module:Qualname; this local
    # class at least produces a stable name
    name = router_name(PlainDSRRouter)
    assert name == "plain"
    dotted = "repro.routing.secure_dsr:SecureDSRRouter"
    assert router_class(dotted) is SecureDSRRouter
    with pytest.raises(ValueError):
        router_class("no-such-router")


def test_mobility_dns_config_round_trip():
    builder = (
        ScenarioBuilder(seed=3)
        .grid(9)
        .radio(radio_range=220.0, loss_rate=0.1)
        .config(hostile_mode=True, dad_timeout=1.5)
        .router(PlainDSRRouter, node_name="n2")
        .with_dns((100.0, 100.0))
        .random_waypoint(speed=(0.5, 2.0), pause=7.5)
    )
    spec = _assert_round_trip(builder)
    assert spec["config"] == {"hostile_mode": True, "dad_timeout": 1.5}
    assert spec["mobility"] == {"kind": "rwp", "speed": [0.5, 2.0], "pause": 7.5}
    assert spec["dns"] == {"position": [100.0, 100.0]}
    rebuilt = ScenarioBuilder.from_spec(spec).build()
    assert rebuilt.dns_node is not None
    assert rebuilt.hosts[0].config.hostile_mode is True
    assert type(rebuilt.host("n2").router) is PlainDSRRouter


def test_dns_without_position_round_trips():
    spec = _assert_round_trip(ScenarioBuilder(seed=2).chain(3).with_dns())
    assert spec["dns"] == {"position": None}
    assert ScenarioBuilder.from_spec(spec).build().dns_node is not None


def test_from_spec_rejects_typoed_nested_keys():
    # a misspelled campaign axis path must fail loudly, not silently
    # sweep nothing
    with pytest.raises(ValueError, match="radio"):
        ScenarioBuilder.from_spec(
            {"topology": {"kind": "chain", "n": 3}, "radio": {"loss": 0.1}}
        )
    with pytest.raises(ValueError, match="topology"):
        ScenarioBuilder.from_spec(
            {"topology": {"kind": "chain", "n": 3, "spacin": 100.0}}
        )
    with pytest.raises(ValueError, match="dns"):
        ScenarioBuilder.from_spec(
            {"topology": {"kind": "chain", "n": 3}, "dns": {"pos": [0, 0]}}
        )
    with pytest.raises(ValueError, match="mobility"):
        ScenarioBuilder.from_spec(
            {"topology": {"kind": "chain", "n": 3},
             "mobility": {"kind": "rwp", "sped": [1, 2]}}
        )


def test_to_spec_is_detached_from_builder_state():
    builder = ScenarioBuilder(seed=1).positions([(0.0, 0.0), (100.0, 0.0)])
    spec = builder.to_spec()
    spec["topology"]["points"].append([900.0, 0.0])
    assert len(builder.to_spec()["topology"]["points"]) == 2
    assert len(builder.build().hosts) == 2


def test_from_spec_rejects_garbage():
    with pytest.raises(ValueError):
        ScenarioBuilder.from_spec({"topology": {"kind": "chain", "n": 3}, "bogus": 1})
    with pytest.raises(ValueError):
        ScenarioBuilder.from_spec({"seed": 1})  # no topology
    with pytest.raises(ValueError):
        ScenarioBuilder.from_spec({"topology": {"kind": "moebius", "n": 3}})
    with pytest.raises(ValueError):
        ScenarioBuilder.from_spec(
            {"topology": {"kind": "chain", "n": 3}, "mobility": {"kind": "teleport"}}
        )


def test_same_spec_same_seed_builds_identical_scenario():
    spec = {
        "seed": 21,
        "topology": {"kind": "uniform", "n": 8, "area": [700.0, 700.0],
                     "require_connected": True},
        "radio": {"range": 260.0, "loss_rate": 0.0},
        "router": "secure",
        "dns": {"position": None},
    }
    a = ScenarioBuilder.from_spec(spec)
    b = ScenarioBuilder.from_spec(spec)
    assert _positions_of(a) == _positions_of(b)
