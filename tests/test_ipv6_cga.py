"""Unit tests for CGA generation/verification and the Figure 1 layout."""

import pytest

from repro.crypto.backend import get_backend
from repro.crypto.hashes import cga_hash
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import CGAParams, cga_address, generate_cga, verify_cga
from repro.ipv6.prefixes import (
    DNS_ANYCAST_ADDRESSES,
    SITE_LOCAL_PREFIX_BITS,
    is_dns_anycast,
    is_site_local,
    site_local_from_interface_id,
    split_fields,
)
from repro.sim.rng import SimRNG


@pytest.fixture(scope="module")
def key():
    return get_backend("simsig").generate_keypair(b"cga-tests").public


def test_figure1_field_layout(key):
    """Fig 1: 10-bit fec0 prefix | 38 zero bits | 16-bit subnet | 64-bit hash."""
    addr = cga_address(key, rn=77)
    prefix, zeros, subnet, iface = split_fields(addr)
    assert prefix == SITE_LOCAL_PREFIX_BITS == 0b1111111011
    assert zeros == 0
    assert subnet == 0
    assert iface == cga_hash(key.encode(), 77)


def test_subnet_id_field(key):
    addr = cga_address(key, rn=77, subnet_id=0xBEEF)
    assert addr.subnet_id == 0xBEEF
    assert is_site_local(addr)


def test_generate_and_verify_roundtrip(key):
    rng = SimRNG(1, "t")
    addr, params = generate_cga(key, rng)
    assert verify_cga(addr, params)
    assert params.public_key == key


def test_generation_deterministic_per_stream(key):
    a1, p1 = generate_cga(key, SimRNG(5, "s"))
    a2, p2 = generate_cga(key, SimRNG(5, "s"))
    assert a1 == a2 and p1.rn == p2.rn


def test_fresh_rn_changes_address(key):
    rng = SimRNG(1, "t")
    a1, _ = generate_cga(key, rng)
    a2, _ = generate_cga(key, rng)
    assert a1 != a2


def test_verify_rejects_wrong_rn(key):
    addr, params = generate_cga(key, SimRNG(1, "t"))
    bad = CGAParams(key, (params.rn + 1) % (1 << 64))
    assert not verify_cga(addr, bad)


def test_verify_rejects_wrong_key(key):
    other = get_backend("simsig").generate_keypair(b"other").public
    addr, params = generate_cga(key, SimRNG(1, "t"))
    assert not verify_cga(addr, CGAParams(other, params.rn))


def test_verify_rejects_non_site_local(key):
    addr, params = generate_cga(key, SimRNG(1, "t"))
    moved = IPv6Address((0x2001 << 112) | addr.interface_id)  # global prefix
    assert not verify_cga(moved, params)


def test_params_reject_bad_rn(key):
    with pytest.raises(ValueError):
        CGAParams(key, -1)
    with pytest.raises(ValueError):
        CGAParams(key, 1 << 64)


def test_site_local_from_interface_id_validation():
    with pytest.raises(ValueError):
        site_local_from_interface_id(1 << 64)
    with pytest.raises(ValueError):
        site_local_from_interface_id(0, subnet_id=1 << 16)


def test_dns_anycast_addresses():
    assert [str(a) for a in DNS_ANYCAST_ADDRESSES] == [
        "fec0:0:0:ffff::1",
        "fec0:0:0:ffff::2",
        "fec0:0:0:ffff::3",
    ]
    for a in DNS_ANYCAST_ADDRESSES:
        assert is_site_local(a)
        assert is_dns_anycast(a)
    assert not is_dns_anycast(IPv6Address("fec0::1"))


def test_rsa_keys_work_for_cga():
    rsa_key = get_backend("rsa").generate_keypair(b"rsa-cga").public
    addr, params = generate_cga(rsa_key, SimRNG(2, "r"))
    assert verify_cga(addr, params)
