"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.sim.rng import SimRNG, derive_seed, spawn_seed


def test_same_seed_same_stream_reproduces():
    a = SimRNG(42, "x")
    b = SimRNG(42, "x")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_streams_are_independent():
    a = SimRNG(42, "x")
    b = SimRNG(42, "y")
    assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]


def test_different_seeds_differ():
    assert SimRNG(1, "x").random() != SimRNG(2, "x").random()


def test_derive_seed_stable():
    assert derive_seed(7, "abc") == derive_seed(7, "abc")
    assert derive_seed(7, "abc") != derive_seed(7, "abd")


def test_adding_stream_does_not_perturb_existing():
    a1 = SimRNG(9, "a")
    seq1 = [a1.random() for _ in range(5)]
    # Interleave creation/draws on another stream.
    a2 = SimRNG(9, "a")
    other = SimRNG(9, "b")
    seq2 = []
    for _ in range(5):
        other.random()
        seq2.append(a2.random())
    assert seq1 == seq2


def test_uniform_bounds():
    rng = SimRNG(1)
    for _ in range(100):
        v = rng.uniform(2.0, 3.0)
        assert 2.0 <= v < 3.0


def test_randint_inclusive_bounds():
    rng = SimRNG(1)
    values = {rng.randint(0, 3) for _ in range(200)}
    assert values == {0, 1, 2, 3}


def test_expovariate_positive_and_mean():
    rng = SimRNG(1)
    samples = [rng.expovariate(2.0) for _ in range(2000)]
    assert all(s >= 0 for s in samples)
    assert abs(np.mean(samples) - 0.5) < 0.05


def test_expovariate_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        SimRNG(1).expovariate(0.0)


def test_choice_and_empty_choice():
    rng = SimRNG(1)
    assert rng.choice([5]) == 5
    with pytest.raises(ValueError):
        rng.choice([])


def test_sample_distinct():
    rng = SimRNG(1)
    out = rng.sample(list(range(10)), 5)
    assert len(out) == len(set(out)) == 5
    with pytest.raises(ValueError):
        rng.sample([1, 2], 3)


def test_shuffle_permutes_in_place():
    rng = SimRNG(1)
    lst = list(range(20))
    rng.shuffle(lst)
    assert sorted(lst) == list(range(20))


def test_nonce_bits():
    rng = SimRNG(1)
    for _ in range(50):
        assert 0 <= rng.nonce(64) < (1 << 64)
    with pytest.raises(ValueError):
        rng.nonce(63)


def test_jitter_stays_nonnegative_and_bounded():
    rng = SimRNG(1)
    for _ in range(100):
        v = rng.jitter(10.0, 0.2)
        assert 8.0 <= v <= 12.0
    assert rng.jitter(0.0) == 0.0


def test_spawn_derives_independent_child():
    parent = SimRNG(3, "root")
    child = parent.spawn("kid")
    assert child.stream == "root/kid"
    assert SimRNG(3, "root/kid").random() == pytest.approx(child.random(), abs=0)


def test_simulator_rng_streams_cached():
    sim = Simulator(seed=5)
    assert sim.rng("a") is sim.rng("a")
    assert sim.rng("a") is not sim.rng("b")


def test_uniform_array_shape_and_bounds():
    rng = SimRNG(2)
    arr = rng.uniform_array(0.0, 5.0, (10, 2))
    assert arr.shape == (10, 2)
    assert (arr >= 0).all() and (arr < 5).all()


def test_negative_master_seed_rejected():
    with pytest.raises(ValueError):
        SimRNG(-1)


def test_spawn_seed_reproducible_and_distinct():
    # reproducible: depends only on (master_seed, run_index)
    assert spawn_seed(7, 0) == spawn_seed(7, 0)
    # distinct across indices and across master seeds
    seeds = [spawn_seed(7, i) for i in range(64)]
    assert len(set(seeds)) == 64
    assert spawn_seed(8, 0) != spawn_seed(7, 0)
    # each spawned seed is a usable SimRNG master seed
    assert all(s >= 0 for s in seeds)
    with pytest.raises(ValueError):
        spawn_seed(7, -1)


def test_spawn_seed_streams_independent_but_reproducible():
    draws_a = [SimRNG(spawn_seed(11, 0)).random() for _ in range(5)]
    draws_b = [SimRNG(spawn_seed(11, 1)).random() for _ in range(5)]
    assert draws_a != draws_b
    assert draws_a == [SimRNG(spawn_seed(11, 0)).random() for _ in range(5)]


def test_random_batch_is_stream_identical_to_scalar_draws():
    """The vectorised-broadcast contract: a batched draw consumes the
    PCG64 stream exactly like the same number of scalar draws."""
    scalar, batched = SimRNG(13, "loss"), SimRNG(13, "loss")
    assert scalar.random_batch(0).size == 0  # zero-size draw consumes nothing
    expected = [scalar.random() for _ in range(100)]
    got = []
    for size in (3, 0, 17, 1, 50, 29):  # mixed batch sizes, zero included
        got.extend(float(x) for x in batched.random_batch(size))
    assert got == expected
    # ... and switching back to scalar continues the same stream
    assert batched.random() == scalar.random()


def test_random_batch_shape_bounds_and_validation():
    rng = SimRNG(4, "b")
    arr = rng.random_batch(1000)
    assert arr.shape == (1000,) and arr.dtype == np.float64
    assert (arr >= 0.0).all() and (arr < 1.0).all()
    with pytest.raises(ValueError):
        rng.random_batch(-1)
