"""Unit tests for credit management and credit-aware route selection."""

import pytest

from repro.credit.manager import CreditManager
from repro.credit.policy import RoutePolicy, has_suspect, route_score, select_route
from repro.ipv6.address import IPv6Address

A = IPv6Address("fec0::a")
B = IPv6Address("fec0::b")
C = IPv6Address("fec0::c")
D = IPv6Address("fec0::d")


def test_unknown_host_gets_initial_credit():
    cm = CreditManager(initial=1.0)
    assert cm.credit(A) == 1.0
    assert cm.known_hosts() == []


def test_reward_increments_by_one():
    cm = CreditManager(initial=1.0, reward=1.0)
    cm.reward(A)
    cm.reward(A)
    assert cm.credit(A) == 3.0
    assert cm.rewards_granted == 2


def test_reward_route_rewards_every_hop():
    cm = CreditManager()
    cm.reward_route((A, B, C))
    assert cm.credit(A) == cm.credit(B) == cm.credit(C) == 2.0


def test_penalty_is_very_large():
    cm = CreditManager(initial=1.0, penalty=50.0)
    for _ in range(10):
        cm.reward(A)
    cm.penalize(A)
    assert cm.credit(A) == 11.0 - 50.0
    assert cm.is_suspect(A)
    assert cm.penalties_applied == 1


def test_new_identity_resets_to_low_initial():
    """The identity-churn defence: a fresh IP starts at the floor."""
    cm = CreditManager(initial=1.0)
    cm.penalize(A)
    fresh = IPv6Address("fec0::99")  # the attacker's new CGA
    assert cm.credit(fresh) == 1.0
    assert not cm.is_suspect(fresh)
    assert cm.is_suspect(A)


def test_constructor_validation():
    with pytest.raises(ValueError):
        CreditManager(initial=-1.0)
    with pytest.raises(ValueError):
        CreditManager(reward=0.0)
    with pytest.raises(ValueError):
        CreditManager(penalty=0.0)


def test_rerr_window_tracking():
    cm = CreditManager(rerr_window=10.0, rerr_threshold=3)
    assert not cm.record_rerr(A, now=0.0)
    assert not cm.record_rerr(A, now=1.0)
    assert cm.record_rerr(A, now=2.0)  # 3rd within window
    assert cm.rerr_count(A, now=2.0) == 3


def test_rerr_window_slides():
    cm = CreditManager(rerr_window=10.0, rerr_threshold=3)
    cm.record_rerr(A, now=0.0)
    cm.record_rerr(A, now=1.0)
    assert not cm.record_rerr(A, now=50.0)  # old reports aged out
    assert cm.rerr_count(A, now=50.0) == 1


def test_route_score_min_and_mean():
    cm = CreditManager(initial=1.0)
    cm.reward(A)  # A: 2.0, B: 1.0
    assert route_score(cm, (A, B), "min") == 1.0
    assert route_score(cm, (A, B), "mean") == 1.5
    assert route_score(cm, (), "min") == float("inf")


def test_policy_validation():
    with pytest.raises(ValueError):
        RoutePolicy(metric="median")


def test_select_route_normal_prefers_shortest():
    cm = CreditManager()
    cm.reward(A)  # longer route has better credit
    policy = RoutePolicy(hostile_mode=False)
    assert select_route(cm, [(A, B), (C,)], policy) == (C,)


def test_select_route_normal_credit_breaks_ties():
    cm = CreditManager()
    cm.reward(A)
    policy = RoutePolicy(hostile_mode=False)
    assert select_route(cm, [(B,), (A,)], policy) == (A,)


def test_select_route_hostile_prefers_credit():
    cm = CreditManager()
    cm.reward(C)  # C proved itself
    policy = RoutePolicy(hostile_mode=True)
    # Longer route through trusted C beats shorter route through unknown A.
    assert select_route(cm, [(A,), (C, B)], policy) == (A,)  # min(C,B)=1 == A: tie -> shorter
    cm.reward(B)
    assert select_route(cm, [(A,), (C, B)], policy) == (C, B)


def test_select_route_avoids_suspects_when_possible():
    cm = CreditManager()
    cm.penalize(A)
    for policy in (RoutePolicy(hostile_mode=False), RoutePolicy(hostile_mode=True)):
        assert select_route(cm, [(A,), (B, C)], policy) == (B, C)


def test_select_route_returns_least_bad_when_all_suspect():
    cm = CreditManager()
    cm.penalize(A)
    cm.penalize(B)
    cm.penalize(B)  # B worse than A
    policy = RoutePolicy(hostile_mode=True)
    assert select_route(cm, [(A,), (B,)], policy) == (A,)


def test_select_route_empty():
    assert select_route(CreditManager(), [], RoutePolicy()) is None


def test_has_suspect():
    cm = CreditManager()
    assert not has_suspect(cm, (A, B))
    cm.penalize(B)
    assert has_suspect(cm, (A, B))
