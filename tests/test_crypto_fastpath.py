"""Unit tests for the crypto fast path (PR 7).

Layer by layer: the scenario-wide :class:`SharedVerifyCache`, the
process-wide :class:`KeypairPool`, backend ``verify_batch`` /
``adopt_keypair`` / ``reset``, :meth:`Node.verify_batch`'s replay
equivalence, :func:`verify_identity_batch` first-failure semantics, and
the satellite-1 regression: per-scenario backend instances keep a reused
worker's state bounded and isolated (the :func:`get_backend` registry
singleton used to accumulate simsig oracle entries and counters across
every run in a process).
"""

import pytest

from repro.core.config import NodeConfig
from repro.crypto.backend import create_backend, get_backend
from repro.crypto.keys import DEFAULT_KEYPAIR_POOL, KeypairPool
from repro.crypto.simsig import SimSigBackend
from repro.crypto.verify_cache import SharedVerifyCache
from repro.bootstrap.verifier import verify_identity, verify_identity_batch
from repro.ipv6.cga import generate_cga
from repro.scenarios import ScenarioBuilder
from repro.sim.rng import SimRNG


def two_node_scenario(seed=3, **config):
    return (
        ScenarioBuilder(seed=seed)
        .positions([(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)])
        .radio(250.0)
        .config(**config)
        .build()
    )


# -- SharedVerifyCache ----------------------------------------------------

def test_shared_cache_lookup_store_peek_and_counters():
    cache = SharedVerifyCache(capacity=2)
    key = ("simsig", "pk", b"msg", b"sig")
    assert cache.lookup(key, "n0") is None
    assert cache.misses == 1
    cache.store(key, True)
    assert cache.peek(key) is True  # peek never counts
    assert cache.hits == 0
    assert cache.lookup(key, "n1") is True
    assert cache.hits == 1 and cache.hits_by_node == {"n1": 1}
    # negative verdicts are cached too (same-triple determinism)
    bad = ("simsig", "pk", b"msg", b"forged")
    cache.store(bad, False)
    assert cache.lookup(bad) is False
    assert len(cache) == 2


def test_shared_cache_bounded_lru_eviction():
    cache = SharedVerifyCache(capacity=2)
    cache.store(("b", 1), True)
    cache.store(("b", 2), True)
    cache.lookup(("b", 1))  # refresh 1 -> 2 is now LRU
    cache.store(("b", 3), True)
    assert cache.evictions == 1
    assert cache.peek(("b", 2)) is None
    assert cache.peek(("b", 1)) is True
    stats = cache.stats()
    assert stats["size"] == 2 and stats["capacity"] == 2
    with pytest.raises(ValueError):
        SharedVerifyCache(capacity=0)


# -- KeypairPool ----------------------------------------------------------

def test_keypair_pool_returns_exactly_the_derived_pair():
    pool = KeypairPool(capacity=4)
    backend = SimSigBackend()
    pair = pool.get(backend, b"seed-a")
    assert pool.misses == 1
    assert pair == backend.generate_keypair(b"seed-a")
    assert pool.get(backend, b"seed-a") is pair
    assert pool.hits == 1


def test_keypair_pool_hit_adopts_into_fresh_backend():
    pool = KeypairPool()
    first = SimSigBackend()
    pair = pool.get(first, b"seed-x")
    sig = first.sign(pair.private, b"hello")
    # A brand-new backend instance has no oracle entry for this key until
    # the pool hit adopts the pair into it.
    second = SimSigBackend()
    assert second.verify(pair.public, b"hello", sig) is False
    assert pool.get(second, b"seed-x") is pair
    assert second.verify(pair.public, b"hello", sig) is True


def test_keypair_pool_bounded_lru():
    pool = KeypairPool(capacity=2)
    backend = SimSigBackend()
    pool.get(backend, b"1")
    pool.get(backend, b"2")
    pool.get(backend, b"1")  # refresh
    pool.get(backend, b"3")  # evicts "2"
    assert pool.evictions == 1
    assert len(pool) == 2
    pool.get(backend, b"2")
    assert pool.misses == 4  # "2" had to be re-derived


# -- backend lifecycle ----------------------------------------------------

def test_create_backend_returns_fresh_instances():
    a, b = create_backend("simsig"), create_backend("simsig")
    assert a is not b
    a.generate_keypair(b"s")
    assert len(a._oracle) == 1 and len(b._oracle) == 0
    assert a is not get_backend("simsig")
    with pytest.raises(KeyError):
        create_backend("nope")


def test_adopt_keypair_rejects_wrong_backend():
    pair = create_backend("simsig").generate_keypair(b"s")
    with pytest.raises(ValueError):
        create_backend("rsa").adopt_keypair(pair)


def test_backend_reset_clears_state():
    sim = SimSigBackend()
    pair = sim.generate_keypair(b"s")
    sim.verify(pair.public, b"m", sim.sign(pair.private, b"m"))
    sim.reset()
    assert sim.signs == 0 and sim.verifies == 0 and not sim._oracle
    rsa = create_backend("rsa")
    rsa.signs = 3
    rsa.reset()
    assert rsa.signs == 0 and rsa.verifies == 0


def test_simsig_verify_batch_matches_per_item_verify():
    backend = SimSigBackend()
    kp1 = backend.generate_keypair(b"one")
    kp2 = backend.generate_keypair(b"two")
    foreign = SimSigBackend().generate_keypair(b"elsewhere")
    items = [
        (kp1.public, b"m1", backend.sign(kp1.private, b"m1")),      # valid
        (kp2.public, b"m2", backend.sign(kp1.private, b"m2")),      # wrong key
        (kp1.public, b"m3", b"short"),                              # bad length
        (foreign.public, b"m4", b"x" * 16),                         # unknown oracle key
        (kp2.public, b"m5", backend.sign(kp2.private, b"m5")),      # valid
    ]
    expected = [backend.verify(*item) for item in items]
    before = backend.verifies
    assert backend.verify_batch(items) == expected == [True, False, False, False, True]
    assert backend.verifies == before + len(items)


# -- Node.verify through the shared cache ---------------------------------

def test_shared_hit_replays_observables_and_skips_backend():
    sc = two_node_scenario()
    a, b = sc.hosts[0], sc.hosts[1]
    payload = b"the payload"
    sig = a.sign(payload)
    backend = a.backend
    assert backend is b.backend  # one scenario instance per backend name

    computed_before = backend.verifies
    assert a.verify(a.public_key, payload, sig) is True
    assert backend.verifies == computed_before + 1
    debt_before = b._crypto_debt
    verify_ops_before = sc.metrics.crypto_ops["simsig.verify"]
    # b never saw this triple: its LRU misses, but the shared cache hits
    # -- same metric op and same debt as a real verify, no backend call.
    assert b.verify(a.public_key, payload, sig) is True
    assert backend.verifies == computed_before + 1
    assert sc.metrics.crypto_ops["simsig.verify"] == verify_ops_before + 1
    assert b._crypto_debt == debt_before + backend.op_cost("verify")
    assert sc.ctx.verify_cache.hits_by_node == {b.name: 1}
    # b's own LRU now holds it: the next check is a plain cached hit.
    cached_before = sc.metrics.crypto_ops["simsig.verify_cached"]
    assert b.verify(a.public_key, payload, sig) is True
    assert sc.metrics.crypto_ops["simsig.verify_cached"] == cached_before + 1


def test_shared_cache_disabled_by_flag_and_by_zero_size():
    for cfg in ({"crypto_shared_cache": False}, {"shared_verify_cache_size": 0}):
        sc = two_node_scenario(**cfg)
        a, b = sc.hosts[0], sc.hosts[1]
        sig = a.sign(b"p")
        assert a.verify(a.public_key, b"p", sig) is True
        before = a.backend.verifies
        assert b.verify(a.public_key, b"p", sig) is True
        assert a.backend.verifies == before + 1  # really recomputed
        assert sc.ctx.verify_cache is None


def test_cached_negative_verdict_cannot_mask_a_different_signature():
    """A forged triple caches False; the *valid* triple is a different
    key entirely and must still verify True."""
    sc = two_node_scenario()
    a, b = sc.hosts[0], sc.hosts[1]
    payload = b"claim"
    good = a.sign(payload)
    forged = bytes(16)
    assert a.verify(a.public_key, payload, forged) is False
    assert b.verify(a.public_key, payload, forged) is False  # shared hit
    assert b.verify(a.public_key, payload, good) is True
    assert a.verify(a.public_key, payload, good) is True


# -- Node.verify_batch ----------------------------------------------------

def _metrics_state(sc, node):
    return (
        dict(sc.metrics.crypto_ops),
        node._crypto_debt,
        list(node._verify_cache.items()),
    )


@pytest.mark.parametrize("flags", [
    {},
    {"crypto_shared_cache": False},
    {"verify_cache_size": 0},
    {"verify_cache_size": 0, "crypto_shared_cache": False},
])
def test_node_verify_batch_equals_sequential_replay(flags):
    """Batch path vs sequential path on twin scenarios: identical
    verdicts, metric ops, crypto debt, and LRU contents -- including the
    stop-at-first-failure truncation and duplicate items."""
    sc_seq = two_node_scenario(crypto_batch_verify=False, **flags)
    sc_bat = two_node_scenario(crypto_batch_verify=True, **flags)

    def build_items(sc):
        a, b, c = sc.hosts
        items = [
            (a.public_key, b"m1", a.sign(b"m1")),
            (b.public_key, b"m2", b.sign(b"m2")),
            (a.public_key, b"m1", a.sign(b"m1")),          # duplicate
            (c.public_key, b"bad", a.sign(b"bad")),        # fails here
            (c.public_key, b"never", c.sign(b"never")),    # unreachable
        ]
        return sc.hosts[2], items

    verifier_seq, items_seq = build_items(sc_seq)
    verifier_bat, items_bat = build_items(sc_bat)
    out_seq = verifier_seq.verify_batch(items_seq)
    out_bat = verifier_bat.verify_batch(items_bat)
    assert out_seq == out_bat == [True, True, True, False]
    assert _metrics_state(sc_seq, verifier_seq) == _metrics_state(sc_bat, verifier_bat)


def test_node_verify_batch_uses_one_backend_bulk_call():
    sc = two_node_scenario()
    a, b, c = sc.hosts
    items = [
        (a.public_key, b"m1", a.sign(b"m1")),
        (b.public_key, b"m2", b.sign(b"m2")),
    ]
    calls = []
    original = c.backend.verify_batch

    def spy(batch):
        calls.append(list(batch))
        return original(batch)

    c.backend.verify_batch = spy
    c.backend.verify = None  # any per-item backend call would explode
    assert c.verify_batch(items) == [True, True]
    assert len(calls) == 1 and len(calls[0]) == 2
    # second presentation: everything answered from caches, no bulk call
    assert c.verify_batch(items) == [True, True]
    assert len(calls) == 1


# -- verify_identity_batch ------------------------------------------------

def _identity_items(sc, nodes, seq=9):
    from repro.messages import signing

    items = []
    for node in nodes:
        ip, params = generate_cga(node.public_key, node.rng("test-cga"))
        payload = signing.srr_entry_payload(ip, seq)
        items.append((ip, node.public_key, params.rn, node.sign(payload), payload))
    return items


def test_verify_identity_batch_all_ok_and_failure_positions():
    sc = two_node_scenario()
    verifier = sc.hosts[0]
    items = _identity_items(sc, sc.hosts)
    assert verify_identity_batch(items, verifier.verify_batch) == (3, "")

    # bad signature at index 1: one leading pass, signature reason
    broken = list(items)
    ip, pk, rn, _sig, payload = broken[1]
    broken[1] = (ip, pk, rn, bytes(16), payload)
    assert verify_identity_batch(broken, verifier.verify_batch) == (1, "bad_signature")

    # bad CGA at index 1: rn mismatch fails the address binding
    bad_cga = list(items)
    ip, pk, rn, sig, payload = bad_cga[1]
    bad_cga[1] = (ip, pk, (rn + 1) % (1 << 64), sig, payload)
    assert verify_identity_batch(bad_cga, verifier.verify_batch) == (1, "bad_cga")

    # a signature failure BEFORE a CGA failure wins (sequential order)
    both = list(bad_cga)
    ip, pk, rn, _sig, payload = both[0]
    both[0] = (ip, pk, rn, bytes(16), payload)
    assert verify_identity_batch(both, verifier.verify_batch) == (0, "bad_signature")


def test_verify_identity_batch_matches_sequential_verify_identity():
    sc = two_node_scenario()
    verifier = sc.hosts[0]
    items = _identity_items(sc, sc.hosts, seq=17)
    ip, pk, rn, _sig, payload = items[2]
    items[2] = (ip, pk, rn, bytes(16), payload)

    n_ok = 0
    reason = ""
    for ip, pk, rn, sig, payload in items:
        check = verify_identity(verifier.backend, ip, pk, rn, sig, payload,
                                verify_fn=verifier.verify)
        if not check:
            reason = check.reason
            break
        n_ok += 1
    # fresh twin so caches warmed above don't change the comparison
    sc2 = two_node_scenario()
    verifier2 = sc2.hosts[0]
    items2 = _identity_items(sc2, sc2.hosts, seq=17)
    ip, pk, rn, _sig, payload = items2[2]
    items2[2] = (ip, pk, rn, bytes(16), payload)
    assert verify_identity_batch(items2, verifier2.verify_batch) == (n_ok, reason)


# -- satellite 1: reused-worker state isolation ---------------------------

def run_small_scenario(seed):
    sc = (
        ScenarioBuilder(seed=seed)
        .chain(3, spacing=200.0)
        .with_dns((200.0, 60.0))
        .build()
    )
    sc.bootstrap_all(stagger=0.1)
    # route discovery generates signed RREQ/RREP traffic
    sc.send_data(sc.hosts[0], sc.hosts[-1].ip, b"ping")
    sc.run(duration=30.0)
    return sc


def test_backend_state_isolated_across_in_process_runs():
    registry = get_backend("simsig")
    registry_oracle_before = dict(registry._oracle)
    registry_counts_before = (registry.signs, registry.verifies)

    first = run_small_scenario(seed=21)
    second = run_small_scenario(seed=22)
    b1, b2 = first.hosts[0].backend, second.hosts[0].backend
    assert b1 is not b2
    # oracle bounded by THIS scenario's population (3 hosts + dns), not
    # by everything the process ever ran
    assert len(b1._oracle) == 4
    assert len(b2._oracle) == 4
    # counters are per scenario: running the second scenario left the
    # first backend's tallies untouched
    signs_after_own_run = b1.signs
    assert signs_after_own_run > 0
    assert b2.signs > 0
    assert b1.signs == signs_after_own_run
    # and the registry singleton never participated at all
    assert dict(registry._oracle) == registry_oracle_before
    assert (registry.signs, registry.verifies) == registry_counts_before


def test_keypair_pool_spans_in_process_runs():
    DEFAULT_KEYPAIR_POOL.clear()
    first = run_small_scenario(seed=33)
    assert DEFAULT_KEYPAIR_POOL.hits == 0
    misses = DEFAULT_KEYPAIR_POOL.misses
    second = run_small_scenario(seed=33)
    # same seed -> every node keypair re-served from the pool
    assert DEFAULT_KEYPAIR_POOL.misses == misses
    assert DEFAULT_KEYPAIR_POOL.hits == misses
    for n1, n2 in zip(first.all_nodes, second.all_nodes):
        assert n1.keypair is n2.keypair
        assert n1.ip == n2.ip
    # pooling off: pairs are equal in value but freshly derived
    sc = (
        ScenarioBuilder(seed=33)
        .chain(3, spacing=200.0)
        .with_dns((200.0, 60.0))
        .config(crypto_keypair_pool=False)
        .build()
    )
    assert sc.hosts[0].keypair is not second.hosts[0].keypair
    assert sc.hosts[0].keypair == second.hosts[0].keypair


# -- builder / observability plumbing -------------------------------------

def test_builder_crypto_knob_composes_and_round_trips():
    b = ScenarioBuilder(seed=1).chain(3).crypto(shared_cache=False)
    assert b._config.crypto_shared_cache is False
    assert b._config.crypto_batch_verify is True  # None = unchanged
    b.crypto(batch_verify=False, keypair_pool=False)
    assert b._config.crypto_shared_cache is False
    spec = b.to_spec()
    assert spec["config"] == {
        "crypto_shared_cache": False,
        "crypto_batch_verify": False,
        "crypto_keypair_pool": False,
    }
    rebuilt = ScenarioBuilder.from_spec(spec)
    assert rebuilt._config.crypto_keypair_pool is False


def test_crypto_stats_block_is_opt_in():
    sc = two_node_scenario()
    sc.hosts[0].sign(b"x")
    assert "crypto_stats" not in sc.metrics.summary()
    sc.enable_crypto_stats()
    stats = sc.metrics.summary()["crypto_stats"]
    assert stats["backends"]["simsig"]["signs"] >= 1
    assert stats["shared_verify_cache"]["capacity"] == 4096
    assert set(stats["keypair_pool"]) == {
        "size", "capacity", "hits", "misses", "evictions"
    }


def test_explicit_keypair_is_adopted_into_scenario_backend():
    from repro.core.node import Node

    donor = SimSigBackend()
    pair = donor.generate_keypair(b"external")
    sc = two_node_scenario()
    node = Node(sc.ctx, "guest", (50.0, 50.0), config=NodeConfig(), keypair=pair)
    sig = node.sign(b"msg")
    assert sc.hosts[0].verify(pair.public, b"msg", sig) is True
