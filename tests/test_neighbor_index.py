"""Unit tests for the incremental neighbor indices.

The contract under test (see ``repro/phy/neighbor_index.py``): every
index returns a *superset* of the enabled radios within ``cell_size``
of the query position, in strictly ascending link-id order.
"""

import math

import pytest

from repro.phy.neighbor_index import (
    INDEX_KINDS,
    NaiveScanIndex,
    SpatialHashGrid,
    make_index,
)
from repro.sim.rng import SimRNG

RANGE = 100.0


def brute_force(positions: dict, query, radius) -> set:
    return {
        lid
        for lid, pos in positions.items()
        if math.hypot(pos[0] - query[0], pos[1] - query[1]) <= radius
    }


def test_make_index_kinds():
    assert isinstance(make_index("grid", RANGE), SpatialHashGrid)
    assert isinstance(make_index("naive", RANGE), NaiveScanIndex)
    with pytest.raises(ValueError):
        make_index("kdtree", RANGE)
    assert set(INDEX_KINDS) == {"grid", "naive"}


def test_grid_rejects_bad_cell_size():
    with pytest.raises(ValueError):
        SpatialHashGrid(0.0)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_candidates_are_sorted_and_cover_in_range(kind):
    index = make_index(kind, RANGE)
    rng = SimRNG(17, "test/index")
    positions = {}
    for lid in range(60):
        pos = (rng.uniform(-300, 300), rng.uniform(-300, 300))
        positions[lid] = pos
        index.insert(lid, pos)
    for lid, pos in positions.items():
        cands = index.candidates_near(pos)
        assert cands == sorted(cands)
        assert brute_force(positions, pos, RANGE) <= set(cands)


def test_grid_query_is_local():
    """The 3x3 block never drags in radios more than 2 cells away."""
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (0.0, 0.0))
    grid.insert(1, (250.0, 0.0))  # 2 cells away: must not be a candidate
    grid.insert(2, (150.0, 0.0))  # adjacent cell: allowed false positive
    cands = grid.candidates_near((0.0, 0.0))
    assert 0 in cands and 1 not in cands and 2 in cands


def test_grid_tracks_moves_incrementally():
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (0.0, 0.0))
    grid.insert(1, (500.0, 500.0))
    assert 1 not in grid.candidates_near((0.0, 0.0))
    grid.move(1, (50.0, 50.0))
    assert 1 in grid.candidates_near((0.0, 0.0))
    assert 1 not in grid.candidates_near((500.0, 500.0))
    # moving within the same cell keeps membership intact
    grid.move(1, (60.0, 40.0))
    assert 1 in grid.candidates_near((0.0, 0.0))


def test_grid_disabled_radios_leave_their_cell():
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (10.0, 10.0))
    grid.insert(1, (20.0, 20.0))
    grid.set_enabled(1, False)
    assert grid.candidates_near((0.0, 0.0)) == [0]
    # position updates while disabled are remembered...
    grid.move(1, (400.0, 400.0))
    grid.set_enabled(1, True)
    # ...and re-enable places the radio at its *current* position
    assert 1 not in grid.candidates_near((0.0, 0.0))
    assert 1 in grid.candidates_near((400.0, 400.0))


def test_grid_remove_and_unknown_ids_are_graceful():
    grid = SpatialHashGrid(RANGE)
    grid.insert(3, (0.0, 0.0))
    grid.remove(3)
    assert grid.candidates_near((0.0, 0.0)) == []
    assert len(grid) == 0
    # unknown ids: all maintenance ops are no-ops
    grid.remove(99)
    grid.move(99, (1.0, 1.0))
    grid.set_enabled(99, False)
    assert 99 not in grid


def test_grid_negative_coordinates():
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (-10.0, -10.0))
    grid.insert(1, (-90.0, -40.0))
    assert grid.candidates_near((-10.0, -10.0)) == [0, 1]


def test_grid_empty_cells_are_reclaimed():
    grid = SpatialHashGrid(RANGE)
    for lid in range(10):
        grid.insert(lid, (lid * 1000.0, 0.0))
    assert grid.occupied_cells == 10
    for lid in range(10):
        grid.move(lid, (0.0, 0.0))
    assert grid.occupied_cells == 1


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_randomized_churn_matches_brute_force(kind):
    """Superset + ordering hold through interleaved insert/move/remove/toggle."""
    index = make_index(kind, RANGE)
    rng = SimRNG(99, "test/index-churn")
    positions: dict[int, tuple[float, float]] = {}
    enabled: dict[int, bool] = {}
    next_id = 0
    for _ in range(400):
        op = rng.random()
        if op < 0.4 or not positions:
            pos = (rng.uniform(0, 600), rng.uniform(0, 600))
            positions[next_id] = pos
            enabled[next_id] = True
            index.insert(next_id, pos)
            next_id += 1
        elif op < 0.6:
            lid = rng.choice(sorted(positions))
            pos = (rng.uniform(0, 600), rng.uniform(0, 600))
            positions[lid] = pos
            index.move(lid, pos)
        elif op < 0.8:
            lid = rng.choice(sorted(positions))
            enabled[lid] = not enabled[lid]
            index.set_enabled(lid, enabled[lid])
        else:
            lid = rng.choice(sorted(positions))
            del positions[lid], enabled[lid]
            index.remove(lid)
        query = (rng.uniform(0, 600), rng.uniform(0, 600))
        cands = index.candidates_near(query)
        assert cands == sorted(cands)
        live = {lid: p for lid, p in positions.items() if enabled[lid]}
        assert brute_force(live, query, RANGE) <= set(cands)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_candidates_with_positions_matches_candidates_near(kind):
    """Same enabled radios, same ascending order, exact stored positions."""
    index = make_index(kind, RANGE)
    rng = SimRNG(21, "test/blocks")
    positions = {}
    for lid in range(40):
        pos = (rng.uniform(-300, 300), rng.uniform(-300, 300))
        positions[lid] = pos
        index.insert(lid, pos)
    index.set_enabled(7, False)
    index.set_enabled(13, False)
    for lid, pos in positions.items():
        block = index.candidates_with_positions(pos)
        enabled_cands = [
            c for c in index.candidates_near(pos)
            if c not in (7, 13)
        ]
        assert list(block.ids) == enabled_cands
        assert list(block.ids) == sorted(block.ids)
        assert 7 not in block.ids and 13 not in block.ids
        for cand, pt in zip(block.ids, block.pts):
            assert pt == positions[cand]
        # the numpy views agree with the python views
        assert block.id_arr.tolist() == list(block.ids)
        assert block.pos_arr.tolist() == [list(p) for p in block.pts]


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_candidate_blocks_are_cached_until_invalidated(kind):
    """Repeat queries return the *same* immutable block object (that is
    the whole point of the cache); any mutation near it rebuilds."""
    index = make_index(kind, RANGE)
    index.insert(0, (10.0, 10.0))
    index.insert(1, (50.0, 50.0))
    q = (10.0, 10.0)
    block = index.candidates_with_positions(q)
    assert index.candidates_with_positions(q) is block  # cache hit
    # every mutation kind invalidates: insert, move, set_enabled, remove
    index.insert(2, (20.0, 20.0))
    b2 = index.candidates_with_positions(q)
    assert b2 is not block and 2 in b2.ids
    index.move(2, (25.0, 25.0))  # same cell, new coordinates
    b3 = index.candidates_with_positions(q)
    assert b3 is not b2
    assert b3.pts[list(b3.ids).index(2)] == (25.0, 25.0)
    index.set_enabled(1, False)
    b4 = index.candidates_with_positions(q)
    assert b4 is not b3 and 1 not in b4.ids
    index.remove(2)
    b5 = index.candidates_with_positions(q)
    assert b5 is not b4 and 2 not in b5.ids


def test_grid_mutation_far_away_keeps_cached_block():
    """Precise invalidation: a change many cells away must not evict an
    unrelated cached block (that is what makes the cache worth having)."""
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (10.0, 10.0))
    grid.insert(1, (2000.0, 2000.0))
    near = grid.candidates_with_positions((10.0, 10.0))
    # mutations in a far-away block footprint: cached block survives
    grid.insert(2, (2050.0, 2050.0))
    grid.move(1, (2100.0, 2100.0))
    grid.set_enabled(2, False)
    grid.remove(1)
    assert grid.candidates_with_positions((10.0, 10.0)) is near
    # a mutation adjacent to the near block evicts it
    grid.insert(3, (110.0, 10.0))
    fresh = grid.candidates_with_positions((10.0, 10.0))
    assert fresh is not near and 3 in fresh.ids


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_randomized_churn_blocks_match_brute_force(kind):
    """The cached-block view obeys the same superset/ordering/position
    contract through interleaved insert/move/remove/toggle."""
    index = make_index(kind, RANGE)
    rng = SimRNG(123, "test/block-churn")
    positions: dict[int, tuple[float, float]] = {}
    enabled: dict[int, bool] = {}
    next_id = 0
    for _ in range(300):
        op = rng.random()
        if op < 0.4 or not positions:
            pos = (rng.uniform(0, 600), rng.uniform(0, 600))
            positions[next_id] = pos
            enabled[next_id] = True
            index.insert(next_id, pos)
            next_id += 1
        elif op < 0.6:
            lid = rng.choice(sorted(positions))
            pos = (rng.uniform(0, 600), rng.uniform(0, 600))
            positions[lid] = pos
            index.move(lid, pos)
        elif op < 0.8:
            lid = rng.choice(sorted(positions))
            enabled[lid] = not enabled[lid]
            index.set_enabled(lid, enabled[lid])
        else:
            lid = rng.choice(sorted(positions))
            del positions[lid], enabled[lid]
            index.remove(lid)
        query = (rng.uniform(0, 600), rng.uniform(0, 600))
        block = index.candidates_with_positions(query)
        assert list(block.ids) == sorted(block.ids)
        live = {lid: p for lid, p in positions.items() if enabled[lid]}
        assert brute_force(live, query, RANGE) <= set(block.ids)
        for cand, pt in zip(block.ids, block.pts):
            assert enabled[cand] and pt == positions[cand]
