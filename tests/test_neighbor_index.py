"""Unit tests for the incremental neighbor indices.

The contract under test (see ``repro/phy/neighbor_index.py``): every
index returns a *superset* of the enabled radios within ``cell_size``
of the query position, in strictly ascending link-id order.
"""

import math

import pytest

from repro.phy.neighbor_index import (
    INDEX_KINDS,
    NaiveScanIndex,
    SpatialHashGrid,
    make_index,
)
from repro.sim.rng import SimRNG

RANGE = 100.0


def brute_force(positions: dict, query, radius) -> set:
    return {
        lid
        for lid, pos in positions.items()
        if math.hypot(pos[0] - query[0], pos[1] - query[1]) <= radius
    }


def test_make_index_kinds():
    assert isinstance(make_index("grid", RANGE), SpatialHashGrid)
    assert isinstance(make_index("naive", RANGE), NaiveScanIndex)
    with pytest.raises(ValueError):
        make_index("kdtree", RANGE)
    assert set(INDEX_KINDS) == {"grid", "naive"}


def test_grid_rejects_bad_cell_size():
    with pytest.raises(ValueError):
        SpatialHashGrid(0.0)


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_candidates_are_sorted_and_cover_in_range(kind):
    index = make_index(kind, RANGE)
    rng = SimRNG(17, "test/index")
    positions = {}
    for lid in range(60):
        pos = (rng.uniform(-300, 300), rng.uniform(-300, 300))
        positions[lid] = pos
        index.insert(lid, pos)
    for lid, pos in positions.items():
        cands = index.candidates_near(pos)
        assert cands == sorted(cands)
        assert brute_force(positions, pos, RANGE) <= set(cands)


def test_grid_query_is_local():
    """The 3x3 block never drags in radios more than 2 cells away."""
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (0.0, 0.0))
    grid.insert(1, (250.0, 0.0))  # 2 cells away: must not be a candidate
    grid.insert(2, (150.0, 0.0))  # adjacent cell: allowed false positive
    cands = grid.candidates_near((0.0, 0.0))
    assert 0 in cands and 1 not in cands and 2 in cands


def test_grid_tracks_moves_incrementally():
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (0.0, 0.0))
    grid.insert(1, (500.0, 500.0))
    assert 1 not in grid.candidates_near((0.0, 0.0))
    grid.move(1, (50.0, 50.0))
    assert 1 in grid.candidates_near((0.0, 0.0))
    assert 1 not in grid.candidates_near((500.0, 500.0))
    # moving within the same cell keeps membership intact
    grid.move(1, (60.0, 40.0))
    assert 1 in grid.candidates_near((0.0, 0.0))


def test_grid_disabled_radios_leave_their_cell():
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (10.0, 10.0))
    grid.insert(1, (20.0, 20.0))
    grid.set_enabled(1, False)
    assert grid.candidates_near((0.0, 0.0)) == [0]
    # position updates while disabled are remembered...
    grid.move(1, (400.0, 400.0))
    grid.set_enabled(1, True)
    # ...and re-enable places the radio at its *current* position
    assert 1 not in grid.candidates_near((0.0, 0.0))
    assert 1 in grid.candidates_near((400.0, 400.0))


def test_grid_remove_and_unknown_ids_are_graceful():
    grid = SpatialHashGrid(RANGE)
    grid.insert(3, (0.0, 0.0))
    grid.remove(3)
    assert grid.candidates_near((0.0, 0.0)) == []
    assert len(grid) == 0
    # unknown ids: all maintenance ops are no-ops
    grid.remove(99)
    grid.move(99, (1.0, 1.0))
    grid.set_enabled(99, False)
    assert 99 not in grid


def test_grid_negative_coordinates():
    grid = SpatialHashGrid(RANGE)
    grid.insert(0, (-10.0, -10.0))
    grid.insert(1, (-90.0, -40.0))
    assert grid.candidates_near((-10.0, -10.0)) == [0, 1]


def test_grid_empty_cells_are_reclaimed():
    grid = SpatialHashGrid(RANGE)
    for lid in range(10):
        grid.insert(lid, (lid * 1000.0, 0.0))
    assert grid.occupied_cells == 10
    for lid in range(10):
        grid.move(lid, (0.0, 0.0))
    assert grid.occupied_cells == 1


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_randomized_churn_matches_brute_force(kind):
    """Superset + ordering hold through interleaved insert/move/remove/toggle."""
    index = make_index(kind, RANGE)
    rng = SimRNG(99, "test/index-churn")
    positions: dict[int, tuple[float, float]] = {}
    enabled: dict[int, bool] = {}
    next_id = 0
    for _ in range(400):
        op = rng.random()
        if op < 0.4 or not positions:
            pos = (rng.uniform(0, 600), rng.uniform(0, 600))
            positions[next_id] = pos
            enabled[next_id] = True
            index.insert(next_id, pos)
            next_id += 1
        elif op < 0.6:
            lid = rng.choice(sorted(positions))
            pos = (rng.uniform(0, 600), rng.uniform(0, 600))
            positions[lid] = pos
            index.move(lid, pos)
        elif op < 0.8:
            lid = rng.choice(sorted(positions))
            enabled[lid] = not enabled[lid]
            index.set_enabled(lid, enabled[lid])
        else:
            lid = rng.choice(sorted(positions))
            del positions[lid], enabled[lid]
            index.remove(lid)
        query = (rng.uniform(0, 600), rng.uniform(0, 600))
        cands = index.candidates_near(query)
        assert cands == sorted(cands)
        live = {lid: p for lid, p in positions.items() if enabled[lid]}
        assert brute_force(live, query, RANGE) <= set(cands)
