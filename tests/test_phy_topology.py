"""Unit tests for placement generators and connectivity analysis."""

import numpy as np
import pytest

from repro.phy.topology import (
    adjacency,
    chain_positions,
    clustered_positions,
    connected_uniform_positions,
    connectivity_graph,
    grid_positions,
    hop_count,
    is_connected,
    uniform_positions,
)
from repro.sim.rng import SimRNG


def test_chain_positions_spacing():
    pts = chain_positions(5, 100.0)
    assert pts.shape == (5, 2)
    assert np.allclose(pts[:, 1], 0)
    assert np.allclose(np.diff(pts[:, 0]), 100.0)


def test_chain_gives_exact_hop_counts():
    pts = chain_positions(6, 200.0)
    assert hop_count(pts, 250.0, 0, 5) == 5
    assert hop_count(pts, 450.0, 0, 5) == 3  # range covers 2 links


def test_grid_positions():
    pts = grid_positions(9, 10.0)
    assert pts.shape == (9, 2)
    assert tuple(pts[4]) == (10.0, 10.0)  # centre of 3x3
    pts7 = grid_positions(7, 10.0)  # non-square count
    assert pts7.shape == (7, 2)


def test_uniform_positions_bounds():
    rng = SimRNG(1, "t")
    pts = uniform_positions(50, (200.0, 100.0), rng)
    assert pts.shape == (50, 2)
    assert (pts[:, 0] < 200).all() and (pts[:, 1] < 100).all()
    assert (pts >= 0).all()


def test_clustered_positions_clipped_to_area():
    rng = SimRNG(2, "t")
    pts = clustered_positions(40, 3, (100.0, 100.0), 30.0, rng)
    assert pts.shape == (40, 2)
    assert (pts >= 0).all() and (pts <= 100).all()


def test_generators_reject_bad_args():
    rng = SimRNG(1, "t")
    with pytest.raises(ValueError):
        chain_positions(0, 10)
    with pytest.raises(ValueError):
        grid_positions(-1, 10)
    with pytest.raises(ValueError):
        uniform_positions(0, (10, 10), rng)
    with pytest.raises(ValueError):
        clustered_positions(10, 0, (10, 10), 1.0, rng)


def test_adjacency_symmetric_no_self_loops():
    pts = chain_positions(4, 100.0)
    adj = adjacency(pts, 150.0)
    assert (adj == adj.T).all()
    assert not adj.diagonal().any()
    assert adj[0, 1] and not adj[0, 2]


def test_connectivity_graph_matches_adjacency():
    pts = chain_positions(4, 100.0)
    g = connectivity_graph(pts, 150.0)
    assert g[0] == [1]
    assert g[1] == [0, 2]


def test_is_connected():
    assert is_connected(chain_positions(5, 100.0), 150.0)
    assert not is_connected(chain_positions(5, 100.0), 50.0)
    assert is_connected(np.zeros((1, 2)), 1.0)
    assert is_connected(np.zeros((0, 2)), 1.0)


def test_hop_count_unreachable():
    pts = np.array([[0.0, 0.0], [1000.0, 0.0]])
    assert hop_count(pts, 100.0, 0, 1) == -1
    assert hop_count(pts, 100.0, 0, 0) == 0


def test_connected_uniform_positions_connected():
    rng = SimRNG(3, "t")
    pts = connected_uniform_positions(15, (400.0, 400.0), 200.0, rng)
    assert is_connected(pts, 200.0)


def test_connected_uniform_positions_gives_up():
    rng = SimRNG(3, "t")
    with pytest.raises(RuntimeError):
        connected_uniform_positions(30, (100000.0, 100000.0), 10.0, rng, max_tries=3)
