"""Unit tests for mobility models."""

import math

import pytest

from repro.phy.medium import WirelessMedium
from repro.phy.mobility import ChurnModel, RandomWaypoint, StaticMobility
from repro.sim.kernel import Simulator


def setup_net(n=3, seed=1):
    sim = Simulator(seed=seed)
    medium = WirelessMedium(sim, radio_range=100.0)
    links = [medium.attach((i * 10.0, 0.0), lambda f: None).link_id for i in range(n)]
    return sim, medium, links


def test_static_mobility_never_moves():
    sim, medium, links = setup_net()
    before = [medium.position(l) for l in links]
    mob = StaticMobility(medium, links)
    mob.start()
    sim.run(until=100.0)
    assert [medium.position(l) for l in links] == before


def test_random_waypoint_moves_nodes():
    sim, medium, links = setup_net()
    mob = RandomWaypoint(sim, medium, links, area=(500.0, 500.0),
                         speed_range=(5.0, 10.0), pause=0.0)
    before = [medium.position(l) for l in links]
    mob.start()
    sim.run(until=30.0)
    after = [medium.position(l) for l in links]
    assert any(a != b for a, b in zip(after, before))


def test_random_waypoint_respects_speed_limit():
    sim, medium, links = setup_net(n=1)
    mob = RandomWaypoint(sim, medium, links, area=(1000.0, 1000.0),
                         speed_range=(2.0, 4.0), pause=0.0, tick=1.0)
    mob.start()
    positions = []

    def sample():
        positions.append(medium.position(links[0]))

    for t in range(1, 50):
        sim.schedule(t + 0.5, sample)
    sim.run(until=50.0)
    for a, b in zip(positions, positions[1:]):
        step = math.hypot(b[0] - a[0], b[1] - a[1])
        assert step <= 4.0 + 1e-9


def test_random_waypoint_stays_in_area():
    sim, medium, links = setup_net()
    mob = RandomWaypoint(sim, medium, links, area=(200.0, 200.0),
                         speed_range=(10.0, 20.0), pause=0.0)
    mob.start()
    sim.run(until=60.0)
    for l in links:
        x, y = medium.position(l)
        assert -1e-6 <= x <= 200.0 and -1e-6 <= y <= 200.0


def test_random_waypoint_stop_freezes():
    sim, medium, links = setup_net()
    mob = RandomWaypoint(sim, medium, links, area=(500.0, 500.0), pause=0.0)
    mob.start()
    sim.run(until=10.0)
    mob.stop()
    frozen = [medium.position(l) for l in links]
    sim.run(until=30.0)
    assert [medium.position(l) for l in links] == frozen


def test_random_waypoint_deterministic():
    def final_positions(seed):
        sim, medium, links = setup_net(seed=seed)
        RandomWaypoint(sim, medium, links, area=(500.0, 500.0), pause=0.0).start()
        sim.run(until=25.0)
        return [medium.position(l) for l in links]

    assert final_positions(9) == final_positions(9)
    assert final_positions(9) != final_positions(10)


def test_random_waypoint_validation():
    sim, medium, links = setup_net()
    with pytest.raises(ValueError):
        RandomWaypoint(sim, medium, links, area=(10, 10), speed_range=(0.0, 5.0))
    with pytest.raises(ValueError):
        RandomWaypoint(sim, medium, links, area=(10, 10), speed_range=(5.0, 1.0))


def test_churn_model_toggles_radios():
    sim, medium, links = setup_net(n=6)
    churn = ChurnModel(sim, medium, links, interval=1.0, min_present=2)
    joined, left = [], []
    churn.on_join = joined.append
    churn.on_leave = left.append
    churn.start()
    sim.run(until=60.0)
    assert left  # someone left
    enabled = sum(1 for l in links if medium._radios[l].enabled)
    assert enabled >= 2  # floor respected


def test_churn_model_floor():
    sim, medium, links = setup_net(n=3)
    churn = ChurnModel(sim, medium, links, interval=0.5, min_present=3)
    churn.start()
    sim.run(until=30.0)
    assert all(medium._radios[l].enabled for l in links)
