"""Live tailing: byte-offset resume, replace tolerance, follow == post-hoc.

The acceptance contract: ``report --follow`` over an in-flight campaign
consumes only appended bytes (no full-file re-reads in steady state),
survives the runner's finalize ``os.replace``, and its final report is
byte-identical to a post-hoc report over the finalized file.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from conftest import streaming_campaign_dict
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    aggregate,
    tail_jsonl,
)
from repro.campaign.cli import main
from repro.obs.follow import ResultsTail, follow_report


def _write(path, text, mode="a"):
    with open(path, mode, encoding="utf-8") as fh:
        fh.write(text)


def _rec(i, **extra):
    record = {"run_id": f"r-{i:04d}", "index": i, "status": "ok",
              "params": {}, "summary": {"pdr": 1.0}}
    record.update(extra)
    return json.dumps(record, sort_keys=True)


# -- tail_jsonl: the byte-offset primitive -----------------------------------

def test_tail_jsonl_resumes_from_returned_offset(tmp_path):
    path = tmp_path / "results.jsonl"
    _write(path, _rec(0) + "\n" + _rec(1) + "\n", mode="w")
    records, warnings, offset = tail_jsonl(path)
    assert [r["index"] for r in records] == [0, 1]
    assert warnings == []
    assert offset == os.path.getsize(path)

    # appends after the offset are picked up without re-reading the past
    _write(path, _rec(2) + "\n")
    records, warnings, offset2 = tail_jsonl(path, offset)
    assert [r["index"] for r in records] == [2]
    assert offset2 == os.path.getsize(path)

    # nothing new: no records, offset unchanged
    records, warnings, offset3 = tail_jsonl(path, offset2)
    assert records == [] and offset3 == offset2


def test_tail_jsonl_holds_back_torn_fragment_until_complete(tmp_path):
    path = tmp_path / "results.jsonl"
    done, torn = _rec(0), _rec(1)
    _write(path, done + "\n" + torn[:17], mode="w")  # torn mid-write
    records, warnings, offset = tail_jsonl(path)
    assert [r["index"] for r in records] == [0]
    assert len(warnings) == 1 and "torn final line" in warnings[0]
    assert offset == len(done) + 1  # the fragment was NOT consumed

    # the writer finishes the line: the next tail reads it whole
    _write(path, torn[17:] + "\n")
    records, warnings, offset = tail_jsonl(path, offset)
    assert [r["index"] for r in records] == [1]
    assert warnings == []


def test_tail_jsonl_consumes_newline_less_complete_record(tmp_path):
    path = tmp_path / "results.jsonl"
    _write(path, _rec(0), mode="w")  # complete JSON, newline not landed yet
    records, _, offset = tail_jsonl(path)
    assert [r["index"] for r in records] == [0]
    # the late newline is consumed as an empty line on the next tail
    _write(path, "\n" + _rec(1) + "\n")
    records, _, _ = tail_jsonl(path, offset)
    assert [r["index"] for r in records] == [1]


def test_tail_jsonl_raises_on_corruption_before_final_line(tmp_path):
    path = tmp_path / "results.jsonl"
    _write(path, _rec(0) + "\n{bogus}\n" + _rec(1) + "\n", mode="w")
    with pytest.raises(ValueError, match="corrupt line 2"):
        tail_jsonl(path)


# -- ResultsTail: replace tolerance ------------------------------------------

def test_results_tail_survives_finalize_replace(tmp_path):
    path = tmp_path / "results.jsonl"
    # completion-order stream: 1, 0, 2
    _write(path, _rec(1) + "\n" + _rec(0) + "\n", mode="w")
    tail = ResultsTail(path)
    assert [r["index"] for r in tail.poll()] == [1, 0]

    _write(path, _rec(2) + "\n")
    assert [r["index"] for r in tail.poll()] == [2]

    # finalize: atomic replace with the index-sorted rewrite
    tmp = str(path) + ".tmp"
    _write(tmp, "".join(_rec(i) + "\n" for i in range(3)), mode="w")
    os.replace(tmp, path)
    # everything in the rewrite was already consumed: dedup yields nothing
    assert tail.poll() == []

    # a record appended after the replace still comes through
    _write(path, _rec(3) + "\n")
    assert [r["index"] for r in tail.poll()] == [3]


def test_results_tail_missing_file_is_empty_not_error(tmp_path):
    tail = ResultsTail(tmp_path / "not-yet.jsonl")
    assert tail.poll() == []


# -- follow_report: live == post-hoc -----------------------------------------

@pytest.fixture(scope="module")
def followed_campaign(tmp_path_factory):
    """A campaign executed concurrently with a live follow of its stream."""
    out = tmp_path_factory.mktemp("follow") / "out"
    spec = CampaignSpec.from_dict(streaming_campaign_dict())
    total = len(spec.expand())
    # the runner thread starts *after* the follower: the follower must
    # wait for results.jsonl to appear, then tail it to completion
    # (deadline() is a no-op off the main thread, so runs are unaffected)
    runner = CampaignRunner(spec, workers=1, out_dir=out)
    thread = threading.Thread(target=runner.run)
    report = {}

    def follow():
        report.update(follow_report(
            os.path.join(out, "results.jsonl"),
            total=total, mode="exact", interval=0.01,
        ))

    follower = threading.Thread(target=follow)
    follower.start()
    thread.start()
    thread.join(timeout=120)
    follower.join(timeout=120)
    assert not thread.is_alive() and not follower.is_alive()
    return {"out": out, "report": report, "total": total}


def test_follow_report_matches_posthoc_bytes(followed_campaign):
    out = followed_campaign["out"]
    with open(os.path.join(out, "results.jsonl"), "r", encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    posthoc = aggregate(records, mode="exact")
    live = followed_campaign["report"]
    assert json.dumps(live, sort_keys=True) == \
           json.dumps(posthoc, sort_keys=True)
    assert live["runs"] == followed_campaign["total"]


def test_follow_report_matches_finalized_report_json(followed_campaign):
    with open(os.path.join(followed_campaign["out"], "report.json"),
              encoding="utf-8") as fh:
        finalized = json.load(fh)
    finalized.pop("campaign")
    assert json.dumps(followed_campaign["report"], sort_keys=True) == \
           json.dumps(finalized, sort_keys=True)


def test_follow_report_bounded_by_max_polls(tmp_path):
    # nothing ever appears: the poll budget ends the loop
    sleeps = []
    report = follow_report(tmp_path / "never.jsonl", total=5,
                           interval=0.0, max_polls=3, sleep=sleeps.append)
    assert report["runs"] == 0
    assert len(sleeps) == 2  # the final poll ends the loop without sleeping


# -- CLI ---------------------------------------------------------------------

def test_cli_report_missing_results_is_one_line_error(tmp_path, capsys):
    out = tmp_path / "campaign-dir"
    out.mkdir()
    assert main(["report", str(out)]) == 2
    captured = capsys.readouterr()
    err_lines = [l for l in captured.err.splitlines() if l.strip()]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("error:")
    assert "results" in err_lines[0]


def test_cli_report_follow_on_finished_campaign(followed_campaign, capsys):
    out = followed_campaign["out"]
    assert main(["report", str(out), "--json"]) == 0
    plain = capsys.readouterr().out
    assert main(["report", str(out), "--follow", "--interval", "0.01",
                 "--json"]) == 0
    followed = capsys.readouterr().out
    assert followed == plain


def test_cli_report_summary_mode_sketch(followed_campaign, capsys):
    assert main(["report", str(followed_campaign["out"]),
                 "--summary-mode", "sketch", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["summary_mode"] == "sketch"
    group = report["groups"][0]
    assert "p95" in group["metrics"]["pdr"]
