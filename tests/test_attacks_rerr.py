"""RERR spam/forgery attack experiments (Section 4) as tests."""

import pytest

from repro.scenarios.attacks import add_rerr_spammer
from repro.scenarios.workloads import CBRTraffic
from tests.conftest import two_path_scenario


def run_spammer(seed=5, also_drop=False, count=20, hostile=False, **config):
    """Normal (shortest-first) mode by default: the spammer sits on the
    shortest route and keeps being re-selected after every report, which
    is the regime the paper's RERR-frequency tracking is designed for.
    (In hostile mode the detour's earned credit starves the spammer after
    a single report -- see test_hostile_mode_starves_spammer_immediately.)

    The short route-cache TTL forces periodic rediscovery; with DSR's
    default long-lived caches a single false RERR permanently deflects
    the flow and the spammer only ever gets one shot.
    """
    config.setdefault("route_cache_ttl", 4.0)
    sc = two_path_scenario(seed=seed, hostile_mode=hostile, **config).build()
    spammer = add_rerr_spammer(sc, (200.0, 0.0), also_drop=also_drop)
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[1]
    traffic = CBRTraffic(a, b.ip, interval=1.0, count=count)
    sc.run(duration=count + 40.0)
    return sc, spammer, traffic


def test_onpath_spam_initially_accepted_then_reporter_suspected():
    """The paper: S must accept on-path RERRs at first, but frequency
    tracking identifies and penalises the spammer."""
    sc, spammer, traffic = run_spammer()
    a = sc.hosts[0]
    assert spammer.router.rerrs_spammed >= 1
    assert sc.metrics.verdicts["rerr.accepted"] >= 1           # initial acceptance
    assert sc.metrics.verdicts["rerr.reporter_suspected"] >= 1  # then tracked
    assert a.router.credits.is_suspect(spammer.ip)


def test_traffic_mostly_recovers_despite_spam():
    """Each spam episode costs at most the packet in flight; the flow
    survives (paper: route around the hostile area)."""
    sc, spammer, traffic = run_spammer()
    assert traffic.delivered >= traffic.count - 2


def test_spam_plus_drop_still_recovers():
    sc, spammer, traffic = run_spammer(also_drop=True)
    assert traffic.delivered >= traffic.count - 2
    assert sc.hosts[0].router.credits.is_suspect(spammer.ip)


def test_spammer_starved_after_suspicion():
    """Once suspected, routes through the spammer stop being chosen."""
    sc, spammer, traffic = run_spammer(count=30)
    spam_times = [
        e.time for e in sc.trace.events
        if e.node == "spammer" and e.kind == "send" and e.msg_type == "RERR"
    ]
    assert spam_times
    assert max(spam_times) < sc.sim.now * 0.75  # no spam opportunities late


def test_hostile_mode_with_stable_cache_starves_spammer_immediately():
    """With DSR's normal long-lived route cache, hostile mode deflects the
    flow permanently after the spammer's very first report."""
    sc, spammer, traffic = run_spammer(hostile=True, route_cache_ttl=60.0)
    assert traffic.delivered == traffic.count
    # A handful of early shots while the detour is still unproven, then
    # starved for the rest of the run.
    assert spammer.router.rerrs_spammed <= 5


def test_offpath_forged_rerr_rejected_by_on_route_check():
    sc = two_path_scenario(seed=83, hostile_mode=True).build()
    spammer = add_rerr_spammer(sc, (100.0, -140.0))  # adjacent to n0, off path
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[1]
    a.router.send_data(b.ip, b"warm-up")
    sc.run(duration=10.0)
    assert sc.metrics.delivered(a.ip, b.ip) == 1

    # The spammer (never on a->b routes) forges a report about n2->n1.
    spammer.router.forge_offpath_rerr(a.ip, sc.hosts[2].ip)
    sc.run(duration=5.0)
    assert sc.metrics.verdicts["rerr.rejected.not_on_route"] >= 1
    # Routes are untouched.
    assert a.router.cache.has_route(b.ip, sc.sim.now)


def test_rerr_threshold_config_controls_sensitivity():
    """A higher suspicion threshold tolerates more reports before penalty."""
    sc_low, spam_low, _ = run_spammer(seed=5, rerr_suspicion_threshold=2)
    sc_high, spam_high, _ = run_spammer(seed=5, rerr_suspicion_threshold=50)
    a_low = sc_low.hosts[0]
    a_high = sc_high.hosts[0]
    assert a_low.router.credits.is_suspect(spam_low.ip)
    assert not a_high.router.credits.is_suspect(spam_high.ip)
