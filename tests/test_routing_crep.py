"""Integration tests for cached route replies (CREP, Section 3.3)."""

import pytest

from tests.conftest import chain_scenario


def test_crep_answers_from_cache():
    """S' learns a route to D from S's cache without reaching D."""
    sc = chain_scenario(n=5, seed=7).build()
    sc.bootstrap_all()
    s_prime, s, d = sc.hosts[0], sc.hosts[1], sc.hosts[4]

    # Step 1: S (n1) discovers D (n4) first and caches the route.
    s.router.send_data(d.ip, b"warm-up")
    sc.run(duration=5.0)
    assert s.router.cache.best_shareable(d.ip, sc.sim.now) is not None

    # Step 2: S' (n0) asks for D; S answers with a CREP.
    delivered = []
    s_prime.router.send_data(d.ip, b"via-cache", on_delivered=lambda: delivered.append(1))
    sc.run(duration=10.0)
    assert delivered == [1]
    assert sc.metrics.verdicts["crep.accepted"] >= 1
    assert sc.metrics.creps_used >= 1
    # S' cached the spliced route: n1, n2, n3 between n0 and n4.
    routes = s_prime.router.cache.routes_to(d.ip, sc.sim.now)
    assert any(r.route == (sc.hosts[1].ip, sc.hosts[2].ip, sc.hosts[3].ip)
               for r in routes)


def test_crep_learned_route_is_not_reshareable():
    sc = chain_scenario(n=5, seed=7).build()
    sc.bootstrap_all()
    s_prime, s, d = sc.hosts[0], sc.hosts[1], sc.hosts[4]
    s.router.send_data(d.ip, b"warm-up")
    sc.run(duration=5.0)
    s_prime.router.send_data(d.ip, b"via-cache")
    sc.run(duration=10.0)
    if sc.metrics.verdicts["crep.accepted"]:
        # The second-hand route must not be shareable onward.
        assert s_prime.router.cache.best_shareable(d.ip, sc.sim.now) is None


def test_crep_disabled_by_config():
    sc = chain_scenario(n=5, seed=7, enable_crep=False).build()
    sc.bootstrap_all()
    s_prime, s, d = sc.hosts[0], sc.hosts[1], sc.hosts[4]
    s.router.send_data(d.ip, b"warm-up")
    sc.run(duration=5.0)
    s_prime.router.send_data(d.ip, b"direct")
    sc.run(duration=10.0)
    assert sc.metrics.creps_used == 0
    assert sc.metrics.delivered(s_prime.ip, d.ip) == 1  # normal RREP path


def test_forged_crep_cached_leg_rejected():
    """A CREP whose cached leg is not signed by D fails verification at S'."""
    sc = chain_scenario(n=4, seed=7).build()
    sc.bootstrap_all()
    s_prime, mallory, d = sc.hosts[0], sc.hosts[1], sc.hosts[3]

    # Mallory pretends to hold a cached route to D.
    from repro.messages import signing
    from repro.messages.routing import CREP

    # Trigger a real discovery so a pending discovery exists at S'
    # (created synchronously; do not run the sim or it may complete).
    s_prime.router.discover(d.ip)
    disc = s_prime.router._pending_discovery[d.ip]

    fake_cached_route = (sc.hosts[2].ip,)
    crep = CREP(
        sprime_ip=s_prime.ip,
        sip=mallory.ip,
        dip=d.ip,
        fresh_seq=disc.seq,
        fresh_route=(),
        fresh_signature=mallory.sign(
            signing.crep_fresh_leg_payload(s_prime.ip, disc.seq, ())
        ),
        fresh_public_key=mallory.public_key,
        fresh_rn=mallory.cga_params.rn,
        cached_seq=1,
        cached_route=fake_cached_route,
        # Signed by mallory, not by D: the cached-leg CGA check must fail.
        cached_signature=mallory.sign(
            signing.crep_cached_leg_payload(mallory.ip, 1, fake_cached_route)
        ),
        cached_public_key=mallory.public_key,
        cached_rn=mallory.cga_params.rn,
    )
    mallory.unicast_ip(s_prime.ip, crep)
    sc.run(duration=1.0)
    assert sc.metrics.verdicts["crep.rejected.cached_bad_cga"] >= 1


def test_crep_loop_splice_falls_back_to_relay():
    """If splicing would revisit a node, the holder relays instead."""
    sc = chain_scenario(n=4, seed=7).build()
    sc.bootstrap_all()
    a, b, c, d = sc.hosts
    # b discovers a: cached route at b toward a is direct (no hops).
    b.router.send_data(a.ip, b"x")
    sc.run(duration=5.0)
    # Now d discovers a; the RREQ arrives at b via c, fresh route (c, b)...
    # wait: fresh_route for b as holder = hops d->...->b = (c,). Splice:
    # (c,) + (b,) + () -> full path d, c, b, a: loop-free, CREP fires.
    delivered = []
    d.router.send_data(a.ip, b"y", on_delivered=lambda: delivered.append(1))
    sc.run(duration=10.0)
    assert delivered == [1]


def test_stale_crep_rejected():
    """A CREP answering no live discovery (wrong seq) is rejected."""
    sc = chain_scenario(n=5, seed=7).build()
    sc.bootstrap_all()
    s_prime, s, d = sc.hosts[0], sc.hosts[1], sc.hosts[4]
    s.router.send_data(d.ip, b"warm-up")
    sc.run(duration=5.0)
    s_prime.router.send_data(d.ip, b"first")
    sc.run(duration=10.0)
    creps = [e.payload for e in sc.trace.events
             if e.kind == "recv" and e.msg_type == "CREP" and e.node == s_prime.name]
    if not creps:
        pytest.skip("no CREP captured in this topology/seed")
    # Replay the old CREP after its grace window expired.
    sc.run(duration=5.0)
    from repro.phy.medium import Frame

    s_prime._on_frame(Frame(s.link_id, s_prime.link_id, s.ip, creps[-1], 10))
    sc.run(duration=1.0)
    assert sc.metrics.verdicts["crep.rejected.stale_seq"] >= 1
