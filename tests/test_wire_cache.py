"""Encode-once wire cache: every distinct message encodes at most once.

Messages are immutable wire objects, so ``Message.wire_bytes()`` caches
the codec output on the instance; ``wire_size``/``_trace_send``/payload
embedding all reuse it.  ``repro.messages.codec.encode_call_count()``
counts *actual* encoder executions (cache hits excluded), which is what
lets these tests -- and the PHY benchmark -- assert the reduction
instead of eyeballing it.
"""

from repro.ipv6.address import IPv6Address
from repro.messages.codec import decode_message, encode_call_count, encode_message, wire_size
from repro.messages.ndp import NeighborAdvertisement, NeighborSolicitation
from repro.metrics.collector import MetricsCollector
from repro.scenarios import ScenarioBuilder

TARGET = IPv6Address("fec0::1234")


def test_wire_bytes_encodes_once_and_round_trips():
    msg = NeighborSolicitation(target=TARGET, domain_name="host.manet")
    base = encode_call_count()
    first = msg.wire_bytes()
    assert encode_call_count() - base == 1
    # cache hits: same object back, no further encoder executions
    assert msg.wire_bytes() is first
    assert msg.wire_size() == len(first)
    assert wire_size(msg) == len(first)
    assert encode_call_count() - base == 1
    # the cached bytes are the real wire form
    assert first == encode_message(msg)
    assert decode_message(first) == msg


def test_replace_starts_with_a_cold_cache():
    msg = NeighborSolicitation(target=TARGET, hop_limit=3)
    original = msg.wire_bytes()
    relayed = msg.replace(hop_limit=2)
    assert relayed.wire_bytes() != original  # re-encoded, new bytes
    assert msg.wire_bytes() is original  # original cache untouched


def test_wire_cache_is_invisible_to_equality():
    a = NeighborAdvertisement(target=TARGET)
    b = NeighborAdvertisement(target=TARGET)
    a.wire_bytes()
    assert a == b  # the memo attribute is not a dataclass field


def test_node_send_path_reuses_the_cache():
    """Sending (and re-forwarding) one message copy encodes it once,
    however many times it crosses ``_trace_send``."""
    sc = ScenarioBuilder(seed=3).grid(9, spacing=180.0).build()
    msgs = [
        NeighborSolicitation(target=TARGET, domain_name=f"n{i}")
        for i in range(len(sc.hosts))
    ]
    base = encode_call_count()
    for node, msg in zip(sc.hosts, msgs):
        node.broadcast(msg)
    for node, msg in zip(sc.hosts, msgs):
        node.broadcast(msg)  # re-flood of the *same* copy: cache hit
    sc.sim.run()
    assert encode_call_count() - base == len(msgs)
    # byte accounting still sees the correct size for every send
    assert sc.metrics.bytes_sent["NS"] == 2 * sum(m.wire_size() for m in msgs)
    assert sc.metrics.msgs_sent["NS"] == 2 * len(msgs)


def test_metrics_collector_snapshots_encode_calls():
    before = MetricsCollector()
    msg = NeighborSolicitation(target=TARGET, domain_name="snapshot")
    msg.wire_bytes()
    msg.wire_bytes()
    assert before.encode_calls == 1
    assert before.summary()["encode_calls"] == 1
    after = MetricsCollector()  # created later: sees none of the above
    assert after.encode_calls == 0
    merged = MetricsCollector.merge([before, after])
    assert merged.encode_calls == 1


def test_freeze_prevents_sequential_run_double_count():
    """Collectors from back-to-back runs in one process must be frozen
    at their own run boundaries: a still-live earlier collector's window
    extends over the later run, double-counting its encodes on merge."""
    a = MetricsCollector()
    NeighborSolicitation(target=TARGET, domain_name="run-a").wire_bytes()
    a.freeze()  # run A ends here
    a.freeze()  # idempotent
    b = MetricsCollector()
    NeighborSolicitation(target=TARGET, domain_name="run-b").wire_bytes()
    b.freeze()
    assert a.encode_calls == 1  # run B's encode is not absorbed into A
    assert b.encode_calls == 1
    assert MetricsCollector.merge([a, b]).encode_calls == 2


def test_merged_collector_is_frozen():
    """A merged collector reports its children's totals at merge time
    and never accrues encodes that happen afterwards."""
    child = MetricsCollector()
    NeighborSolicitation(target=TARGET, domain_name="frozen-a").wire_bytes()
    merged = MetricsCollector.merge([child])
    assert merged.encode_calls == 1
    NeighborSolicitation(target=TARGET, domain_name="frozen-b").wire_bytes()
    assert merged.encode_calls == 1  # unrelated later encode: not counted
    assert child.encode_calls == 2  # the live child still counts
