"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTimer, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    t = Timer(sim, fired.append, "x")
    t.start(2.0)
    sim.run()
    assert fired == ["x"]


def test_timer_cancel():
    sim = Simulator()
    fired = []
    t = Timer(sim, fired.append, "x")
    t.start(2.0)
    t.cancel()
    sim.run()
    assert fired == []
    assert not t.armed


def test_timer_restart_supersedes_old_deadline():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(5.0)
    t.start(1.0)  # restart: old 5s deadline must not fire
    sim.run()
    assert fired == [1.0]


def test_timer_armed_and_deadline():
    sim = Simulator()
    t = Timer(sim, lambda: None)
    assert not t.armed and t.deadline is None
    t.start(3.0)
    assert t.armed and t.deadline == 3.0
    sim.run()
    assert not t.armed


def test_timer_can_rearm_from_callback():
    sim = Simulator()
    fired = []

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            t.start(1.0)

    t = Timer(sim, cb)
    t.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_timer_ticks_at_interval():
    sim = Simulator()
    times = []
    pt = PeriodicTimer(sim, 2.0, lambda: times.append(sim.now))
    pt.start()
    sim.run(until=7.0)
    assert times == [2.0, 4.0, 6.0]
    assert pt.ticks == 3


def test_periodic_timer_initial_delay():
    sim = Simulator()
    times = []
    pt = PeriodicTimer(sim, 2.0, lambda: times.append(sim.now))
    pt.start(initial_delay=0.5)
    sim.run(until=5.0)
    assert times == [0.5, 2.5, 4.5]


def test_periodic_timer_stop():
    sim = Simulator()
    times = []
    pt = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
    pt.start()
    sim.schedule(3.5, pt.stop)
    sim.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert not pt.running


def test_periodic_timer_stop_from_callback():
    sim = Simulator()
    count = []

    def cb():
        count.append(1)
        if len(count) == 2:
            pt.stop()

    pt = PeriodicTimer(sim, 1.0, cb)
    pt.start()
    sim.run(until=10.0)
    assert len(count) == 2


def test_periodic_timer_jitter_bounds():
    sim = Simulator(seed=3)
    times = []
    pt = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now), jitter=0.1)
    pt.start()
    sim.run(until=100.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(9.0 <= g <= 11.0 for g in gaps)
    assert len(set(gaps)) > 1  # actually jittered


def test_periodic_timer_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 1.0, lambda: None, jitter=1.0)


def test_periodic_timer_double_start_ignored():
    sim = Simulator()
    times = []
    pt = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
    pt.start()
    pt.start()
    sim.run(until=2.5)
    assert times == [1.0, 2.0]
