"""Integration tests for route maintenance: RERR handling (Section 3.4)."""

import pytest

from tests.conftest import chain_scenario


def bootstrapped(n=5, seed=7, **config):
    sc = chain_scenario(n=n, seed=seed, **config).build()
    sc.bootstrap_all()
    return sc


def break_link(sc, node):
    """Physically remove a node from radio range."""
    sc.medium.set_position(node.link_id, (99999.0, 99999.0))


def test_broken_link_generates_verified_rerr():
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.send_data(b.ip, b"warm-up")
    sc.run(duration=5.0)
    assert sc.metrics.delivered(a.ip, b.ip) == 1

    break_link(sc, sc.hosts[3])  # the relay next to the destination
    failed = []
    a.router.send_data(b.ip, b"doomed", on_failed=lambda: failed.append(1))
    sc.run(duration=20.0)
    assert sc.metrics.verdicts["rerr.accepted"] >= 1
    assert sc.metrics.rerrs_received >= 1
    # Chain topology has no alternate path: the packet ultimately fails.
    assert failed == [1]


def test_rerr_invalidates_cached_route():
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.send_data(b.ip, b"warm-up")
    sc.run(duration=5.0)
    assert a.router.cache.has_route(b.ip, sc.sim.now)
    break_link(sc, sc.hosts[3])
    a.router.send_data(b.ip, b"doomed")
    sc.run(duration=20.0)
    assert not a.router.cache.has_route(b.ip, sc.sim.now)


def test_offpath_forged_rerr_rejected():
    """A RERR whose reporter is not on any of S's routes is rejected."""
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.send_data(b.ip, b"warm-up")
    sc.run(duration=5.0)

    # n3 is ON the route; craft a report from a node NOT on it: use the
    # DNS node's identity -- it is configured but never relays for a->b.
    mallory = sc.dns_node
    from repro.messages import signing
    from repro.messages.routing import RERR

    rerr = RERR(
        reporter_ip=mallory.ip,
        broken_next_hop=b.ip,
        signature=mallory.sign(signing.rerr_payload(mallory.ip, b.ip)),
        public_key=mallory.public_key,
        rn=mallory.cga_params.rn,
        sip=a.ip,
        return_route=(),
    )
    # Deliver straight to the source (the DNS is out of radio range of n0;
    # an attacker would route it -- transport is irrelevant to the check).
    from repro.phy.medium import Frame

    a._on_frame(Frame(mallory.link_id, a.link_id, mallory.ip, rerr, 10))
    sc.run(duration=2.0)
    assert sc.metrics.verdicts["rerr.rejected.not_on_route"] >= 1
    assert a.router.cache.has_route(b.ip, sc.sim.now)  # route survives


def test_rerr_with_forged_identity_rejected():
    """A RERR claiming another node's IP fails the CGA check at S."""
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.send_data(b.ip, b"warm-up")
    sc.run(duration=5.0)

    on_path = sc.hosts[2]   # victim identity (on the route)
    mallory = sc.hosts[1]   # attacker (also on path, but lies about who it is)
    from repro.messages import signing
    from repro.messages.routing import RERR

    rerr = RERR(
        reporter_ip=on_path.ip,  # claimed identity != attacker's key
        broken_next_hop=sc.hosts[3].ip,
        signature=mallory.sign(signing.rerr_payload(on_path.ip, sc.hosts[3].ip)),
        public_key=mallory.public_key,
        rn=mallory.cga_params.rn,
        sip=a.ip,
        return_route=(),
    )
    mallory.unicast_ip(a.ip, rerr)
    sc.run(duration=2.0)
    assert sc.metrics.verdicts["rerr.rejected.bad_cga"] >= 1
    assert a.router.cache.has_route(b.ip, sc.sim.now)


def test_replayed_rerr_after_route_rediscovery_is_harmless():
    """Replaying an old RERR can only re-kill an already-dead route."""
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.send_data(b.ip, b"warm-up")
    sc.run(duration=5.0)
    break_link(sc, sc.hosts[3])
    a.router.send_data(b.ip, b"doomed")
    sc.run(duration=20.0)
    rerrs = [e.payload for e in sc.trace.events
             if e.kind == "recv" and e.msg_type == "RERR" and e.node == a.name]
    assert rerrs
    # Heal the network and rediscover.
    sc.medium.set_position(sc.hosts[3].link_id, (600.0, 0.0))
    a.router.send_data(b.ip, b"healed")
    sc.run(duration=20.0)
    assert sc.metrics.delivered(a.ip, b.ip) == 2

    # Replay the captured RERR: reporter n2 IS on the rediscovered route
    # (chain!), so S accepts and rediscovers -- the paper's analysis:
    # "replay attacks make no sense" because the route is simply found
    # again; data keeps flowing.
    from repro.phy.medium import Frame

    a._on_frame(Frame(sc.hosts[1].link_id, a.link_id, sc.hosts[1].ip, rerrs[-1], 10))
    a.router.send_data(b.ip, b"after-replay")
    sc.run(duration=20.0)
    assert sc.metrics.delivered(a.ip, b.ip) == 3
