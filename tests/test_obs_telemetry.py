"""Runner telemetry: schema-valid sidecar, zero effect on results.

The two contracts: ``telemetry.jsonl`` always validates against the
schema (envelope invariants included), and enabling telemetry leaves
every deterministic artifact byte-identical -- it is a wall-clock
narration, not part of the result.
"""

from __future__ import annotations

import json
import os

import pytest

from conftest import campaign_artifacts, streaming_campaign_dict
from repro.campaign import CampaignRunner, CampaignSpec
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryTracker,
    validate_telemetry_file,
    validate_telemetry_record,
)


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(streaming_campaign_dict())


def _telemetry_records(out_dir) -> list[dict]:
    with open(os.path.join(out_dir, "telemetry.jsonl"),
              encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


# -- end to end --------------------------------------------------------------

def test_telemetry_sidecar_is_schema_valid_and_results_unchanged(tmp_path):
    plain_out = tmp_path / "plain"
    telem_out = tmp_path / "telem"
    CampaignRunner(_spec(), workers=2, out_dir=plain_out).run()
    CampaignRunner(_spec(), workers=2, out_dir=telem_out,
                   telemetry=True).run()

    # telemetry never changes the deterministic artifacts
    assert campaign_artifacts(telem_out) == campaign_artifacts(plain_out)
    # and the disabled run writes no sidecar at all
    assert not os.path.exists(plain_out / "telemetry.jsonl")

    count = validate_telemetry_file(telem_out / "telemetry.jsonl")
    records = _telemetry_records(telem_out)
    assert count == len(records)

    start, batches, finish = records[0], records[1:-1], records[-1]
    assert start["kind"] == "start"
    assert start["total_runs"] == 12
    assert start["resumed"] is False
    # unsharded executions carry the degenerate shard assignment
    assert start["shard_index"] == 0 and start["shard_count"] == 1
    assert finish["kind"] == "finish"
    assert finish["runs"] == 12 and finish["ok"] == 12
    assert finish["timeouts"] == 0 and finish["retries"] == 0
    assert finish["wall_s"] > 0 and finish["runs_per_sec"] > 0
    assert batches and all(b["kind"] == "batch" for b in batches)
    assert sum(b["runs"] for b in batches) == 12
    assert batches[-1]["done"] == 12
    # worker pids are real pool workers, not the coordinator
    assert all(b["worker_pid"] != os.getpid() for b in batches)
    seqs = [b["seq"] for b in batches]
    assert seqs == list(range(1, len(batches) + 1))


def test_telemetry_inline_runner_reports_own_pid(tmp_path):
    out = tmp_path / "inline"
    CampaignRunner(_spec(), workers=1, out_dir=out, telemetry=True).run()
    validate_telemetry_file(out / "telemetry.jsonl")
    batches = [r for r in _telemetry_records(out) if r["kind"] == "batch"]
    assert all(b["worker_pid"] == os.getpid() for b in batches)


def test_telemetry_on_resume_marks_resumed(tmp_path):
    out = tmp_path / "resume"
    CampaignRunner(_spec(), workers=1, out_dir=out).run()
    # resume with nothing left: still a valid telemetry story
    CampaignRunner(_spec(), workers=1, out_dir=out, telemetry=True).resume()
    validate_telemetry_file(out / "telemetry.jsonl")
    records = _telemetry_records(out)
    assert records[0]["resumed"] is True
    assert records[0]["pending_runs"] == 0
    assert records[-1]["kind"] == "finish"
    assert records[-1]["runs"] == 12


def test_telemetry_requires_out_dir():
    with pytest.raises(ValueError, match="output directory"):
        CampaignRunner(_spec(), workers=1, telemetry=True)


def test_cli_telemetry_flag(tmp_path, capsys):
    from repro.campaign.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(streaming_campaign_dict()))
    out = tmp_path / "out"
    assert main(["run", str(spec_path), "--workers", "1", "--quiet",
                 "--out", str(out), "--telemetry"]) == 0
    capsys.readouterr()
    assert validate_telemetry_file(out / "telemetry.jsonl") >= 3


# -- schema validation -------------------------------------------------------

def test_validate_record_rejects_bad_input():
    good = {"v": TELEMETRY_SCHEMA_VERSION, "kind": "finish", "runs": 1,
            "ok": 1, "failed": 0, "timeouts": 0, "retries": 0,
            "wall_s": 0.5, "runs_per_sec": 2.0}
    validate_telemetry_record(good)

    with pytest.raises(ValueError, match="schema version"):
        validate_telemetry_record({**good, "v": 99})
    with pytest.raises(ValueError, match="unknown telemetry record kind"):
        validate_telemetry_record({**good, "kind": "bogus"})
    with pytest.raises(ValueError, match="missing field"):
        bad = dict(good)
        del bad["runs"]
        validate_telemetry_record(bad)
    with pytest.raises(ValueError, match="must be int"):
        validate_telemetry_record({**good, "runs": "many"})
    with pytest.raises(ValueError, match="must be int"):
        validate_telemetry_record({**good, "runs": True})  # bool is not int
    with pytest.raises(ValueError, match="must be an object"):
        validate_telemetry_record([good])


def test_validate_file_enforces_envelope(tmp_path):
    path = tmp_path / "telemetry.jsonl"

    def write(records):
        with open(path, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(r) + "\n")

    finish = {"v": TELEMETRY_SCHEMA_VERSION, "kind": "finish", "runs": 0,
              "ok": 0, "failed": 0, "timeouts": 0, "retries": 0,
              "wall_s": 0.1, "runs_per_sec": 0.0}
    start = {"v": TELEMETRY_SCHEMA_VERSION, "kind": "start", "campaign": "t",
             "total_runs": 0, "pending_runs": 0, "workers": 1,
             "batch_size": 1, "resumed": False,
             "shard_index": 0, "shard_count": 1}

    write([start, finish])
    assert validate_telemetry_file(path) == 2

    write([finish])
    with pytest.raises(ValueError, match="first record must be 'start'"):
        validate_telemetry_file(path)

    write([start, start, finish])
    with pytest.raises(ValueError, match="duplicate 'start'"):
        validate_telemetry_file(path)

    write([start, finish, finish])
    with pytest.raises(ValueError, match="record after 'finish'"):
        validate_telemetry_file(path)

    write([])
    with pytest.raises(ValueError, match="empty telemetry"):
        validate_telemetry_file(path)


def test_validator_accepts_v2_files(tmp_path):
    # Forward compatibility: sidecars written before the shard work (v2
    # start records without shard fields, no merge kind) keep validating.
    path = tmp_path / "telemetry.jsonl"
    start_v2 = {"v": 2, "kind": "start", "campaign": "old",
                "total_runs": 1, "pending_runs": 1, "workers": 1,
                "batch_size": 1, "resumed": False}
    finish_v2 = {"v": 2, "kind": "finish", "runs": 1, "ok": 1, "failed": 0,
                 "timeouts": 0, "retries": 0, "wall_s": 0.1,
                 "runs_per_sec": 10.0}
    with open(path, "w", encoding="utf-8") as fh:
        for record in (start_v2, finish_v2):
            fh.write(json.dumps(record) + "\n")
    assert validate_telemetry_file(path) == 2

    validate_telemetry_record(start_v2)
    # ...but a v3 start without the shard fields is incomplete
    with pytest.raises(ValueError, match="shard_index"):
        validate_telemetry_record({**start_v2, "v": 3})


def test_merge_record_is_v3_only(tmp_path):
    merge = {"v": 3, "kind": "merge", "campaign": "t", "shards": 3,
             "per_shard_runs": [4, 4, 4], "conflicts": 0, "gaps": 0,
             "runs": 12, "total": 12, "complete": True}
    validate_telemetry_record(merge)
    with pytest.raises(ValueError, match="unknown telemetry record kind"):
        validate_telemetry_record({**merge, "v": 2})
    with pytest.raises(ValueError, match="per_shard_runs"):
        validate_telemetry_record({**merge, "per_shard_runs": ["4"]})

    # a merge record is a valid file opener (it narrates a merge, which
    # has no 'start')
    path = tmp_path / "telemetry.jsonl"
    path.write_text(json.dumps(merge) + "\n")
    assert validate_telemetry_file(path) == 1


def test_tracker_merge_event(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    tracker = TelemetryTracker(path)
    tracker.merge(campaign="t", shards=2, per_shard_runs=[6, 6],
                  conflicts=0, gaps=0, runs=12, total=12, complete=True)
    tracker.close()
    assert validate_telemetry_file(path) == 1
    record = _telemetry_records(tmp_path)[0]
    assert record["kind"] == "merge"
    assert record["v"] == TELEMETRY_SCHEMA_VERSION
    assert record["per_shard_runs"] == [6, 6]


def test_tracker_writes_are_immediately_durable(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    tracker = TelemetryTracker(path)
    tracker.start(campaign="t", total_runs=2, pending_runs=2,
                  workers=1, batch_size=1, resumed=False)
    # before close: the start record is already on disk (fsync'd)
    with open(path, encoding="utf-8") as fh:
        assert json.loads(fh.readline())["kind"] == "start"
    tracker.batch(runs=1, ok=1, failed=0, wall_s=0.01, worker_pid=1,
                  done=1, total=2)
    tracker.finish(runs=2, ok=2, failed=0, timeouts=0, retries=0,
                   wall_s=0.02)
    tracker.close()
    tracker.close()  # idempotent
    assert validate_telemetry_file(path) == 3
