"""Unit tests for H(PK, rn) and the generic hash."""

import pytest

from repro.crypto.hashes import CGA_HASH_BITS, H, cga_hash, sha256_int


def test_cga_hash_is_64_bit():
    v = cga_hash(b"some-public-key", 12345)
    assert 0 <= v < (1 << CGA_HASH_BITS)


def test_cga_hash_deterministic():
    assert cga_hash(b"pk", 1) == cga_hash(b"pk", 1)


def test_cga_hash_sensitive_to_key_and_rn():
    base = cga_hash(b"pk", 1)
    assert cga_hash(b"pk", 2) != base
    assert cga_hash(b"pj", 1) != base


def test_cga_hash_rejects_out_of_range_rn():
    with pytest.raises(ValueError):
        cga_hash(b"pk", -1)
    with pytest.raises(ValueError):
        cga_hash(b"pk", 1 << 64)
    # boundary fine
    cga_hash(b"pk", (1 << 64) - 1)


def test_cga_hash_no_concatenation_ambiguity():
    """(b"ab", n) and (b"a", m) must not collide by byte-shifting."""
    assert cga_hash(b"ab", 0x63) != cga_hash(b"abc", 0)


def test_generic_hash_length_prefixing():
    assert H(b"ab", b"c") != H(b"a", b"bc")
    assert H(b"abc") != H(b"ab", b"c")


def test_generic_hash_deterministic_32_bytes():
    assert H(b"x") == H(b"x")
    assert len(H(b"x")) == 32


def test_sha256_int_truncation():
    full = sha256_int(b"data", 256)
    top64 = sha256_int(b"data", 64)
    assert top64 == full >> 192
    with pytest.raises(ValueError):
        sha256_int(b"data", 0)
    with pytest.raises(ValueError):
        sha256_int(b"data", 257)


def test_domain_separation_between_hashes():
    """cga_hash and H never coincide on identical inputs (different tags)."""
    data = b"payload"
    assert cga_hash(data, 0) != int.from_bytes(H(data)[:8], "big")
