"""Black hole attack experiments (Section 4) as tests."""

import pytest

from repro.routing.dsr import PlainDSRRouter
from repro.scenarios.attacks import add_blackhole, add_identity_churner
from repro.scenarios.workloads import CBRTraffic
from tests.conftest import two_path_scenario


def run_blackhole(router=None, hostile=True, seed=5, count=20, forge=False,
                  churn=False, **config):
    builder = two_path_scenario(seed=seed, hostile_mode=hostile, **config)
    if router is not None:
        builder = builder.router(router)
    sc = builder.build()
    if churn:
        bh = add_identity_churner(sc, (200, 0), churn_interval=15.0)
    else:
        bh = add_blackhole(sc, (200, 0), forge_rreps=forge)
    sc.bootstrap_all()
    if churn:
        bh.router.start_churning()
    a, b = sc.hosts[0], sc.hosts[1]
    traffic = CBRTraffic(a, b.ip, interval=1.0, count=count)
    sc.run(duration=count * 1.0 + 40.0)
    return sc, bh, traffic


def test_secure_protocol_detects_and_routes_around_blackhole():
    sc, bh, traffic = run_blackhole()
    a = sc.hosts[0]
    # Losses are confined to the detection window ("after the network is
    # stable" the attack no longer succeeds -- paper, Section 4).
    assert traffic.delivered >= traffic.count - 5
    assert bh.router.packets_dropped > 0            # attack did fire
    assert a.router.credits.is_suspect(bh.ip)       # identity tracked
    assert sc.metrics.verdicts["probe.suspects_penalized"] >= 1


def test_blackhole_starved_after_detection():
    """After the penalty, the black hole stops seeing data traffic."""
    sc, bh, traffic = run_blackhole(count=30)
    drops_by_time = [
        e.time for e in sc.trace.events
        if e.node == "blackhole" and e.kind == "note" and "dropped" in e.detail
    ]
    assert drops_by_time
    # All drops happened early (before detection), none in the last half.
    assert max(drops_by_time) < sc.sim.now / 2


def test_forged_rrep_blackhole_rejected_by_secure_protocol():
    sc, bh, traffic = run_blackhole(forge=True)
    # The forged RREPs fail the CGA check at the source...
    assert bh.router.rreps_forged > 0
    assert sc.metrics.verdicts["rrep.rejected.bad_cga"] >= 1
    # ...so the attack degenerates and traffic flows (modulo the
    # detection window).
    assert traffic.delivered >= traffic.count - 5


def test_plain_dsr_accepts_forged_rrep():
    """Against plain DSR the attraction forgery works."""
    sc, bh, traffic = run_blackhole(router=PlainDSRRouter, hostile=False, forge=True)
    assert bh.router.rreps_forged > 0
    assert bh.router.packets_dropped > 0
    # No verdicts: nothing was verified, the forged route was believed.
    assert sc.metrics.verdicts["rrep.rejected.bad_cga"] == 0


def test_identity_churner_never_accumulates_trust():
    """Fresh identities start at the credit floor: churning buys nothing."""
    sc, bh, traffic = run_blackhole(churn=True, count=30)
    a = sc.hosts[0]
    assert bh.router.identities_used >= 1           # it did churn
    assert traffic.delivered >= traffic.count - 5   # network survives
    # Whatever identity it holds now has at most the initial credit.
    if bh.ip is not None:
        assert a.router.credits.credit(bh.ip) <= a.config.credit_initial


def test_partial_dropper_also_detected():
    """A stochastic (50%) dropper is still caught by probing eventually."""
    builder = two_path_scenario(seed=9, hostile_mode=True,
                                probe_trigger_failures=2)
    sc = builder.build()
    bh = add_blackhole(sc, (200, 0), drop_probability=0.5)
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[1]
    traffic = CBRTraffic(a, b.ip, interval=1.0, count=40)
    sc.run(duration=90.0)
    assert traffic.delivered >= 36  # most packets get through
    assert bh.router.packets_dropped > 0
