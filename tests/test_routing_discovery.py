"""Integration tests for secure route discovery (Section 3.3)."""

import pytest

from repro.routing.bsar_like import EndpointOnlyRouter
from repro.routing.dsr import PlainDSRRouter
from tests.conftest import chain_scenario


def bootstrapped(n=5, seed=7, router=None, **config):
    builder = chain_scenario(n=n, seed=seed, **config)
    if router is not None:
        builder = builder.router(router)
    sc = builder.build()
    sc.bootstrap_all()
    return sc


def test_discovery_finds_multi_hop_route():
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    routes = a.router.cache.routes_to(b.ip, sc.sim.now)
    assert routes
    # Chain: the only path is through n1, n2, n3 in order.
    assert routes[0].route == (sc.hosts[1].ip, sc.hosts[2].ip, sc.hosts[3].ip)
    assert sc.metrics.discoveries_succeeded == 1


def test_rreq_carries_verifiable_srr_entries():
    sc = bootstrapped(n=4)
    a, b = sc.hosts[0], sc.hosts[3]
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    # The destination verified the source and every intermediate hop.
    assert sc.metrics.verdicts["rreq.accepted"] >= 1
    assert sc.metrics.verdicts["rrep.accepted"] >= 1
    # SRR entries were actually signed: verify count grew with hops.
    assert sc.metrics.crypto_total("verify") >= 3


def test_destination_rejects_tampered_hop(monkeypatch):
    """If any SRR entry is corrupted in flight, D must reject the RREQ."""
    sc = bootstrapped(n=4)
    a, b = sc.hosts[0], sc.hosts[3]
    relay = sc.hosts[1]
    orig_relay = type(relay.router)._relay_rreq

    def corrupt_relay(self, msg):
        # Sign over the wrong sequence number: a spliced/stale entry.
        from repro.messages import signing
        from repro.messages.routing import SRREntry

        bad = SRREntry(
            ip=self.node.ip,
            signature=self.node.sign(
                signing.srr_entry_payload(self.node.ip, msg.seq + 1)
            ),
            public_key=self.node.public_key,
            rn=self._own_rn(),
        )
        self.node.broadcast(msg.append_entry(bad))

    monkeypatch.setattr(type(relay.router), "_relay_rreq", corrupt_relay)
    a.router.discover(b.ip)
    sc.run(duration=3.0)
    assert sc.metrics.verdicts["rreq.rejected.hop_bad_signature"] >= 1


def test_source_rejects_tampered_rrep_route(monkeypatch):
    """A relay shortening the returned route invalidates D's signature."""
    sc = bootstrapped(n=4)
    a, b = sc.hosts[0], sc.hosts[3]
    relay = sc.hosts[1]

    from repro.messages.routing import RREP

    orig_on_rrep = relay.router._on_rrep

    def tamper(frame, msg):
        if msg.sip == a.ip and len(msg.route) > 1:
            msg = msg.replace(route=msg.route[:1] + msg.route[2:])  # drop a hop
        orig_on_rrep(frame, msg)

    relay._handlers[RREP] = [tamper]
    a.router.discover(b.ip)
    sc.run(duration=10.0)
    assert sc.metrics.verdicts["rrep.rejected.bad_signature"] >= 1


def test_discovery_retries_then_fails_for_unreachable():
    from repro.ipv6.address import IPv6Address

    sc = bootstrapped(n=3, rreq_timeout=0.5, rreq_max_retries=2)
    a = sc.hosts[0]
    phantom = IPv6Address("fec0::dead:beef")
    failures = []
    a.router.send_data(phantom, b"x", on_failed=lambda: failures.append(1))
    sc.run(duration=10.0)
    assert failures == [1]
    assert sc.metrics.discoveries_started == 1
    assert sc.metrics.discoveries_succeeded == 0
    # 1 original + 2 retries, all flooded.
    rreq_sends = [e for e in sc.trace.events
                  if e.kind == "send" and e.msg_type == "RREQ" and e.node == "n0"]
    assert len(rreq_sends) == 3


def test_plain_dsr_discovers_without_signatures():
    sc = bootstrapped(n=4, router=PlainDSRRouter)
    a, b = sc.hosts[0], sc.hosts[3]
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    assert a.router.cache.has_route(b.ip, sc.sim.now)
    # No signing happened during discovery on the plain path: the only
    # crypto is bootstrap's (AREP defence would be zero here anyway).
    rreq = next(e.payload for e in sc.trace.events
                if e.kind == "send" and e.msg_type == "RREQ")
    assert rreq.source_signature == b""


def test_endpoint_only_router_skips_hop_signatures():
    sc = bootstrapped(n=4, router=EndpointOnlyRouter)
    a, b = sc.hosts[0], sc.hosts[3]
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    assert a.router.cache.has_route(b.ip, sc.sim.now)
    relayed = [e.payload for e in sc.trace.events
               if e.kind == "send" and e.msg_type == "RREQ" and e.payload.srr]
    assert relayed
    # Host entries are unsigned (the DNS node always relays securely and
    # signs its own, so restrict the check to EndpointOnly hosts).
    host_ips = {h.ip for h in sc.hosts}
    host_entries = [e for m in relayed for e in m.srr if e.ip in host_ips]
    assert host_entries
    assert all(entry.signature == b"" for entry in host_entries)


def test_duplicate_rreqs_not_rebroadcast():
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    # Each of the 3 intermediates + dns relays the flood exactly once.
    sends = {}
    for e in sc.trace.events:
        if e.kind == "send" and e.msg_type == "RREQ":
            sends[e.node] = sends.get(e.node, 0) + 1
    assert all(count == 1 for count in sends.values()), sends


def test_hop_limit_bounds_flood():
    sc = bootstrapped(n=5, hop_limit=2)
    a, b = sc.hosts[0], sc.hosts[4]  # 4 hops away: unreachable with TTL 2
    a.router.discover(b.ip)
    sc.run(duration=5.0)
    assert not a.router.cache.has_route(b.ip, sc.sim.now)
