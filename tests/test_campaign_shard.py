"""Sharded campaign execution and ``campaign merge``.

The headline contract: a campaign split across shards and fused with
``campaign merge`` produces artifacts *byte-identical* to a single-host
run of the same spec -- and the merge is idempotent, order-independent,
refuses mismatched provenance, quarantines conflicting duplicates, and
degrades gracefully (resumable checkpoint + gap manifest) when shards
are missing.
"""

from __future__ import annotations

import json
import os

import pytest

from conftest import campaign_artifacts, streaming_campaign_dict, truncate_jsonl
from repro.campaign import CampaignRunner, CampaignSpec, MergeError
from repro.campaign.merge import (
    MERGE_CONFLICTS,
    MERGE_GAPS,
    discover_shard_dirs,
    merge_shards,
    validate_merge_conflicts_file,
)
from repro.campaign.runner import (
    EXECUTOR_REGISTRY,
    InlineExecutor,
    create_executor,
)
from repro.campaign.shard import (
    load_shard_manifest,
    parse_shard,
    shard_payloads,
    spec_fingerprint,
    validate_shard_manifest,
)


def _spec(**overrides) -> CampaignSpec:
    return CampaignSpec.from_dict(streaming_campaign_dict(**overrides))


def _run_single_host(out_dir) -> None:
    CampaignRunner(_spec(), workers=1, out_dir=out_dir).run()


def _run_shards(parent, count: int = 3, **spec_overrides) -> list[str]:
    """Execute every shard of an N-way split into ``parent``; returns dirs."""
    for index in range(count):
        spec = _spec(**spec_overrides)
        spec.shards, spec.shard_index = count, index
        CampaignRunner(spec, workers=1, out_dir=parent).run()
    return discover_shard_dirs(parent)


@pytest.fixture(scope="module")
def anchor(tmp_path_factory):
    """A single-host run of the reference spec: the byte-identity anchor."""
    out = tmp_path_factory.mktemp("anchor") / "campaign"
    _run_single_host(out)
    return campaign_artifacts(out)


# -- shard arithmetic --------------------------------------------------------

def test_parse_shard_accepts_and_rejects():
    assert parse_shard("0/3") == (0, 3)
    assert parse_shard(" 2/3 ") == (2, 3)
    assert parse_shard("0/1") == (0, 1)
    for bad in ("3/2", "3/3", "0/0", "x/y", "1", "1/", "/3", "-1/3", "1/3/5"):
        with pytest.raises(ValueError):
            parse_shard(bad)


def test_shard_partition_is_disjoint_and_covering():
    payloads = [r.to_dict() for r in _spec().expand()]
    slices = [shard_payloads(payloads, i, 3) for i in range(3)]
    seen = [p["index"] for s in slices for p in s]
    assert sorted(seen) == [p["index"] for p in payloads]
    assert len(seen) == len(set(seen))
    # seeds/run_ids come from the full expansion, never the split
    by_index = {p["index"]: p for p in payloads}
    for shard in slices:
        for p in shard:
            assert p["seed"] == by_index[p["index"]]["seed"]
            assert p["run_id"] == by_index[p["index"]]["run_id"]


def test_spec_validates_shard_assignment():
    with pytest.raises(ValueError, match="set together"):
        _spec(shards=3)
    with pytest.raises(ValueError, match="set together"):
        _spec(shard_index=0)
    with pytest.raises(ValueError, match=r"shard_index must be in"):
        _spec(shards=3, shard_index=3)
    with pytest.raises(ValueError, match="shards must be >= 1"):
        _spec(shards=0, shard_index=0)
    spec = _spec(shards=3, shard_index=2)
    assert (spec.shards, spec.shard_index) == (3, 2)
    # execution-only: folded out of the resume/merge fingerprint
    assert "shards" not in spec_fingerprint(spec.to_dict())
    assert spec_fingerprint(spec.to_dict()) == spec_fingerprint(
        _spec().to_dict()
    )


# -- the tentpole: split, merge, byte-compare --------------------------------

def test_three_shard_merge_is_byte_identical_to_single_host(tmp_path, anchor):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 3)
    assert len(shard_dirs) == 3

    # each shard left a complete, validated provenance manifest
    total = 0
    for i, shard_dir in enumerate(shard_dirs):
        manifest = load_shard_manifest(shard_dir)
        assert manifest["status"] == "complete"
        assert (manifest["shard_index"], manifest["shard_count"]) == (i, 3)
        assert manifest["total_runs"] == 12
        total += manifest["assigned_runs"]
        # a shard publishes no reports: one slice would mislead
        assert not os.path.exists(os.path.join(shard_dir, "report.json"))
    assert total == 12

    summary = merge_shards(_spec(), shard_dirs, parent)
    assert summary["complete"] is True
    assert summary["runs"] == summary["total"] == 12
    assert summary["conflicts"] == summary["gaps"] == 0
    assert sum(summary["per_shard_runs"]) == 12
    assert campaign_artifacts(parent) == anchor


def test_merge_is_idempotent_and_order_independent(tmp_path, anchor):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 3)

    out_a = tmp_path / "merge-forward"
    out_b = tmp_path / "merge-reversed"
    merge_shards(_spec(), shard_dirs, out_a)
    merge_shards(_spec(), list(reversed(shard_dirs)), out_b)
    assert campaign_artifacts(out_a) == campaign_artifacts(out_b) == anchor

    # merging again into the same directory changes nothing
    merge_shards(_spec(), shard_dirs, out_a)
    assert campaign_artifacts(out_a) == anchor

    # a merged directory is a plain campaign directory: re-merging it as
    # the sole input reproduces itself (closure under merge)
    out_c = tmp_path / "re-merge"
    merge_shards(_spec(), [out_a], out_c)
    assert campaign_artifacts(out_c) == anchor


def test_merged_directory_is_resumable(tmp_path, anchor):
    parent = tmp_path / "campaign"
    merge_shards(_spec(), _run_shards(parent, 3), parent)
    # the normalized spec.json + full results.jsonl resume as a no-op
    records = CampaignRunner(_spec(), workers=1, out_dir=parent).resume()
    assert len(records) == 12
    assert campaign_artifacts(parent) == anchor


def test_merge_refuses_foreign_spec(tmp_path):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 2)
    with pytest.raises(MergeError, match="different campaign spec"):
        merge_shards(_spec(seed=999), shard_dirs, parent)
    # nothing was written
    assert not os.path.exists(parent / "results.jsonl")


def test_merge_refuses_mixed_shard_counts(tmp_path):
    parent_a = tmp_path / "a"
    parent_b = tmp_path / "b"
    dirs_a = _run_shards(parent_a, 2)
    dirs_b = _run_shards(parent_b, 3)
    with pytest.raises(MergeError, match="disagree on the shard count"):
        merge_shards(_spec(), dirs_a + dirs_b[1:], tmp_path / "out")


def test_merge_refuses_missing_shard_without_allow_partial(tmp_path):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 3)
    with pytest.raises(MergeError, match="merge incomplete"):
        merge_shards(_spec(), shard_dirs[:2], tmp_path / "out")


def test_partial_merge_plus_resume_converges(tmp_path, anchor):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 3)

    out = tmp_path / "merged"
    summary = merge_shards(_spec(), shard_dirs[:2], out, allow_partial=True)
    assert summary["complete"] is False
    assert summary["runs"] == 8 and summary["gaps"] == 4

    with open(out / MERGE_GAPS, encoding="utf-8") as fh:
        gaps = json.load(fh)
    assert gaps["missing_indices"] == [2, 5, 8, 11]  # shard 2's slice
    assert gaps["merged_runs"] == 8 and gaps["total_runs"] == 12
    # no misleading reports on a partial artifact
    assert not os.path.exists(out / "report.json")

    # the gap manifest's promise: resume executes exactly the holes
    records = CampaignRunner(_spec(), workers=1, out_dir=out).resume()
    assert len(records) == 12
    assert campaign_artifacts(out) == anchor
    # ...and a re-merge over the healed directory removes the manifest
    merge_shards(_spec(), [out], out)
    assert not os.path.exists(out / MERGE_GAPS)
    assert campaign_artifacts(out) == anchor


def test_conflicting_duplicates_are_quarantined_never_merged(tmp_path, anchor):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 2)

    # forge an overlap: shard 1 also claims shard 0's run index 0, with
    # identical identity fields but a drifted summary -- a corrupted
    # checkpoint that per-record validation alone cannot catch
    with open(os.path.join(shard_dirs[0], "results.jsonl"),
              encoding="utf-8") as fh:
        victim = json.loads(fh.readline())
    forged = json.loads(json.dumps(victim))
    forged["summary"]["pdr"] = -1.0
    with open(os.path.join(shard_dirs[1], "results.jsonl"), "a",
              encoding="utf-8") as fh:
        fh.write(json.dumps(forged, sort_keys=True) + "\n")

    out = tmp_path / "merged"
    # neither copy can be trusted: without --allow-partial the merge refuses
    with pytest.raises(MergeError, match="merge incomplete"):
        merge_shards(_spec(), shard_dirs, out)

    summary = merge_shards(_spec(), shard_dirs, out, allow_partial=True)
    assert summary["conflicts"] == 1
    assert summary["gaps"] == 1 and summary["runs"] == 11
    assert validate_merge_conflicts_file(out / MERGE_CONFLICTS) == 2
    with open(out / MERGE_CONFLICTS, encoding="utf-8") as fh:
        entries = [json.loads(line) for line in fh]
    assert {e["index"] for e in entries} == {victim["index"]}
    assert len(entries) == 2  # BOTH copies kept as evidence
    # the conflicted run never reached the merged results
    merged = [json.loads(line) for line in
              open(out / "results.jsonl", encoding="utf-8")]
    assert victim["index"] not in {r["index"] for r in merged}

    # resume re-executes the conflicted run from the spec; the healed
    # campaign is byte-identical to a single-host run
    CampaignRunner(_spec(), workers=1, out_dir=out).resume()
    assert campaign_artifacts(out) == anchor


def test_identical_duplicates_dedup_silently(tmp_path, anchor):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 2)
    # byte-identical overlap (a retried shard upload): not a conflict
    with open(os.path.join(shard_dirs[0], "results.jsonl"),
              encoding="utf-8") as fh:
        first = fh.readline()
    with open(os.path.join(shard_dirs[1], "results.jsonl"), "a",
              encoding="utf-8") as fh:
        fh.write(first)
    out = tmp_path / "merged"
    summary = merge_shards(_spec(), shard_dirs, out)
    assert summary["complete"] is True and summary["conflicts"] == 0
    assert not os.path.exists(out / MERGE_CONFLICTS)
    assert campaign_artifacts(out) == anchor


def test_interrupted_shard_resumes_then_merges_identically(tmp_path, anchor):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 3)

    # crash shard 1 mid-write: drop all but 2 records, tear the third
    truncate_jsonl(os.path.join(shard_dirs[1], "results.jsonl"),
                   keep_lines=2, torn_bytes=17)
    spec = _spec()
    spec.shards, spec.shard_index = 3, 1
    CampaignRunner(spec, workers=1, out_dir=parent).resume()

    merge_shards(_spec(), shard_dirs, parent)
    assert campaign_artifacts(parent) == anchor


def test_resume_refuses_shard_assignment_mismatch(tmp_path):
    parent = tmp_path / "campaign"
    shard_dirs = _run_shards(parent, 2)
    # resuming a shard checkpoint as a different shard -- or unsharded --
    # would re-execute the wrong slice into the wrong place
    wrong = _spec()
    wrong.shards, wrong.shard_index = 2, 1
    runner = CampaignRunner(wrong, workers=1, out_dir=parent)
    runner.out_dir = shard_dirs[0]  # point shard 1 at shard 0's checkpoint
    with pytest.raises(ValueError, match="refusing to resume"):
        runner.resume()
    with pytest.raises(ValueError, match="refusing to resume"):
        CampaignRunner(_spec(), workers=1, out_dir=shard_dirs[0]).resume()


def test_shard_manifest_validation():
    good = {"v": 1, "campaign": "t", "fingerprint": "ab", "shard_index": 0,
            "shard_count": 2, "total_runs": 12, "assigned_runs": 6,
            "status": "running"}
    validate_shard_manifest(good)
    with pytest.raises(ValueError, match="schema version"):
        validate_shard_manifest({**good, "v": 99})
    with pytest.raises(ValueError, match="missing field"):
        validate_shard_manifest({k: v for k, v in good.items()
                                 if k != "fingerprint"})
    with pytest.raises(ValueError, match="out of range"):
        validate_shard_manifest({**good, "shard_index": 2})
    with pytest.raises(ValueError, match="status"):
        validate_shard_manifest({**good, "status": "done"})


# -- executors ---------------------------------------------------------------

def test_executor_backends_are_interchangeable(tmp_path):
    inline_out = tmp_path / "inline"
    local_out = tmp_path / "local"
    CampaignRunner(_spec(), workers=2, out_dir=inline_out,
                   executor="inline").run()
    CampaignRunner(_spec(), workers=2, out_dir=local_out,
                   executor="local").run()
    assert campaign_artifacts(inline_out) == campaign_artifacts(local_out)


def test_create_executor():
    assert set(EXECUTOR_REGISTRY) == {"local", "inline"}
    assert create_executor("inline", 4).name == "inline"
    assert create_executor("local", 4).name == "local"
    # the local backend degrades to inline at one worker
    assert isinstance(create_executor("local", 1), InlineExecutor)
    with pytest.raises(ValueError, match="unknown executor"):
        create_executor("cloud", 4)
    with pytest.raises(ValueError, match="unknown executor"):
        CampaignRunner(_spec(), executor="cloud")


# -- CLI ---------------------------------------------------------------------

def _write_spec(tmp_path) -> str:
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(streaming_campaign_dict()))
    return str(path)


def test_cli_rejects_malformed_inputs(tmp_path, capsys):
    from repro.campaign.cli import build_parser

    spec = _write_spec(tmp_path)
    for argv in (
        ["run", spec, "--workers", "0"],
        ["run", spec, "--workers", "-3"],
        ["run", spec, "--workers", "two"],
        ["run", spec, "--batch-size", "0"],
        ["run", spec, "--shard", "3/2"],
        ["run", spec, "--shard", "0/0"],
        ["run", spec, "--shard", "x/y"],
        ["run", spec, "--executor", "cloud"],
        ["resume", spec, "--shard", "2/2"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        # a one-line diagnostic after the usage block, never a traceback
        assert "Traceback" not in err
        assert err.rstrip().rsplit("\n", 1)[-1].startswith(
            "python -m repro.campaign"
        )
        assert "error:" in err


def test_cli_shard_run_and_merge_end_to_end(tmp_path, capsys, anchor):
    from repro.campaign.cli import main

    spec = _write_spec(tmp_path)
    out = tmp_path / "campaign"
    for i in range(3):
        assert main(["run", spec, "--workers", "1", "--quiet",
                     "--out", str(out), "--shard", f"{i}/3"]) == 0
    capsys.readouterr()
    assert main(["merge", spec, "--out", str(out), "--telemetry"]) == 0
    stdout = capsys.readouterr().out
    assert "Campaign aggregate" in stdout
    assert campaign_artifacts(out) == anchor

    from repro.obs.telemetry import validate_telemetry_file
    assert validate_telemetry_file(out / "telemetry.jsonl") == 1


def test_cli_merge_without_shards_exits_2(tmp_path, capsys):
    from repro.campaign.cli import main

    spec = _write_spec(tmp_path)
    assert main(["merge", spec, "--out", str(tmp_path / "empty")]) == 2
    assert "no shard" in capsys.readouterr().err


def test_cli_partial_merge_exits_3(tmp_path, capsys):
    from repro.campaign.cli import main

    spec = _write_spec(tmp_path)
    out = tmp_path / "campaign"
    assert main(["run", spec, "--workers", "1", "--quiet",
                 "--out", str(out), "--shard", "0/3"]) == 0
    capsys.readouterr()
    # refusal without --allow-partial...
    assert main(["merge", spec, "--out", str(out), "--quiet"]) == 2
    assert "merge incomplete" in capsys.readouterr().err
    # ...checkpoint + gap manifest with it
    assert main(["merge", spec, "--out", str(out), "--quiet",
                 "--allow-partial"]) == 3
    assert os.path.exists(out / MERGE_GAPS)
