"""Unit tests for the IPv6 address value type."""

import pytest

from repro.ipv6.address import IPv6Address


def test_construct_from_int_bytes_str_equivalence():
    a = IPv6Address("fec0::1")
    b = IPv6Address(a.value)
    c = IPv6Address(a.packed)
    d = IPv6Address(a)
    assert a == b == c == d


def test_parse_full_form():
    a = IPv6Address("fe80:0000:0000:0000:0202:b3ff:fe1e:8329")
    assert str(a) == "fe80::202:b3ff:fe1e:8329"


def test_parse_compressed_forms():
    assert IPv6Address("::").value == 0
    assert IPv6Address("::1").value == 1
    assert IPv6Address("fec0::").value == 0xFEC0 << 112
    assert IPv6Address("a::b").groups == (0xA, 0, 0, 0, 0, 0, 0, 0xB)


def test_format_compresses_longest_zero_run():
    assert str(IPv6Address("fec0:0:0:ffff:0:0:0:1")) == "fec0:0:0:ffff::1"
    assert str(IPv6Address("0:0:1:0:0:0:0:1")) == "0:0:1::1"


def test_format_no_compression_for_single_zero():
    assert str(IPv6Address("1:0:2:3:4:5:6:7")) == "1:0:2:3:4:5:6:7"


def test_roundtrip_str_parse():
    for text in ("::", "::1", "fec0::abcd", "1:2:3:4:5:6:7:8", "ff02::1"):
        assert str(IPv6Address(str(IPv6Address(text)))) == str(IPv6Address(text))


def test_parse_rejects_malformed():
    for bad in ("", ":::", "1::2::3", "12345::", "g::1", "1:2:3", "1:2:3:4:5:6:7:8:9"):
        with pytest.raises(ValueError):
            IPv6Address(bad)


def test_int_out_of_range_rejected():
    with pytest.raises(ValueError):
        IPv6Address(-1)
    with pytest.raises(ValueError):
        IPv6Address(1 << 128)


def test_bytes_wrong_length_rejected():
    with pytest.raises(ValueError):
        IPv6Address(b"\x00" * 15)


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        IPv6Address(3.14)


def test_packed_is_16_big_endian_bytes():
    a = IPv6Address("fec0::1")
    assert len(a.packed) == 16
    assert a.packed[0] == 0xFE and a.packed[1] == 0xC0 and a.packed[15] == 1
    assert bytes(a) == a.packed


def test_interface_id_and_subnet_id():
    a = IPv6Address((0xFEC0 << 112) | (0xABCD << 64) | 0x1122334455667788)
    assert a.interface_id == 0x1122334455667788
    assert a.subnet_id == 0xABCD


def test_high_bits():
    a = IPv6Address("fec0::")
    assert a.high_bits(10) == 0b1111111011
    assert a.high_bits(0) == 0
    assert a.high_bits(128) == a.value
    with pytest.raises(ValueError):
        a.high_bits(129)


def test_ordering_and_hash():
    a, b = IPv6Address(1), IPv6Address(2)
    assert a < b and b > a
    assert len({IPv6Address(1), IPv6Address(1), b}) == 2


def test_equality_with_other_types():
    assert IPv6Address(1) != 1
    assert not (IPv6Address(1) == "::1")
