"""End-to-end integration tests: full network lifecycle scenarios."""

import pytest

from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.workloads import CBRTraffic, PoissonTraffic, RequestResponse
from tests.conftest import chain_scenario


def test_full_lifecycle_bootstrap_register_resolve_communicate():
    """The paper's end-to-end story on one network."""
    sc = chain_scenario(n=5, seed=101).build()
    # 1. Network formation: everyone autoconfigures, two register names.
    sc.bootstrap_all(names={"n0": "alice.manet", "n4": "bob.manet"})
    sc.run(duration=8.0)
    assert sc.configured_count() == 5
    assert set(sc.dns_server.table.names()) == {"alice.manet", "bob.manet"}

    # 2. Alice resolves Bob securely.
    resolved = []
    sc.hosts[0].dns_client.resolve("bob.manet", resolved.append)
    sc.run(duration=10.0)
    assert resolved == [sc.hosts[4].ip]

    # 3. Alice talks to Bob over the 4-hop route.
    traffic = CBRTraffic(sc.hosts[0], resolved[0], interval=0.5, count=10)
    sc.run(duration=20.0)
    assert traffic.delivered == 10
    # Every ACK verified, every relay on the chosen route earned credit.
    assert sc.metrics.verdicts["ack.accepted"] >= 10
    credits = sc.hosts[0].router.credits
    route = sc.hosts[0].router.cache.routes_to(resolved[0], sc.sim.now)[0].route
    assert route  # multi-hop
    for relay_ip in route:
        assert credits.credit(relay_ip) > sc.hosts[0].config.credit_initial


def test_sixteen_node_grid_many_flows():
    sc = ScenarioBuilder(seed=103).grid(16, spacing=180).with_dns().build()
    sc.bootstrap_all()
    assert sc.configured_count() == 16
    flows = [
        CBRTraffic(sc.hosts[i], sc.hosts[15 - i].ip, interval=1.0, count=5)
        for i in range(4)
    ]
    sc.run(duration=40.0)
    for f in flows:
        assert f.delivered == 5
    assert sc.metrics.pdr() == 1.0


def test_lossy_network_still_functions():
    sc = (ScenarioBuilder(seed=107).chain(4, spacing=200)
          .radio(250, loss_rate=0.15).with_dns((300, 50)).build())
    sc.bootstrap_all()
    assert sc.configured_count() == 4
    t = CBRTraffic(sc.hosts[0], sc.hosts[3].ip, interval=1.0, count=15)
    sc.run(duration=60.0)
    assert t.delivered >= 12  # MAC + e2e retries absorb most loss


def test_rsa_backend_full_stack():
    """The entire protocol runs unchanged over real RSA signatures."""
    sc = (ScenarioBuilder(seed=109).chain(3, spacing=200)
          .with_dns((200, 50)).config(crypto_backend="rsa").build())
    sc.bootstrap_all(names={"n0": "alice.manet"})
    sc.run(duration=8.0)
    assert sc.configured_count() == 3
    done = []
    sc.hosts[0].router.send_data(sc.hosts[2].ip, b"rsa!",
                                 on_delivered=lambda: done.append(1))
    sc.run(duration=10.0)
    assert done == [1]
    assert sc.metrics.crypto_ops["rsa.sign"] > 0
    assert sc.metrics.crypto_ops["rsa.verify"] > 0


def test_mobile_network_random_waypoint():
    """Random-waypoint mobility: routes break and re-form; traffic flows."""
    sc = (ScenarioBuilder(seed=113).grid(9, spacing=150)
          .radio(250).with_dns()
          .random_waypoint(speed=(1.0, 3.0), pause=5.0)
          .build())
    sc.bootstrap_all()
    t = CBRTraffic(sc.hosts[0], sc.hosts[8].ip, interval=2.0, count=15)
    sc.run(duration=120.0)
    # Mobility at pedestrian speed over a dense grid: most packets arrive.
    assert t.delivered >= 10


def test_poisson_and_request_response_workloads():
    sc = chain_scenario(n=3, seed=127).build()
    sc.bootstrap_all()
    p = PoissonTraffic(sc.hosts[0], sc.hosts[2].ip, rate=2.0, count=10)
    rr = RequestResponse(sc.hosts[2], sc.hosts[0].ip, count=5, interval=1.0)
    sc.run(duration=40.0)
    assert p.delivered == 10
    assert rr.completed == 5
    assert rr.mean_rtt > 0


def test_determinism_end_to_end():
    """Identical seeds produce byte-identical histories."""
    def run_once():
        sc = chain_scenario(n=4, seed=131).build()
        sc.bootstrap_all(names={"n0": "a.manet"})
        t = CBRTraffic(sc.hosts[0], sc.hosts[3].ip, interval=1.0, count=5)
        sc.run(duration=20.0)
        return (
            [str(h.ip) for h in sc.hosts],
            dict(sc.metrics.verdicts),
            sc.metrics.msgs_sent["RREQ"],
            len(sc.trace.events),
            t.delivered,
        )

    assert run_once() == run_once()


def test_crypto_delay_charging_slows_transmissions():
    def mean_latency(charge):
        sc = chain_scenario(n=4, seed=137, charge_crypto_delay=charge).build()
        sc.bootstrap_all()
        a, b = sc.hosts[0], sc.hosts[3]
        a.router.send_data(b.ip, b"x")
        sc.run(duration=10.0)
        return sc.metrics.flows[(a.ip, b.ip)].mean_latency

    # Charged crypto time shows up in the discovery+delivery latency.
    assert mean_latency(True) >= mean_latency(False)


def test_scenario_builder_validation():
    with pytest.raises(ValueError):
        ScenarioBuilder(seed=1).build()  # no topology
    sc = ScenarioBuilder(seed=1).chain(2).build()
    assert sc.dns_node is None  # DNS optional
    with pytest.raises(KeyError):
        sc.host("nope")
