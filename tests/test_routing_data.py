"""Integration tests for the source-routed data plane and signed ACKs."""

import pytest

from tests.conftest import chain_scenario


def bootstrapped(n=5, seed=7, **config):
    sc = chain_scenario(n=n, seed=seed, **config).build()
    sc.bootstrap_all()
    return sc


def test_end_to_end_delivery_and_ack():
    sc = bootstrapped(n=5)
    a, b = sc.hosts[0], sc.hosts[4]
    delivered = []
    a.router.send_data(b.ip, b"payload", on_delivered=lambda: delivered.append(1))
    sc.run(duration=10.0)
    assert delivered == [1]
    assert sc.metrics.delivered(a.ip, b.ip) == 1
    assert sc.metrics.flows[(a.ip, b.ip)].acked == 1
    assert sc.metrics.verdicts["ack.accepted"] == 1


def test_latency_scales_with_hops():
    results = {}
    for n in (2, 5):
        sc = bootstrapped(n=n, seed=7)
        a, b = sc.hosts[0], sc.hosts[-1]
        a.router.send_data(b.ip, b"x" * 64)
        sc.run(duration=10.0)
        results[n] = sc.metrics.flows[(a.ip, b.ip)].mean_latency
    assert 0 < results[2] < results[5]


def test_credit_rewarded_on_ack():
    sc = bootstrapped(n=4)
    a, b = sc.hosts[0], sc.hosts[3]
    initial = a.config.credit_initial
    a.router.send_data(b.ip, b"one")
    sc.run(duration=5.0)
    for hop in (sc.hosts[1], sc.hosts[2]):
        assert a.router.credits.credit(hop.ip) == initial + 1
    # The destination itself is not a relay: no credit entry.
    assert a.router.credits.credit(b.ip) == initial


def test_multiple_packets_single_discovery():
    sc = bootstrapped(n=4)
    a, b = sc.hosts[0], sc.hosts[3]
    done = []
    for i in range(5):
        a.router.send_data(b.ip, bytes([i]), on_delivered=lambda: done.append(1))
    sc.run(duration=10.0)
    assert len(done) == 5
    assert sc.metrics.discoveries_started == 1  # route reused from cache


def test_delivery_to_direct_neighbor_needs_no_relay():
    sc = bootstrapped(n=2)
    a, b = sc.hosts[0], sc.hosts[1]
    a.router.send_data(b.ip, b"hi")
    sc.run(duration=5.0)
    assert sc.metrics.delivered(a.ip, b.ip) == 1
    routes = a.router.cache.routes_to(b.ip, sc.sim.now)
    assert routes and routes[0].route == ()


def test_forged_ack_rejected_and_no_credit():
    """An ACK signed by a non-destination is rejected (credit not minted)."""
    sc = bootstrapped(n=4)
    a, b = sc.hosts[0], sc.hosts[3]
    mallory = sc.hosts[1]
    a.router.discover(b.ip)
    sc.run(duration=3.0)
    route = a.router.cache.routes_to(b.ip, sc.sim.now)[0].route

    from repro.messages import signing
    from repro.messages.data import AckPacket

    seq = 999999
    # Install a pending packet so the forged ACK targets something real.
    from repro.messages.data import DataPacket
    from repro.routing.secure_dsr import PendingPacket

    a.router._pending_acks[(b.ip, seq)] = PendingPacket(
        packet=DataPacket(sip=a.ip, dip=b.ip, seq=seq, route=route),
        route=route,
    )
    forged = AckPacket(
        sip=a.ip, dip=b.ip, seq=seq, route=(),
        signature=mallory.sign(signing.ack_payload(a.ip, b.ip, seq)),
        public_key=mallory.public_key,
        rn=mallory.cga_params.rn,
    )
    mallory.unicast_ip(a.ip, forged)
    sc.run(duration=2.0)
    assert sc.metrics.verdicts["ack.rejected.bad_cga"] >= 1
    assert (b.ip, seq) in a.router._pending_acks  # still pending
    assert a.router.credits.credit(mallory.ip) == a.config.credit_initial


def test_packet_retry_after_silent_loss():
    """Losing every frame once still delivers thanks to MAC + e2e retries."""
    sc = chain_scenario(n=3, seed=43).radio(250, loss_rate=0.2).build()
    sc.bootstrap_all()
    a, b = sc.hosts[0], sc.hosts[2]
    done, failed = [], []
    for _ in range(10):
        a.router.send_data(b.ip, b"x", on_delivered=lambda: done.append(1),
                           on_failed=lambda: failed.append(1))
    sc.run(duration=30.0)
    assert len(done) >= 8  # 20% loss, 3 MAC retries + 2 e2e retries
    assert len(done) + len(failed) == 10


def test_data_to_unconfigured_source_raises():
    sc = chain_scenario(n=2, seed=7).build()  # nobody bootstrapped
    with pytest.raises(RuntimeError):
        sc.hosts[0].router.send_data(sc.hosts[1].ip or
                                     __import__("repro.ipv6.address", fromlist=["IPv6Address"]).IPv6Address(1),
                                     b"x")


def test_duplicate_data_delivery_suppressed():
    """Retransmitted packets deliver the payload to the app only once."""
    sc = bootstrapped(n=3)
    a, b = sc.hosts[0], sc.hosts[2]
    seen = []
    from repro.messages.dns import DNSQuery  # any app message works

    a.router.send_data(b.ip, b"raw-payload")
    sc.run(duration=5.0)
    flow = sc.metrics.flows[(a.ip, b.ip)]
    assert flow.delivered == 1
    # Manually replay the same data packet at the destination.
    data_events = [e.payload for e in sc.trace.events
                   if e.kind == "recv" and e.msg_type == "DATA" and e.node == b.name]
    assert data_events
    from repro.phy.medium import Frame

    b._on_frame(Frame(sc.hosts[1].link_id, b.link_id, sc.hosts[1].ip,
                      data_events[-1], 10))
    sc.run(duration=1.0)
    assert sc.metrics.flows[(a.ip, b.ip)].delivered == 1  # not double-counted
