"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=5)
    sim.schedule(1.0, fired.append, "high", priority=-5)
    sim.run()
    assert fired == ["high", "low"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_zero_delay_event_runs_after_current_callback():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer-start")
        sim.schedule(0.0, lambda: order.append("inner"))
        order.append("outer-end")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer-start", "outer-end", "inner"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0  # clock advanced to the epoch boundary
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_when_queue_empty():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_bounds_execution():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_events_executed_counter_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_executed == 1


def test_drain_cancelled_compacts_heap():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for h in handles[:7]:
        h.cancel()
    assert sim.cancelled_pending == 7
    dropped = sim.drain_cancelled()
    assert dropped == 7
    assert sim.events_pending == 3
    assert sim.cancelled_pending == 0
    sim.run()
    assert sim.events_executed == 3


def test_cancelled_residue_is_tracked_through_pops():
    sim = Simulator()
    keep = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    drop = [sim.schedule(0.5, lambda: None) for _ in range(3)]
    for h in drop:
        h.cancel()
        h.cancel()  # idempotent: must not double-count
    assert sim.cancelled_pending == 3
    sim.run()
    assert sim.cancelled_pending == 0
    assert sim.events_executed == len(keep)


def test_heap_auto_compacts_when_cancelled_residue_dominates():
    from repro.sim.kernel import AUTO_COMPACT_MIN_HEAP

    sim = Simulator()
    n = AUTO_COMPACT_MIN_HEAP + 200
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(n)]
    # cancel until residue exceeds half the (large) heap: the kernel
    # must compact on its own, without an explicit drain_cancelled()
    cancelled = n // 2 + 2
    for h in handles[:cancelled]:
        h.cancel()
    assert sim.compactions >= 1
    # compaction fired mid-loop, so at most the few post-compaction
    # cancels linger as residue -- not the thousands cancelled in total
    assert sim.cancelled_pending < 100
    assert sim.events_pending - sim.cancelled_pending == n - cancelled
    sim.run()
    assert sim.events_executed == n - cancelled


def test_auto_compaction_during_run_keeps_heap_alias_valid():
    """Auto-compaction fired by a callback cancelling handles mid-run()
    must not strand run()'s view of the heap: events scheduled after the
    compaction still execute, residue accounting stays non-negative, and
    no surviving event fires twice."""
    from repro.sim.kernel import AUTO_COMPACT_MIN_HEAP

    sim = Simulator()
    fired = []
    n = AUTO_COMPACT_MIN_HEAP + 200
    cancelled = n // 2 + 2
    handles = [sim.schedule(10.0 + i, fired.append, i) for i in range(n)]

    def cancel_many():
        for h in handles[:cancelled]:
            h.cancel()
        assert sim.compactions >= 1
        sim.schedule(1.0, fired.append, "post-compaction")

    sim.schedule(0.5, cancel_many)
    sim.run()
    assert fired == ["post-compaction"] + list(range(cancelled, n))
    assert sim.cancelled_pending == 0
    assert sim.events_pending == 0
    # a second run() must find nothing left over (no duplicated entries)
    executed = sim.events_executed
    sim.run()
    assert sim.events_executed == executed
    assert fired == ["post-compaction"] + list(range(cancelled, n))


def test_cancel_after_execution_is_not_counted_as_residue():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    handle.cancel()  # event already fired: nothing is in the heap
    assert sim.cancelled_pending == 0


def test_periodic_timer_stopping_itself_leaves_no_phantom_residue():
    """A timer callback calling stop() cancels the event that is
    currently executing; that must not drift the compaction counter."""
    from repro.sim.process import PeriodicTimer

    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
    timer.start()
    sim.run(until=10.0)
    assert timer.ticks == 1
    assert sim.cancelled_pending == 0


def test_small_heaps_never_auto_compact():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    for h in handles:
        h.cancel()
    assert sim.compactions == 0
    assert sim.events_pending == 100  # lazy residue, skipped on pop
    sim.run()
    assert sim.events_executed == 0


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_schedule_batch_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_batch([3.0, 1.0, 2.0], fired.append, [("c",), ("a",), ("b",)])
    sim.run()
    assert fired == ["a", "b", "c"]


def test_schedule_batch_is_fifo_identical_to_sequential_schedules():
    """Batch entries must interleave with normal schedules exactly as if
    they had been pushed by individual schedule() calls (seq order)."""

    def run(batch: bool):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "pre")
        if batch:
            sim.schedule_batch(
                [1.0, 1.0, 2.0], fired.append, [("b0",), ("b1",), ("b2",)]
            )
        else:
            for delay, tag in [(1.0, "b0"), (1.0, "b1"), (2.0, "b2")]:
                sim.schedule(delay, fired.append, tag)
        sim.schedule(1.0, fired.append, "post")
        sim.run()
        return fired, sim.events_executed

    assert run(True) == run(False)


def test_schedule_batch_respects_priority():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "normal")
    sim.schedule_batch([1.0], fired.append, [("urgent",)], priority=-1)
    sim.run()
    assert fired == ["urgent", "normal"]


def test_schedule_batch_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_batch([1.0, -0.5], lambda: None, [(), ()])


def test_schedule_batch_rejects_length_mismatch():
    """zip must not silently truncate: unequal sequences are a caller bug
    and must schedule nothing (batch entries cannot be cancelled)."""
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_batch([1.0, 2.0], lambda x: None, [("only-one",)])
    assert sim.events_pending == 0

    def bad_args():
        yield ("ok",)
        raise RuntimeError("generator blew up mid-batch")

    with pytest.raises(RuntimeError):
        sim.schedule_batch([1.0, 2.0], lambda x: None, bad_args())
    assert sim.events_pending == 0


def test_schedule_batch_empty_is_noop():
    sim = Simulator()
    sim.schedule_batch([], lambda: None, [])
    assert sim.events_pending == 0
    sim.run()
    assert sim.events_executed == 0


def test_schedule_batch_survives_heap_compaction():
    """drain_cancelled must keep batch entries (they cannot be cancelled)."""
    sim = Simulator()
    fired = []
    handles = [sim.schedule(5.0, fired.append, "cancelled") for _ in range(6)]
    sim.schedule_batch([1.0, 2.0], fired.append, [("b0",), ("b1",)])
    for h in handles:
        h.cancel()
    assert sim.drain_cancelled() == 6
    assert sim.events_pending == 2
    sim.run()
    assert fired == ["b0", "b1"]


def test_schedule_batch_invalid_delay_schedules_nothing():
    """A bad delay anywhere in the batch must leave the heap untouched:
    batch entries cannot be cancelled, so a partial push would be
    unrecoverable."""
    sim = Simulator()
    fired = []
    with pytest.raises(SimulationError):
        sim.schedule_batch([1.0, -0.5, 2.0], fired.append, [("a",), ("b",), ("c",)])
    assert sim.events_pending == 0
    # seq was not consumed either: FIFO order with a later schedule is clean
    sim.schedule(1.0, fired.append, "only")
    sim.run()
    assert fired == ["only"]
