"""Per-node LRU memoization of signature verification.

A flooded RREQ reaches a node as many byte-identical copies; the
``(public_key, payload, signature)`` triple verifies once and every
repeat is a cache hit: counted separately in the metrics, charged no
crypto debt, and never re-executed on the backend.
"""

import pytest

from repro.scenarios import ScenarioBuilder


def build_pair(**config):
    sc = ScenarioBuilder(seed=3).chain(2).config(**config).build()
    return sc, sc.hosts[0], sc.hosts[1]


def test_repeat_verifies_hit_the_cache():
    sc, a, b = build_pair()
    payload = b"route request body"
    sig = b.sign(payload)
    ops = sc.metrics.crypto_ops
    assert a.verify(b.public_key, payload, sig) is True
    assert ops["simsig.verify"] == 1
    for _ in range(3):
        assert a.verify(b.public_key, payload, sig) is True
    assert ops["simsig.verify"] == 1  # backend ran once
    assert ops["simsig.verify_cached"] == 3
    assert sc.metrics.summary()["crypto_verify_cache_hits"] == 3
    assert sc.metrics.summary()["crypto_verify_ops"] == 1


def test_cache_hits_charge_no_crypto_debt():
    sc, a, b = build_pair()  # charge_crypto_delay defaults True
    payload, sig = b"pkt", b.sign(payload := b"pkt")
    a.verify(b.public_key, payload, sig)
    first_debt = a._take_crypto_debt()
    assert first_debt > 0.0  # a real verify costs simulated time
    a.verify(b.public_key, payload, sig)
    assert a._take_crypto_debt() == 0.0  # the hit is free


def test_negative_verdicts_are_cached_too():
    sc, a, b = build_pair()
    payload = b"forged"
    bad_sig = b"\x00" * 16
    assert a.verify(b.public_key, payload, bad_sig) is False
    assert a.verify(b.public_key, payload, bad_sig) is False
    assert sc.metrics.crypto_ops["simsig.verify"] == 1
    assert sc.metrics.crypto_ops["simsig.verify_cached"] == 1


def test_cache_is_per_node():
    sc, a, b = build_pair()
    payload, sig = b"pkt", b.sign(b"pkt")
    a.verify(b.public_key, payload, sig)
    b.verify(b.public_key, payload, sig)  # different node: own miss
    assert sc.metrics.crypto_ops["simsig.verify"] == 2
    assert sc.metrics.crypto_ops.get("simsig.verify_cached", 0) == 0


def test_lru_eviction_respects_capacity():
    sc, a, b = build_pair(verify_cache_size=2)
    triples = [(b"p%d" % i, b.sign(b"p%d" % i)) for i in range(3)]
    for payload, sig in triples:
        a.verify(b.public_key, payload, sig)
    assert sc.metrics.crypto_ops["simsig.verify"] == 3
    # p0 was evicted by p2 (capacity 2); p2 and p1 still hit
    a.verify(b.public_key, *triples[2])
    a.verify(b.public_key, *triples[1])
    assert sc.metrics.crypto_ops["simsig.verify_cached"] == 2
    a.verify(b.public_key, *triples[0])
    assert sc.metrics.crypto_ops["simsig.verify"] == 4


def test_zero_size_disables_the_cache():
    sc, a, b = build_pair(verify_cache_size=0)
    payload, sig = b"pkt", b.sign(b"pkt")
    a.verify(b.public_key, payload, sig)
    a.verify(b.public_key, payload, sig)
    assert sc.metrics.crypto_ops["simsig.verify"] == 2
    assert "simsig.verify_cached" not in sc.metrics.crypto_ops


def test_flooded_discovery_produces_cache_hits():
    """End-to-end: a multi-path RREQ flood re-verifies identical triples."""
    sc = (
        ScenarioBuilder(seed=21)
        .grid(9, spacing=180.0)
        .config(verify_at_intermediate=True)
        .build()
    )
    sc.bootstrap_all()
    src, dst = sc.hosts[0], sc.hosts[-1]
    src.router.discover(dst.ip)
    sc.run(duration=5.0)
    hits = sc.metrics.crypto_total("verify_cached")
    misses = sc.metrics.crypto_total("verify")
    assert misses > 0
    assert hits > 0  # duplicate flood copies actually dedup verification
