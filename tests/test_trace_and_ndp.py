"""Unit tests for the trace recorder, sequence rendering, and one-hop DAD."""

from repro.trace.recorder import TraceRecorder
from repro.trace.sequence import render_sequence_chart, transcript
from tests.conftest import chain_scenario


def test_recorder_basic_and_filters():
    tr = TraceRecorder()
    tr.record(0.0, "a", "send", "RREQ", "x")
    tr.record(1.0, "b", "recv", "RREQ", "x")
    tr.record(2.0, "b", "verdict", "-", "rreq.accepted")
    assert len(tr.events) == 3
    assert len(tr.sends()) == 1
    assert len(tr.receipts("RREQ")) == 1
    assert len(tr.filter(node="b")) == 2
    assert "RREQ" in tr.dump()


def test_recorder_capacity_bound():
    tr = TraceRecorder(capacity=2)
    for i in range(5):
        tr.record(float(i), "a", "send", "X", "d")
    assert len(tr.events) == 2
    assert tr.dropped == 3


def test_recorder_disabled():
    tr = TraceRecorder(enabled=False)
    tr.record(0.0, "a", "send", "X", "d")
    assert tr.events == []


def test_recorder_clear():
    tr = TraceRecorder()
    tr.record(0.0, "a", "send", "X", "d")
    tr.clear()
    assert tr.events == [] and tr.dropped == 0


def test_sequence_chart_renders_columns_and_arrows():
    tr = TraceRecorder()
    tr.record(0.5, "S", "send", "AREQ", "flood")
    tr.record(1.0, "R", "send", "AREP", "reply ->S ok")
    chart = render_sequence_chart(tr, ["S", "I", "R"])
    assert "S" in chart.splitlines()[0]
    assert "*AREQ*" in chart       # broadcast row
    assert "AREP" in chart         # directed arrow row


def test_sequence_chart_filters_by_type():
    tr = TraceRecorder()
    tr.record(0.5, "S", "send", "AREQ", "x")
    tr.record(1.0, "S", "send", "RREQ", "x")
    chart = render_sequence_chart(tr, ["S"], msg_types={"RREQ"})
    assert "RREQ" in chart and "AREQ" not in chart


def test_transcript_lines():
    tr = TraceRecorder()
    tr.record(0.5, "S", "send", "AREQ", "x")
    tr.record(0.6, "R", "recv", "AREQ", "x")
    tr.record(0.7, "R", "verdict", "-", "y")  # excluded from transcript
    out = transcript(tr)
    assert out.count("\n") == 1
    assert "SEND" in out and "RECV" in out


# ---------------------------------------------------------------------------
# one-hop NDP DAD baseline
# ---------------------------------------------------------------------------

def test_one_hop_dad_configures_when_unopposed():
    from repro.ndp.neighbor_discovery import OneHopDAD

    sc = chain_scenario(n=2, seed=7).build()
    a = sc.hosts[0]
    dad = OneHopDAD(a)
    dad.start()
    sc.run(duration=5.0)
    assert dad.state == "configured"
    assert a.configured


def test_one_hop_dad_detects_adjacent_duplicate():
    from repro.ndp.neighbor_discovery import OneHopDAD

    sc = chain_scenario(n=2, seed=7).build()
    sc.bootstrap_all()
    victim, joiner = sc.hosts[0], sc.hosts[1]
    OneHopDAD(victim)  # victim must speak NS/NA to defend
    # Re-join n1 via one-hop DAD, rigged to probe the victim's address.
    joiner.abandon_identity()
    dad = OneHopDAD(joiner)
    dad.state = "probing"
    dad.round = 0
    dad._domain_name = ""
    dad.tentative_ip = victim.ip
    dad._tentative_params = victim.cga_params
    from repro.messages.ndp import NeighborSolicitation

    joiner.broadcast(NeighborSolicitation(target=victim.ip),
                     claimed_src=victim.ip)
    dad._timer.start(dad.timeout)
    sc.run(duration=5.0)
    # Victim (1 hop away) defended with NA; the joiner moved to a new address.
    assert dad.state == "configured"
    assert joiner.ip != victim.ip


def test_one_hop_dad_misses_multi_hop_duplicate():
    """The gap the paper's extended DAD closes (Section 2.2)."""
    from repro.ndp.neighbor_discovery import OneHopDAD

    sc = chain_scenario(n=4, seed=7).build()
    sc.bootstrap_all()
    victim = sc.hosts[3]  # 3 hops from n0
    joiner = sc.hosts[0]
    joiner.abandon_identity()
    dad = OneHopDAD(joiner)
    dad.state = "probing"
    dad.round = 0
    dad._domain_name = ""
    dad.tentative_ip = victim.ip
    dad._tentative_params = victim.cga_params
    from repro.messages.ndp import NeighborSolicitation

    joiner.broadcast(NeighborSolicitation(target=victim.ip),
                     claimed_src=victim.ip)
    dad._timer.start(dad.timeout)
    sc.run(duration=5.0)
    # One-hop DAD wrongly concludes the address is free: DUPLICATE EXISTS.
    assert dad.state == "configured"
    assert joiner.ip == victim.ip  # collision undetected!
