"""Campaign engine: expansion, execution, aggregation, baselines, CLI."""

import json
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    aggregate,
    compare,
    comparison_text,
    execute_run,
    load_results,
    report_text,
    run_campaign,
    write_jsonl,
)
from repro.campaign.runner import RunTimeout, deadline
from repro.campaign.spec import set_by_path
from repro.sim.rng import spawn_seed


def tiny_spec(**overrides) -> CampaignSpec:
    data = {
        "name": "t",
        "seed": 5,
        "replicates": 1,
        "base": {
            "topology": {"kind": "chain", "n": 3, "spacing": 200.0},
            "radio": {"range": 250.0},
            "dns": {"position": None},
        },
        "axes": {"router": ["secure", "plain"]},
        "workload": {"kind": "cbr", "flows": 1, "interval": 1.0, "count": 3},
        "duration": 10.0,
        "timeout": 60.0,
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


# -- spec expansion ---------------------------------------------------------

def test_set_by_path_creates_nested_dicts():
    target = {}
    set_by_path(target, "config.hostile_mode", True)
    set_by_path(target, "router", "plain")
    assert target == {"config": {"hostile_mode": True}, "router": "plain"}
    with pytest.raises(ValueError):
        set_by_path({"config": 3}, "config.x", 1)


def test_grid_expansion_is_cartesian_times_replicates():
    spec = tiny_spec(
        axes={"router": ["secure", "plain"], "topology.n": [3, 4, 5]},
        replicates=2,
    )
    runs = spec.expand()
    assert len(runs) == 2 * 3 * 2
    # indices and ids are sequential and unique
    assert [r.index for r in runs] == list(range(12))
    assert len({r.run_id for r in runs}) == 12
    # every run's scenario reflects its params
    for run in runs:
        assert run.scenario["router"] == run.params["router"]
        assert run.scenario["topology"]["n"] == run.params["topology.n"]
        assert run.seed == spawn_seed(spec.seed, run.index)


def test_run_level_axes_override_workload_and_adversaries():
    adversary = {"kind": "blackhole", "position": [200.0, 0.0]}
    spec = tiny_spec(axes={
        "workload.count": [2, 4],
        "adversaries": [[], [adversary]],
    })
    runs = spec.expand()
    assert len(runs) == 4
    counts = {(r.workload["count"], len(r.adversaries)) for r in runs}
    assert counts == {(2, 0), (2, 1), (4, 0), (4, 1)}
    # base spec objects are not shared between runs
    runs[0].workload["count"] = 999
    assert runs[1].workload["count"] != 999


def test_expansion_is_deterministic_and_seeds_distinct():
    a = tiny_spec(replicates=3).expand()
    b = tiny_spec(replicates=3).expand()
    assert [r.to_dict() for r in a] == [r.to_dict() for r in b]
    assert len({r.seed for r in a}) == len(a)


def test_random_sampling_is_deterministic():
    sampled = dict(
        axes={},
        samples={"count": 4, "space": {
            "radio.loss_rate": [0.0, 0.2],
            "topology.n": [3, 6],
            "router": {"choices": ["secure", "plain"]},
        }},
    )
    a = tiny_spec(**sampled).expand()
    b = tiny_spec(**sampled).expand()
    assert len(a) == 4
    assert [r.params for r in a] == [r.params for r in b]
    for run in a:
        assert 0.0 <= run.params["radio.loss_rate"] <= 0.2
        assert run.params["topology.n"] in (3, 4, 5, 6)  # int range inclusive
        assert run.params["router"] in ("secure", "plain")


def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"name": "x"})  # no base
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"base": {}, "bogus": 1})
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"base": {}, "axes": {"router": []}})
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"base": {}, "replicates": 0})
    bad_space = tiny_spec(samples={"count": 1, "space": {"x": "nope"}})
    with pytest.raises(ValueError):
        bad_space.expand()


def test_spec_round_trips_through_dict_and_file(tmp_path):
    spec = tiny_spec(replicates=2)
    clone = CampaignSpec.from_dict(spec.to_dict())
    assert clone.to_dict() == spec.to_dict()
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert CampaignSpec.from_file(path).to_dict() == spec.to_dict()


# -- run execution ----------------------------------------------------------

def test_execute_run_produces_ok_record_with_flat_summary():
    run = tiny_spec().expand()[0]
    record = execute_run(run.to_dict())
    assert record["status"] == "ok", record.get("error")
    assert record["run_id"] == run.run_id
    summary = record["summary"]
    assert summary["data_sent"] > 0
    assert summary["pdr"] == 1.0
    assert summary["configured_hosts"] == 3
    assert json.loads(json.dumps(record)) == record


def test_execute_run_isolates_failures():
    run = tiny_spec().expand()[0].to_dict()
    run["scenario"]["topology"] = {"kind": "moebius", "n": 3}
    record = execute_run(run)
    assert record["status"] == "error"
    assert "moebius" in record["error"]
    assert "summary" not in record


def test_execute_run_with_adversary_and_poisson_workload():
    spec = tiny_spec(
        base={
            "topology": {"kind": "positions",
                         "points": [[0.0, 0.0], [400.0, 0.0],
                                    [100.0, 150.0], [300.0, 150.0]]},
            "radio": {"range": 250.0},
            "dns": {"position": [200.0, -400.0]},
        },
        axes={},
        adversaries=[{"kind": "blackhole", "position": [200.0, 0.0],
                      "forge_rreps": True}],
        workload={"kind": "poisson", "flows": 1, "rate": 2.0, "count": 4,
                  "pairs": [[0, 1]]},
        duration=20.0,
    )
    record = execute_run(spec.expand()[0].to_dict())
    assert record["status"] == "ok", record.get("error")
    assert record["summary"]["hosts"] == 4          # honest hosts only
    assert record["summary"]["data_sent"] >= 4


def test_typoed_workload_or_bootstrap_key_fails_the_run():
    record = execute_run(
        tiny_spec(workload={"kind": "cbr", "intervall": 0.5}).expand()[0].to_dict()
    )
    assert record["status"] == "error"
    assert "intervall" in record["error"]
    record = execute_run(
        tiny_spec(bootstrap={"stager": 1.0}).expand()[0].to_dict()
    )
    assert record["status"] == "error"
    assert "stager" in record["error"]


def test_compare_tolerates_records_missing_metrics():
    base = [{"run_id": "r", "params": {}, "status": "ok", "summary": {}}]
    cur = [{"run_id": "r", "params": {}, "status": "ok",
            "summary": {"pdr": 0.5, "latency_p95": 0.1}}]
    result = compare(base, cur)  # must not raise on the improvement message
    assert len(result["improvements"]) == 1


def test_deadline_guard_times_out():
    with pytest.raises(RunTimeout):
        with deadline(0.05):
            time.sleep(2.0)
    # and is a no-op when disarmed
    with deadline(None):
        pass
    with deadline(0):
        pass


def test_run_timeout_yields_timeout_record(monkeypatch):
    import repro.campaign.runner as runner_mod

    def slow_body(run):
        time.sleep(5.0)

    monkeypatch.setattr(runner_mod, "_run_body", slow_body)
    run = tiny_spec(timeout=0.1).expand()[0].to_dict()
    record = runner_mod.execute_run(run)
    assert record["status"] == "timeout"
    assert "wall-clock" in record["error"]


# -- campaign orchestration --------------------------------------------------

def test_parallel_matches_inline_byte_for_byte(tmp_path):
    spec = tiny_spec(replicates=2)
    inline = run_campaign(spec, workers=1, out_dir=tmp_path / "inline")
    parallel = run_campaign(tiny_spec(replicates=2), workers=2,
                            out_dir=tmp_path / "parallel")
    assert [json.dumps(r, sort_keys=True) for r in inline] == \
           [json.dumps(r, sort_keys=True) for r in parallel]
    assert (tmp_path / "inline" / "results.jsonl").read_bytes() == \
           (tmp_path / "parallel" / "results.jsonl").read_bytes()
    for name in ("results.jsonl", "report.json", "report.txt", "spec.json"):
        assert (tmp_path / "parallel" / name).exists()


def test_failed_runs_do_not_sink_the_campaign():
    spec = tiny_spec(axes={"router": ["secure", "no-such-router"]})
    records = run_campaign(spec, workers=1)
    statuses = {r["params"]["router"]: r["status"] for r in records}
    assert statuses == {"secure": "ok", "no-such-router": "error"}


# -- aggregation and baselines ----------------------------------------------

def test_aggregate_groups_replicates_and_reports_failures():
    spec = tiny_spec(replicates=2, axes={"router": ["secure", "plain"]})
    records = run_campaign(spec, workers=1)
    records[-1] = {**records[-1], "status": "error", "error": "X"}
    report = aggregate(records)
    assert report["runs"] == 4 and report["ok"] == 3
    assert len(report["failed"]) == 1
    by_params = {json.dumps(g["params"], sort_keys=True): g
                 for g in report["groups"]}
    secure = by_params[json.dumps({"router": "secure"}, sort_keys=True)]
    assert secure["runs"] == 2
    stats = secure["metrics"]["pdr"]
    assert stats["min"] <= stats["mean"] <= stats["max"]
    text = report_text(report)
    assert "router=secure" in text and "Failed runs:" in text


def test_quarantined_records_count_as_failures_never_pollute_metrics():
    spec = tiny_spec(replicates=2, axes={"router": ["secure", "plain"]})
    records = run_campaign(spec, workers=1)
    clean = aggregate(records)
    # quarantine one run of each group: no summary (the run never
    # completed), identity fields intact -- exactly what the runner's
    # retry-exhaustion path writes
    poisoned = json.loads(json.dumps(records))
    for victim in (poisoned[0], poisoned[-1]):
        victim.pop("summary", None)
        victim["status"] = "quarantined"
        victim["error"] = "worker died: poison"
        victim["attempts"] = 3
    report = aggregate(poisoned)
    assert report["runs"] == 4 and report["ok"] == 2
    assert report["quarantined"] == 2
    # quarantined runs land in the failed column...
    assert {f["status"] for f in report["failed"]} == {"quarantined"}
    # ...and the surviving groups' sketches reduce over the ok runs
    # only: each group's run count dropped by its quarantined member and
    # every stat still lies inside the clean campaign's envelope
    clean_groups = {json.dumps(g["params"], sort_keys=True): g
                    for g in clean["groups"]}
    for group in report["groups"]:
        key = json.dumps(group["params"], sort_keys=True)
        assert group["runs"] == clean_groups[key]["runs"] - 1
        for name, stat in group["metrics"].items():
            envelope = clean_groups[key]["metrics"][name]
            assert envelope["min"] <= stat["mean"] <= envelope["max"]
    # the headline makes the quarantine visible
    text = report_text(report)
    assert "2 quarantined" in text
    # a clean campaign reports the key at zero and stays silent in text
    assert clean["quarantined"] == 0
    assert "quarantined" not in report_text(clean)


def test_compare_flags_pdr_and_status_regressions():
    spec = tiny_spec()
    records = run_campaign(spec, workers=1)
    degraded = json.loads(json.dumps(records))  # deep copy
    degraded[0]["summary"]["pdr"] -= 0.5
    degraded[1]["status"] = "error"
    degraded[1]["error"] = "kaput"
    del degraded[1]["summary"]
    result = compare(records, degraded)
    assert len(result["regressions"]) == 2
    assert result["matched"] == len(records)
    assert "REGRESSION" in comparison_text(result)
    # identical results compare clean
    assert compare(records, records)["regressions"] == []


def test_compare_flags_param_drift_instead_of_false_diffing():
    # same run_ids, but an axis value changed: must not compare metrics
    records = run_campaign(tiny_spec(), workers=1)
    drifted = json.loads(json.dumps(records))
    for record in drifted:
        record["params"]["radio.loss_rate"] = 0.2
        record["summary"]["pdr"] = 0.0  # would be a huge "regression"
    result = compare(records, drifted)
    assert result["regressions"] == []
    assert result["matched"] == 0
    assert len(result["mismatched"]) == len(records)
    assert "SPEC DRIFT" in comparison_text(result)


def test_cli_compare_strict_fails_on_matrix_drift(tmp_path, capsys):
    from repro.campaign.aggregate import write_jsonl
    from repro.campaign.cli import main

    base = [{"run_id": "c-0000", "params": {"x": 1}, "status": "ok",
             "summary": {"pdr": 1.0, "latency_p95": 0.1}}]
    renamed = [{"run_id": "c-0001", "params": {"x": 1}, "status": "ok",
                "summary": {"pdr": 1.0, "latency_p95": 0.1}}]
    base_path, cur_path = tmp_path / "base.jsonl", tmp_path / "cur.jsonl"
    write_jsonl(base_path, base)
    write_jsonl(cur_path, renamed)
    # default: drift is reported but not fatal (spec evolution is normal)
    assert main(["compare", str(base_path), str(cur_path)]) == 0
    # strict (the CI gate): a baseline that matches nothing is no gate
    assert main(["compare", "--strict", str(base_path), str(cur_path)]) == 1
    assert "drifted" in capsys.readouterr().out
    # strict with an identical matrix still passes
    assert main(["compare", "--strict", str(base_path), str(base_path)]) == 0


def test_compare_zero_latency_baseline_is_not_a_regression():
    base = [{"run_id": "r", "params": {}, "status": "ok",
             "summary": {"pdr": 0.0, "latency_p95": 0.0}}]
    cur = [{"run_id": "r", "params": {}, "status": "ok",
            "summary": {"pdr": 0.5, "latency_p95": 0.3}}]
    result = compare(base, cur)
    assert result["regressions"] == []
    assert len(result["improvements"]) == 1


def _lethal_execute_run(run):
    """Module-level so the pool can pickle it; run 0 dies like an OOM-kill."""
    if run["index"] == 0:
        import os

        os._exit(1)  # uncatchable in-process, breaks the shared pool
    return execute_run(run)  # the real one, bound at module import


def test_worker_death_yields_quarantine_record_not_campaign_abort(tmp_path):
    import repro.campaign.runner as runner_mod

    spec = tiny_spec(retry_max_attempts=2, retry_backoff=0.0)
    payload_ids = [r.run_id for r in spec.expand()]
    real_execute = runner_mod.execute_run
    runner_mod.execute_run = _lethal_execute_run
    try:
        records = run_campaign(spec, workers=2, out_dir=tmp_path / "out")
    finally:
        runner_mod.execute_run = real_execute
    statuses = {r["run_id"]: r["status"] for r in records}
    # the killer run exhausts its retry budget and is quarantined; the
    # innocent bystander is retried and completes
    assert statuses[payload_ids[0]] == "quarantined"
    assert statuses[payload_ids[1]] == "ok"
    killer = [r for r in records if r["run_id"] == payload_ids[0]][0]
    assert "worker died" in killer["error"]
    assert killer["attempts"] == 2
    # results still landed on disk, plus the quarantine diagnostic
    assert (tmp_path / "out" / "results.jsonl").exists()
    assert runner_mod.validate_quarantine_file(
        tmp_path / "out" / "quarantine.jsonl") == 1


def test_cli_failed_runs_outrank_regression_exit_code(tmp_path):
    from repro.campaign.cli import main

    spec = tiny_spec(axes={"router": ["secure", "no-such-router"]})
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    out = tmp_path / "out"
    assert main(["run", str(spec_path), "--workers", "1",
                 "--out", str(out), "--quiet"]) == 3

    # baseline where everything was better AND ok -> regressions exist,
    # but the failed-run signal (3) must win
    records = load_results(out)
    for record in records:
        record["status"] = "ok"
        record["summary"] = {"pdr": 2.0, "latency_p95": 0.0}
    write_jsonl(tmp_path / "baseline.jsonl", records)
    assert main(["run", str(spec_path), "--workers", "1",
                 "--out", str(tmp_path / "out2"), "--quiet",
                 "--baseline", str(tmp_path / "baseline.jsonl")]) == 3


def test_compare_reports_added_and_removed_runs():
    records = run_campaign(tiny_spec(), workers=1)
    result = compare(records[:-1], records[1:])
    assert result["removed"] == [records[0]["run_id"]]
    assert result["added"] == [records[-1]["run_id"]]


def test_jsonl_round_trip(tmp_path):
    records = [{"run_id": "a", "index": 0, "status": "ok",
                "params": {}, "summary": {"pdr": 1.0}}]
    path = tmp_path / "r.jsonl"
    write_jsonl(path, records)
    assert load_results(path) == records
    # directory form resolves results.jsonl
    write_jsonl(tmp_path / "results.jsonl", records)
    assert load_results(tmp_path) == records


# -- CLI --------------------------------------------------------------------

def test_cli_run_report_compare(tmp_path, capsys):
    from repro.campaign.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(tiny_spec().to_dict()))
    out = tmp_path / "out"

    assert main(["run", str(spec_path), "--workers", "1",
                 "--out", str(out), "--quiet"]) == 0
    assert (out / "results.jsonl").exists()
    assert "Campaign aggregate" in capsys.readouterr().out

    assert main(["report", str(out)]) == 0
    assert "Campaign aggregate" in capsys.readouterr().out

    # self-compare is clean; gating against self via run --baseline too
    assert main(["compare", str(out / "results.jsonl"),
                 str(out / "results.jsonl")]) == 0
    assert main(["run", str(spec_path), "--workers", "1",
                 "--out", str(tmp_path / "out2"), "--quiet",
                 "--baseline", str(out / "results.jsonl")]) == 0

    # a doctored baseline with better pdr makes the gate fail
    records = load_results(out)
    for record in records:
        record["summary"]["pdr"] = 2.0
    write_jsonl(tmp_path / "better.jsonl", records)
    assert main(["compare", str(tmp_path / "better.jsonl"),
                 str(out / "results.jsonl")]) == 1
