"""Unit tests for the simulated-signature backend."""

import pytest

from repro.crypto.backend import SignatureInvalid, available_backends, get_backend
from repro.crypto.simsig import SimSigBackend


@pytest.fixture
def backend():
    return SimSigBackend()


def test_keygen_deterministic(backend):
    assert backend.generate_keypair(b"a").public == backend.generate_keypair(b"a").public
    assert backend.generate_keypair(b"a").public != backend.generate_keypair(b"b").public


def test_sign_verify_roundtrip(backend):
    kp = backend.generate_keypair(b"n")
    sig = backend.sign(kp.private, b"hello")
    assert len(sig) == backend.signature_size() == 16
    assert backend.verify(kp.public, b"hello", sig)


def test_verify_rejects_tampering(backend):
    kp = backend.generate_keypair(b"n")
    sig = backend.sign(kp.private, b"hello")
    assert not backend.verify(kp.public, b"hellO", sig)
    assert not backend.verify(kp.public, b"hello", sig[:-1] + b"\x00")


def test_verify_rejects_other_key(backend):
    kp1 = backend.generate_keypair(b"n1")
    kp2 = backend.generate_keypair(b"n2")
    sig = backend.sign(kp1.private, b"m")
    assert not backend.verify(kp2.public, b"m", sig)


def test_verify_rejects_unknown_public_key(backend):
    """A fabricated public key (never generated) can verify nothing."""
    from repro.crypto.keys import PublicKey

    fake = PublicKey("simsig", b"\x01" * 16)
    assert not backend.verify(fake, b"m", b"\x00" * 16)


def test_counters_track_operations(backend):
    kp = backend.generate_keypair(b"n")
    backend.reset_counters()
    sig = backend.sign(kp.private, b"m")
    backend.verify(kp.public, b"m", sig)
    backend.verify(kp.public, b"m", sig)
    assert backend.signs == 1
    assert backend.verifies == 2


def test_op_cost(backend):
    assert backend.op_cost("sign") > backend.op_cost("verify") > 0
    with pytest.raises(ValueError):
        backend.op_cost("hash")


def test_rsa_op_cost_defaults_to_zero():
    rsa = get_backend("rsa")
    assert rsa.op_cost("sign") == 0.0
    assert rsa.op_cost("verify") == 0.0


def test_public_key_roundtrip(backend):
    kp = backend.generate_keypair(b"n")
    data = backend.encode_public_key(kp.public)
    assert backend.decode_public_key(data) == kp.public
    with pytest.raises(ValueError):
        backend.decode_public_key(b"short")


def test_verify_strict_raises(backend):
    kp = backend.generate_keypair(b"n")
    backend.verify_strict(kp.public, b"m", backend.sign(kp.private, b"m"))
    with pytest.raises(SignatureInvalid):
        backend.verify_strict(kp.public, b"m", b"\x00" * 16)


def test_registry_returns_singletons():
    assert get_backend("simsig") is get_backend("simsig")
    assert get_backend("rsa") is get_backend("rsa")
    with pytest.raises(KeyError):
        get_backend("enigma")
    assert set(available_backends()) >= {"rsa", "simsig"}


def test_cross_backend_signature_rejected():
    """An RSA signature never verifies under simsig and vice versa."""
    rsa = get_backend("rsa")
    sim = get_backend("simsig")
    rk = rsa.generate_keypair(b"x")
    sk = sim.generate_keypair(b"x")
    assert not sim.verify(rk.public, b"m", rsa.sign(rk.private, b"m"))
    assert not rsa.verify(sk.public, b"m", sim.sign(sk.private, b"m"))
