"""Smoke tests: every script in examples/ must run clean.

Each example executes as a real subprocess (the way users run them),
with REPRO_EXAMPLE_FAST=1 so parameter-heavy examples shrink their
workloads.  This keeps the documented entry points from silently
rotting as the stack underneath them evolves.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_covered():
    """If an example is added, it is smoke-tested automatically."""
    assert "quickstart.py" in EXAMPLES
    assert "campaign_sweep.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_EXAMPLE_FAST"] = "1"  # tiny parameter overrides where honored
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
