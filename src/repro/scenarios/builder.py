"""Scenario construction.

A :class:`Scenario` owns the simulator, the medium, the DNS server node
and the host nodes, with every protocol component wired.  The
:class:`ScenarioBuilder` fluent API picks topology, router class,
config overrides and mobility; ``build()`` materialises everything
(deterministically from the seed) without running any simulation time.

The DNS server is created already-configured: the paper assumes the
server (and the distribution of its public key) predates network
formation, so it does not itself run DAD.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.bootstrap.autoconf import BootstrapManager
from repro.core.config import NodeConfig
from repro.core.context import NetContext
from repro.core.node import Node
from repro.dns.client import DNSClient
from repro.dns.server import DNSServer
from repro.faults import FaultInjector, FaultPlan
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import generate_cga
from repro.metrics.collector import MetricsCollector
from repro.phy.medium import WirelessMedium
from repro.phy.mobility import RandomWaypoint
from repro.phy.topology import (
    chain_positions,
    clustered_positions,
    connected_uniform_positions,
    grid_positions,
    uniform_positions,
)
from repro.routing.bsar_like import EndpointOnlyRouter
from repro.routing.dsr import PlainDSRRouter
from repro.routing.secure_dsr import SecureDSRRouter
from repro.sim.kernel import Simulator
from repro.trace.recorder import TraceRecorder

#: Router classes addressable by short name in serialized specs.
ROUTER_REGISTRY: dict[str, type] = {
    "secure": SecureDSRRouter,
    "plain": PlainDSRRouter,
    "endpoint": EndpointOnlyRouter,
}


def router_class(name: str) -> type:
    """Resolve a router spec name: registry short name or ``module:Qualname``."""
    if name in ROUTER_REGISTRY:
        return ROUTER_REGISTRY[name]
    if ":" in name:
        import importlib

        mod_name, _, qualname = name.partition(":")
        obj = importlib.import_module(mod_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj
    raise ValueError(
        f"unknown router {name!r} (expected one of {sorted(ROUTER_REGISTRY)} "
        "or 'module:Qualname')"
    )


def router_name(cls: type) -> str:
    """Inverse of :func:`router_class`, for serializing a builder."""
    for name, registered in ROUTER_REGISTRY.items():
        if registered is cls:
            return name
    return f"{cls.__module__}:{cls.__qualname__}"


#: Allowed keys per topology kind; a typo'd key in a spec (e.g. a campaign
#: axis path) must fail loudly, not silently sweep nothing.
_TOPOLOGY_KEYS: dict[str, set[str]] = {
    "chain": {"n", "spacing"},
    "grid": {"n", "spacing"},
    "uniform": {"n", "area", "require_connected"},
    "uniform_density": {"n", "density", "require_connected"},
    "clustered": {"n", "clusters", "area", "cluster_std"},
    "positions": {"points"},
}


def _check_keys(what: str, mapping: dict, allowed: set[str]) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        raise ValueError(
            f"unknown {what} spec keys: {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


class Scenario:
    """A fully wired simulation: kernel + medium + DNS + hosts."""

    def __init__(self, ctx: NetContext, dns_node: Node | None, hosts: list[Node]):
        self.ctx = ctx
        self.sim = ctx.sim
        self.medium = ctx.medium
        self.dns_node = dns_node
        self.hosts = hosts
        #: FaultInjector when the builder carried a non-empty fault plan;
        #: armed automatically at the end of :meth:`bootstrap_all`.
        self.faults: FaultInjector | None = None

    # -- convenient accessors ------------------------------------------------
    @property
    def metrics(self) -> MetricsCollector:
        return self.ctx.metrics

    @property
    def trace(self) -> TraceRecorder:
        return self.ctx.trace

    @property
    def all_nodes(self) -> list[Node]:
        return ([self.dns_node] if self.dns_node else []) + self.hosts

    def host(self, name: str) -> Node:
        for node in self.all_nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    @property
    def dns_server(self) -> DNSServer | None:
        return self.dns_node.component("dns_server") if self.dns_node else None

    # -- orchestration ----------------------------------------------------------
    def bootstrap_all(
        self,
        stagger: float = 0.25,
        names: dict[str, str] | None = None,
        run: bool = True,
    ) -> None:
        """Start secure DAD on every host, staggered, and (by default) run
        the simulation until the last join settles.

        ``names`` maps node name -> requested domain name.
        """
        names = names or {}
        for i, node in enumerate(self.hosts):
            dn = names.get(node.name, "")
            self.sim.schedule(i * stagger, node.bootstrap.start, dn)
        if run:
            cfg = self.hosts[0].config if self.hosts else NodeConfig()
            settle = len(self.hosts) * stagger + cfg.dad_timeout * 3 + 1.0
            self.sim.run(until=self.sim.now + settle)
        # Arm the fault plan once the network has formed, so event times
        # read as "seconds into the workload".  Manual flows that skip
        # bootstrap_all call scenario.faults.arm() themselves.
        if self.faults is not None and not self.faults.armed:
            self.faults.arm()

    def run(self, until: float | None = None, duration: float | None = None) -> None:
        """Run to absolute time ``until`` or for ``duration`` more seconds."""
        if duration is not None:
            until = self.sim.now + duration
        self.sim.run(until=until)

    def send_data(self, src: Node, dst: IPv6Address, payload: bytes, **kw) -> int:
        """Convenience passthrough to the source node's router."""
        return src.router.send_data(dst, payload, **kw)

    def enable_kernel_stats(self):
        """Opt into kernel profiling for this scenario.

        Attaches a :class:`~repro.obs.kernel_stats.KernelStats` sink to
        the simulator and surfaces its digest as the ``kernel_stats``
        block of :meth:`MetricsCollector.summary`.  Observation-only:
        event ordering, RNG streams, traces, and every other summary
        field are byte-identical to an uninstrumented run.
        """
        stats = self.sim.enable_stats()
        self.metrics.attach_kernel_stats(self.sim.stats_summary)
        return stats

    def crypto_stats(self) -> dict:
        """Execution counters of the crypto fast path (JSON-clean).

        Backend sign/verify call counts (real computations, not the
        metrics-level logical ops), the shared verify cache's
        hit/miss/eviction numbers, and the process-wide keypair pool's
        stats.  Pure observation of host work -- none of it feeds
        simulation state.
        """
        from repro.crypto.keys import DEFAULT_KEYPAIR_POOL

        backends = {
            name: {
                "signs": int(getattr(backend, "signs", 0)),
                "verifies": int(getattr(backend, "verifies", 0)),
            }
            for name, backend in sorted(self.ctx.crypto_backends.items())
        }
        cache = self.ctx.verify_cache
        return {
            "backends": backends,
            "shared_verify_cache": cache.stats() if cache is not None else None,
            "keypair_pool": DEFAULT_KEYPAIR_POOL.stats(),
        }

    def enable_crypto_stats(self) -> None:
        """Surface :meth:`crypto_stats` as a ``crypto_stats`` summary block.

        Same opt-in contract as :meth:`enable_kernel_stats`: without this
        call the summary is byte-identical whatever the crypto fast-path
        flags are, which is what the equivalence gates compare.
        """
        self.metrics.attach_crypto_stats(self.crypto_stats)

    def configured_count(self) -> int:
        return sum(1 for n in self.hosts if n.configured)


class ScenarioBuilder:
    """Fluent scenario assembly.  All randomness derives from ``seed``."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._config = NodeConfig()
        self._config_overrides: dict = {}
        self._router_cls = SecureDSRRouter
        self._router_cls_by_name: dict[str, type] = {}
        self._topology: dict | None = None
        self._radio_range = 250.0
        self._loss_rate = 0.0
        self._medium_index = "grid"
        self._medium_vectorized = True
        self._with_dns = False
        self._dns_position: tuple[float, float] | None = None
        self._dns_preregistrations: list[tuple[str, IPv6Address]] = []
        self._mobility: dict | None = None
        self._faults: FaultPlan | None = None

    # -- topology -------------------------------------------------------------
    # Topology choices are stored declaratively and materialised in
    # ``build()``, so a builder serializes losslessly (``to_spec``) and the
    # radio range used by the uniform connectivity check is the final one
    # regardless of fluent call order.

    def chain(self, n: int, spacing: float = 200.0) -> "ScenarioBuilder":
        """A line of ``n`` hosts; spacing < range => i hears only i±1."""
        self._topology = {"kind": "chain", "n": int(n), "spacing": float(spacing)}
        return self

    def grid(self, n: int, spacing: float = 180.0) -> "ScenarioBuilder":
        self._topology = {"kind": "grid", "n": int(n), "spacing": float(spacing)}
        return self

    def uniform(
        self, n: int, area: tuple[float, float], require_connected: bool = True
    ) -> "ScenarioBuilder":
        self._topology = {
            "kind": "uniform",
            "n": int(n),
            "area": [float(area[0]), float(area[1])],
            "require_connected": bool(require_connected),
        }
        return self

    def uniform_density(
        self, n: int, density: float = 10.0, require_connected: bool = False
    ) -> "ScenarioBuilder":
        """Uniform placement in a square sized so that the *expected
        neighbor count* per node is ``density``, whatever ``n`` is.

        The fixed-area ``uniform`` knob saturates as ``n`` grows (every
        node ends up hearing everyone); this one keeps local density
        constant, which is what large-N sweeps (500-1000 nodes) need for
        flood behaviour to stay multi-hop.  The side length resolves at
        ``build()`` time from the final radio range, so call order
        relative to ``radio()`` does not matter.
        """
        if density <= 0:
            raise ValueError("density must be positive")
        self._topology = {
            "kind": "uniform_density",
            "n": int(n),
            "density": float(density),
            "require_connected": bool(require_connected),
        }
        return self

    def clustered(
        self,
        n: int,
        clusters: int,
        area: tuple[float, float],
        cluster_std: float = 60.0,
    ) -> "ScenarioBuilder":
        """Gaussian clusters -- teams converging on a disaster site."""
        self._topology = {
            "kind": "clustered",
            "n": int(n),
            "clusters": int(clusters),
            "area": [float(area[0]), float(area[1])],
            "cluster_std": float(cluster_std),
        }
        return self

    def positions(self, pts) -> "ScenarioBuilder":
        """Explicit (n, 2) placement."""
        points = np.asarray(pts, dtype=float)
        self._topology = {"kind": "positions", "points": points.tolist()}
        return self

    def _resolve_topology(self) -> tuple[np.ndarray, tuple[float, float] | None]:
        """Materialise host positions and the mobility area from the spec."""
        topo = self._topology
        if topo is None:
            raise ValueError("no topology chosen (use chain/grid/uniform/positions)")
        kind = topo["kind"]
        if kind == "chain":
            n, spacing = topo["n"], topo["spacing"]
            return chain_positions(n, spacing), (max(1.0, (n - 1) * spacing), spacing)
        if kind == "grid":
            n, spacing = topo["n"], topo["spacing"]
            side = int(np.ceil(np.sqrt(n)))
            return grid_positions(n, spacing), (side * spacing, side * spacing)
        if kind == "uniform":
            n, area = topo["n"], tuple(topo["area"])
            rng = Simulator(seed=self.seed).rng("placement")
            if topo["require_connected"]:
                pts = connected_uniform_positions(n, area, self._radio_range, rng)
            else:
                pts = uniform_positions(n, area, rng)
            return pts, area
        if kind == "uniform_density":
            n, density = topo["n"], topo["density"]
            # E[neighbors] = density  =>  area = n * pi * r^2 / density.
            r = self._radio_range
            side = math.sqrt(n * math.pi * r * r / density)
            area = (side, side)
            rng = Simulator(seed=self.seed).rng("placement")
            if topo["require_connected"]:
                pts = connected_uniform_positions(n, area, r, rng)
            else:
                pts = uniform_positions(n, area, rng)
            return pts, area
        if kind == "clustered":
            area = tuple(topo["area"])
            rng = Simulator(seed=self.seed).rng("placement")
            pts = clustered_positions(
                topo["n"], topo["clusters"], area, topo["cluster_std"], rng
            )
            return pts, area
        if kind == "positions":
            return np.asarray(topo["points"], dtype=float), None
        raise ValueError(f"unknown topology kind {kind!r}")

    # -- radio ------------------------------------------------------------------
    def radio(self, radio_range: float = 250.0, loss_rate: float = 0.0) -> "ScenarioBuilder":
        self._radio_range = radio_range
        self._loss_rate = loss_rate
        return self

    def medium(
        self, index: str | None = None, vectorized: bool | None = None
    ) -> "ScenarioBuilder":
        """Medium knobs: neighbor index (``"grid"`` spatial hash, the
        default, or ``"naive"`` full scan) and the broadcast pipeline
        (``True``, the default numpy path, or ``False`` for the scalar
        loop).  Results are byte-identical across all four combinations;
        campaigns sweep ``medium_index`` / ``medium_vectorized`` to
        regression-test that claim.  ``None`` (for either knob) means
        "leave unchanged", so ``.medium("naive")`` and
        ``.medium(vectorized=False)`` compose in any order without
        clobbering each other."""
        if index is not None:
            if index not in ("grid", "naive"):
                raise ValueError(
                    f"unknown medium index {index!r} (expected 'grid' or 'naive')"
                )
            self._medium_index = index
        if vectorized is not None:
            self._medium_vectorized = bool(vectorized)
        return self

    def crypto(
        self,
        shared_cache: bool | None = None,
        batch_verify: bool | None = None,
        keypair_pool: bool | None = None,
    ) -> "ScenarioBuilder":
        """Crypto fast-path knobs (sugar over :meth:`config` fields
        ``crypto_shared_cache`` / ``crypto_batch_verify`` /
        ``crypto_keypair_pool``, so they sweep through the ``config``
        spec key like any other NodeConfig override).  All default True;
        results are byte-identical across the whole 2x2x2 matrix --
        ``tests/test_crypto_equivalence.py`` regression-tests that claim.
        ``None`` means "leave unchanged", same composition contract as
        :meth:`medium`."""
        overrides = {}
        if shared_cache is not None:
            overrides["crypto_shared_cache"] = bool(shared_cache)
        if batch_verify is not None:
            overrides["crypto_batch_verify"] = bool(batch_verify)
        if keypair_pool is not None:
            overrides["crypto_keypair_pool"] = bool(keypair_pool)
        if overrides:
            self.config(**overrides)
        return self

    # -- protocol ----------------------------------------------------------------
    def config(self, **overrides) -> "ScenarioBuilder":
        self._config = self._config.with_overrides(**overrides)
        self._config_overrides.update(overrides)
        return self

    def router(self, router_cls, node_name: str | None = None) -> "ScenarioBuilder":
        """Set the router class network-wide, or for one node by name."""
        if node_name is None:
            self._router_cls = router_cls
        else:
            self._router_cls_by_name[node_name] = router_cls
        return self

    # -- DNS -----------------------------------------------------------------------
    def with_dns(self, position: tuple[float, float] | None = None) -> "ScenarioBuilder":
        self._with_dns = True
        self._dns_position = position
        return self

    def preregister(self, name: str, ip: IPv6Address) -> "ScenarioBuilder":
        """Install a permanent DNS entry before network formation."""
        self._dns_preregistrations.append((name, ip))
        return self

    # -- faults ---------------------------------------------------------------------
    def faults(self, plan) -> "ScenarioBuilder":
        """Attach a declarative fault plan (see :mod:`repro.faults.plan`).

        ``plan`` is a :class:`FaultPlan`, a ``{"events": [...]}`` dict,
        or a bare event list; it is validated here so a typo'd campaign
        axis fails at spec time, not silently mid-sweep.  Event times are
        relative to the moment the plan is armed (end of
        ``bootstrap_all``).  A plan with no events is exactly equivalent
        to no plan: nothing is attached and the run is byte-identical.
        """
        self._faults = FaultPlan.from_spec(plan)
        return self

    # -- mobility -------------------------------------------------------------------
    def random_waypoint(
        self, speed: tuple[float, float] = (1.0, 5.0), pause: float = 10.0
    ) -> "ScenarioBuilder":
        self._mobility = {"kind": "rwp", "speed": speed, "pause": pause}
        return self

    # -- serialization -----------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: dict) -> "ScenarioBuilder":
        """Rebuild a builder from a plain-dict spec (see :meth:`to_spec`).

        Specs are JSON-clean, so campaign files and baselines can store
        them verbatim; ``from_spec(b.to_spec())`` reproduces ``b``.
        """
        known = {
            "seed", "topology", "radio", "config", "router",
            "routers_by_name", "dns", "preregister", "mobility",
            "medium_index", "medium_vectorized", "faults",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown scenario spec keys: {sorted(unknown)}")
        if "topology" not in spec:
            raise ValueError("scenario spec requires a 'topology' entry")

        builder = cls(seed=int(spec.get("seed", 0)))
        radio = spec.get("radio", {})
        _check_keys("radio", radio, {"range", "loss_rate"})
        builder.radio(
            radio_range=float(radio.get("range", 250.0)),
            loss_rate=float(radio.get("loss_rate", 0.0)),
        )
        builder.medium(
            str(spec.get("medium_index", "grid")),
            vectorized=bool(spec.get("medium_vectorized", True)),
        )
        if spec.get("config"):
            builder.config(**spec["config"])

        topo = dict(spec["topology"])
        kind = topo.pop("kind", None)
        _check_keys(
            f"topology[{kind}]", topo,
            _TOPOLOGY_KEYS.get(kind, set(topo)),
        )
        if kind == "chain":
            builder.chain(topo["n"], spacing=topo.get("spacing", 200.0))
        elif kind == "grid":
            builder.grid(topo["n"], spacing=topo.get("spacing", 180.0))
        elif kind == "uniform":
            builder.uniform(
                topo["n"], tuple(topo["area"]),
                require_connected=topo.get("require_connected", True),
            )
        elif kind == "uniform_density":
            builder.uniform_density(
                topo["n"], density=topo.get("density", 10.0),
                require_connected=topo.get("require_connected", False),
            )
        elif kind == "clustered":
            builder.clustered(
                topo["n"], topo["clusters"], tuple(topo["area"]),
                cluster_std=topo.get("cluster_std", 60.0),
            )
        elif kind == "positions":
            builder.positions(topo["points"])
        else:
            raise ValueError(f"unknown topology kind {kind!r}")

        builder.router(router_class(spec.get("router", "secure")))
        for node_name, rname in spec.get("routers_by_name", {}).items():
            builder.router(router_class(rname), node_name=node_name)
        if "dns" in spec:
            _check_keys("dns", spec["dns"], {"position"})
            pos = spec["dns"].get("position")
            builder.with_dns(tuple(pos) if pos is not None else None)
        for name, ip in spec.get("preregister", []):
            builder.preregister(name, IPv6Address(ip))
        mob = spec.get("mobility")
        if mob is not None:
            if mob.get("kind") != "rwp":
                raise ValueError(f"unknown mobility kind {mob.get('kind')!r}")
            _check_keys("mobility", mob, {"kind", "speed", "pause"})
            builder.random_waypoint(
                speed=tuple(mob.get("speed", (1.0, 5.0))),
                pause=float(mob.get("pause", 10.0)),
            )
        if spec.get("faults"):
            builder.faults(spec["faults"])
        return builder

    def to_spec(self) -> dict:
        """Serialize this builder to a JSON-clean plain dict."""
        if self._topology is None:
            raise ValueError("no topology chosen (use chain/grid/uniform/positions)")
        spec: dict = {
            "seed": self.seed,
            "topology": copy.deepcopy(self._topology),
            "radio": {"range": self._radio_range, "loss_rate": self._loss_rate},
            "router": router_name(self._router_cls),
        }
        if self._medium_index != "grid":
            spec["medium_index"] = self._medium_index
        if not self._medium_vectorized:
            spec["medium_vectorized"] = False
        if self._config_overrides:
            spec["config"] = dict(self._config_overrides)
        if self._router_cls_by_name:
            spec["routers_by_name"] = {
                name: router_name(rc)
                for name, rc in self._router_cls_by_name.items()
            }
        if self._with_dns:
            pos = self._dns_position
            spec["dns"] = {"position": [float(pos[0]), float(pos[1])] if pos else None}
        if self._dns_preregistrations:
            spec["preregister"] = [
                [name, str(ip)] for name, ip in self._dns_preregistrations
            ]
        if self._mobility:
            spec["mobility"] = {
                "kind": "rwp",
                "speed": [float(s) for s in self._mobility["speed"]],
                "pause": float(self._mobility["pause"]),
            }
        if self._faults is not None and self._faults.events:
            spec["faults"] = self._faults.to_spec()
        return spec

    # -- build -----------------------------------------------------------------------
    def build(self) -> Scenario:
        positions, area = self._resolve_topology()
        sim = Simulator(seed=self.seed)
        medium = WirelessMedium(
            sim, radio_range=self._radio_range, loss_rate=self._loss_rate,
            index=self._medium_index, vectorized=self._medium_vectorized,
        )
        ctx = NetContext(sim=sim, medium=medium)

        dns_node = None
        if self._with_dns:
            dns_pos = self._dns_position or tuple(positions.mean(axis=0))
            dns_node = self._make_node(ctx, "dns", dns_pos, SecureDSRRouter)
            # Server identity exists before network formation (paper
            # assumption): adopt a CGA immediately, no DAD.
            ip, params = generate_cga(dns_node.public_key, dns_node.rng("self-cga"))
            dns_node.adopt_identity(ip, params)
            dns_node.domain_name = "dns.manet"
            server = DNSServer(dns_node)
            dns_node.attach_component("dns_server", server)
            for name, addr in self._dns_preregistrations:
                server.preregister(name, addr)

        hosts = []
        for i, pos in enumerate(positions):
            name = f"n{i}"
            router_cls = self._router_cls_by_name.get(name, self._router_cls)
            hosts.append(self._make_node(ctx, name, tuple(pos), router_cls))

        if self._mobility and self._mobility["kind"] == "rwp":
            mob = RandomWaypoint(
                sim, medium, [h.link_id for h in hosts],
                area=area or (1000.0, 1000.0),
                speed_range=tuple(self._mobility["speed"]),
                pause=self._mobility["pause"],
            )
            mob.start()

        scenario = Scenario(ctx, dns_node, hosts)
        if self._faults is not None and self._faults.events:
            scenario.faults = FaultInjector(scenario, self._faults)
            # Fault columns join the summary only when faults exist, so
            # fault-free runs stay byte-identical to pre-fault builds.
            ctx.metrics.attach_fault_stats(scenario.faults.stats)
        return scenario

    def _make_node(self, ctx, name, position, router_cls) -> Node:
        node = Node(ctx, name, position, config=self._config)
        node.attach_component("bootstrap", BootstrapManager(node))
        node.attach_component("router", router_cls(node))
        node.attach_component("dns_client", DNSClient(node))
        return node
