"""Scenario construction.

A :class:`Scenario` owns the simulator, the medium, the DNS server node
and the host nodes, with every protocol component wired.  The
:class:`ScenarioBuilder` fluent API picks topology, router class,
config overrides and mobility; ``build()`` materialises everything
(deterministically from the seed) without running any simulation time.

The DNS server is created already-configured: the paper assumes the
server (and the distribution of its public key) predates network
formation, so it does not itself run DAD.
"""

from __future__ import annotations

import numpy as np

from repro.bootstrap.autoconf import BootstrapManager
from repro.core.config import NodeConfig
from repro.core.context import NetContext
from repro.core.node import Node
from repro.dns.client import DNSClient
from repro.dns.server import DNSServer
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import generate_cga
from repro.metrics.collector import MetricsCollector
from repro.phy.medium import WirelessMedium
from repro.phy.mobility import RandomWaypoint
from repro.phy.topology import (
    chain_positions,
    connected_uniform_positions,
    grid_positions,
    uniform_positions,
)
from repro.routing.secure_dsr import SecureDSRRouter
from repro.sim.kernel import Simulator
from repro.trace.recorder import TraceRecorder


class Scenario:
    """A fully wired simulation: kernel + medium + DNS + hosts."""

    def __init__(self, ctx: NetContext, dns_node: Node | None, hosts: list[Node]):
        self.ctx = ctx
        self.sim = ctx.sim
        self.medium = ctx.medium
        self.dns_node = dns_node
        self.hosts = hosts

    # -- convenient accessors ------------------------------------------------
    @property
    def metrics(self) -> MetricsCollector:
        return self.ctx.metrics

    @property
    def trace(self) -> TraceRecorder:
        return self.ctx.trace

    @property
    def all_nodes(self) -> list[Node]:
        return ([self.dns_node] if self.dns_node else []) + self.hosts

    def host(self, name: str) -> Node:
        for node in self.all_nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    @property
    def dns_server(self) -> DNSServer | None:
        return self.dns_node.component("dns_server") if self.dns_node else None

    # -- orchestration ----------------------------------------------------------
    def bootstrap_all(
        self,
        stagger: float = 0.25,
        names: dict[str, str] | None = None,
        run: bool = True,
    ) -> None:
        """Start secure DAD on every host, staggered, and (by default) run
        the simulation until the last join settles.

        ``names`` maps node name -> requested domain name.
        """
        names = names or {}
        for i, node in enumerate(self.hosts):
            dn = names.get(node.name, "")
            self.sim.schedule(i * stagger, node.bootstrap.start, dn)
        if run:
            cfg = self.hosts[0].config if self.hosts else NodeConfig()
            settle = len(self.hosts) * stagger + cfg.dad_timeout * 3 + 1.0
            self.sim.run(until=self.sim.now + settle)

    def run(self, until: float | None = None, duration: float | None = None) -> None:
        """Run to absolute time ``until`` or for ``duration`` more seconds."""
        if duration is not None:
            until = self.sim.now + duration
        self.sim.run(until=until)

    def send_data(self, src: Node, dst: IPv6Address, payload: bytes, **kw) -> int:
        """Convenience passthrough to the source node's router."""
        return src.router.send_data(dst, payload, **kw)

    def configured_count(self) -> int:
        return sum(1 for n in self.hosts if n.configured)


class ScenarioBuilder:
    """Fluent scenario assembly.  All randomness derives from ``seed``."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._config = NodeConfig()
        self._router_cls = SecureDSRRouter
        self._router_cls_by_name: dict[str, type] = {}
        self._positions: np.ndarray | None = None
        self._radio_range = 250.0
        self._loss_rate = 0.0
        self._with_dns = False
        self._dns_position: tuple[float, float] | None = None
        self._dns_preregistrations: list[tuple[str, IPv6Address]] = []
        self._mobility: dict | None = None
        self._area: tuple[float, float] | None = None

    # -- topology -------------------------------------------------------------
    def chain(self, n: int, spacing: float = 200.0) -> "ScenarioBuilder":
        """A line of ``n`` hosts; spacing < range => i hears only i±1."""
        self._positions = chain_positions(n, spacing)
        self._area = (max(1.0, (n - 1) * spacing), spacing)
        return self

    def grid(self, n: int, spacing: float = 180.0) -> "ScenarioBuilder":
        self._positions = grid_positions(n, spacing)
        side = int(np.ceil(np.sqrt(n)))
        self._area = (side * spacing, side * spacing)
        return self

    def uniform(
        self, n: int, area: tuple[float, float], require_connected: bool = True
    ) -> "ScenarioBuilder":
        rng_holder = Simulator(seed=self.seed).rng("placement")
        if require_connected:
            self._positions = connected_uniform_positions(
                n, area, self._radio_range, rng_holder
            )
        else:
            self._positions = uniform_positions(n, area, rng_holder)
        self._area = area
        return self

    def positions(self, pts) -> "ScenarioBuilder":
        """Explicit (n, 2) placement."""
        self._positions = np.asarray(pts, dtype=float)
        return self

    # -- radio ------------------------------------------------------------------
    def radio(self, radio_range: float = 250.0, loss_rate: float = 0.0) -> "ScenarioBuilder":
        self._radio_range = radio_range
        self._loss_rate = loss_rate
        return self

    # -- protocol ----------------------------------------------------------------
    def config(self, **overrides) -> "ScenarioBuilder":
        self._config = self._config.with_overrides(**overrides)
        return self

    def router(self, router_cls, node_name: str | None = None) -> "ScenarioBuilder":
        """Set the router class network-wide, or for one node by name."""
        if node_name is None:
            self._router_cls = router_cls
        else:
            self._router_cls_by_name[node_name] = router_cls
        return self

    # -- DNS -----------------------------------------------------------------------
    def with_dns(self, position: tuple[float, float] | None = None) -> "ScenarioBuilder":
        self._with_dns = True
        self._dns_position = position
        return self

    def preregister(self, name: str, ip: IPv6Address) -> "ScenarioBuilder":
        """Install a permanent DNS entry before network formation."""
        self._dns_preregistrations.append((name, ip))
        return self

    # -- mobility -------------------------------------------------------------------
    def random_waypoint(
        self, speed: tuple[float, float] = (1.0, 5.0), pause: float = 10.0
    ) -> "ScenarioBuilder":
        self._mobility = {"kind": "rwp", "speed": speed, "pause": pause}
        return self

    # -- build -----------------------------------------------------------------------
    def build(self) -> Scenario:
        if self._positions is None:
            raise ValueError("no topology chosen (use chain/grid/uniform/positions)")
        sim = Simulator(seed=self.seed)
        medium = WirelessMedium(
            sim, radio_range=self._radio_range, loss_rate=self._loss_rate
        )
        ctx = NetContext(sim=sim, medium=medium)

        dns_node = None
        if self._with_dns:
            dns_pos = self._dns_position or tuple(
                np.asarray(self._positions).mean(axis=0)
            )
            dns_node = self._make_node(ctx, "dns", dns_pos, SecureDSRRouter)
            # Server identity exists before network formation (paper
            # assumption): adopt a CGA immediately, no DAD.
            ip, params = generate_cga(dns_node.public_key, dns_node.rng("self-cga"))
            dns_node.adopt_identity(ip, params)
            dns_node.domain_name = "dns.manet"
            server = DNSServer(dns_node)
            dns_node.attach_component("dns_server", server)
            for name, addr in self._dns_preregistrations:
                server.preregister(name, addr)

        hosts = []
        for i, pos in enumerate(np.asarray(self._positions)):
            name = f"n{i}"
            router_cls = self._router_cls_by_name.get(name, self._router_cls)
            hosts.append(self._make_node(ctx, name, tuple(pos), router_cls))

        if self._mobility and self._mobility["kind"] == "rwp":
            mob = RandomWaypoint(
                sim, medium, [h.link_id for h in hosts],
                area=self._area or (1000.0, 1000.0),
                speed_range=self._mobility["speed"],
                pause=self._mobility["pause"],
            )
            mob.start()

        return Scenario(ctx, dns_node, hosts)

    def _make_node(self, ctx, name, position, router_cls) -> Node:
        node = Node(ctx, name, position, config=self._config)
        node.attach_component("bootstrap", BootstrapManager(node))
        node.attach_component("router", router_cls(node))
        node.attach_component("dns_client", DNSClient(node))
        return node
