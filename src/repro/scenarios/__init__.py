"""Scenario assembly: network builders, traffic workloads, attack wiring.

:class:`~repro.scenarios.builder.ScenarioBuilder` is the main entry
point for examples, tests and benchmarks::

    scenario = (
        ScenarioBuilder(seed=7)
        .grid(16, spacing=180)
        .with_dns()
        .build()
    )
    scenario.bootstrap_all()
"""

from repro.scenarios.builder import (
    ROUTER_REGISTRY,
    Scenario,
    ScenarioBuilder,
    router_class,
    router_name,
)
from repro.scenarios.workloads import CBRTraffic, PoissonTraffic, RequestResponse
from repro.scenarios.attacks import (
    add_blackhole,
    add_rerr_spammer,
    add_forger,
    add_replayer,
    add_dns_impersonator,
    add_identity_churner,
)

__all__ = [
    "ROUTER_REGISTRY",
    "Scenario",
    "ScenarioBuilder",
    "router_class",
    "router_name",
    "CBRTraffic",
    "PoissonTraffic",
    "RequestResponse",
    "add_blackhole",
    "add_rerr_spammer",
    "add_forger",
    "add_replayer",
    "add_dns_impersonator",
    "add_identity_churner",
]
