"""Attack wiring: drop adversary nodes into a built scenario.

Each helper creates a node at the given position, attaches the
adversarial router/component plus the normal bootstrap and DNS client
(adversaries *participate* in the protocol -- that is what makes them
dangerous), and returns the node so tests can inspect attack counters.

These run *before* ``scenario.bootstrap_all()`` so the adversary joins
the network alongside honest hosts.
"""

from __future__ import annotations

from repro.adversary.blackhole import BlackholeRouter
from repro.adversary.forger import ForgingRouter
from repro.adversary.identity_churner import IdentityChurnBlackhole
from repro.adversary.impersonator import DNSImpersonatorRouter
from repro.adversary.replayer import ReplayAgent
from repro.adversary.rerr_spammer import RERRSpamRouter
from repro.bootstrap.autoconf import BootstrapManager
from repro.core.node import Node
from repro.dns.client import DNSClient
from repro.ipv6.address import IPv6Address
from repro.scenarios.builder import Scenario


def _make_adversary_node(
    scenario: Scenario,
    name: str,
    position: tuple[float, float],
    router_factory,
) -> Node:
    node = Node(scenario.ctx, name, position, config=scenario.hosts[0].config)
    node.attach_component("bootstrap", BootstrapManager(node))
    node.attach_component("router", router_factory(node))
    node.attach_component("dns_client", DNSClient(node))
    scenario.hosts.append(node)
    return node


def add_blackhole(
    scenario: Scenario,
    position: tuple[float, float],
    name: str = "blackhole",
    forge_rreps: bool = False,
    drop_probability: float = 1.0,
) -> Node:
    """A data-dropping relay; ``forge_rreps`` adds route-attraction forgery."""
    return _make_adversary_node(
        scenario, name, position,
        lambda n: BlackholeRouter(n, forge_rreps=forge_rreps,
                                  drop_probability=drop_probability),
    )


def add_rerr_spammer(
    scenario: Scenario,
    position: tuple[float, float],
    name: str = "spammer",
    also_drop: bool = False,
) -> Node:
    return _make_adversary_node(
        scenario, name, position,
        lambda n: RERRSpamRouter(n, also_drop=also_drop),
    )


def add_forger(
    scenario: Scenario,
    position: tuple[float, float],
    name: str = "forger",
    spoof_hop_ip: IPv6Address | None = None,
    forge_acks: bool = False,
    drop_data: bool = False,
) -> Node:
    return _make_adversary_node(
        scenario, name, position,
        lambda n: ForgingRouter(n, spoof_hop_ip=spoof_hop_ip,
                                forge_acks=forge_acks, drop_data=drop_data),
    )


def add_replayer(
    scenario: Scenario,
    position: tuple[float, float],
    name: str = "replayer",
) -> Node:
    """An otherwise-honest host carrying a record-and-replay component."""
    from repro.routing.secure_dsr import SecureDSRRouter

    node = _make_adversary_node(scenario, name, position, SecureDSRRouter)
    node.attach_component("replayer", ReplayAgent(node))
    return node


def add_dns_impersonator(
    scenario: Scenario,
    position: tuple[float, float],
    fake_answer: IPv6Address,
    name: str = "dns-imp",
    drop_real_query: bool = True,
) -> Node:
    return _make_adversary_node(
        scenario, name, position,
        lambda n: DNSImpersonatorRouter(n, fake_answer=fake_answer,
                                        drop_real_query=drop_real_query),
    )


def add_identity_churner(
    scenario: Scenario,
    position: tuple[float, float],
    name: str = "churner",
    churn_interval: float = 20.0,
) -> Node:
    return _make_adversary_node(
        scenario, name, position,
        lambda n: IdentityChurnBlackhole(n, churn_interval=churn_interval),
    )
