"""Traffic workloads.

Three generators cover the experiments' needs:

* :class:`CBRTraffic` -- constant-bit-rate flow (the MANET evaluation
  staple), fixed interval and packet count;
* :class:`PoissonTraffic` -- exponential inter-arrivals, for randomised
  load;
* :class:`RequestResponse` -- request/ACK-style application exchange
  used by the DNS-heavy scenarios.

All report through the scenario's MetricsCollector automatically
(delivery accounting lives in the routing layer).
"""

from __future__ import annotations

from repro.core.node import Node
from repro.ipv6.address import IPv6Address


class CBRTraffic:
    """Constant-rate flow of ``count`` packets every ``interval`` seconds."""

    def __init__(
        self,
        src: Node,
        dst: IPv6Address,
        interval: float = 1.0,
        count: int = 10,
        payload_size: int = 64,
        start_at: float = 0.0,
    ):
        if interval <= 0 or count <= 0 or payload_size < 0:
            raise ValueError("interval/count must be positive, payload_size >= 0")
        self.src = src
        self.dst = dst
        self.interval = interval
        self.count = count
        self.payload = bytes(payload_size)
        self.sent = 0
        self.delivered = 0
        self.failed = 0
        src.sim.schedule(start_at, self._tick)

    def _tick(self) -> None:
        if self.sent >= self.count:
            return
        self.sent += 1
        self.src.router.send_data(
            self.dst,
            self.payload,
            on_delivered=self._on_delivered,
            on_failed=self._on_failed,
        )
        if self.sent < self.count:
            self.src.sim.schedule(self.interval, self._tick)

    def _on_delivered(self) -> None:
        self.delivered += 1

    def _on_failed(self) -> None:
        self.failed += 1

    @property
    def done(self) -> bool:
        return self.delivered + self.failed == self.count


class PoissonTraffic:
    """Poisson flow: exponential inter-arrivals at the given rate (pkt/s)."""

    def __init__(
        self,
        src: Node,
        dst: IPv6Address,
        rate: float = 1.0,
        count: int = 10,
        payload_size: int = 64,
        start_at: float = 0.0,
    ):
        if rate <= 0 or count <= 0:
            raise ValueError("rate and count must be positive")
        self.src = src
        self.dst = dst
        self.rate = rate
        self.count = count
        self.payload = bytes(payload_size)
        self.sent = 0
        self.delivered = 0
        self.failed = 0
        self._rng = src.rng("poisson-traffic")
        src.sim.schedule(start_at + self._rng.expovariate(rate), self._tick)

    def _tick(self) -> None:
        if self.sent >= self.count:
            return
        self.sent += 1
        self.src.router.send_data(
            self.dst,
            self.payload,
            on_delivered=lambda: setattr(self, "delivered", self.delivered + 1),
            on_failed=lambda: setattr(self, "failed", self.failed + 1),
        )
        if self.sent < self.count:
            self.src.sim.schedule(self._rng.expovariate(self.rate), self._tick)


class RequestResponse:
    """Application-level request/response pairs over the data plane.

    The responder side is handled by the destination's router ACK; this
    class measures round-trip completion of each request at the source.
    """

    def __init__(
        self,
        src: Node,
        dst: IPv6Address,
        count: int = 5,
        interval: float = 2.0,
        payload_size: int = 128,
    ):
        self.src = src
        self.dst = dst
        self.count = count
        self.interval = interval
        self.payload = bytes(payload_size)
        self.completed = 0
        self.failed = 0
        self.rtts: list[float] = []
        self._next(0)

    def _next(self, i: int) -> None:
        if i >= self.count:
            return
        started = self.src.sim.now
        self.src.router.send_data(
            self.dst,
            self.payload,
            on_delivered=lambda: self._on_done(started),
            on_failed=self._on_fail,
        )
        self.src.sim.schedule(self.interval, self._next, i + 1)

    def _on_done(self, started: float) -> None:
        self.completed += 1
        self.rtts.append(self.src.sim.now - started)

    def _on_fail(self) -> None:
        self.failed += 1

    @property
    def mean_rtt(self) -> float:
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0
