"""Per-scenario shared services.

A :class:`NetContext` is created once per scenario and handed to every
node: the simulation kernel, the shared medium, the metrics collector,
the trace recorder, and the network-wide DNS trust anchor (the DNS
server's public key, which the paper assumes "has been securely
distributed to all mobile nodes prior to network formation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import PublicKey
from repro.metrics.collector import MetricsCollector
from repro.phy.medium import WirelessMedium
from repro.sim.kernel import Simulator
from repro.trace.recorder import TraceRecorder


@dataclass
class NetContext:
    """Bundle of scenario-wide singletons shared by all nodes."""

    sim: Simulator
    medium: WirelessMedium
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    trace: TraceRecorder = field(default_factory=TraceRecorder)
    #: The pre-distributed DNS public key -- the system's only a-priori
    #: security state.  Set by the scenario builder when the DNS server
    #: node is created, before any host bootstraps.
    dns_public_key: PublicKey | None = None

    def __post_init__(self) -> None:
        # Let the medium annotate the shared trace (e.g. graceful no-op
        # notes when churn races a detach).
        self.medium.trace = self.trace

    @property
    def now(self) -> float:
        return self.sim.now
