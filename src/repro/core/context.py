"""Per-scenario shared services.

A :class:`NetContext` is created once per scenario and handed to every
node: the simulation kernel, the shared medium, the metrics collector,
the trace recorder, and the network-wide DNS trust anchor (the DNS
server's public key, which the paper assumes "has been securely
distributed to all mobile nodes prior to network formation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.backend import CryptoBackend, create_backend
from repro.crypto.keys import PublicKey
from repro.crypto.verify_cache import SharedVerifyCache
from repro.metrics.collector import MetricsCollector
from repro.phy.medium import WirelessMedium
from repro.sim.kernel import Simulator
from repro.trace.recorder import TraceRecorder


@dataclass
class NetContext:
    """Bundle of scenario-wide singletons shared by all nodes."""

    sim: Simulator
    medium: WirelessMedium
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    trace: TraceRecorder = field(default_factory=TraceRecorder)
    #: The pre-distributed DNS public key -- the system's only a-priori
    #: security state.  Set by the scenario builder when the DNS server
    #: node is created, before any host bootstraps.
    dns_public_key: PublicKey | None = None
    #: Per-scenario crypto backend instances (name -> backend), created
    #: lazily by :meth:`crypto_backend`.  Scenario-owned instances fix
    #: the reused-worker state leak: the :func:`repro.crypto.backend.get_backend`
    #: registry singletons used to accumulate simsig oracle entries and
    #: sign/verify counters across every run in a process.
    crypto_backends: dict[str, CryptoBackend] = field(default_factory=dict, repr=False)
    #: Scenario-wide verified-signature cache, created lazily by
    #: :meth:`shared_verify_cache` (None until a node with
    #: ``crypto_shared_cache`` enabled asks for it).
    verify_cache: SharedVerifyCache | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        # Let the medium annotate the shared trace (e.g. graceful no-op
        # notes when churn races a detach).
        self.medium.trace = self.trace

    def crypto_backend(self, name: str) -> CryptoBackend:
        """This scenario's instance of backend ``name`` (lazily created).

        All nodes of a scenario share one instance per backend name, so
        simsig's in-simulation oracle spans the scenario (as it must for
        verification to work) and nothing else.
        """
        backend = self.crypto_backends.get(name)
        if backend is None:
            backend = create_backend(name)
            self.crypto_backends[name] = backend
        return backend

    def shared_verify_cache(self, capacity: int) -> SharedVerifyCache:
        """This scenario's shared verify cache (lazily created).

        First caller's ``capacity`` wins; nodes normally share one
        :class:`~repro.core.config.NodeConfig` so they agree anyway.
        """
        if self.verify_cache is None:
            self.verify_cache = SharedVerifyCache(capacity)
        return self.verify_cache

    @property
    def now(self) -> float:
        return self.sim.now
