"""The protocol node and its wiring.

:class:`~repro.core.node.Node` is the hub every protocol component
(bootstrap manager, router, DNS client/server, adversary logic) attaches
to: it owns the radio, the key pair, the IP identity, the neighbour
cache and message dispatch.  :class:`~repro.core.config.NodeConfig`
centralises every protocol knob; :class:`~repro.core.context.NetContext`
bundles the per-scenario singletons (kernel, medium, metrics, trace).
"""

from repro.core.config import NodeConfig
from repro.core.context import NetContext
from repro.core.node import Node

__all__ = ["NodeConfig", "NetContext", "Node"]
