"""Every protocol knob in one dataclass.

Defaults follow the paper where it gives guidance ("a predefined period
of time" for DAD, low initial credit, "a very large amount" of penalty)
and sensible 2003-era 802.11 values elsewhere.  Experiments override
selectively; ablation benchmarks sweep the fields called out in
DESIGN.md Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class NodeConfig:
    """Configuration for one protocol node (usually shared network-wide)."""

    # -- identity / crypto -------------------------------------------------
    #: Crypto backend name: "simsig" (fast) or "rsa" (real algebra).
    crypto_backend: str = "simsig"
    #: Add each sign/verify's simulated cost to the node's next transmission.
    charge_crypto_delay: bool = True
    #: Per-node LRU memoization of signature checks, keyed on
    #: (public_key, payload, signature).  Flooded RREQs arrive as many
    #: identical copies; re-checking the same triple is pure waste, so a
    #: hit costs no crypto debt and counts as "verify_cached" in the
    #: metrics.  0 disables the cache.
    verify_cache_size: int = 128
    #: Crypto fast path, layer 1: consult the scenario-wide
    #: SharedVerifyCache on a per-node-LRU miss, so a signature verified
    #: at *any* node costs one real backend computation network-wide.
    #: Byte-identical contract: a shared hit still counts the "verify"
    #: metric and charges crypto debt -- only the host-time computation
    #: is skipped (same A/B discipline as ``medium_vectorized``).
    crypto_shared_cache: bool = True
    #: Capacity of the scenario-wide shared verify cache (entries).
    #: 0 disables it even when crypto_shared_cache is True.
    shared_verify_cache_size: int = 4096
    #: Crypto fast path, layer 2: verify simultaneously-presented
    #: signatures (a RREQ's source-route entries) in one backend bulk
    #: pass, then replay metrics/debt/LRU effects sequentially so the
    #: observable stream is identical to one-at-a-time verification.
    crypto_batch_verify: bool = True
    #: Crypto fast path, layer 3: derive node keypairs through the
    #: process-wide (backend, seed) KeypairPool so a reused campaign
    #: worker never regenerates a pair it has already derived.
    #: Deterministic keygen makes the pooled pair bit-identical to a
    #: fresh derivation.
    crypto_keypair_pool: bool = True

    # -- generic -------------------------------------------------------------
    #: IPv6 hop limit for flooded/forwarded control messages.
    hop_limit: int = 64
    #: Max jitter (s) before rebroadcasting a flood (collision avoidance).
    rebroadcast_jitter: float = 0.01

    # -- bootstrap (Section 3.1) ----------------------------------------------
    #: "Predefined period of time" S waits for AREP/DREP before claiming
    #: the address.  Must exceed a network diameter round trip.
    dad_timeout: float = 2.0
    #: Give up (mis)configuring after this many DAD rounds.
    dad_max_retries: int = 8
    #: How long the DNS keeps the challenge of a pending registration
    #: ("the DNS should keep a copy of the ch ... for a while").
    dns_challenge_ttl: float = 10.0
    #: The DNS waits this long after an AREQ before registering (DN, SIP),
    #: giving duplicate-holders' warning AREPs time to arrive.
    dns_registration_delay: float = 2.0
    #: Re-flood a registration AREQ this long after configuring.  Early
    #: joiners probe before any neighbour can relay, so the DNS may never
    #: hear their original AREQ; the refresh closes that gap (hosts may
    #: re-run DAD at any time, and 6DNAR registration rides on it).
    registration_refresh_delay: float = 3.0
    enable_registration_refresh: bool = True

    # -- routing (Sections 3.3-3.4) ---------------------------------------------
    #: Wait for RREP before retrying discovery.
    rreq_timeout: float = 2.0
    rreq_max_retries: int = 3
    #: Per-retry multiplier on rreq_timeout: retry n waits
    #: rreq_timeout * rreq_backoff**n, spreading rediscovery storms out
    #: after a crash or partition.  The default 1.0 is a float-exact
    #: no-op (x * 1.0**n == x), preserving pre-existing timings.
    rreq_backoff: float = 1.0
    #: A destination answers up to this many copies of one RREQ (each
    #: copy arrives over a different path, so each reply offers the
    #: source a distinct candidate route -- DSR behaviour, bounded).
    max_route_replies: int = 3
    #: After the first valid reply completes a discovery, hold queued
    #: packets briefly so replies over alternate paths arrive and the
    #: credit-aware policy has actual choices (first-reply-wins would
    #: hand every fresh discovery to the shortest -- often adversarial --
    #: path).  Costs this much extra latency on cold-cache sends only.
    rrep_collection_window: float = 0.05
    #: Paper: only D verifies the SRR.  True = intermediates also verify
    #: the source signature before rebroadcast (paranoid variant).
    verify_at_intermediate: bool = False
    #: Answer RREQs from route cache with CREP (Section 3.3).
    enable_crep: bool = True
    route_cache_capacity: int = 64
    #: Entries expire after this long (stale MANET routes are poison).
    route_cache_ttl: float = 60.0

    # -- DNS client ----------------------------------------------------------------
    #: Re-send a timed-out DNS query this many times before reporting
    #: failure to the caller.  0 (the default) keeps the historical
    #: single-shot behaviour byte-for-byte.
    dns_query_retries: int = 0
    #: Per-retry multiplier on the query timeout (retry n waits
    #: timeout * dns_query_backoff**n).
    dns_query_backoff: float = 2.0

    # -- data plane ----------------------------------------------------------------
    #: End-to-end ACK wait before the source declares the packet lost.
    ack_timeout: float = 1.0
    #: Send retries per packet (each may trigger a rediscovery).
    data_max_retries: int = 2

    # -- black-hole probing (Section 3.4: "traverse the route and test
    # -- the integrality of each host") ---------------------------------------------
    enable_probing: bool = True
    #: Silent (un-ACKed, un-RERRed) failures on one route before probing it.
    probe_trigger_failures: int = 2
    probe_timeout: float = 1.0

    # -- credit management (Section 3.4) -----------------------------------------------
    #: "A new node should be given a low credit."
    credit_initial: float = 1.0
    #: "The credit of each host in the route is increased by one."
    credit_reward: float = 1.0
    #: "Its credits are decreased by a very large amount."
    credit_penalty: float = 50.0
    #: Route scoring: "min" (bottleneck credit) or "mean".
    credit_route_metric: str = "min"
    #: In a "highly hostile environment", S strictly prefers high-credit
    #: routes; otherwise credit only breaks ties against shorter routes.
    hostile_mode: bool = False
    #: RERRs from one reporter within rerr_window before it is suspected.
    rerr_suspicion_threshold: int = 3
    rerr_window: float = 30.0

    def with_overrides(self, **changes) -> "NodeConfig":
        """A copy with the given fields replaced (frozen dataclass)."""
        return replace(self, **changes)
