"""Plain (insecure) DSR -- the "do nothing" baseline.

Classic Johnson-Maltz DSR: same discovery/reply/maintenance machinery
as :class:`~repro.routing.secure_dsr.SecureDSRRouter` but nothing is
signed and nothing is verified -- route records, replies, errors and
ACKs are all taken on faith, and there is no credit ledger.  This is
the comparator the paper's attack analysis implicitly measures against:
every Section 4 attack *succeeds* here, which the A2-A4 benchmarks
demonstrate quantitatively.
"""

from __future__ import annotations

from repro.crypto.keys import PublicKey
from repro.messages.routing import RREQ, SRREntry
from repro.routing.secure_dsr import SecureDSRRouter

#: Placeholder key carried in plain-DSR route records so the shared
#: message format round-trips; it approximates DSR's bare-IP route
#: record (real DSR would carry 16 bytes/hop, this carries ~52).
NULL_KEY = PublicKey("simsig", b"\x00" * 16)


class PlainDSRRouter(SecureDSRRouter):
    """DSR with every security mechanism disabled."""

    SIGN = False
    SIGN_HOPS = False
    VERIFY_ENDPOINTS = False
    VERIFY_HOPS = False
    USE_CREDIT = False

    def _relay_rreq(self, msg: RREQ) -> None:
        """Append a bare route-record entry (no identity material)."""
        if msg.hop_limit <= 1:
            return
        entry = SRREntry(ip=self.node.ip, signature=b"", public_key=NULL_KEY, rn=0)
        relayed = msg.append_entry(entry)
        delay = self._rng.uniform(0.0, self.cfg.rebroadcast_jitter)
        self.node.sim.schedule(delay, self.node.broadcast, relayed)
