"""Routing: the paper's secure DSR plus two baselines.

* :class:`~repro.routing.secure_dsr.SecureDSRRouter` -- the paper's
  protocol (Sections 3.3-3.4): per-hop identity proofs in the SRR,
  signed RREP/CREP/RERR, credit management, black-hole probing.
* :class:`~repro.routing.dsr.PlainDSRRouter` -- classic insecure DSR
  (Johnson-Maltz), the "what if we do nothing" comparator.
* :class:`~repro.routing.bsar_like.EndpointOnlyRouter` -- a BSAR-style
  variant that verifies only the endpoints (source signature on RREQ,
  destination signature on RREP) but not intermediate SRR entries; the
  paper positions its per-hop verification as the improvement over
  exactly this design.

All three share the DSR skeleton in ``secure_dsr`` (flood RREQ /
reverse-path RREP / source-routed data / RERR maintenance) and differ
only in what they sign and verify, so attack experiments compare
security levels, not incidental implementation choices.
"""

from repro.routing.route_cache import CachedRoute, RouteCache
from repro.routing.secure_dsr import SecureDSRRouter
from repro.routing.dsr import PlainDSRRouter
from repro.routing.bsar_like import EndpointOnlyRouter

__all__ = [
    "CachedRoute",
    "RouteCache",
    "SecureDSRRouter",
    "PlainDSRRouter",
    "EndpointOnlyRouter",
]
