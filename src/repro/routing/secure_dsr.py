"""Secure DSR -- the paper's routing protocol (Sections 3.3-3.4).

One class implements the full DSR skeleton; three class flags carve out
the security ablation levels used by the experiments:

* ``SIGN`` -- originators sign RREQ/RREP/CREP/RERR/ACK and hops sign
  their SRR entries;
* ``VERIFY_ENDPOINTS`` -- S verifies the RREP/CREP/ACK/RERR issuer and
  D verifies the RREQ source;
* ``VERIFY_HOPS`` -- D additionally verifies every SRR entry (the
  paper's contribution beyond BSAR);
* ``USE_CREDIT`` -- the Section 3.4 credit machinery is active.

:class:`SecureDSRRouter` enables everything;
:class:`~repro.routing.dsr.PlainDSRRouter` and
:class:`~repro.routing.bsar_like.EndpointOnlyRouter` downgrade flags.

DNS anycast exception: the well-known DNS addresses are not CGAs, so
when the destination of a discovery is one of them, RREP/CREP/ACK
verification uses the pre-distributed DNS public key instead of the CGA
check -- the paper's trust model for its single piece of infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bootstrap.verifier import IdentityCheck, verify_identity, verify_identity_batch
from repro.core.node import Node
from repro.credit.manager import CreditManager
from repro.credit.policy import RoutePolicy, select_route
from repro.ipv6.address import IPv6Address
from repro.ipv6.prefixes import DNS_ANYCAST_ADDRESSES
from repro.messages import signing
from repro.messages.data import AckPacket, DataPacket
from repro.messages.routing import CREP, RERR, RREP, RREQ, SRREntry
from repro.phy.medium import Frame
from repro.sim.process import Timer

Route = tuple[IPv6Address, ...]

from repro.routing.route_cache import CachedRoute, RouteCache


@dataclass
class PendingDiscovery:
    """An outstanding route discovery at the source."""

    dst: IPv6Address
    seq: int
    started_at: float
    retries: int = 0
    timer: Timer | None = None


@dataclass
class PendingPacket:
    """A data packet awaiting its end-to-end ACK at the source."""

    packet: DataPacket
    route: Route
    retries: int = 0
    timer: Timer | None = None
    is_probe: bool = False
    on_delivered: Callable[[], None] | None = None
    on_failed: Callable[[], None] | None = None


@dataclass
class ProbeSession:
    """One black-hole probe sweep over a failing route."""

    route: Route
    dst: IPv6Address
    acked: set[int] = field(default_factory=set)  # indices into route
    outstanding: int = 0


class SecureDSRRouter:
    """The paper's secure on-demand source-routing protocol."""

    SIGN = True
    #: Whether intermediates sign their SRR entries (BSAR-like keeps
    #: endpoint signatures but appends unsigned hop entries).
    SIGN_HOPS = True
    VERIFY_ENDPOINTS = True
    VERIFY_HOPS = True
    USE_CREDIT = True

    def __init__(self, node: Node):
        self.node = node
        self.cfg = node.config
        self._rng = node.rng("router")
        self.cache = RouteCache(self.cfg.route_cache_capacity, self.cfg.route_cache_ttl)
        self.credits = CreditManager(
            initial=self.cfg.credit_initial,
            reward=self.cfg.credit_reward,
            penalty=self.cfg.credit_penalty,
            rerr_window=self.cfg.rerr_window,
            rerr_threshold=self.cfg.rerr_suspicion_threshold,
        )
        self.policy = RoutePolicy(
            hostile_mode=self.cfg.hostile_mode,
            metric=self.cfg.credit_route_metric,
        )
        self._seen_rreqs: set[tuple[IPv6Address, int]] = set()
        #: (sip, seq) -> replies sent, for bounded multi-copy answering.
        self._rreq_replies: dict[tuple[IPv6Address, int], int] = {}
        self._pending_discovery: dict[IPv6Address, PendingDiscovery] = {}
        #: dst -> (seq, expiry): lets late RREPs from alternate paths be
        #: accepted for a grace window after the first reply completed
        #: the discovery, so the cache learns alternate routes.
        self._recent_discoveries: dict[IPv6Address, tuple[int, float]] = {}
        self._send_queue: dict[IPv6Address, list] = {}
        self._pending_acks: dict[tuple[IPv6Address, int], PendingPacket] = {}
        #: dst -> consecutive silent (un-ACKed, un-RERRed) failures.  Keyed
        #: by destination, not by exact route: retries rotate among route
        #: variants through the same attacker, and per-route counters would
        #: stretch the detection window by the number of variants.
        self._route_failures: dict[IPv6Address, int] = {}
        self._probes: dict[IPv6Address, ProbeSession] = {}
        self._delivered_seqs: set[tuple[IPv6Address, int]] = set()

        node.register_handler(RREQ, self._on_rreq)
        node.register_handler(RREP, self._on_rrep)
        node.register_handler(CREP, self._on_crep)
        node.register_handler(RERR, self._on_rerr)
        node.register_handler(DataPacket, self._on_data)
        node.register_handler(AckPacket, self._on_ack)

    def reset_state(self) -> None:
        """Crash support: drop all routing soft state (cold boot).

        Cancels pending discovery/ACK timers without firing their
        callbacks, clears every table (route cache, dedup sets, send
        queue, probe sessions) and resets credit history -- a rebooted
        host trusts nobody any more than a fresh one does.  Survivors'
        state is untouched: their routes *through* the crashed node die
        the normal way, via MAC failure -> RERR -> cache invalidation.
        """
        for disc in self._pending_discovery.values():
            if disc.timer:
                disc.timer.cancel()
        for pending in self._pending_acks.values():
            if pending.timer:
                pending.timer.cancel()
        self._pending_discovery.clear()
        self._pending_acks.clear()
        self._seen_rreqs.clear()
        self._rreq_replies.clear()
        self._recent_discoveries.clear()
        self._send_queue.clear()
        self._route_failures.clear()
        self._probes.clear()
        self._delivered_seqs.clear()
        self.cache.clear()
        self.credits = CreditManager(
            initial=self.cfg.credit_initial,
            reward=self.cfg.credit_reward,
            penalty=self.cfg.credit_penalty,
            rerr_window=self.cfg.rerr_window,
            rerr_threshold=self.cfg.rerr_suspicion_threshold,
        )

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _sign(self, payload: bytes) -> bytes:
        return self.node.sign(payload) if self.SIGN else b""

    def _own_rn(self) -> int:
        return self.node.cga_params.rn if self.node.cga_params else 0

    def _is_dns_dest(self, ip: IPv6Address) -> bool:
        return ip in DNS_ANYCAST_ADDRESSES

    def _check_identity(
        self,
        ip: IPv6Address,
        public_key,
        rn: int,
        sig: bytes,
        payload: bytes,
    ) -> IdentityCheck:
        """CGA + signature check, with the DNS-anycast exception."""
        if self._is_dns_dest(ip):
            dns_pk = self.node.ctx.dns_public_key
            if dns_pk is None:
                return IdentityCheck(False, "no_dns_key")
            if not self.node.verify(dns_pk, payload, sig):
                return IdentityCheck(False, "bad_signature")
            return IdentityCheck(True)
        return verify_identity(
            self.node.backend, ip, public_key, rn, sig, payload,
            verify_fn=self.node.verify,
        )

    # ------------------------------------------------------------------
    # public API: send data
    # ------------------------------------------------------------------
    def send_data(
        self,
        dst: IPv6Address,
        payload: bytes,
        on_delivered: Callable[[], None] | None = None,
        on_failed: Callable[[], None] | None = None,
    ) -> int:
        """Send ``payload`` to ``dst``, discovering a route if needed.

        Returns the packet sequence number.  Delivery is confirmed by the
        destination's signed end-to-end ACK (which also pays out credit).
        """
        if not self.node.configured:
            raise RuntimeError(f"{self.node.name}: cannot send before bootstrap")
        seq = self.node.next_seq()
        packet = DataPacket(
            sip=self.node.ip,
            dip=dst,
            seq=seq,
            route=(),  # filled at transmission time from the cache
            payload=payload,
            sent_at=self.node.sim.now,
            hop_limit=self.cfg.hop_limit,
        )
        self.node.ctx.metrics.on_data_sent(self.node.ip, dst)
        self._dispatch_packet(packet, on_delivered, on_failed, retries=0)
        return seq

    def _dispatch_packet(
        self,
        packet: DataPacket,
        on_delivered,
        on_failed,
        retries: int,
        exclude_route: Route | None = None,
    ) -> None:
        """Transmit now if a route exists, else queue behind a discovery."""
        candidates = [
            e.route for e in self.cache.routes_to(packet.dip, self.node.sim.now)
            if e.route != exclude_route
        ]
        route = select_route(self.credits, candidates, self.policy)
        if route is None:
            self._send_queue.setdefault(packet.dip, []).append(
                (packet, on_delivered, on_failed, retries)
            )
            self.discover(packet.dip)
            return
        self._transmit(packet.replace(route=route, sent_at=self.node.sim.now),
                       on_delivered, on_failed, retries)

    def _transmit(self, packet: DataPacket, on_delivered, on_failed, retries) -> None:
        pending = PendingPacket(
            packet=packet,
            route=packet.route,
            retries=retries,
            on_delivered=on_delivered,
            on_failed=on_failed,
        )
        key = (packet.dip, packet.seq)
        self._pending_acks[key] = pending
        pending.timer = Timer(self.node.sim, self._ack_timeout, key)
        pending.timer.start(self.cfg.ack_timeout)
        next_hop = packet.route[0] if packet.route else packet.dip
        self.node.unicast_ip(
            next_hop, packet,
            on_fail=lambda: self._local_link_failure(key, next_hop),
        )

    # ------------------------------------------------------------------
    # route discovery (source side)
    # ------------------------------------------------------------------
    def discover(self, dst: IPv6Address) -> None:
        """Flood an RREQ for ``dst`` unless one is already outstanding."""
        if dst in self._pending_discovery:
            return
        seq = self.node.next_seq()
        disc = PendingDiscovery(dst=dst, seq=seq, started_at=self.node.sim.now)
        disc.timer = Timer(self.node.sim, self._discovery_timeout, dst)
        self._pending_discovery[dst] = disc
        self.node.ctx.metrics.on_discovery_started()
        self._flood_rreq(disc)

    def _flood_rreq(self, disc: PendingDiscovery) -> None:
        sig = self._sign(signing.rreq_source_payload(self.node.ip, disc.seq))
        rreq = RREQ(
            sip=self.node.ip,
            dip=disc.dst,
            seq=disc.seq,
            srr=(),
            source_signature=sig,
            source_public_key=self.node.public_key,
            source_rn=self._own_rn(),
            hop_limit=self.cfg.hop_limit,
        )
        self._seen_rreqs.add((rreq.sip, rreq.seq))
        self.node.broadcast(rreq)
        # Retry n waits rreq_timeout * backoff**n; the default backoff of
        # 1.0 is float-exact, so historical runs are byte-identical.
        disc.timer.start(
            self.cfg.rreq_timeout * (self.cfg.rreq_backoff ** disc.retries)
        )

    def _discovery_timeout(self, dst: IPv6Address) -> None:
        disc = self._pending_discovery.get(dst)
        if disc is None:
            return
        disc.retries += 1
        if disc.retries <= self.cfg.rreq_max_retries:
            disc.seq = self.node.next_seq()  # fresh seq per round (anti-replay)
            self._flood_rreq(disc)
            return
        # Give up: fail everything queued for this destination.
        del self._pending_discovery[dst]
        for packet, _ok, fail, _r in self._send_queue.pop(dst, []):
            self.node.ctx.metrics.on_data_dropped(packet.sip, packet.dip)
            if fail:
                fail()

    def _expected_seq(self, dst: IPv6Address) -> int | None:
        """The seq a reply for ``dst`` must carry (live or recent discovery)."""
        disc = self._pending_discovery.get(dst)
        if disc is not None:
            return disc.seq
        recent = self._recent_discoveries.get(dst)
        if recent is not None and self.node.sim.now <= recent[1]:
            return recent[0]
        return None

    def _discovery_completed(self, dst: IPv6Address, via_crep: bool) -> None:
        disc = self._pending_discovery.pop(dst, None)
        if disc is None:
            return
        self._recent_discoveries[dst] = (
            disc.seq, self.node.sim.now + self.cfg.rreq_timeout
        )
        if disc.timer:
            disc.timer.cancel()
        latency = self.node.sim.now - disc.started_at
        self.node.ctx.metrics.on_discovery_succeeded(latency, via_crep=via_crep)
        # Hold queued packets for the collection window so replies over
        # alternate paths land in the cache before the route is chosen.
        window = self.cfg.rrep_collection_window
        if window > 0:
            self.node.sim.schedule(window, self._flush_queue, dst)
        else:
            self._flush_queue(dst)

    def _flush_queue(self, dst: IPv6Address) -> None:
        for packet, ok, fail, retries in self._send_queue.pop(dst, []):
            self._dispatch_packet(packet, ok, fail, retries)

    # ------------------------------------------------------------------
    # RREQ handling (intermediates + destination)
    # ------------------------------------------------------------------
    def _on_rreq(self, frame: Frame, msg: RREQ) -> None:
        if not self.node.configured:
            return
        key = (msg.sip, msg.seq)
        if msg.sip == self.node.ip:
            self._seen_rreqs.add(key)
            return

        if self.node.owns_address(msg.dip):
            # DSR destinations answer several copies of the same request:
            # each arrives over a different path, giving the source a
            # distinct candidate route for its credit-aware choice.
            replies = self._rreq_replies.get(key, 0)
            if replies < self.cfg.max_route_replies:
                self._rreq_replies[key] = replies + 1
                self._answer_as_destination(msg)
            return

        if key in self._seen_rreqs:
            return
        self._seen_rreqs.add(key)

        if self.cfg.enable_crep and self.SIGN:
            cached = self.cache.best_shareable(msg.dip, self.node.sim.now)
            if cached is not None and self._answer_from_cache(msg, cached):
                return

        self._relay_rreq(msg)

    def _relay_rreq(self, msg: RREQ) -> None:
        if msg.hop_limit <= 1:
            return
        if self.cfg.verify_at_intermediate and self.VERIFY_ENDPOINTS:
            check = self._check_identity(
                msg.sip, msg.source_public_key, msg.source_rn,
                msg.source_signature,
                signing.rreq_source_payload(msg.sip, msg.seq),
            )
            if not check:
                self.node.verdict(f"rreq.rejected.{check.reason}")
                return
        hop_sig = (
            self._sign(signing.srr_entry_payload(self.node.ip, msg.seq))
            if self.SIGN_HOPS
            else b""
        )
        entry = SRREntry(
            ip=self.node.ip,
            signature=hop_sig,
            public_key=self.node.public_key,
            rn=self._own_rn(),
        )
        relayed = msg.append_entry(entry)
        delay = self._rng.uniform(0.0, self.cfg.rebroadcast_jitter)
        self.node.sim.schedule(delay, self.node.broadcast, relayed)

    def _verify_rreq_as_destination(self, msg: RREQ) -> bool:
        """D's checks from Section 3.3: source identity, then every hop."""
        if self.VERIFY_ENDPOINTS:
            check = self._check_identity(
                msg.sip, msg.source_public_key, msg.source_rn,
                msg.source_signature,
                signing.rreq_source_payload(msg.sip, msg.seq),
            )
            if not check:
                self.node.verdict(f"rreq.rejected.source_{check.reason}")
                return False
        if self.VERIFY_HOPS:
            if self.cfg.crypto_batch_verify and len(msg.srr) > 1:
                # Fast path layer 2: the SRR entries arrive together, so
                # present them to the node's batch verifier in one pass
                # (verify_identity_batch documents why this is observably
                # identical to the sequential loop below).
                n_ok, reason = verify_identity_batch(
                    [
                        (
                            entry.ip, entry.public_key, entry.rn,
                            entry.signature,
                            signing.srr_entry_payload(entry.ip, msg.seq),
                        )
                        for entry in msg.srr
                    ],
                    self.node.verify_batch,
                )
                if reason:
                    self.node.verdict(f"rreq.rejected.hop_{reason}")
                    return False
            else:
                for entry in msg.srr:
                    check = verify_identity(
                        self.node.backend, entry.ip, entry.public_key, entry.rn,
                        entry.signature,
                        signing.srr_entry_payload(entry.ip, msg.seq),
                        verify_fn=self.node.verify,
                    )
                    if not check:
                        self.node.verdict(f"rreq.rejected.hop_{check.reason}")
                        return False
        self.node.verdict("rreq.accepted")
        return True

    def _answer_as_destination(self, msg: RREQ) -> None:
        if not self._verify_rreq_as_destination(msg):
            return
        route = msg.route_ips
        sig = self._sign(signing.rrep_payload(msg.sip, msg.seq, route))
        rrep = RREP(
            sip=msg.sip,
            dip=msg.dip,
            seq=msg.seq,
            route=route,
            signature=sig,
            public_key=self.node.public_key,
            rn=self._own_rn(),
            hop_limit=self.cfg.hop_limit,
        )
        next_hop = route[-1] if route else msg.sip
        # Answering for an alias (DNS anycast): claim the alias as the
        # link-layer source so relays learn the anycast -> link binding.
        claimed = msg.dip if msg.dip in self.node.aliases else None
        self.node.unicast_ip(next_hop, rrep, claimed_src=claimed)

    def _answer_from_cache(self, msg: RREQ, cached: CachedRoute) -> bool:
        """Reply with a CREP if the spliced route would be loop-free."""
        fresh_route = msg.route_ips  # hops S' -> us, recorded by the flood
        spliced = fresh_route + (self.node.ip,) + cached.route
        full = (msg.sip,) + spliced + (msg.dip,)
        if len(set(full)) != len(full):
            return False  # splice would loop; fall back to normal relay
        fresh_sig = self._sign(
            signing.crep_fresh_leg_payload(msg.sip, msg.seq, fresh_route)
        )
        crep = CREP(
            sprime_ip=msg.sip,
            sip=self.node.ip,
            dip=msg.dip,
            fresh_seq=msg.seq,
            fresh_route=fresh_route,
            fresh_signature=fresh_sig,
            fresh_public_key=self.node.public_key,
            fresh_rn=self._own_rn(),
            cached_seq=cached.crep_seq,
            cached_route=cached.route,
            cached_signature=cached.crep_signature,
            cached_public_key=cached.crep_public_key,
            cached_rn=cached.crep_rn,
            hop_limit=self.cfg.hop_limit,
        )
        next_hop = fresh_route[-1] if fresh_route else msg.sip
        self.node.unicast_ip(next_hop, crep)
        return True

    # ------------------------------------------------------------------
    # RREP handling (source + reverse-path relays)
    # ------------------------------------------------------------------
    def _on_rrep(self, frame: Frame, msg: RREP) -> None:
        if not self.node.configured:
            return
        if msg.sip == self.node.ip:
            self._consume_rrep(msg)
            return
        # Reverse-path relay: find ourselves on the recorded route.
        if self.node.ip in msg.route and msg.hop_limit > 1:
            idx = msg.route.index(self.node.ip)
            fwd = msg.replace(hop_limit=msg.hop_limit - 1)
            next_hop = msg.route[idx - 1] if idx > 0 else msg.sip
            self.node.unicast_ip(next_hop, fwd)

    def _consume_rrep(self, msg: RREP) -> None:
        expected_seq = self._expected_seq(msg.dip)
        if self.VERIFY_ENDPOINTS:
            if expected_seq is None or msg.seq != expected_seq:
                # Not answering any live discovery: stale or replayed.
                self.node.verdict("rrep.rejected.stale_seq")
                return
            check = self._check_identity(
                msg.dip, msg.public_key, msg.rn, msg.signature,
                signing.rrep_payload(msg.sip, msg.seq, msg.route),
            )
            if not check:
                self.node.verdict(f"rrep.rejected.{check.reason}")
                return
        self.node.verdict("rrep.accepted")
        self.cache.put(CachedRoute(
            dest=msg.dip,
            route=msg.route,
            created_at=self.node.sim.now,
            crep_seq=msg.seq,
            crep_signature=msg.signature,
            crep_public_key=msg.public_key,
            crep_rn=msg.rn,
        ))
        self._discovery_completed(msg.dip, via_crep=False)

    # ------------------------------------------------------------------
    # CREP handling (querier + reverse-path relays)
    # ------------------------------------------------------------------
    def _on_crep(self, frame: Frame, msg: CREP) -> None:
        if not self.node.configured:
            return
        if msg.sprime_ip == self.node.ip:
            self._consume_crep(msg)
            return
        if self.node.ip in msg.fresh_route and msg.hop_limit > 1:
            idx = msg.fresh_route.index(self.node.ip)
            fwd = msg.replace(hop_limit=msg.hop_limit - 1)
            next_hop = msg.fresh_route[idx - 1] if idx > 0 else msg.sprime_ip
            self.node.unicast_ip(next_hop, fwd)

    def _consume_crep(self, msg: CREP) -> None:
        expected_seq = self._expected_seq(msg.dip)
        if self.VERIFY_ENDPOINTS:
            if expected_seq is None or msg.fresh_seq != expected_seq:
                self.node.verdict("crep.rejected.stale_seq")
                return
            # Fresh leg: the cache holder S vouches for S' -> S, signed now.
            fresh_check = self._check_identity(
                msg.sip, msg.fresh_public_key, msg.fresh_rn,
                msg.fresh_signature,
                signing.crep_fresh_leg_payload(msg.sprime_ip, msg.fresh_seq, msg.fresh_route),
            )
            if not fresh_check:
                self.node.verdict(f"crep.rejected.fresh_{fresh_check.reason}")
                return
            # Cached leg: D's original signature over (S, seq, RR(S->D)).
            cached_check = self._check_identity(
                msg.dip, msg.cached_public_key, msg.cached_rn,
                msg.cached_signature,
                signing.crep_cached_leg_payload(msg.sip, msg.cached_seq, msg.cached_route),
            )
            if not cached_check:
                self.node.verdict(f"crep.rejected.cached_{cached_check.reason}")
                return
        self.node.verdict("crep.accepted")
        self.cache.put(CachedRoute(
            dest=msg.dip,
            route=msg.full_route(),
            created_at=self.node.sim.now,
            # Second-hand route: not re-shareable (no CREP materials).
        ))
        self._discovery_completed(msg.dip, via_crep=True)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _on_data(self, frame: Frame, msg: DataPacket) -> None:
        if not self.node.configured:
            return
        if self.node.owns_address(msg.dip):
            self._deliver_data(msg)
            return
        self._forward_data(msg)

    def _deliver_data(self, msg: DataPacket) -> None:
        key = (msg.sip, msg.seq)
        if key not in self._delivered_seqs:
            self._delivered_seqs.add(key)
            latency = self.node.sim.now - msg.sent_at
            self.node.ctx.metrics.on_data_delivered(msg.sip, msg.dip, latency)
            self.node.deliver_app(msg)
        # Always (re-)ACK: the ACK may have been lost.
        sig = self._sign(signing.ack_payload(msg.sip, msg.dip, msg.seq))
        ack = AckPacket(
            sip=msg.sip,
            dip=msg.dip,
            seq=msg.seq,
            route=msg.route,
            signature=sig,
            public_key=self.node.public_key,
            rn=self._own_rn(),
            hop_limit=self.cfg.hop_limit,
        )
        next_hop = msg.route[-1] if msg.route else msg.sip
        claimed = msg.dip if msg.dip in self.node.aliases else None
        self.node.unicast_ip(next_hop, ack, claimed_src=claimed)

    def _forward_data(self, msg: DataPacket) -> None:
        if msg.hop_limit <= 1:
            return
        fwd = msg.advance()
        path = fwd.full_path()
        cursor = fwd.segment_index + 1
        if cursor >= len(path) - 1 or path[cursor] != self.node.ip:
            return  # stale/corrupt source route: not ours to forward
        next_hop = path[cursor + 1]
        self.node.unicast_ip(
            next_hop, fwd,
            on_fail=lambda: self._report_broken_link(fwd, next_hop),
        )

    # ------------------------------------------------------------------
    # end-to-end ACK (source side)
    # ------------------------------------------------------------------
    def _on_ack(self, frame: Frame, msg: AckPacket) -> None:
        if not self.node.configured:
            return
        if msg.sip == self.node.ip:
            self._consume_ack(msg)
            return
        if self.node.ip in msg.route and msg.hop_limit > 1:
            idx = msg.route.index(self.node.ip)
            fwd = msg.replace(hop_limit=msg.hop_limit - 1)
            next_hop = msg.route[idx - 1] if idx > 0 else msg.sip
            self.node.unicast_ip(next_hop, fwd)

    def _consume_ack(self, msg: AckPacket) -> None:
        key = (msg.dip, msg.seq)
        pending = self._pending_acks.get(key)
        if pending is None:
            return  # duplicate or unsolicited
        if self.VERIFY_ENDPOINTS:
            check = self._check_identity(
                msg.dip, msg.public_key, msg.rn, msg.signature,
                signing.ack_payload(msg.sip, msg.dip, msg.seq),
            )
            if not check:
                self.node.verdict(f"ack.rejected.{check.reason}")
                return
        self.node.verdict("ack.accepted")
        del self._pending_acks[key]
        if pending.timer:
            pending.timer.cancel()
        if pending.retries == 0:
            # Only a clean first-try delivery clears the suspicion counter;
            # a delivery that needed retries still means the primary route
            # silently ate a packet ("fails once, recovers, fails again"
            # must not evade the probe threshold forever).
            self._route_failures.pop(msg.dip, None)
        if pending.is_probe:
            self._probe_acked(msg.dip)
        else:
            self.node.ctx.metrics.on_data_acked(msg.sip, msg.dip)
            if self.USE_CREDIT:
                self.credits.reward_route(pending.route)
        if pending.on_delivered:
            pending.on_delivered()

    def _ack_timeout(self, key: tuple[IPv6Address, int]) -> None:
        pending = self._pending_acks.pop(key, None)
        if pending is None:
            return
        if pending.is_probe:
            return  # probe results are evaluated by the sweep timer
        dip = key[0]
        failures = self._route_failures.get(dip, 0) + 1
        self._route_failures[dip] = failures
        if (
            self.USE_CREDIT
            and self.cfg.enable_probing
            and failures >= self.cfg.probe_trigger_failures
            and pending.route
            and dip not in self._probes
        ):
            self._start_probe(pending.route, dip)
        if pending.retries < self.cfg.data_max_retries:
            # Retry, avoiding the route that just went silent.
            self._dispatch_packet(
                pending.packet.replace(segment_index=-1),
                pending.on_delivered,
                pending.on_failed,
                pending.retries + 1,
                exclude_route=pending.route,
            )
            return
        self.node.ctx.metrics.on_data_dropped(self.node.ip, dip)
        if pending.on_failed:
            pending.on_failed()

    def _local_link_failure(self, key: tuple[IPv6Address, int], next_hop: IPv6Address) -> None:
        """Our own first hop failed at the MAC layer."""
        pending = self._pending_acks.pop(key, None)
        if pending is None:
            return
        if pending.timer:
            pending.timer.cancel()
        self.cache.invalidate_link(self.node.ip, next_hop, self.node.ip)
        if pending.is_probe:
            return
        if pending.retries < self.cfg.data_max_retries:
            self._dispatch_packet(
                pending.packet.replace(segment_index=-1),
                pending.on_delivered,
                pending.on_failed,
                pending.retries + 1,
                exclude_route=pending.route,
            )
            return
        self.node.ctx.metrics.on_data_dropped(self.node.ip, key[0])
        if pending.on_failed:
            pending.on_failed()

    # ------------------------------------------------------------------
    # route maintenance: RERR (Section 3.4)
    # ------------------------------------------------------------------
    def _report_broken_link(self, packet: DataPacket, next_hop: IPv6Address) -> None:
        """We are a relay and our next hop is unreachable: tell the source."""
        self.cache.invalidate_link(self.node.ip, next_hop, self.node.ip)
        path = packet.full_path()
        my_pos = packet.segment_index + 1  # we hold the advanced copy
        # Reverse path back to S: our predecessors, nearest first.
        return_route = tuple(reversed(path[1:my_pos]))
        sig = self._sign(signing.rerr_payload(self.node.ip, next_hop))
        rerr = RERR(
            reporter_ip=self.node.ip,
            broken_next_hop=next_hop,
            signature=sig,
            public_key=self.node.public_key,
            rn=self._own_rn(),
            sip=packet.sip,
            return_route=return_route,
            hop_limit=self.cfg.hop_limit,
        )
        first = return_route[0] if return_route else packet.sip
        self.node.unicast_ip(first, rerr)

    def _on_rerr(self, frame: Frame, msg: RERR) -> None:
        if not self.node.configured:
            return
        if msg.sip == self.node.ip:
            self._consume_rerr(msg)
            return
        if self.node.ip in msg.return_route and msg.hop_limit > 1:
            idx = msg.return_route.index(self.node.ip)
            fwd = msg.replace(hop_limit=msg.hop_limit - 1)
            if idx + 1 < len(msg.return_route):
                self.node.unicast_ip(msg.return_route[idx + 1], fwd)
            else:
                self.node.unicast_ip(msg.sip, fwd)

    def _consume_rerr(self, msg: RERR) -> None:
        self.node.ctx.metrics.on_rerr()
        if self.VERIFY_ENDPOINTS:
            check = self._check_identity(
                msg.reporter_ip, msg.public_key, msg.rn, msg.signature,
                signing.rerr_payload(msg.reporter_ip, msg.broken_next_hop),
            )
            if not check:
                self.node.verdict(f"rerr.rejected.{check.reason}")
                return
            # Source routing lets S check the reporter really sits on one
            # of its routes, directly ahead of the link it reports broken.
            if not self._reporter_on_active_route(msg.reporter_ip, msg.broken_next_hop):
                self.node.verdict("rerr.rejected.not_on_route")
                return
        self.node.verdict("rerr.accepted")
        dropped = self.cache.invalidate_link(
            msg.reporter_ip, msg.broken_next_hop, self.node.ip
        )
        self.node.note(
            f"RERR {msg.reporter_ip}->{msg.broken_next_hop}: {dropped} route(s) dropped"
        )
        if self.USE_CREDIT:
            suspicious = self.credits.record_rerr(msg.reporter_ip, self.node.sim.now)
            if suspicious:
                # "The RERR reporting node or the node next to the reporting
                # node might be a hostile node" -- penalise both, route around.
                self.credits.penalize(msg.reporter_ip)
                self.credits.penalize(msg.broken_next_hop)
                self.cache.invalidate_host(msg.reporter_ip)
                self.node.verdict("rerr.reporter_suspected")
        # Retry any packet in flight over the broken link.
        self._retry_over_broken_link(msg.reporter_ip, msg.broken_next_hop)

    def _reporter_on_active_route(
        self, reporter: IPv6Address, broken: IPv6Address
    ) -> bool:
        """Is reporter->broken a consecutive pair on a route we are using?"""
        routes = [p.route + (p.packet.dip,) for p in self._pending_acks.values()]
        # Every cached route counts too: the report may concern a route we
        # hold for any destination, not just one with a packet in flight.
        for entry in list(self.cache._entries.values()):
            routes.append(entry.route + (entry.dest,))
        for route in routes:
            path = (self.node.ip,) + route
            for u, v in zip(path, path[1:]):
                if u == reporter and v == broken:
                    return True
        return False

    def _retry_over_broken_link(self, a: IPv6Address, b: IPv6Address) -> None:
        affected = [
            key for key, p in self._pending_acks.items()
            if not p.is_probe and self._route_uses_link(p, a, b)
        ]
        for key in affected:
            pending = self._pending_acks.pop(key)
            if pending.timer:
                pending.timer.cancel()
            if pending.retries < self.cfg.data_max_retries:
                self._dispatch_packet(
                    pending.packet.replace(segment_index=-1),
                    pending.on_delivered,
                    pending.on_failed,
                    pending.retries + 1,
                    exclude_route=pending.route,
                )
            else:
                self.node.ctx.metrics.on_data_dropped(self.node.ip, key[0])
                if pending.on_failed:
                    pending.on_failed()

    @staticmethod
    def _route_uses_link(pending: PendingPacket, a: IPv6Address, b: IPv6Address) -> bool:
        path = (pending.packet.sip,) + pending.route + (pending.packet.dip,)
        return any(u == a and v == b for u, v in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # black-hole probing (Section 3.4)
    # ------------------------------------------------------------------
    def _start_probe(self, route: Route, dst: IPv6Address) -> None:
        """Probe each hop of a silently failing route with its own packet.

        Every hop must answer its probe with its *signed* ACK; the first
        hop that stays silent marks the hostile boundary.
        """
        session = ProbeSession(route=route, dst=dst)
        self._probes[dst] = session
        self.node.note(f"probing route {[str(h) for h in route]} toward {dst}")
        for i, hop in enumerate(route):
            seq = self.node.next_seq()
            probe = DataPacket(
                sip=self.node.ip,
                dip=hop,
                seq=seq,
                route=route[:i],
                payload=b"",
                sent_at=self.node.sim.now,
                hop_limit=self.cfg.hop_limit,
            )
            key = (hop, seq)
            pending = PendingPacket(packet=probe, route=route[:i], is_probe=True)
            pending.timer = Timer(self.node.sim, self._ack_timeout, key)
            pending.timer.start(self.cfg.probe_timeout)
            self._pending_acks[key] = pending
            session.outstanding += 1
            next_hop = probe.route[0] if probe.route else hop
            self.node.unicast_ip(next_hop, probe)
        self.node.sim.schedule(
            self.cfg.probe_timeout + self.cfg.ack_timeout,
            self._evaluate_probe, dst,
        )

    def _probe_acked(self, probed_hop: IPv6Address) -> None:
        for session in self._probes.values():
            if probed_hop in session.route:
                session.acked.add(session.route.index(probed_hop))

    def _evaluate_probe(self, dst: IPv6Address) -> None:
        session = self._probes.pop(dst, None)
        if session is None:
            return
        route = session.route
        # Deepest prefix of hops that answered.
        first_failed = None
        for i in range(len(route)):
            if i not in session.acked:
                first_failed = i
                break
        if first_failed is None:
            # Every relay answered its own probe, yet data to D vanishes
            # *silently* (an honestly broken final link would have produced
            # a RERR from the last relay).  The last relay is the suspect:
            # it acknowledges as a destination but drops as a forwarder --
            # the black-hole signature.
            suspects = [route[-1]]
        else:
            suspects = [route[first_failed]]
            if first_failed > 0:
                # The previous hop answered its own probe but nothing beyond
                # it got through: it is the prime black-hole suspect.
                suspects.append(route[first_failed - 1])
        for s in suspects:
            self.credits.penalize(s)
            self.cache.invalidate_host(s)
        self.node.verdict("probe.suspects_penalized")
        self.node.note(f"probe suspects: {[str(s) for s in suspects]}")
