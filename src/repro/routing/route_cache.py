"""The DSR route cache.

Stores discovered routes per destination, with TTL expiry and LRU
eviction.  For routes learned from a first-hand RREP the cache also
keeps the destination's signature materials, which is what lets the
holder answer later RREQs with a verifiable CREP (Section 3.3); routes
learned via CREP are usable but not re-shareable (their cached-leg
signature covers a different source).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address

Route = tuple[IPv6Address, ...]


@dataclass
class CachedRoute:
    """One cached route to ``dest`` (intermediate hops only in ``route``)."""

    dest: IPv6Address
    route: Route
    created_at: float
    #: Materials needed to hand out a CREP: the original RREP signature by
    #: the destination, over (SIP=holder, seq, route).  None for routes
    #: learned second-hand (via CREP) -- those cannot be re-shared.
    crep_seq: int | None = None
    crep_signature: bytes | None = None
    crep_public_key: PublicKey | None = None
    crep_rn: int | None = None

    @property
    def shareable(self) -> bool:
        return self.crep_signature is not None

    def hops(self) -> int:
        """Path length in hops (intermediates + final hop)."""
        return len(self.route) + 1

    def contains_link(self, a: IPv6Address, b: IPv6Address, src: IPv6Address) -> bool:
        """True if the directed link a->b appears on src -> ... -> dest."""
        path = (src,) + self.route + (self.dest,)
        for u, v in zip(path, path[1:]):
            if u == a and v == b:
                return True
        return False

    def contains_host(self, host: IPv6Address) -> bool:
        return host in self.route or host == self.dest


class RouteCache:
    """TTL + LRU cache of :class:`CachedRoute`, multiple routes per dest."""

    def __init__(self, capacity: int = 64, ttl: float = 60.0):
        if capacity <= 0 or ttl <= 0:
            raise ValueError("capacity and ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        # insertion-ordered for LRU; key is (dest, route) so alternates coexist
        self._entries: OrderedDict[tuple[IPv6Address, Route], CachedRoute] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, entry: CachedRoute) -> None:
        key = (entry.dest, entry.route)
        if key in self._entries:
            self._entries.pop(key)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def routes_to(self, dest: IPv6Address, now: float) -> list[CachedRoute]:
        """All live routes to ``dest`` (expired ones are pruned on the way)."""
        self._expire(now)
        out = []
        for (d, _r), entry in self._entries.items():
            if d == dest:
                out.append(entry)
        return out

    def best_shareable(self, dest: IPv6Address, now: float) -> CachedRoute | None:
        """Shortest live shareable route (for answering with a CREP)."""
        shareable = [e for e in self.routes_to(dest, now) if e.shareable]
        return min(shareable, key=lambda e: len(e.route)) if shareable else None

    def has_route(self, dest: IPv6Address, now: float) -> bool:
        return bool(self.routes_to(dest, now))

    def invalidate_link(self, a: IPv6Address, b: IPv6Address, src: IPv6Address) -> int:
        """Drop every route using the directed link a->b.  Returns count."""
        doomed = [
            k for k, e in self._entries.items() if e.contains_link(a, b, src)
        ]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def invalidate_host(self, host: IPv6Address) -> int:
        """Drop every route through ``host`` (suspected hostile)."""
        doomed = [k for k, e in self._entries.items() if e.contains_host(host)]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def invalidate_dest(self, dest: IPv6Address) -> int:
        doomed = [k for k in self._entries if k[0] == dest]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def _expire(self, now: float) -> None:
        doomed = [
            k for k, e in self._entries.items() if now - e.created_at > self.ttl
        ]
        for k in doomed:
            del self._entries[k]
