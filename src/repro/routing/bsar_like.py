"""BSAR-style endpoint-only verification baseline.

BSAR (Bobba et al. 2002) binds SUCV/CGA identities to DSR's *endpoints*:
the source can verify who initiated a route reply or route error, but
intermediate hops in the route record present no identity proof.  The
paper positions its SRR ("information is added to verify each host's
identity in the list") as the enhancement over exactly this design:

    "As compared to our work, we enhance BSAR by allowing a host to
     verify the identity of every host in a route."

:class:`EndpointOnlyRouter` therefore keeps endpoint signatures,
endpoint verification and the credit ledger, but intermediates append
*unsigned* SRR entries and the destination skips per-hop checks.  The
A3 forged-hop experiment shows what that buys an attacker: a relay can
splice arbitrary (e.g. innocent third-party) addresses into the route
record and the endpoints are none the wiser.
"""

from __future__ import annotations

from repro.routing.secure_dsr import SecureDSRRouter


class EndpointOnlyRouter(SecureDSRRouter):
    """Secure endpoints, unverified intermediate hops (BSAR-like)."""

    SIGN = True
    SIGN_HOPS = False
    VERIFY_ENDPOINTS = True
    VERIFY_HOPS = False
    USE_CREDIT = True
