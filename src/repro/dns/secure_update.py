"""Challenge bookkeeping for the DNS server.

Two ledgers, both TTL-bounded exactly as the paper prescribes ("the DNS
should keep a copy of the ch associated with the AREQ that registered
with it for a while"):

* the **registration ledger** tracks pending (DN, SIP) registrations
  created by an observed AREQ, waiting out the quiet window during
  which a duplicate-holder's warning AREP may cancel them;
* the **update ledger** tracks challenges the server issued for
  authenticated IP changes, consumed exactly once (a challenge that
  could verify twice would be a replay vector).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ipv6.address import IPv6Address


@dataclass
class PendingRegistration:
    """An AREQ-initiated registration waiting out its quiet window."""

    name: str
    ip: IPv6Address
    ch: int
    created_at: float
    cancelled: bool = False


class ChallengeLedger:
    """TTL-bounded challenge storage for the two server-side exchanges."""

    def __init__(self, ttl: float = 10.0):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = ttl
        # (ip, ch) -> PendingRegistration
        self._registrations: dict[tuple[IPv6Address, int], PendingRegistration] = {}
        # domain name -> (ch, issued_at) for IP-change challenges
        self._update_challenges: dict[str, tuple[int, float]] = {}

    # -- registration ledger ------------------------------------------------
    def open_registration(
        self, name: str, ip: IPv6Address, ch: int, now: float
    ) -> PendingRegistration:
        pending = PendingRegistration(name, ip, ch, now)
        self._registrations[(ip, ch)] = pending
        return pending

    def find_registration(
        self, ip: IPv6Address, ch: int, now: float
    ) -> PendingRegistration | None:
        """Look up a pending registration by the AREQ's (SIP, ch) pair."""
        self._expire(now)
        return self._registrations.get((ip, ch))

    def close_registration(self, ip: IPv6Address, ch: int) -> None:
        self._registrations.pop((ip, ch), None)

    def pending_count(self) -> int:
        return len(self._registrations)

    # -- IP-change ledger -------------------------------------------------------
    def issue_update_challenge(self, name: str, ch: int, now: float) -> None:
        self._update_challenges[name] = (ch, now)

    def consume_update_challenge(self, name: str, now: float) -> int | None:
        """Return-and-forget the challenge for ``name`` (None if absent/stale).

        One-shot consumption: a second update presenting the same
        signed challenge finds nothing to match and is rejected.
        """
        entry = self._update_challenges.pop(name, None)
        if entry is None:
            return None
        ch, issued_at = entry
        if now - issued_at > self.ttl:
            return None
        return ch

    # -- housekeeping ---------------------------------------------------------------
    def _expire(self, now: float) -> None:
        doomed = [
            k for k, p in self._registrations.items()
            if now - p.created_at > self.ttl
        ]
        for k in doomed:
            del self._registrations[k]
