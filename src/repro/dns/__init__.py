"""The DNS trust anchor (Section 3.2).

The paper's single piece of security infrastructure: one DNS server
whose public key every host knows before joining.  It provides

* **name registration during DAD** -- the server watches flooded AREQs,
  answers name conflicts with signed DREPs, and finalises first-come-
  first-served registrations after a quiet window (6DNAR integration);
* **pre-registered permanent entries** -- bindings installed before
  network formation that online registration can never displace
  (impersonating such hosts is impossible);
* **secure resolution** -- challenge/response signed answers;
* **authenticated IP change** -- the challenge/response exchange that
  lets a binding move to a new CGA under the same key pair.

:class:`~repro.dns.server.DNSServer` attaches to the server node;
:class:`~repro.dns.client.DNSClient` to every host.
"""

from repro.dns.records import DNSRecord, DomainNameTable
from repro.dns.server import DNSServer
from repro.dns.client import DNSClient
from repro.dns.secure_update import ChallengeLedger

__all__ = ["DNSRecord", "DomainNameTable", "DNSServer", "DNSClient", "ChallengeLedger"]
