"""The DNS server component (Section 3.2).

Attached to exactly one node per scenario.  The server node claims the
three well-known anycast addresses (so route discoveries for
``fec0:0:0:ffff::1`` terminate at it) and signs everything it says with
the network-wide trust-anchor key.

Registration pipeline (integrated with the extended DAD of Section 3.1):

1. An AREQ with a domain name arrives (the server hears the flood like
   everyone else).  Name conflict -> signed DREP back along the RR.
   Otherwise a pending registration opens, remembering the AREQ's
   challenge ``ch``.
2. If a duplicate-address holder's warning AREP arrives within the
   quiet window -- verified with the *joiner's* challenge, per the
   paper -- the pending registration is cancelled.
3. After ``dns_registration_delay`` of silence the (DN, SIP) binding
   commits, first-come-first-served.

Resolution and authenticated IP change ride the routing layer as
application messages (DATA payloads); replies reverse the request's
source route.
"""

from __future__ import annotations

from repro.bootstrap.verifier import verify_identity
from repro.core.node import Node
from repro.dns.records import DomainNameTable
from repro.dns.secure_update import ChallengeLedger
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import CGAParams, verify_cga
from repro.ipv6.prefixes import DNS_ANYCAST_ADDRESSES
from repro.messages import signing
from repro.messages.bootstrap import AREP, AREQ, DREP
from repro.messages.data import DataPacket
from repro.messages.dns import (
    DNSQuery,
    DNSResponse,
    DNSUpdateChallenge,
    DNSUpdateReply,
    DNSUpdateRequest,
)
from repro.phy.medium import Frame


class DNSServer:
    """Server-side DNS logic; the node's key pair is the trust anchor."""

    def __init__(self, node: Node):
        self.node = node
        self.cfg = node.config
        self._rng = node.rng("dns-server")
        self.table = DomainNameTable()
        self.ledger = ChallengeLedger(ttl=self.cfg.dns_challenge_ttl)
        #: Flood dedup: the same AREQ arrives over several paths; only the
        #: first copy may open (or re-open) a pending registration.
        self._seen_areqs: set[tuple[IPv6Address, int]] = set()
        node.aliases.update(DNS_ANYCAST_ADDRESSES)
        # Publish the trust anchor: "the public key has been securely
        # distributed to all mobile nodes prior to network formation".
        node.ctx.dns_public_key = node.public_key

        node.register_handler(AREQ, self._on_areq)
        node.register_handler(AREP, self._on_arep)
        node.register_app_handler(DNSQuery, self._on_query)
        node.register_app_handler(DNSUpdateRequest, self._on_update_request)

    # ------------------------------------------------------------------
    # registration during DAD
    # ------------------------------------------------------------------
    def _on_areq(self, frame: Frame, msg: AREQ) -> None:
        if not msg.domain_name:
            return  # no registration requested
        key = (msg.sip, msg.seq)
        if key in self._seen_areqs:
            return
        self._seen_areqs.add(key)
        # The relaying/defending logic already ran in BootstrapManager;
        # here the server only handles the name side.
        if self.table.conflicts(msg.domain_name, msg.sip):
            self._send_drep(msg)
            return
        existing = self.table.lookup(msg.domain_name)
        if existing is not None and existing.ip == msg.sip:
            return  # same binding re-announced; nothing to do
        pending = self.ledger.open_registration(
            msg.domain_name, msg.sip, msg.ch, self.node.sim.now
        )
        self.node.sim.schedule(
            self.cfg.dns_registration_delay,
            self._finalize_registration, pending,
            # AREQ carries the registrant's key material implicitly: the
            # address must be re-validated when we commit, so the AREQ's
            # fields we need later are captured here.
            msg,
        )

    def _send_drep(self, msg: AREQ) -> None:
        """Signed "name taken" verdict back along the AREQ's route record."""
        self.node.ctx.metrics.on_verdict("dns.name_conflict")
        signature = self.node.sign(signing.drep_payload(msg.domain_name, msg.ch))
        drep = DREP(
            sip=msg.sip,
            route_record=msg.route_record,
            domain_name=msg.domain_name,
            signature=signature,
            hop_limit=self.cfg.hop_limit,
        )
        if msg.route_record:
            self.node.unicast_ip(msg.route_record[-1], drep)
        else:
            self.node.broadcast(drep)  # joiner is a direct neighbour

    def _finalize_registration(self, pending, areq: AREQ) -> None:
        if pending.cancelled:
            return
        self.ledger.close_registration(pending.ip, pending.ch)
        if self.table.conflicts(pending.name, pending.ip):
            # Someone else won the race while we waited: tell the loser
            # (two pending registrations can overlap, in which case no
            # conflict existed when either AREQ first arrived).
            self._send_drep(areq)
            return
        if pending.name in self.table:
            return
        # The joiner may still be probing, but FCFS means the name is
        # held for the address that asked first.  Key material for the
        # future IP-change protocol is not in the AREQ (it carries no
        # PK); it is learned from the first authenticated update or a
        # subsequent signed exchange.  We store what we have.
        self.table.register_online(
            pending.name, pending.ip, public_key=None, rn=None,
            now=self.node.sim.now,
        )
        self.node.note(f"DNS registered {pending.name!r} -> {pending.ip}")
        self.node.ctx.metrics.on_verdict("dns.registered")

    def _on_arep(self, frame: Frame, msg: AREP) -> None:
        """A warning AREP: a duplicate holder tells us not to register SIP."""
        if not msg.to_dns:
            return
        pending = self.ledger.find_registration(msg.sip, msg.ch, self.node.sim.now)
        if pending is None or pending.cancelled:
            return
        # Verify with the same two checks the joiner runs (paper: "the DNS
        # can verify the AREP with the same checks"; the challenge was
        # issued by S, kept by us with the pending registration).
        check = verify_identity(
            self.node.backend, msg.sip, msg.public_key, msg.rn,
            msg.signature, signing.arep_payload(msg.sip, pending.ch),
            verify_fn=self.node.verify,
        )
        if not check:
            self.node.verdict(f"dns.warning_arep.rejected.{check.reason}")
            return
        pending.cancelled = True
        self.ledger.close_registration(msg.sip, pending.ch)
        self.node.verdict("dns.warning_arep.accepted")
        self.node.note(
            f"DNS cancelled pending registration {pending.name!r} -> {pending.ip}"
        )

    # ------------------------------------------------------------------
    # provisioning API (pre-network-formation)
    # ------------------------------------------------------------------
    def preregister(self, name: str, ip: IPv6Address, public_key=None, rn=None):
        """Install a permanent (DN, IP) binding before the network forms."""
        return self.table.preregister(name, ip, public_key, rn)

    # ------------------------------------------------------------------
    # resolution service
    # ------------------------------------------------------------------
    def _reply(self, request_packet: DataPacket, app_msg) -> None:
        """Send an application reply back along the reversed source route."""
        router = self.node.router
        if router is None:
            return
        reverse_route = tuple(reversed(request_packet.route))
        seq = self.node.next_seq()
        reply = DataPacket(
            sip=self.node.ip,
            dip=request_packet.sip,
            seq=seq,
            route=reverse_route,
            payload=app_msg.wire_bytes(),
            sent_at=self.node.sim.now,
            hop_limit=self.cfg.hop_limit,
        )
        self.node.ctx.metrics.on_data_sent(self.node.ip, request_packet.sip)
        router._transmit(reply, None, None, retries=0)

    def _on_query(self, query: DNSQuery, packet: DataPacket) -> None:
        rec = self.table.lookup(query.domain_name)
        found = rec is not None
        ip = rec.ip if found else IPv6Address(0)
        signature = self.node.sign(
            signing.dns_response_payload(query.domain_name, ip, query.ch)
        )
        self.node.ctx.metrics.on_verdict(
            "dns.query_hit" if found else "dns.query_miss"
        )
        self._reply(packet, DNSResponse(
            domain_name=query.domain_name,
            ip=ip,
            found=found,
            ch=query.ch,
            signature=signature,
        ))

    # ------------------------------------------------------------------
    # authenticated IP change
    # ------------------------------------------------------------------
    def _on_update_request(self, req: DNSUpdateRequest, packet: DataPacket) -> None:
        if not req.signature:
            # Phase 1: intent.  Issue a fresh challenge for this name.
            ch = self._rng.nonce(64)
            self.ledger.issue_update_challenge(req.domain_name, ch, self.node.sim.now)
            self._reply(packet, DNSUpdateChallenge(domain_name=req.domain_name, ch=ch))
            return
        # Phase 2: signed response to our challenge.
        accepted, reason = self._validate_update(req)
        verdict = "dns.update.accepted" if accepted else f"dns.update.rejected.{reason}"
        self.node.verdict(verdict)
        if accepted:
            self.table.update_ip(req.domain_name, req.new_ip, req.new_rn)
            rec = self.table.lookup(req.domain_name)
            rec.public_key = req.public_key  # key observed and now pinned
            self.node.note(f"DNS moved {req.domain_name!r} -> {req.new_ip}")
        ch_echo = 0
        sig = self.node.sign(
            signing.dns_response_payload(req.domain_name, req.new_ip, ch_echo)
        )
        self._reply(packet, DNSUpdateReply(
            domain_name=req.domain_name,
            new_ip=req.new_ip,
            accepted=accepted,
            ch=ch_echo,
            signature=sig,
        ))

    def _validate_update(self, req: DNSUpdateRequest) -> tuple[bool, str]:
        """Section 3.2's checks, in order of cheapest rejection first."""
        rec = self.table.lookup(req.domain_name)
        if rec is None:
            return False, "no_such_name"
        if rec.ip != req.old_ip:
            return False, "old_ip_mismatch"
        if rec.public_key is not None and rec.public_key != req.public_key:
            return False, "key_mismatch"  # pinned key pair may not change
        ch = self.ledger.consume_update_challenge(req.domain_name, self.node.sim.now)
        if ch is None:
            return False, "no_challenge"
        # Both addresses must be CGAs of the presented key.
        if not verify_cga(req.old_ip, CGAParams(req.public_key, req.old_rn)):
            return False, "old_cga"
        if not verify_cga(req.new_ip, CGAParams(req.public_key, req.new_rn)):
            return False, "new_cga"
        payload = signing.dns_update_payload(req.old_ip, req.new_ip, ch)
        if not self.node.verify(req.public_key, payload, req.signature):
            return False, "bad_signature"
        return True, ""
