"""The DNS server's domain-name table.

A :class:`DNSRecord` binds a name to an IP and -- crucially for the
authenticated IP-change protocol -- remembers the public key and random
modifier presented at registration time.  ``permanent`` entries are the
paper's pre-established bindings: installed before network formation,
never displaced by online (first-come-first-served) registration, and
only changeable by the key holder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address


@dataclass
class DNSRecord:
    """One (domain name, IP) binding."""

    name: str
    ip: IPv6Address
    #: Key material seen at registration; None for permanent entries
    #: installed administratively without a key (key learned on first
    #: authenticated update is not allowed -- see table.update_ip).
    public_key: PublicKey | None
    rn: int | None
    permanent: bool
    registered_at: float


class DomainNameTable:
    """Name -> record map with FCFS online registration semantics."""

    def __init__(self):
        self._by_name: dict[str, DNSRecord] = {}

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def lookup(self, name: str) -> DNSRecord | None:
        return self._by_name.get(name)

    def lookup_ip(self, ip: IPv6Address) -> DNSRecord | None:
        """Reverse lookup (first match)."""
        for rec in self._by_name.values():
            if rec.ip == ip:
                return rec
        return None

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def preregister(
        self,
        name: str,
        ip: IPv6Address,
        public_key: PublicKey | None = None,
        rn: int | None = None,
    ) -> DNSRecord:
        """Install a permanent entry (pre-network-formation provisioning).

        The paper: "an entry (domain name, IP address) should have been
        placed at the DNS server before the network is formed.  In this
        case, impersonating such hosts would be impossible."
        """
        if name in self._by_name:
            raise ValueError(f"domain name {name!r} already present")
        rec = DNSRecord(name, ip, public_key, rn, permanent=True, registered_at=0.0)
        self._by_name[name] = rec
        return rec

    def register_online(
        self,
        name: str,
        ip: IPv6Address,
        public_key: PublicKey,
        rn: int,
        now: float,
    ) -> DNSRecord | None:
        """FCFS online registration; None if the name is already taken."""
        if name in self._by_name:
            return None
        rec = DNSRecord(name, ip, public_key, rn, permanent=False, registered_at=now)
        self._by_name[name] = rec
        return rec

    def conflicts(self, name: str, ip: IPv6Address) -> bool:
        """True if ``name`` is bound to a *different* IP."""
        rec = self._by_name.get(name)
        return rec is not None and rec.ip != ip

    def update_ip(self, name: str, new_ip: IPv6Address, new_rn: int) -> None:
        """Move a binding to a new address (caller has already authenticated).

        Only the IP and its modifier change; the key pair stays, exactly
        as in Section 3.2 ("the host does not need to change to a new
        key pair").
        """
        rec = self._by_name[name]
        rec.ip = new_ip
        rec.rn = new_rn

    def remove(self, name: str) -> bool:
        return self._by_name.pop(name, None) is not None
