"""Client-side DNS: secure resolution and authenticated IP change.

Requests travel as application messages over the routing layer to the
well-known anycast address; every answer is verified against the
pre-distributed DNS public key before the caller sees it, so a host
impersonating the DNS (Section 4, first attack) can at worst cause a
timeout, never a wrong answer.
"""

from __future__ import annotations

from typing import Callable

from repro.core.node import Node
from repro.ipv6.address import IPv6Address
from repro.ipv6.prefixes import DNS_ANYCAST_ADDRESSES
from repro.messages import signing
from repro.messages.data import DataPacket
from repro.messages.dns import (
    DNSQuery,
    DNSResponse,
    DNSUpdateChallenge,
    DNSUpdateReply,
    DNSUpdateRequest,
)
from repro.sim.process import Timer


class DNSClient:
    """Per-host resolver + IP-change client."""

    def __init__(self, node: Node, server_address: IPv6Address | None = None):
        self.node = node
        self.cfg = node.config
        self._rng = node.rng("dns-client")
        self.server_address = server_address or DNS_ANYCAST_ADDRESSES[0]
        # ch -> (name, callback, timer, timeout, retries) for queries in flight
        self._pending_queries: dict[int, tuple] = {}
        # name -> (new_ip_params, callback) for IP changes in flight
        self._pending_updates: dict[str, tuple] = {}

        node.register_app_handler(DNSResponse, self._on_response)
        node.register_app_handler(DNSUpdateChallenge, self._on_update_challenge)
        node.register_app_handler(DNSUpdateReply, self._on_update_reply)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(
        self,
        name: str,
        callback: Callable[[IPv6Address | None], None],
        timeout: float = 10.0,
    ) -> None:
        """Resolve ``name``; ``callback(ip)`` gets None on miss or timeout.

        The query carries a fresh challenge; only a response signed by
        the DNS key *over that challenge* is accepted, so replayed old
        answers (e.g. for a name whose binding has moved) are rejected.

        With ``config.dns_query_retries > 0`` a timed-out query is
        re-sent (fresh challenge, timeout scaled by
        ``dns_query_backoff`` per attempt) before the caller sees the
        failure -- riding out transient partitions and route outages.
        """
        self._send_query(name, callback, timeout, 0)

    def _send_query(
        self, name: str, callback: Callable, timeout: float, retries: int
    ) -> None:
        ch = self._rng.nonce(64)
        query = DNSQuery(sip=self.node.ip, domain_name=name, ch=ch)
        timer = Timer(self.node.sim, self._query_timeout, ch)
        # retries == 0 waits exactly `timeout` (x * b**0 is float-exact).
        timer.start(timeout * (self.cfg.dns_query_backoff ** retries))
        self._pending_queries[ch] = (name, callback, timer, timeout, retries)
        self._send_app(query)

    def _send_app(self, app_msg) -> None:
        router = self.node.router
        if router is None:
            raise RuntimeError(f"{self.node.name}: no router attached")
        router.send_data(self.server_address, app_msg.wire_bytes())

    def _query_timeout(self, ch: int) -> None:
        entry = self._pending_queries.pop(ch, None)
        if entry is None:
            return
        name, callback, _timer, timeout, retries = entry
        if retries < self.cfg.dns_query_retries:
            self.node.verdict("dns_client.query_retry")
            self._send_query(name, callback, timeout, retries + 1)
            return
        self.node.verdict("dns_client.query_timeout")
        callback(None)

    def reset_state(self) -> None:
        """Crash support: drop every in-flight query and update.

        Pending timers are cancelled and callbacks are *not* invoked --
        the application layer that registered them died with the host.
        """
        for entry in self._pending_queries.values():
            entry[2].cancel()
        self._pending_queries.clear()
        self._pending_updates.clear()

    def _on_response(self, msg: DNSResponse, packet: DataPacket) -> None:
        entry = self._pending_queries.get(msg.ch)
        if entry is None:
            return  # unsolicited or already answered
        name, callback, timer = entry[0], entry[1], entry[2]
        dns_pk = self.node.ctx.dns_public_key
        payload = signing.dns_response_payload(msg.domain_name, msg.ip, msg.ch)
        if (
            msg.domain_name != name
            or dns_pk is None
            or not self.node.verify(dns_pk, payload, msg.signature)
        ):
            self.node.verdict("dns_client.response_rejected")
            return  # keep waiting; the timer handles a total failure
        del self._pending_queries[msg.ch]
        timer.cancel()
        self.node.verdict("dns_client.response_accepted")
        callback(msg.ip if msg.found else None)

    # ------------------------------------------------------------------
    # authenticated IP change (Section 3.2)
    # ------------------------------------------------------------------
    def change_ip(
        self,
        new_ip: IPv6Address,
        new_rn: int,
        callback: Callable[[bool], None] | None = None,
    ) -> None:
        """Move our DNS binding to ``new_ip`` (same key pair, new modifier).

        Two-phase: an intent (empty signature) fetches a fresh server
        challenge; the signed response presents old/new addresses, both
        modifiers, the public key, and ``[XIP, X'IP, ch]_XSK``.
        """
        if not self.node.domain_name:
            raise RuntimeError(f"{self.node.name}: no domain name registered")
        name = self.node.domain_name
        self._pending_updates[name] = (new_ip, new_rn, callback)
        intent = DNSUpdateRequest(
            domain_name=name,
            old_ip=self.node.ip,
            new_ip=new_ip,
            old_rn=self.node.cga_params.rn,
            new_rn=new_rn,
            public_key=self.node.public_key,
            signature=b"",  # phase 1: no challenge yet
        )
        self._send_app(intent)

    def _on_update_challenge(self, msg: DNSUpdateChallenge, packet: DataPacket) -> None:
        entry = self._pending_updates.get(msg.domain_name)
        if entry is None:
            return
        new_ip, new_rn, _cb = entry
        payload = signing.dns_update_payload(self.node.ip, new_ip, msg.ch)
        signed = DNSUpdateRequest(
            domain_name=msg.domain_name,
            old_ip=self.node.ip,
            new_ip=new_ip,
            old_rn=self.node.cga_params.rn,
            new_rn=new_rn,
            public_key=self.node.public_key,
            signature=self.node.sign(payload),
        )
        self._send_app(signed)

    def _on_update_reply(self, msg: DNSUpdateReply, packet: DataPacket) -> None:
        entry = self._pending_updates.pop(msg.domain_name, None)
        if entry is None:
            return
        new_ip, new_rn, callback = entry
        dns_pk = self.node.ctx.dns_public_key
        payload = signing.dns_response_payload(msg.domain_name, msg.new_ip, msg.ch)
        if dns_pk is None or not self.node.verify(dns_pk, payload, msg.signature):
            self.node.verdict("dns_client.update_reply_rejected")
            if callback:
                callback(False)
            return
        self.node.verdict(
            "dns_client.update_accepted" if msg.accepted
            else "dns_client.update_refused"
        )
        if callback:
            callback(msg.accepted)
