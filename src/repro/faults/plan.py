"""Declarative fault plans.

A :class:`FaultPlan` is a JSON-clean list of fault events, each a plain
dict with a ``kind``, a firing time ``at`` (seconds after the plan is
armed -- the scenario arms it when bootstrap settles, so fault times
read as "into the workload"), and kind-specific knobs:

``crash``
    Power a host off mid-run with **full state loss**: radio disabled,
    identity and neighbour cache wiped, every protocol component's
    timers cancelled and tables cleared.  ``recover_after`` (optional)
    powers it back on that many seconds later; the host then cold-boots
    through secure DAD again (a fresh CGA, re-registration of its old
    name if it had one).
``link_flap``
    Block the link between two hosts (both directions) for
    ``duration`` seconds.  The MAC sees it as silence: unicast retries
    exhaust, DSR declares the link broken and re-routes.
``partition``
    Split the network into ``groups`` seeded groups (or an explicit
    ``members`` assignment) for ``duration`` seconds; frames between
    groups are suppressed.  On heal, configured hosts optimistically
    re-run DAD (``reprobe``, staggered by ``reprobe_stagger``) -- the
    paper's DAD-storm-on-merge scenario.
``loss_surge``
    Add an extra Bernoulli drop with probability ``loss`` to every
    (frame, receiver) pair for ``duration`` seconds, composing with the
    medium's base loss rate.
``corrupt``
    With probability ``rate`` per (frame, receiver), flip the payload's
    signature bytes in flight for ``duration`` seconds (frames whose
    payload carries no signature are dropped instead) -- the crypto
    layer must reject every corrupted copy.

Host references (``node``, ``a``, ``b``, ``members`` entries) are host
indices (``0`` = ``hosts[0]``) or node names (``"n0"``).

Determinism: all fault randomness (seeded partition groups, surge and
corruption draws) comes from dedicated ``faults/*`` RNG streams, so a
plan never perturbs the ``phy/loss`` or protocol streams -- and a run
with no plan is byte-identical to one built before this module existed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

#: Allowed keys per event kind (beyond ``kind``/``at``); a typo'd knob in
#: a campaign axis must error, not silently inject nothing.
_EVENT_KEYS: dict[str, set[str]] = {
    "crash": {"node", "recover_after"},
    "link_flap": {"a", "b", "duration"},
    "partition": {"duration", "groups", "members", "reprobe", "reprobe_stagger"},
    "loss_surge": {"duration", "loss"},
    "corrupt": {"duration", "rate"},
}

_REQUIRED_KEYS: dict[str, set[str]] = {
    "crash": {"node"},
    "link_flap": {"a", "b", "duration"},
    "partition": {"duration"},
    "loss_surge": {"duration", "loss"},
    "corrupt": {"duration", "rate"},
}


def _validate_event(position: int, event: dict) -> dict:
    if not isinstance(event, dict):
        raise ValueError(f"fault event {position} must be a dict, got "
                         f"{type(event).__name__}")
    kind = event.get("kind")
    if kind not in _EVENT_KEYS:
        raise ValueError(
            f"fault event {position}: unknown kind {kind!r} "
            f"(expected one of {sorted(_EVENT_KEYS)})"
        )
    if "at" not in event:
        raise ValueError(f"fault event {position} ({kind}): missing 'at'")
    unknown = set(event) - _EVENT_KEYS[kind] - {"kind", "at"}
    if unknown:
        raise ValueError(
            f"fault event {position} ({kind}): unknown keys "
            f"{sorted(unknown)} (allowed: {sorted(_EVENT_KEYS[kind])})"
        )
    missing = _REQUIRED_KEYS[kind] - set(event)
    if missing:
        raise ValueError(
            f"fault event {position} ({kind}): missing keys {sorted(missing)}"
        )
    if float(event["at"]) < 0:
        raise ValueError(f"fault event {position} ({kind}): 'at' must be >= 0")
    for key in ("duration", "recover_after", "reprobe_stagger"):
        if key in event and float(event[key]) < 0:
            raise ValueError(
                f"fault event {position} ({kind}): {key!r} must be >= 0"
            )
    if kind == "loss_surge" and not 0.0 <= float(event["loss"]) < 1.0:
        raise ValueError(
            f"fault event {position}: 'loss' must be in [0, 1)"
        )
    if kind == "corrupt" and not 0.0 <= float(event["rate"]) <= 1.0:
        raise ValueError(
            f"fault event {position}: 'rate' must be in [0, 1]"
        )
    if kind == "partition":
        if int(event.get("groups", 2)) < 2:
            raise ValueError(f"fault event {position}: 'groups' must be >= 2")
        members = event.get("members")
        if members is not None and (
            not isinstance(members, list)
            or not all(isinstance(g, list) for g in members)
            or len(members) < 2
        ):
            raise ValueError(
                f"fault event {position}: 'members' must be a list of >= 2 "
                "lists of host references"
            )
    return copy.deepcopy(event)


@dataclass
class FaultPlan:
    """A validated, JSON-clean list of fault events (see module docstring)."""

    events: list[dict] = field(default_factory=list)

    def __post_init__(self):
        self.events = [
            _validate_event(i, e) for i, e in enumerate(self.events)
        ]

    @classmethod
    def from_spec(cls, spec) -> "FaultPlan":
        """Build from the serialized form: ``{"events": [...]}``
        (or a bare event list)."""
        if isinstance(spec, FaultPlan):
            return cls(events=copy.deepcopy(spec.events))
        if isinstance(spec, list):
            return cls(events=spec)
        if not isinstance(spec, dict):
            raise ValueError(
                f"fault spec must be a dict or list, got {type(spec).__name__}"
            )
        unknown = set(spec) - {"events"}
        if unknown:
            raise ValueError(f"unknown fault spec keys: {sorted(unknown)}")
        return cls(events=list(spec.get("events", [])))

    def to_spec(self) -> dict:
        return {"events": copy.deepcopy(self.events)}

    def __bool__(self) -> bool:
        return bool(self.events)
