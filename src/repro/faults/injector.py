"""Seeded fault execution over a built scenario.

The :class:`FaultInjector` turns a validated :class:`~repro.faults.plan.
FaultPlan` into simulator events.  Everything it does is scheduled
through the scenario's :class:`~repro.sim.kernel.Simulator`, and every
random choice (seeded partition groups, surge and corruption draws)
comes from dedicated ``faults/*`` RNG streams, so:

* a fault run is byte-identical for a given seed across worker counts,
  batch sizes, medium index/vectorization choices, and resume points;
* a run whose plan has no events consumes nothing from any stream and
  is byte-identical to a run built before this subsystem existed.

Frame-level faults (partition, link flap, loss surge, corruption) go
through the medium's single ``fault_hook`` (see
:meth:`WirelessMedium.broadcast`); the injector installs the hook only
while at least one such fault window is open, so the medium stays on
its vectorized fast path whenever the network is healthy.

Node-level faults (crash/recover) model *full state loss*: the radio is
disabled, every protocol component's ``reset_state()`` runs (timers
cancelled, route caches and pending tables dropped), and the node's
identity/neighbour cache is wiped -- recovery is a cold boot through
secure DAD, re-requesting the name the node held when it died.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace as dc_replace

from repro.faults.plan import FaultPlan

#: Component keys reset (in this order) when a node crashes.
_RESETTABLE = ("router", "dns_client", "bootstrap")


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a built scenario.

    Construction is side-effect free apart from creating the ``faults/*``
    RNG streams (stream creation never perturbs other streams).  Call
    :meth:`arm` -- :meth:`Scenario.bootstrap_all` does it automatically
    after the settle run -- to schedule the plan's events relative to
    the current simulation time.
    """

    def __init__(self, scenario, plan: FaultPlan):
        self.scenario = scenario
        self.sim = scenario.sim
        self.medium = scenario.medium
        self.plan = plan if isinstance(plan, FaultPlan) else FaultPlan.from_spec(plan)
        self.armed = False
        self._armed_at = 0.0
        # Dedicated streams: fault randomness must never perturb
        # phy/loss or any protocol stream (the faults-off byte-identity
        # contract), and must itself be independent of execution strategy.
        self._partition_rng = self.sim.rng("faults/partition")
        self._loss_rng = self.sim.rng("faults/loss")
        self._corrupt_rng = self.sim.rng("faults/corrupt")
        # Open fault windows (drive the medium hook's behaviour).
        self._groups: dict[int, int] | None = None
        self._blocked: set[frozenset] = set()
        self._surges: list[float] = []
        self._corrupts: list[float] = []
        # Per-node downtime tracking for the availability column.
        self._down_since: dict[str, float] = {}
        self._downtime = 0.0
        self._saved_names: dict[str, str] = {}
        # Counters surfaced through stats().
        self.faults_injected = 0
        self.crashes = 0
        self.recoveries = 0
        self.re_dad_count = 0
        self.frames_corrupted = 0
        self.recovery_times: list[float] = []

    # -- scheduling --------------------------------------------------------
    def arm(self) -> None:
        """Schedule every plan event, ``at`` seconds from *now*."""
        if self.armed:
            raise RuntimeError("fault plan already armed")
        self.armed = True
        self._armed_at = self.sim.now
        handlers = {
            "crash": self._crash,
            "link_flap": self._flap_down,
            "partition": self._partition,
            "loss_surge": self._surge_on,
            "corrupt": self._corrupt_on,
        }
        for event in self.plan.events:
            self.sim.schedule(float(event["at"]), handlers[event["kind"]], event)

    def _resolve_host(self, ref):
        """A host reference: index into ``hosts`` or a node name."""
        if isinstance(ref, bool):
            raise ValueError(f"bad host reference {ref!r}")
        if isinstance(ref, int):
            return self.scenario.hosts[ref]
        return self.scenario.host(ref)

    def _note(self, node_name: str, text: str) -> None:
        trace = self.scenario.ctx.trace
        if trace.enabled:
            trace.record(self.sim.now, node_name, "note", "FAULT", text)

    # -- crash / recover ---------------------------------------------------
    def _crash(self, event: dict) -> None:
        node = self._resolve_host(event["node"])
        self.faults_injected += 1
        self.crashes += 1
        self._note(node.name, "crash: power off, all soft state lost")
        # The name it will re-request on recovery: whatever it holds now,
        # or (if it died mid-registration) whatever it was asking for.
        boot = node.bootstrap
        requested = getattr(boot, "requested_name", "") if boot else ""
        self._saved_names[node.name] = node.domain_name or requested or ""
        self._down_since[node.name] = self.sim.now
        self.medium.set_enabled(node.link_id, False)
        for key in _RESETTABLE:
            comp = node.component(key)
            reset = getattr(comp, "reset_state", None)
            if reset is not None:
                reset()
        node.reset_soft_state()
        recover_after = event.get("recover_after")
        if recover_after is not None:
            self.sim.schedule(float(recover_after), self._recover, node.name)

    def _recover(self, name: str) -> None:
        node = self.scenario.host(name)
        self.faults_injected += 1
        self.recoveries += 1
        down_since = self._down_since.pop(name, None)
        if down_since is not None:
            self._downtime += self.sim.now - down_since
        self.medium.set_enabled(node.link_id, True)
        self._note(name, "recover: cold boot, re-running secure DAD")
        recovered_at = self.sim.now
        callbacks = node.bootstrap.on_configured

        def _recovery_done(_node, _elapsed=None):
            self.recovery_times.append(self.sim.now - recovered_at)
            callbacks.remove(_recovery_done)

        callbacks.append(_recovery_done)
        self.re_dad_count += 1
        node.bootstrap.start(self._saved_names.pop(name, ""))

    # -- link flap ---------------------------------------------------------
    def _flap_down(self, event: dict) -> None:
        self.faults_injected += 1
        a = self._resolve_host(event["a"])
        b = self._resolve_host(event["b"])
        pair = frozenset((a.link_id, b.link_id))
        self._note(a.name, f"link flap: {a.name}<->{b.name} blocked")
        self._blocked.add(pair)
        self._sync_hook()
        self.sim.schedule(float(event["duration"]), self._flap_up, pair)

    def _flap_up(self, pair: frozenset) -> None:
        self._blocked.discard(pair)
        self._sync_hook()

    # -- partition / heal --------------------------------------------------
    def _partition(self, event: dict) -> None:
        self.faults_injected += 1
        members = event.get("members")
        assignment: dict[int, int] = {}
        if members is not None:
            # Explicit groups; unlisted radios (DNS server, adversaries)
            # ride with group 0.
            for link_id in sorted(self.medium.link_ids):
                assignment[link_id] = 0
            for group, refs in enumerate(members):
                for ref in refs:
                    assignment[self._resolve_host(ref).link_id] = group
        else:
            # Seeded assignment over ALL attached radios in ascending
            # link-id order: one draw per radio, execution-order free.
            groups = int(event.get("groups", 2))
            for link_id in sorted(self.medium.link_ids):
                assignment[link_id] = self._partition_rng.randint(0, groups - 1)
        self._groups = assignment
        self._sync_hook()
        sizes: dict[int, int] = {}
        for group in assignment.values():
            sizes[group] = sizes.get(group, 0) + 1
        self._note("faults", f"partition: group sizes {sorted(sizes.values())}")
        self.sim.schedule(float(event["duration"]), self._heal, event)

    def _heal(self, event: dict) -> None:
        self.faults_injected += 1
        self._groups = None
        self._sync_hook()
        self._note("faults", "partition healed")
        if not event.get("reprobe", True):
            return
        # Optimistic re-DAD on merge: while split, two nodes may have
        # configured colliding addresses without ever hearing each other,
        # so every configured host re-probes its address (staggered to
        # model independent merge detection, and to keep the DAD storm
        # from being one synchronized burst).
        stagger = float(event.get("reprobe_stagger", 0.05))
        position = 0
        for node in self.scenario.hosts:
            boot = node.bootstrap
            if boot is not None and boot.state == "configured":
                self.sim.schedule(position * stagger, self._reprobe, node.name)
                position += 1

    def _reprobe(self, name: str) -> None:
        node = self.scenario.host(name)
        boot = node.bootstrap
        if boot is None or boot.state != "configured":
            return  # crashed (or already re-probing) since heal was scheduled
        self.re_dad_count += 1
        boot.reprobe()

    # -- loss surge / corruption ------------------------------------------
    def _surge_on(self, event: dict) -> None:
        self.faults_injected += 1
        prob = float(event["loss"])
        self._note("faults", f"loss surge: +{prob} for {event['duration']}s")
        self._surges.append(prob)
        self._sync_hook()
        self.sim.schedule(float(event["duration"]), self._surge_off, prob)

    def _surge_off(self, prob: float) -> None:
        self._surges.remove(prob)
        self._sync_hook()

    def _corrupt_on(self, event: dict) -> None:
        self.faults_injected += 1
        rate = float(event["rate"])
        self._note("faults", f"corruption: rate {rate} for {event['duration']}s")
        self._corrupts.append(rate)
        self._sync_hook()
        self.sim.schedule(float(event["duration"]), self._corrupt_off, rate)

    def _corrupt_off(self, rate: float) -> None:
        self._corrupts.remove(rate)
        self._sync_hook()

    # -- the medium hook ---------------------------------------------------
    def _sync_hook(self) -> None:
        """Install the hook iff some frame-level fault window is open.

        Keeping the hook off while idle keeps the medium on its
        vectorized broadcast path (and the hook's absence is what makes
        an event-free plan byte-identical to no plan at all).
        """
        active = (
            self._groups is not None
            or bool(self._blocked)
            or bool(self._surges)
            or bool(self._corrupts)
        )
        self.medium.fault_hook = self._hook if active else None

    def _hook(self, src: int, dst: int, frame):
        """Per-(frame, receiver) fault filter; see WirelessMedium docs.

        Runs before the receiver's ``phy/loss`` draw, in the same
        ascending-receiver order, drawing from ``faults/*`` streams only
        -- deterministic however the run is executed.
        """
        groups = self._groups
        if groups is not None:
            gs, gd = groups.get(src), groups.get(dst)
            if gs is not None and gd is not None and gs != gd:
                return None
        if self._blocked and frozenset((src, dst)) in self._blocked:
            return None
        for prob in self._surges:
            if self._loss_rng.random() < prob:
                return None
        for rate in self._corrupts:
            if self._corrupt_rng.random() < rate:
                frame = self._corrupt_frame(frame)
                if frame is None:
                    return None
        return frame

    def _corrupt_frame(self, frame):
        """Flip the payload's signature bits in flight.

        Messages name their proof fields ``signature``,
        ``source_signature``, etc.; the first non-empty one (field
        declaration order -- deterministic) gets its bits inverted, so
        the receiver's crypto layer must reject the message (that is the
        point).  Payloads carrying no signature have no field we can
        flip without breaking codec invariants, so the frame is dropped
        instead (indistinguishable from loss, as on real radio).
        """
        msg = frame.payload
        if dataclasses.is_dataclass(msg):
            for f in dataclasses.fields(msg):
                value = getattr(msg, f.name)
                if f.name.endswith("signature") and isinstance(value, bytes) \
                        and value:
                    self.frames_corrupted += 1
                    flipped = bytes(b ^ 0xFF for b in value)
                    return dc_replace(
                        frame, payload=msg.replace(**{f.name: flipped})
                    )
        return None

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Flat numeric dict merged into ``MetricsCollector.summary()``.

        ``availability`` is host-seconds up / host-seconds total since
        the plan was armed; ``recovery_time_*`` covers completed
        crash->recover->re-configured cycles.
        """
        now = self.sim.now
        window = now - self._armed_at
        downtime = self._downtime + sum(
            now - since for since in self._down_since.values()
        )
        host_seconds = len(self.scenario.hosts) * window
        availability = 1.0 - downtime / host_seconds if host_seconds > 0 else 1.0
        rec = self.recovery_times
        return {
            "faults_injected": self.faults_injected,
            "fault_crashes": self.crashes,
            "fault_recoveries": self.recoveries,
            "re_dad_count": self.re_dad_count,
            "recovery_time_mean": sum(rec) / len(rec) if rec else 0.0,
            "recovery_time_max": max(rec) if rec else 0.0,
            "availability": availability,
            "frames_suppressed": self.medium.suppressed_frames,
            "frames_corrupted": self.frames_corrupted,
        }
