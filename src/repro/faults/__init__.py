"""Deterministic, seeded fault injection (see :mod:`repro.faults.plan`)."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan"]
