"""Streaming, constant-memory statistical sketches.

Everything here is pure python and bit-stable: no numpy, no platform-
dependent math, no wall clock, no global state.  The campaign
aggregator folds 10^5-run sweeps through these instead of buffering
exact value lists, and its reports must still diff byte-for-byte across
machines and re-runs, so every estimator is deterministic given its
insertion order (and :class:`ExactSum` / :class:`FixedGridHistogram`
are deterministic given only the value *multiset*).

Primitives
----------
* :class:`ExactSum` -- Shewchuk compensated summation; the returned sum
  is the correctly-rounded exact sum, so it is independent of insertion
  order.  This is what makes a live ``report --follow`` (records arrive
  in completion order) byte-identical to a post-hoc report over the
  finalized, index-sorted file.
* :class:`Welford` -- streaming mean/variance with Chan's parallel
  merge.
* :class:`P2Quantile` -- the Jain & Chlamtac P^2 single-quantile
  estimator: five markers, O(1) memory; exact while it still holds
  five or fewer observations.
* :class:`StreamingQuantile` -- exact up to a configurable buffer
  limit, then spills into P^2; small campaign groups therefore report
  *exact* quantiles while huge ones stay constant-memory.
* :class:`FixedGridHistogram` -- fixed-bin counts over a known range;
  integer merge, exactly associative.
* :class:`Reservoir` -- bounded uniform sample (Algorithm R) with a
  deterministic private RNG.
"""

from __future__ import annotations

import math
import random


class ExactSum:
    """Streaming exactly-rounded float summation (Shewchuk partials).

    ``value()`` equals ``math.fsum`` of everything added so far, which
    depends only on the multiset of addends -- never on their order.
    The partials list stays tiny (a handful of non-overlapping floats),
    so memory is effectively O(1).
    """

    __slots__ = ("_partials",)

    def __init__(self):
        self._partials: list[float] = []

    def add(self, value: float) -> None:
        x = float(value)
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        for p in other._partials:
            self.add(p)

    def value(self) -> float:
        """The correctly-rounded sum of everything added so far."""
        return math.fsum(self._partials)


class Welford:
    """Streaming mean/variance (Welford's online algorithm).

    ``merge`` uses Chan's parallel update, so sharded accumulation over
    disjoint value sets reaches the same moments as a single pass (up
    to float rounding; counts are exact).
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        x = float(value)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    def merge(self, other: "Welford") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Population variance; 0 with fewer than two observations."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


def quantile_sorted(ordered, q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sequence.

    Same interpolation rule as
    :func:`repro.metrics.collector.percentile` (``q`` in [0, 100]), so
    sketch fallbacks and exact summaries agree bit-for-bit on shared
    inputs.  Returns 0.0 when empty.
    """
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class P2Quantile:
    """P^2 (Jain & Chlamtac 1985) streaming estimator of one quantile.

    Five markers track the running q-quantile in O(1) memory.  While
    five or fewer observations have been seen the estimate is *exact*
    (computed from the stored values with the same interpolation as
    :func:`quantile_sorted`); beyond that the markers adjust via the
    piecewise-parabolic (P^2) update.  Deterministic given insertion
    order.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, value: float) -> None:
        x = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(x)
            heights.sort()
            return

        positions = self._positions
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while x >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._rates[i]

        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1
            ):
                step = 1 if delta > 0 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """Current quantile estimate; exact for five or fewer values."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return quantile_sorted(self._heights, self.q * 100.0)
        return self._heights[2]


class StreamingQuantile:
    """Exact quantiles for small streams, P^2 beyond a buffer limit.

    Buffers values exactly until ``exact_limit`` observations, then
    replays them (in insertion order) into a :class:`P2Quantile` and
    streams from there.  Campaign groups with up to ``exact_limit``
    replicates therefore report the same number an exact percentile
    would, while unbounded streams stay O(1) memory.
    """

    __slots__ = ("q", "exact_limit", "_buffer", "_p2")

    def __init__(self, q: float, exact_limit: int = 64):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.exact_limit = int(exact_limit)
        self._buffer: list[float] | None = []
        self._p2: P2Quantile | None = None

    @property
    def count(self) -> int:
        return self._p2.count if self._p2 is not None else len(self._buffer)

    def add(self, value: float) -> None:
        if self._p2 is not None:
            self._p2.add(value)
            return
        self._buffer.append(float(value))
        if len(self._buffer) > self.exact_limit:
            self._p2 = P2Quantile(self.q)
            for v in self._buffer:
                self._p2.add(v)
            self._buffer = None

    def value(self) -> float:
        if self._p2 is not None:
            return self._p2.value()
        return quantile_sorted(sorted(self._buffer), self.q * 100.0)


class FixedGridHistogram:
    """Fixed-bin counting sketch over a known value range.

    Values are clamped into ``bins`` equal-width buckets spanning
    ``[lo, hi]``; quantiles interpolate linearly inside the containing
    bucket and are clamped to the observed min/max.  Because state is
    integer counts plus exact min/max, ``merge`` of same-grid sketches
    is *exactly associative and commutative* -- the property sharded
    campaign aggregation relies on.
    """

    __slots__ = ("lo", "hi", "bins", "counts", "count", "min", "max", "_width")

    def __init__(self, lo: float, hi: float, bins: int = 128):
        if not hi > lo:
            raise ValueError("hi must be > lo")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self._width = (self.hi - self.lo) / self.bins
        self.counts = [0] * self.bins
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        x = float(value)
        bucket = int((x - self.lo) / self._width)
        if bucket < 0:
            bucket = 0
        elif bucket >= self.bins:
            bucket = self.bins - 1
        self.counts[bucket] += 1
        self.count += 1
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: "FixedGridHistogram") -> None:
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi, self.bins):
            raise ValueError("cannot merge histograms with different grids")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """Estimated q-percentile (``q`` in [0, 100]); 0 when empty."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        rank = (self.count - 1) * (q / 100.0)
        seen = 0
        for bucket, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c > rank:
                frac = (rank - seen + 0.5) / c
                estimate = self.lo + (bucket + frac) * self._width
                return min(max(estimate, self.min), self.max)
            seen += c
        return self.max


class Reservoir:
    """Bounded uniform sample of a stream (Algorithm R).

    The RNG is a private ``random.Random(seed)``, so two identical
    feeds produce identical samples and sampling never perturbs any
    simulation RNG stream.
    """

    __slots__ = ("capacity", "items", "count", "_rng")

    def __init__(self, capacity: int, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.items: list = []
        self.count = 0
        self._rng = random.Random(seed)

    def add(self, value) -> None:
        self.count += 1
        if len(self.items) < self.capacity:
            self.items.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.items[slot] = value


class MetricSketch:
    """Combined per-column streaming summary used by campaign groups.

    Tracks an exactly-rounded (order-independent) mean, exact min/max,
    and P^2-backed p50/p95 -- everything ``aggregate`` needs for one
    numeric column of one group, in constant memory.
    """

    __slots__ = ("count", "min", "max", "_sum", "_p50", "_p95")

    #: Groups up to this many values report *exact* quantiles; beyond
    #: it the P^2 markers take over (see :class:`StreamingQuantile`).
    EXACT_QUANTILE_LIMIT = 64

    def __init__(self):
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._sum = ExactSum()
        self._p50 = StreamingQuantile(0.50, self.EXACT_QUANTILE_LIMIT)
        self._p95 = StreamingQuantile(0.95, self.EXACT_QUANTILE_LIMIT)

    def add(self, value: float) -> None:
        x = float(value)
        self.count += 1
        self._sum.add(x)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self._p50.add(x)
        self._p95.add(x)

    @property
    def mean(self) -> float:
        return self._sum.value() / self.count if self.count else 0.0

    def stats(self, sketch: bool = False) -> dict:
        """The group-report dict: mean/min/max, plus p50/p95 in sketch mode."""
        out = {"mean": self.mean, "min": self.min, "max": self.max}
        if sketch:
            out["count"] = self.count
            out["p50"] = self._p50.value()
            out["p95"] = self._p95.value()
        return out
