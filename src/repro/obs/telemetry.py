"""Runner telemetry: the fsync'd ``telemetry.jsonl`` sidecar.

When a campaign runs with telemetry enabled, the runner appends one
JSON object per event to ``telemetry.jsonl`` next to ``results.jsonl``:
a ``start`` record when execution begins, a ``batch`` record as each
worker batch lands (wall time, worker pid, runs/sec, retry marker), and
a ``finish`` record with campaign-level totals (overall rate, retry and
timeout counts).  Every line is fsync'd, so a crash loses at most the
record in flight -- the same durability contract as the results stream.

Telemetry records carry wall-clock measurements and are therefore *not*
deterministic; they live strictly outside the byte-compared artifacts
(``results.jsonl``, ``report.json``) and enabling them never changes
those files.  :func:`validate_telemetry_record` /
:func:`validate_telemetry_file` define the schema contract CI checks.
"""

from __future__ import annotations

import json
import os

#: Bumped whenever the record layout changes incompatibly; every record
#: carries it as ``"v"`` so consumers can reject files they don't speak.
#: v2: batch records gained fault counters (faults_injected,
#: re_dad_count); new ``abandoned`` kind written on graceful shutdown.
#: v3: start records carry the shard assignment (shard_index,
#: shard_count -- 0/1 for an unsharded run); new ``merge`` kind written
#: by ``campaign merge`` with per-shard run counts and conflict totals.
#: Validation accepts v2 *and* v3 files, so sidecars written before the
#: shard work keep validating.
TELEMETRY_SCHEMA_VERSION = 3

#: Required fields per v2 record kind (beyond the ``v``/``kind`` envelope).
_SCHEMA_V2 = {
    "start": {
        "campaign": str,
        "total_runs": int,
        "pending_runs": int,
        "workers": int,
        "batch_size": int,
        "resumed": bool,
    },
    "batch": {
        "seq": int,
        "runs": int,
        "ok": int,
        "failed": int,
        "wall_s": float,
        "runs_per_sec": float,
        "worker_pid": int,
        "retried": bool,
        "done": int,
        "total": int,
        # Crypto work summed over the batch's ok runs (from their frozen
        # summaries): logical sign/verify ops and LRU verify-cache hits.
        # Deterministic per run -- they ride along here so operators can
        # watch crypto load per batch without touching results.jsonl.
        "crypto_sign_ops": int,
        "crypto_verify_ops": int,
        "crypto_verify_cache_hits": int,
        # Fault-injection work over the batch's ok runs, same contract.
        "faults_injected": int,
        "re_dad_count": int,
    },
    # Written on SIGINT/SIGTERM graceful shutdown, after the last
    # ingested batch: the runs that were dispatched but never landed.
    # Distinguishes a torn tail (in_flight non-empty) from a campaign
    # that was stopped between batches -- `campaign resume` diagnostics
    # read this.  An interrupted file ends with `abandoned` instead of
    # `finish`.
    "abandoned": {
        "signal": str,
        "in_flight": list,
        "done": int,
        "total": int,
    },
    "finish": {
        "runs": int,
        "ok": int,
        "failed": int,
        "timeouts": int,
        "retries": int,
        "wall_s": float,
        "runs_per_sec": float,
    },
}

#: v3 extends v2: sharded provenance on ``start`` plus the ``merge``
#: summary record ``campaign merge`` emits (per-shard run counts and
#: conflict totals, so a fused campaign's telemetry names what each
#: shard contributed and what was quarantined on the way in).
_SCHEMA_V3 = {kind: dict(fields) for kind, fields in _SCHEMA_V2.items()}
_SCHEMA_V3["start"].update({"shard_index": int, "shard_count": int})
_SCHEMA_V3["merge"] = {
    "campaign": str,
    "shards": int,
    "per_shard_runs": list,
    "conflicts": int,
    "gaps": int,
    "runs": int,
    "total": int,
    "complete": bool,
}

#: Schema versions this validator speaks; the writer always emits the
#: newest one.
_SCHEMAS = {2: _SCHEMA_V2, 3: _SCHEMA_V3}


def validate_telemetry_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches its version's schema."""
    if not isinstance(record, dict):
        raise ValueError(f"telemetry record must be an object, got {type(record).__name__}")
    schema = _SCHEMAS.get(record.get("v"))
    if schema is None:
        raise ValueError(
            f"telemetry schema version {record.get('v')!r} "
            f"(expected one of {sorted(_SCHEMAS)})"
        )
    kind = record.get("kind")
    fields = schema.get(kind)
    if fields is None:
        raise ValueError(
            f"unknown telemetry record kind {kind!r} for schema "
            f"v{record['v']} (expected one of {sorted(schema)})"
        )
    for name, expected in fields.items():
        if name not in record:
            raise ValueError(f"telemetry {kind!r} record missing field {name!r}")
        value = record[name]
        # ints are acceptable floats (JSON round-trips 1.0 -> 1 sometimes),
        # but bools are not acceptable ints.
        if expected is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif expected is list:
            # Lists of non-negative run counts/indices (`abandoned`'s
            # in_flight, `merge`'s per_shard_runs).
            ok = isinstance(value, list) and all(
                isinstance(v, int) and not isinstance(v, bool) for v in value
            )
        else:
            ok = isinstance(value, expected)
        if not ok:
            raise ValueError(
                f"telemetry {kind!r} field {name!r} must be "
                f"{expected.__name__}, got {type(value).__name__}"
            )


def validate_telemetry_file(path) -> int:
    """Validate every record in a ``telemetry.jsonl``; returns the count.

    Checks the schema of each line (v2 and v3 files both validate) plus
    the envelope invariants a whole file must satisfy: the first record
    is ``start`` (an execution narration) or ``merge`` (a ``campaign
    merge`` narration), ``start`` appears at most once, and nothing
    follows a ``finish`` record.  Raises ``ValueError`` on the first
    violation.
    """
    count = 0
    finished = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: line {lineno}: {exc}") from exc
            try:
                validate_telemetry_record(record)
            except ValueError as exc:
                raise ValueError(f"{path}: line {lineno}: {exc}") from exc
            if finished:
                raise ValueError(
                    f"{path}: line {lineno}: record after 'finish'"
                )
            if count == 0 and record["kind"] not in ("start", "merge"):
                raise ValueError(
                    f"{path}: line {lineno}: first record must be 'start' "
                    f"or 'merge', got {record['kind']!r}"
                )
            if count > 0 and record["kind"] == "start":
                raise ValueError(f"{path}: line {lineno}: duplicate 'start'")
            if record["kind"] == "finish":
                finished = True
            count += 1
    if count == 0:
        raise ValueError(f"{path}: empty telemetry file")
    return count


class TelemetryTracker:
    """Append-only, fsync'd writer for the ``telemetry.jsonl`` sidecar.

    One tracker per campaign execution; ``start``/``batch``/``finish``
    emit the corresponding record.  The file is truncated on open (a
    resume starts a fresh telemetry story -- the results checkpoint is
    the durable artifact, telemetry narrates one execution).  Safe to
    ``close()`` twice; every record hits the disk before the emitting
    call returns.
    """

    def __init__(self, path):
        self._path = os.fspath(path)
        self._fh = open(self._path, "w", encoding="utf-8")
        self._seq = 0

    @property
    def path(self) -> str:
        return self._path

    def _emit(self, record: dict) -> None:
        record["v"] = TELEMETRY_SCHEMA_VERSION
        validate_telemetry_record(record)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def start(self, campaign: str, total_runs: int, pending_runs: int,
              workers: int, batch_size: int, resumed: bool,
              shard_index: int = 0, shard_count: int = 1) -> None:
        self._emit({
            "kind": "start",
            "campaign": str(campaign),
            "total_runs": int(total_runs),
            "pending_runs": int(pending_runs),
            "workers": int(workers),
            "batch_size": int(batch_size),
            "resumed": bool(resumed),
            "shard_index": int(shard_index),
            "shard_count": int(shard_count),
        })

    def batch(self, runs: int, ok: int, failed: int, wall_s: float,
              worker_pid: int, done: int, total: int,
              retried: bool = False, crypto_sign_ops: int = 0,
              crypto_verify_ops: int = 0,
              crypto_verify_cache_hits: int = 0,
              faults_injected: int = 0, re_dad_count: int = 0) -> None:
        self._seq += 1
        self._emit({
            "kind": "batch",
            "seq": self._seq,
            "runs": int(runs),
            "ok": int(ok),
            "failed": int(failed),
            "wall_s": round(float(wall_s), 6),
            "runs_per_sec": round(runs / wall_s, 3) if wall_s > 0 else 0.0,
            "worker_pid": int(worker_pid),
            "retried": bool(retried),
            "done": int(done),
            "total": int(total),
            "crypto_sign_ops": int(crypto_sign_ops),
            "crypto_verify_ops": int(crypto_verify_ops),
            "crypto_verify_cache_hits": int(crypto_verify_cache_hits),
            "faults_injected": int(faults_injected),
            "re_dad_count": int(re_dad_count),
        })

    def merge(self, campaign: str, shards: int, per_shard_runs,
              conflicts: int, gaps: int, runs: int, total: int,
              complete: bool) -> None:
        """Summary of one ``campaign merge``: what each shard contributed."""
        self._emit({
            "kind": "merge",
            "campaign": str(campaign),
            "shards": int(shards),
            "per_shard_runs": [int(n) for n in per_shard_runs],
            "conflicts": int(conflicts),
            "gaps": int(gaps),
            "runs": int(runs),
            "total": int(total),
            "complete": bool(complete),
        })

    def abandoned(self, signal_name: str, in_flight, done: int, total: int) -> None:
        """Graceful-shutdown marker: dispatched runs that never landed."""
        self._emit({
            "kind": "abandoned",
            "signal": str(signal_name),
            "in_flight": sorted(int(i) for i in in_flight),
            "done": int(done),
            "total": int(total),
        })

    def finish(self, runs: int, ok: int, failed: int, timeouts: int,
               retries: int, wall_s: float) -> None:
        self._emit({
            "kind": "finish",
            "runs": int(runs),
            "ok": int(ok),
            "failed": int(failed),
            "timeouts": int(timeouts),
            "retries": int(retries),
            "wall_s": round(float(wall_s), 6),
            "runs_per_sec": round(runs / wall_s, 3) if wall_s > 0 else 0.0,
        })

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
