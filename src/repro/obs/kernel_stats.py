"""Opt-in kernel profiling: the :class:`KernelStats` sink.

A :class:`~repro.sim.kernel.Simulator` runs with zero instrumentation
by default -- its hot loop is untouched and nothing here is imported.
``Simulator.enable_stats()`` attaches a sink and switches execution to
an instrumented twin of the loop that additionally tracks:

* heap high-water mark (sampled at event boundaries and compactions),
* cancelled entries skipped on pop,
* per-handler-kind call counts and wall-time buckets (keyed by the
  callback's qualified name),
* wall-clock time inside the run loop, for an events/sec rate.

Counters (high-water, skip counts, handler call counts) are
deterministic for a deterministic simulation; wall-clock fields
(``wall_seconds``, ``events_per_sec``, ``wall_ms`` buckets) are
machine-dependent and must never be written into byte-stable artifacts
-- which is why campaign run records never include them and the
``kernel_stats`` block only appears in a
:meth:`~repro.metrics.collector.MetricsCollector.summary` when a sink
was explicitly attached.
"""

from __future__ import annotations


def handler_kind(callback) -> str:
    """Bucket key for a callback: its qualified name (module-less).

    Bound methods of protocol components all carry distinct qualnames
    (``SecureDSRRouter._on_rreq``, ``WirelessMedium._deliver``, ...),
    which is exactly the granularity a "where did the time go" panel
    needs.
    """
    return getattr(callback, "__qualname__", None) or repr(callback)


class KernelStats:
    """Mutable instrumentation counters filled by the instrumented loop."""

    __slots__ = (
        "heap_high_water",
        "cancelled_skipped",
        "instrumented_events",
        "wall_seconds",
        "handler_calls",
        "handler_wall",
    )

    def __init__(self):
        self.heap_high_water = 0
        self.cancelled_skipped = 0
        self.instrumented_events = 0
        self.wall_seconds = 0.0
        self.handler_calls: dict[str, int] = {}
        self.handler_wall: dict[str, float] = {}

    def observe_heap(self, size: int) -> None:
        if size > self.heap_high_water:
            self.heap_high_water = size

    def observe_handler(self, kind: str, wall: float) -> None:
        self.handler_calls[kind] = self.handler_calls.get(kind, 0) + 1
        self.handler_wall[kind] = self.handler_wall.get(kind, 0.0) + wall

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instrumented_events / self.wall_seconds

    def summary(self, sim=None) -> dict:
        """JSON-clean digest; pass the simulator to fold in its counters.

        Deterministic fields: ``events_executed``, ``events_cancelled``,
        ``heap_high_water``, ``compactions``, ``events_pending`` and the
        per-handler ``calls``.  Wall-clock fields (``wall_seconds``,
        ``events_per_sec``, handler ``wall_ms``) vary run to run.
        """
        out = {
            "heap_high_water": self.heap_high_water,
            "events_cancelled": self.cancelled_skipped,
            "events_per_sec": round(self.events_per_sec, 1),
            "wall_seconds": round(self.wall_seconds, 6),
            "handlers": {
                kind: {
                    "calls": self.handler_calls[kind],
                    "wall_ms": round(self.handler_wall[kind] * 1e3, 3),
                }
                for kind in sorted(self.handler_calls)
            },
        }
        if sim is not None:
            out["events_executed"] = sim.events_executed
            out["events_pending"] = sim.events_pending
            out["compactions"] = sim.compactions
        return out
