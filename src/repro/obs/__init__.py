"""Observability: streaming sketches, kernel stats, telemetry, live reports.

Everything in this package is dependency-free, deterministic, and
opt-in -- the simulation and campaign layers behave byte-identically
when none of it is enabled:

* :mod:`~repro.obs.sketch` -- constant-memory streaming accumulators
  (exactly-rounded sums, Welford moments, P^2 quantiles, mergeable
  histograms, reservoir samples) behind :class:`MetricSketch`, the
  per-column state of campaign aggregation;
* :mod:`~repro.obs.kernel_stats` -- the :class:`KernelStats` sink the
  simulator kernel fills when profiling is enabled (events/sec, heap
  high-water, per-handler time buckets);
* :mod:`~repro.obs.telemetry` -- the runner's fsync'd
  ``telemetry.jsonl`` sidecar (per-batch wall time, worker id, rates)
  and its schema validator;
* :mod:`~repro.obs.follow` -- incremental tailing of an in-flight
  ``results.jsonl`` for ``campaign report --follow``;
* :mod:`~repro.obs.trends` -- cross-campaign history rendered as
  terminal sparklines (optionally HTML).
"""

from repro.obs.kernel_stats import KernelStats, handler_kind
from repro.obs.sketch import (
    ExactSum,
    FixedGridHistogram,
    MetricSketch,
    P2Quantile,
    Reservoir,
    StreamingQuantile,
    Welford,
    quantile_sorted,
)

__all__ = [
    "ExactSum",
    "FixedGridHistogram",
    "KernelStats",
    "MetricSketch",
    "P2Quantile",
    "Reservoir",
    "StreamingQuantile",
    "Welford",
    "handler_kind",
    "quantile_sorted",
]
