"""Cross-campaign trend dashboard: sparklines over benchmark history.

``campaign trends`` walks a set of directories for the repo's two kinds
of longitudinal artifacts -- ``benchmarks/BENCH_*.json`` scorecards and
campaign ``report.json`` aggregates -- flattens their numeric leaves
into named series, orders each series by file modification time (the
proxy for "when was this measurement taken"), and renders one sparkline
row per series.  ``--html`` exports the same table as a dependency-free
static page.

Everything here is read-only and tolerant: unparseable files are
skipped with a note, and a series with a single point still renders
(as a flat line) rather than erroring -- fresh repos have short
histories.
"""

from __future__ import annotations

import html as _html
import json
import os

#: Eight-level bar glyphs, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Campaign-report metrics promoted to trend series (the same headline
#: columns the report table shows).
REPORT_METRICS = (
    "pdr",
    "latency_p50",
    "latency_p95",
    "control_bytes",
    "crypto_ops_total",
)


def sparkline(values) -> str:
    """Render a numeric sequence as unicode bars; flat series mid-height."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_CHARS[3] * len(values)
    span = hi - lo
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - lo) / span * len(SPARK_CHARS)))]
        for v in values
    )


def flatten_numeric(obj, prefix: str = "") -> dict[str, float]:
    """Dotted-path map of every numeric leaf in a nested dict (no bools)."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(obj[key], path))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)
    return out


def _bench_series(path, payload: dict) -> dict[str, float]:
    stem = os.path.splitext(os.path.basename(path))[0]
    name = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    return {
        f"bench.{name}.{key}": value
        for key, value in flatten_numeric(payload).items()
    }


def _report_series(payload: dict) -> dict[str, float]:
    """Headline series of one campaign report: per-metric mean of means."""
    name = payload.get("campaign", "campaign")
    series: dict[str, float] = {}
    runs = payload.get("runs", 0)
    if runs:
        series[f"campaign.{name}.ok_fraction"] = payload.get("ok", 0) / runs
    groups = payload.get("groups", [])
    for metric in REPORT_METRICS:
        means = [
            group["metrics"][metric]["mean"]
            for group in groups
            if metric in group.get("metrics", {})
        ]
        if means:
            series[f"campaign.{name}.{metric}"] = sum(means) / len(means)
    return series


def collect_sources(paths) -> tuple[list[tuple], list[str]]:
    """Find trend sources under ``paths``; returns (sources, notes).

    Sources are ``(mtime, path, series_dict)`` sorted by
    ``(mtime, path)`` -- modification time orders the history, the path
    tie-breaks for determinism when mtimes collide (e.g. a fresh
    checkout).  Unreadable or unparseable candidates become notes, not
    errors.
    """
    candidates: list[str] = []
    for root in paths:
        root = os.fspath(root)
        if os.path.isfile(root):
            candidates.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename == "report.json" or (
                    filename.startswith("BENCH_") and filename.endswith(".json")
                ):
                    candidates.append(os.path.join(dirpath, filename))
    sources: list[tuple] = []
    notes: list[str] = []
    for path in candidates:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            notes.append(f"skipped {path}: {exc}")
            continue
        if not isinstance(payload, dict):
            notes.append(f"skipped {path}: not a JSON object")
            continue
        if os.path.basename(path) == "report.json":
            series = _report_series(payload)
        else:
            series = _bench_series(path, payload)
        if series:
            sources.append((os.path.getmtime(path), path, series))
    sources.sort(key=lambda item: (item[0], item[1]))
    return sources, notes


def trend_series(paths) -> tuple[dict[str, list[tuple]], list[str]]:
    """History per series name: ``{name: [(mtime, path, value), ...]}``."""
    sources, notes = collect_sources(paths)
    history: dict[str, list[tuple]] = {}
    for mtime, path, series in sources:
        for name, value in series.items():
            history.setdefault(name, []).append((mtime, path, value))
    return history, notes


def _format_value(value: float) -> str:
    return f"{value:.4g}"


def trends_text(paths) -> str:
    """The terminal dashboard: one sparkline row per series."""
    history, notes = trend_series(paths)
    lines = []
    if not history:
        lines.append("no trend sources found (BENCH_*.json / report.json)")
    else:
        n_sources = len({path for points in history.values()
                         for _, path, _ in points})
        lines.append(
            f"Cross-campaign trends: {len(history)} series "
            f"from {n_sources} source file(s)"
        )
        lines.append("")
        width = max(len(name) for name in history)
        for name in sorted(history):
            points = history[name]
            values = [value for _, _, value in points]
            spark = sparkline(values)
            if len(values) == 1:
                summary = _format_value(values[0])
            else:
                summary = (f"{_format_value(values[0])} -> "
                           f"{_format_value(values[-1])}")
            lines.append(
                f"{name:<{width}}  {spark}  {summary}  ({len(values)} pt)"
            )
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def trends_html(paths) -> str:
    """Static HTML export of the same dashboard (no external assets)."""
    history, notes = trend_series(paths)
    rows = []
    for name in sorted(history):
        points = history[name]
        values = [value for _, _, value in points]
        rows.append(
            "<tr><td class=n>{name}</td><td class=s>{spark}</td>"
            "<td class=v>{latest}</td><td class=c>{count}</td></tr>".format(
                name=_html.escape(name),
                spark=_html.escape(sparkline(values)),
                latest=_html.escape(_format_value(values[-1])),
                count=len(values),
            )
        )
    note_html = "".join(
        f"<p class=note>{_html.escape(note)}</p>" for note in notes
    )
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        "<title>Cross-campaign trends</title><style>"
        "body{font-family:monospace;margin:2em;background:#111;color:#ddd}"
        "table{border-collapse:collapse}"
        "td,th{padding:.2em .8em;text-align:left}"
        "td.s{font-size:1.4em;letter-spacing:.05em}"
        "td.v{color:#8c8}tr:nth-child(even){background:#1a1a1a}"
        ".note{color:#986}</style></head><body>"
        "<h1>Cross-campaign trends</h1>"
        "<table><tr><th>series</th><th>trend</th><th>latest</th>"
        "<th>points</th></tr>"
        + "".join(rows)
        + "</table>"
        + note_html
        + "</body></html>\n"
    )
