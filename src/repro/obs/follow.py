"""Live tailing of an in-flight campaign for ``report --follow``.

:class:`ResultsTail` wraps :func:`repro.campaign.aggregate.tail_jsonl`
with the state a *live* consumer needs: it remembers the byte offset of
the last complete record (so each poll parses only the bytes the runner
appended since -- never a full-file re-read in steady state), and it
survives the runner's finalize step, which atomically ``os.replace``\\ s
the completion-ordered stream with an index-sorted rewrite.  A replace
is detected by inode change (or size shrink), the offset rewinds to
zero once, and per-index dedup keeps already-consumed records from
being double-counted.

:func:`follow_report` runs the poll loop: it waits for the results file
to appear, folds fresh records into a
:class:`~repro.campaign.aggregate.StreamingAggregator`, and stops when
the expected run count is reached.  Because the aggregator is
order-independent (exactly-rounded sums, sorted emission), the report
it returns is byte-identical to a post-hoc ``campaign report`` over the
finalized file.
"""

from __future__ import annotations

import os
import time

from repro.campaign.aggregate import StreamingAggregator, tail_jsonl


class ResultsTail:
    """Incremental, replace-tolerant reader of a live ``results.jsonl``.

    ``poll()`` returns the records appended since the previous poll.
    Torn-tail warnings are swallowed: with a live writer a torn final
    line just means the next record is mid-write, and since
    :func:`tail_jsonl` does not consume it, a later poll picks it up
    whole.  Memory is the byte offset plus one int per consumed run
    index (the dedup set that makes the rewind-after-replace safe).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._offset = 0
        self._file_id = None
        self._seen: set = set()

    def poll(self) -> list[dict]:
        """Records appended since the last poll (empty if none/missing)."""
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            return []
        file_id = (stat.st_dev, stat.st_ino)
        if self._file_id is not None and (
            file_id != self._file_id or stat.st_size < self._offset
        ):
            # finalize replaced the stream with its sorted rewrite (or the
            # file shrank some other way): rewind once, dedup below
            self._offset = 0
        self._file_id = file_id
        try:
            records, _warnings, self._offset = tail_jsonl(self.path, self._offset)
        except ValueError:
            current = os.stat(self.path)
            if (current.st_dev, current.st_ino) != file_id:
                # the file was replaced between stat and read, so the old
                # offset landed mid-record in the new file; rewind next poll
                self._file_id = None
                return []
            raise
        fresh = []
        for record in records:
            index = record.get("index")
            if index is not None:
                if index in self._seen:
                    continue
                self._seen.add(index)
            fresh.append(record)
        return fresh


def follow_report(
    results_path,
    total: int | None = None,
    mode: str = "exact",
    interval: float = 0.5,
    max_polls: int | None = None,
    on_update=None,
    sleep=time.sleep,
) -> dict:
    """Tail a (possibly not-yet-existing) results file to completion.

    Polls every ``interval`` seconds, folding fresh records into a
    streaming aggregator, until ``total`` records have been seen (pass
    the expanded matrix size from ``spec.json``) or ``max_polls`` polls
    have elapsed (``None`` = unbounded, for callers that stop via
    KeyboardInterrupt).  ``on_update(aggregator, fresh_records)`` fires
    after every poll that yielded new records.  Returns the final
    report dict -- byte-identical (exact mode) to a post-hoc
    :func:`~repro.campaign.aggregate.aggregate` over the same records.
    """
    aggregator = StreamingAggregator(mode)
    tail = ResultsTail(results_path)
    polls = 0
    try:
        while True:
            fresh = tail.poll()
            if fresh:
                for record in fresh:
                    aggregator.add(record)
                if on_update is not None:
                    on_update(aggregator, fresh)
            if total is not None and aggregator.runs_seen >= total:
                break
            polls += 1
            if max_polls is not None and polls >= max_polls:
                break
            sleep(interval)
    except KeyboardInterrupt:
        # an unbounded follow ends with Ctrl-C: report what we saw
        pass
    return aggregator.report()
