"""RFC 2461-style one-hop duplicate address detection.

A joiner broadcasts a Neighbor Solicitation for its tentative address;
any *direct neighbour* already holding the address answers with a
Neighbor Advertisement, forcing a retry.  No crypto, no multi-hop reach
-- this component exists to demonstrate the gap the paper's extended
DAD closes.
"""

from __future__ import annotations

from typing import Callable

from repro.core.node import Node
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import generate_cga
from repro.messages.ndp import NeighborAdvertisement, NeighborSolicitation
from repro.phy.medium import Frame
from repro.sim.process import Timer


class OneHopDAD:
    """Plain NS/NA duplicate address detection (single hop)."""

    def __init__(self, node: Node, timeout: float = 1.0, max_retries: int = 8):
        self.node = node
        self.timeout = timeout
        self.max_retries = max_retries
        self._rng = node.rng("ndp")
        self.state = "idle"
        self.tentative_ip: IPv6Address | None = None
        self._tentative_params = None
        self.round = 0
        self._timer = Timer(node.sim, self._timeout_fired)
        self.on_configured: list[Callable[[Node], None]] = []
        node.register_handler(NeighborSolicitation, self._on_ns)
        node.register_handler(NeighborAdvertisement, self._on_na)

    def start(self, domain_name: str = "") -> None:
        """Run one-hop DAD for a fresh CGA (name option carried but unchecked)."""
        self.state = "probing"
        self.round = 0
        self._domain_name = domain_name
        self._probe()

    def _probe(self) -> None:
        self.round += 1
        if self.round > self.max_retries:
            self.state = "failed"
            return
        self.tentative_ip, self._tentative_params = generate_cga(
            self.node.public_key, self._rng
        )
        self.node.broadcast(
            NeighborSolicitation(target=self.tentative_ip, domain_name=self._domain_name),
            claimed_src=self.tentative_ip,
        )
        self._timer.start(self.timeout)

    def _timeout_fired(self) -> None:
        if self.state != "probing":
            return
        self.state = "configured"
        self.node.adopt_identity(self.tentative_ip, self._tentative_params)
        self.node.domain_name = self._domain_name
        for cb in self.on_configured:
            cb(self.node)

    def _on_ns(self, frame: Frame, msg: NeighborSolicitation) -> None:
        # Defend our address -- but only if we *hear* the probe (one hop!).
        if self.node.configured and msg.target == self.node.ip:
            self.node.broadcast(
                NeighborAdvertisement(target=self.node.ip, domain_name=self.node.domain_name)
            )

    def _on_na(self, frame: Frame, msg: NeighborAdvertisement) -> None:
        if self.state == "probing" and msg.target == self.tentative_ip:
            # Unverifiable claim (no CGA/signature here): retry regardless.
            self._timer.cancel()
            self._probe()
