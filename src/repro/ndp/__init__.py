"""One-hop Neighbor Discovery DAD (RFC 2461) -- the baseline mechanism.

Kept for comparison: Section 2.2 of the paper explains why plain NS/NA
DAD is *insufficient* in a multi-hop MANET (identical addresses several
hops apart never hear each other's probes).  The
``test_fig2_secure_dad`` benchmark demonstrates this quantitatively:
one-hop DAD misses a 3-hop-away duplicate that the extended AREQ/AREP
procedure catches.
"""

from repro.ndp.neighbor_discovery import OneHopDAD

__all__ = ["OneHopDAD"]
