"""Simulated signatures: fast, unforgeable-inside-the-simulation.

For thousand-node parameter sweeps, real RSA dominates runtime without
changing any experimental outcome -- the protocol only needs signatures
that adversary *nodes* cannot forge.  :class:`SimSigBackend` provides
exactly that:

* A key pair is a random 16-byte secret; the public key is
  ``SHA-256(secret)`` truncated to 16 bytes.
* A signature is ``HMAC-like: SHA-256(secret || message)`` (16 bytes).
* Verification recomputes the tag **via a backend-private oracle** that
  maps public key -> secret.  The oracle is an implementation detail of
  the backend object; adversary code in :mod:`repro.adversary` only ever
  holds :class:`PublicKey` objects and message bytes, so within the rules
  of the simulation it cannot produce a valid tag for a key it does not
  own.  (A real deployment would use real signatures; ablation P3 shows
  the protocol logic is identical under both backends.)

The backend counts sign/verify calls and can charge a configurable
artificial CPU cost, letting performance experiments model asymmetric
crypto delay without paying it in host time.
"""

from __future__ import annotations

import hashlib

from repro.crypto.backend import CryptoBackend
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey

_TAG_SIZE = 16
_KEY_SIZE = 16
_SIG_TAG = b"repro/simsig/v1"


class SimSigBackend(CryptoBackend):
    """Hash-based simulated signatures.

    Parameters
    ----------
    sign_cost, verify_cost:
        Artificial per-operation costs in *simulated seconds*; protocol
        layers query :meth:`op_cost` when charging processing delay.
        Defaults approximate 512-bit RSA on early-2000s hardware
        (sign ~ 5 ms, verify ~ 0.4 ms), the era of the paper.
    """

    name = "simsig"

    def __init__(self, sign_cost: float = 5e-3, verify_cost: float = 4e-4):
        self.sign_cost = sign_cost
        self.verify_cost = verify_cost
        # public-key-bytes -> secret; the in-simulation trust anchor.
        self._oracle: dict[bytes, bytes] = {}
        self.signs = 0
        self.verifies = 0

    # -- key management -------------------------------------------------
    def generate_keypair(self, seed: bytes) -> KeyPair:
        secret = hashlib.sha256(_SIG_TAG + b"/keygen/" + seed).digest()[:_KEY_SIZE]
        pub_bytes = hashlib.sha256(_SIG_TAG + b"/pub/" + secret).digest()[:_KEY_SIZE]
        self._oracle[pub_bytes] = secret
        return KeyPair(
            PublicKey(self.name, pub_bytes),
            PrivateKey(self.name, secret),
        )

    def adopt_keypair(self, keypair: KeyPair) -> None:
        """Register a pooled/foreign pair's public->secret oracle entry."""
        super().adopt_keypair(keypair)
        self._oracle[self.encode_public_key(keypair.public)] = keypair.private.material

    def encode_public_key(self, key: PublicKey) -> bytes:
        material = key.material
        if not isinstance(material, bytes) or len(material) != _KEY_SIZE:
            raise ValueError("malformed simsig public key")
        return material

    def decode_public_key(self, data: bytes) -> PublicKey:
        if len(data) != _KEY_SIZE:
            raise ValueError(f"bad simsig public key length {len(data)}")
        return PublicKey(self.name, bytes(data))

    # -- signatures ------------------------------------------------------
    def _tag(self, secret: bytes, message: bytes) -> bytes:
        return hashlib.sha256(_SIG_TAG + b"/sig/" + secret + message).digest()[:_TAG_SIZE]

    def sign(self, private: PrivateKey, message: bytes) -> bytes:
        if private.backend != self.name:
            raise ValueError(f"key backend {private.backend!r} != {self.name!r}")
        self.signs += 1
        return self._tag(private.material, message)

    def verify(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        self.verifies += 1
        if public.backend != self.name or len(signature) != _TAG_SIZE:
            return False
        secret = self._oracle.get(self.encode_public_key(public))
        if secret is None:
            # Key never generated through this backend: nothing can verify.
            return False
        return self._tag(secret, message) == signature

    def verify_batch(
        self, items: list[tuple[PublicKey, bytes, bytes]]
    ) -> list[bool]:
        """One bulk tag pass over many triples.

        Verdict-identical to per-item :meth:`verify`; hoisting the
        attribute lookups, oracle fetches, and hashlib constructor out of
        the per-message call path is what the batch-verify fast path buys.
        """
        self.verifies += len(items)
        oracle_get = self._oracle.get
        sha256 = hashlib.sha256
        prefix = _SIG_TAG + b"/sig/"
        out = []
        for public, message, signature in items:
            if public.backend != self.name or len(signature) != _TAG_SIZE:
                out.append(False)
                continue
            secret = oracle_get(self.encode_public_key(public))
            if secret is None:
                out.append(False)
                continue
            out.append(sha256(prefix + secret + message).digest()[:_TAG_SIZE] == signature)
        return out

    # -- bookkeeping -----------------------------------------------------
    def signature_size(self) -> int:
        return _TAG_SIZE

    def public_key_size(self) -> int:
        return _KEY_SIZE

    def op_cost(self, op: str) -> float:
        """Simulated-time cost of ``'sign'`` or ``'verify'``."""
        if op == "sign":
            return self.sign_cost
        if op == "verify":
            return self.verify_cost
        raise ValueError(f"unknown crypto op {op!r}")

    def reset_counters(self) -> None:
        self.signs = 0
        self.verifies = 0

    def reset(self) -> None:
        """Drop all per-run state: oracle entries *and* counters.

        The oracle on a long-lived instance (the :func:`get_backend`
        singleton in a reused campaign worker) otherwise grows by one
        entry per node per run, forever.
        """
        self._oracle.clear()
        self.reset_counters()
