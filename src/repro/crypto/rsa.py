"""From-scratch textbook RSA: Miller-Rabin keygen, CRT signing.

This is a real (if small-key) RSA implementation built on Python integer
arithmetic -- no external crypto library.  Signing is hash-then-pad-then
``m^d mod n`` with CRT acceleration; verification is ``s^e mod n`` and a
digest comparison.  The padding is a fixed-prefix scheme (a simplified
PKCS#1 v1.5 layout): adequate here because the adversary model lives
*inside* the simulation and only interacts through sign/verify.

Default modulus is 512 bits, a deliberate trade-off: the algebra and the
cost asymmetry between sign and verify are authentic, while keygen for a
few hundred simulated nodes stays in the low seconds.  Pass ``bits=1024``
or more for slower, larger-key runs.

Keygen is fully deterministic from the caller's seed (Miller-Rabin bases
are derived from the candidate, prime search is sequential), so seeded
simulations always hand node *k* the same key pair.
"""

from __future__ import annotations

import hashlib

from repro.crypto.backend import CryptoBackend
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey

# Deterministic Miller-Rabin: for n < 3.3 * 10^24 the first 13 primes are a
# proven-complete base set; above that we add bases derived from the
# candidate itself, giving error probability < 4^-40 per extra base.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
]
_MR_BASES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
_EXTRA_MR_ROUNDS = 16

_PAD_PREFIX = b"\x00\x01"
_PAD_SEPARATOR = b"\x00"
_DIGEST_TAG = b"repro/rsa-digest/v1"


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int) -> bool:
    """Deterministic-in-practice Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_BASES:
        if _miller_rabin_witness(n, a % n, d, r):
            return False
    # Extra bases derived from n itself keep the test deterministic while
    # covering moduli beyond the proven range of the fixed base set.
    seed = hashlib.sha256(n.to_bytes((n.bit_length() + 7) // 8, "big")).digest()
    for i in range(_EXTRA_MR_ROUNDS):
        a = int.from_bytes(hashlib.sha256(seed + bytes([i])).digest(), "big") % (n - 3) + 2
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def _candidate_from_seed(seed: bytes, label: bytes, bits: int) -> int:
    """Expand ``seed`` into an odd ``bits``-bit candidate with both top bits set.

    Setting the two top bits guarantees p*q reaches the full modulus size.
    """
    out = b""
    counter = 0
    while len(out) * 8 < bits:
        out += hashlib.sha256(seed + label + counter.to_bytes(4, "big")).digest()
        counter += 1
    x = int.from_bytes(out, "big") >> (len(out) * 8 - bits)
    x |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
    return x


def generate_prime(seed: bytes, label: bytes, bits: int) -> int:
    """Find the first probable prime at/above a seed-derived candidate."""
    n = _candidate_from_seed(seed, label, bits)
    while True:
        if is_probable_prime(n):
            return n
        n += 2


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    if a == 0:
        return b, 0, 1
    g, x, y = _egcd(b % a, a)
    return g, y - (b // a) * x, x


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if gcd(a, m) != 1."""
    g, x, _ = _egcd(a % m, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


class RSAPrivateMaterial:
    """CRT-form private key: (n, d, p, q, dp, dq, qinv)."""

    __slots__ = ("n", "d", "p", "q", "dp", "dq", "qinv")

    def __init__(self, n: int, d: int, p: int, q: int):
        self.n = n
        self.d = d
        self.p = p
        self.q = q
        self.dp = d % (p - 1)
        self.dq = d % (q - 1)
        self.qinv = modinv(q, p)

    def power(self, m: int) -> int:
        """``m^d mod n`` via the Chinese Remainder Theorem (~4x speedup)."""
        mp = pow(m % self.p, self.dp, self.p)
        mq = pow(m % self.q, self.dq, self.q)
        h = (self.qinv * (mp - mq)) % self.p
        return mq + h * self.q


class RSABackend(CryptoBackend):
    """Textbook RSA signatures with deterministic keygen.

    Parameters
    ----------
    bits:
        Modulus size.  512 by default (see module docstring for rationale).
    public_exponent:
        Standard F4 = 65537.
    """

    def __init__(self, bits: int = 512, public_exponent: int = 65537):
        if bits < 128 or bits % 2:
            raise ValueError("bits must be an even integer >= 128")
        self.bits = bits
        self.e = public_exponent
        self.name = "rsa" if bits == 512 else f"rsa{bits}"
        self._key_bytes = bits // 8
        # Execution-only op counters (crypto_stats / scorecards); RSA
        # charges no simulated op_cost, so these never touch sim state.
        self.signs = 0
        self.verifies = 0

    # -- key management -------------------------------------------------
    def generate_keypair(self, seed: bytes) -> KeyPair:
        half = self.bits // 2
        attempt = 0
        while True:
            tag = attempt.to_bytes(4, "big")
            p = generate_prime(seed, b"p" + tag, half)
            q = generate_prime(seed, b"q" + tag, half)
            if p == q:
                attempt += 1
                continue
            phi = (p - 1) * (q - 1)
            try:
                d = modinv(self.e, phi)
            except ValueError:
                attempt += 1
                continue
            n = p * q
            if n.bit_length() != self.bits:
                attempt += 1
                continue
            public = PublicKey(self.name, (n, self.e))
            private = PrivateKey(self.name, RSAPrivateMaterial(n, d, p, q))
            return KeyPair(public, private)

    def encode_public_key(self, key: PublicKey) -> bytes:
        n, e = key.material
        return n.to_bytes(self._key_bytes, "big") + e.to_bytes(4, "big")

    def decode_public_key(self, data: bytes) -> PublicKey:
        if len(data) != self._key_bytes + 4:
            raise ValueError(
                f"bad RSA public key length {len(data)}, "
                f"expected {self._key_bytes + 4}"
            )
        n = int.from_bytes(data[: self._key_bytes], "big")
        e = int.from_bytes(data[self._key_bytes:], "big")
        return PublicKey(self.name, (n, e))

    # -- signatures ------------------------------------------------------
    def _pad(self, digest: bytes) -> int:
        """Fixed-prefix padding: 0x00 0x01 FF..FF 0x00 || digest."""
        pad_len = self._key_bytes - len(_PAD_PREFIX) - len(_PAD_SEPARATOR) - len(digest)
        if pad_len < 8:
            raise ValueError("modulus too small for digest padding")
        em = _PAD_PREFIX + b"\xff" * pad_len + _PAD_SEPARATOR + digest
        return int.from_bytes(em, "big")

    def _digest(self, message: bytes) -> bytes:
        return hashlib.sha256(_DIGEST_TAG + message).digest()

    def sign(self, private: PrivateKey, message: bytes) -> bytes:
        if private.backend != self.name:
            raise ValueError(f"key backend {private.backend!r} != {self.name!r}")
        self.signs += 1
        m = self._pad(self._digest(message))
        s = private.material.power(m)
        return s.to_bytes(self._key_bytes, "big")

    def verify(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        self.verifies += 1
        if public.backend != self.name or len(signature) != self._key_bytes:
            return False
        n, e = public.material
        s = int.from_bytes(signature, "big")
        if s >= n:
            return False
        m = pow(s, e, n)
        try:
            expected = self._pad(self._digest(message))
        except ValueError:
            return False
        return m == expected

    # -- bookkeeping -----------------------------------------------------
    def reset(self) -> None:
        self.signs = 0
        self.verifies = 0

    def signature_size(self) -> int:
        return self._key_bytes

    def public_key_size(self) -> int:
        return self._key_bytes + 4
