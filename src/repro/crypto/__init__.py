"""Cryptographic substrate.

The paper assumes each host owns a public/private key pair ``(PK, SK)``
and writes ``[msg]_{X_SK}`` for "the ciphertext of *msg* encrypted by
X's private key", verified by "decrypting" with ``X_PK`` and comparing
with the plaintext.  That construction is a *signature with message
recovery*; we model it as an ordinary hash-then-sign signature, which
preserves exactly the authenticity/challenge-response semantics the
protocol relies on.

Two interchangeable backends implement :class:`CryptoBackend`:

* :class:`~repro.crypto.rsa.RSABackend` -- textbook RSA built from
  scratch (Miller-Rabin keygen, CRT private exponentiation).  Used in
  security-focused tests; small keys keep laptop runs fast while the
  algebra is the real thing.
* :class:`~repro.crypto.simsig.SimSigBackend` -- hash-based simulated
  signatures with a configurable artificial cost, for large parameter
  sweeps where thousands of nodes sign per second.  Unforgeable only
  against adversaries *inside the simulation* (they cannot see secrets
  through the API), which is the property the experiments need.

``H(PK, rn)`` from the paper (the CGA hash) lives in
:mod:`repro.crypto.hashes`.
"""

from repro.crypto.backend import (
    CryptoBackend,
    SignatureInvalid,
    create_backend,
    get_backend,
    register_backend,
)
from repro.crypto.keys import (
    DEFAULT_KEYPAIR_POOL,
    KeyPair,
    KeypairPool,
    PublicKey,
    PrivateKey,
)
from repro.crypto.hashes import cga_hash, sha256_int, H
from repro.crypto.rsa import RSABackend
from repro.crypto.simsig import SimSigBackend
from repro.crypto.verify_cache import SharedVerifyCache

__all__ = [
    "CryptoBackend",
    "SignatureInvalid",
    "create_backend",
    "get_backend",
    "register_backend",
    "DEFAULT_KEYPAIR_POOL",
    "KeyPair",
    "KeypairPool",
    "PublicKey",
    "PrivateKey",
    "cga_hash",
    "sha256_int",
    "H",
    "RSABackend",
    "SimSigBackend",
    "SharedVerifyCache",
]
