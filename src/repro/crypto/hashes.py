"""Hash functions, including the paper's ``H(PK, rn)`` CGA hash.

The paper assumes "a publicly known one-way, collision-resistant hashing
function H" and forms the low 64 bits of every site-local address as
``H(PK, rn)`` (Figure 1).  We instantiate H as SHA-256 over a canonical
encoding of the public key and the random modifier, truncated to 64 bits
-- the same construction as RFC 3972 CGAs minus the sec/subnet fields,
which the paper also drops.
"""

from __future__ import annotations

import hashlib

CGA_HASH_BITS = 64
CGA_HASH_MASK = (1 << CGA_HASH_BITS) - 1

# Domain-separation tags keep the CGA hash, signature digests and seed
# derivation from ever colliding even on identical payloads.
_CGA_TAG = b"repro/cga/v1"
_GENERIC_TAG = b"repro/hash/v1"


def sha256_int(data: bytes, bits: int = 256) -> int:
    """SHA-256 of ``data`` truncated to the top ``bits`` bits, as an int."""
    if not 0 < bits <= 256:
        raise ValueError("bits must be in (0, 256]")
    digest = hashlib.sha256(data).digest()
    return int.from_bytes(digest, "big") >> (256 - bits)


def H(*parts: bytes) -> bytes:
    """The paper's generic hash H over a tuple of byte strings.

    Parts are length-prefixed before hashing so that ``H(a, b)`` and
    ``H(a + b)`` are distinct (no ambiguity attacks on concatenation).
    """
    h = hashlib.sha256(_GENERIC_TAG)
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()


def cga_hash(public_key_bytes: bytes, rn: int) -> int:
    """``H(PK, rn)`` -- the 64-bit CGA interface identifier of Figure 1.

    Parameters
    ----------
    public_key_bytes:
        Canonical encoding of the host's public key (backend-defined).
    rn:
        The random modifier the host picked; 64-bit unsigned.

    Returns
    -------
    int
        The 64-bit hash value that becomes the low half of the host's
        site-local IPv6 address.
    """
    if not 0 <= rn < (1 << 64):
        raise ValueError("rn must be a 64-bit unsigned integer")
    h = hashlib.sha256(_CGA_TAG)
    h.update(len(public_key_bytes).to_bytes(4, "big"))
    h.update(public_key_bytes)
    h.update(rn.to_bytes(8, "big"))
    return int.from_bytes(h.digest()[:8], "big")
