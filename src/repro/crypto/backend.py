"""The :class:`CryptoBackend` interface and backend registry.

The protocol layer is backend-agnostic: it calls ``sign``/``verify`` and
``encode_public_key`` and never looks inside key material.  Experiments
pick the backend per scenario -- real RSA for security-focused runs,
simulated signatures for thousand-node sweeps -- without touching
protocol code (ablation P3 in DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey


class SignatureInvalid(Exception):
    """Raised by :meth:`CryptoBackend.verify_strict` on a bad signature."""


class CryptoBackend(ABC):
    """Abstract signature backend.

    Implementations must be deterministic given their seed material so
    that simulation runs reproduce exactly.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    # -- key management -------------------------------------------------
    @abstractmethod
    def generate_keypair(self, seed: bytes) -> KeyPair:
        """Deterministically derive a key pair from ``seed``.

        Determinism matters: node k in a seeded simulation always gets
        the same keys, making failures reproducible.
        """

    @abstractmethod
    def encode_public_key(self, key: PublicKey) -> bytes:
        """Canonical byte encoding of a public key (feeds CGA hash + codec)."""

    @abstractmethod
    def decode_public_key(self, data: bytes) -> PublicKey:
        """Inverse of :meth:`encode_public_key`."""

    # -- signatures ------------------------------------------------------
    @abstractmethod
    def sign(self, private: PrivateKey, message: bytes) -> bytes:
        """Produce ``[message]_SK`` -- the paper's private-key encryption."""

    @abstractmethod
    def verify(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        """Check a signature; returns True/False, never raises."""

    # -- bookkeeping -----------------------------------------------------
    @abstractmethod
    def signature_size(self) -> int:
        """Size in bytes of an encoded signature (for overhead accounting)."""

    @abstractmethod
    def public_key_size(self) -> int:
        """Size in bytes of an encoded public key."""

    def op_cost(self, op: str) -> float:
        """Simulated-time cost of a crypto op ('sign' / 'verify').

        Zero by default: backends whose real CPU cost is paid in host
        time (RSA) do not additionally charge simulated time unless a
        scenario overrides this.  :class:`~repro.crypto.simsig.SimSigBackend`
        overrides it to model the asymmetric-crypto delay it avoids paying.
        """
        if op not in ("sign", "verify"):
            raise ValueError(f"unknown crypto op {op!r}")
        return 0.0

    # -- conveniences ------------------------------------------------------
    def verify_strict(self, public: PublicKey, message: bytes, signature: bytes) -> None:
        """Like :meth:`verify` but raises :class:`SignatureInvalid` on failure."""
        if not self.verify(public, message, signature):
            raise SignatureInvalid(
                f"signature check failed under backend {self.name!r}"
            )


_REGISTRY: dict[str, CryptoBackend] = {}


def register_backend(backend: CryptoBackend) -> None:
    """Register (or replace) a backend instance under ``backend.name``."""
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> CryptoBackend:
    """Look up a registered backend; lazily creates the built-in ones."""
    if name not in _REGISTRY:
        # Lazy import avoids a circular dependency at package import time.
        if name == "rsa":
            from repro.crypto.rsa import RSABackend

            register_backend(RSABackend())
        elif name == "simsig":
            from repro.crypto.simsig import SimSigBackend

            register_backend(SimSigBackend())
        else:
            raise KeyError(f"unknown crypto backend {name!r}")
    return _REGISTRY[name]


def available_backends() -> list[str]:
    """Names of the built-in backends (registered or not)."""
    return sorted(set(_REGISTRY) | {"rsa", "simsig"})
