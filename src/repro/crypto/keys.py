"""Key-pair containers shared by all crypto backends.

A :class:`PublicKey` is the object that travels inside protocol messages
(``X_PK`` in Table 2); its :meth:`PublicKey.encode` form feeds both the
codec and the CGA hash.  :class:`PrivateKey` never leaves the owning node
-- the message codec refuses to serialise it, which is how the simulation
enforces "an adversary cannot learn SK".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class PublicKey:
    """A backend-tagged public key.

    ``material`` is backend-specific (e.g. ``(n, e)`` for RSA, a 16-byte
    identifier for simulated signatures).  Equality and hashing go through
    the canonical encoding so keys can be used as dict keys.
    """

    backend: str
    material: Any

    def encode(self) -> bytes:
        """Canonical byte encoding, stable across runs; feeds H(PK, rn)."""
        from repro.crypto.backend import get_backend

        return get_backend(self.backend).encode_public_key(self)

    def __hash__(self) -> int:
        return hash((self.backend, self.encode()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PublicKey):
            return NotImplemented
        return self.backend == other.backend and self.encode() == other.encode()

    def __repr__(self) -> str:
        return f"PublicKey({self.backend}, {self.encode().hex()[:16]}...)"


@dataclass(frozen=True)
class PrivateKey:
    """A backend-tagged private key.  Never serialised, never transmitted."""

    backend: str
    material: Any = field(repr=False)

    def __repr__(self) -> str:
        return f"PrivateKey({self.backend}, <secret>)"


@dataclass(frozen=True)
class KeyPair:
    """A host's ``(PK, SK)`` pair."""

    public: PublicKey
    private: PrivateKey

    @property
    def backend(self) -> str:
        return self.public.backend

    def __repr__(self) -> str:
        return f"KeyPair({self.public!r})"


class KeypairPool:
    """Process-wide ``(backend, seed)`` -> :class:`KeyPair` memo.

    Key generation is deterministic (the :class:`CryptoBackend`
    contract), so a pair derived once can be reused by every later run
    that asks for the same ``(backend_name, seed)`` -- which is exactly
    what a batched campaign worker does: re-running the same spec at
    different parameters re-derives the same node keys, and RSA keygen
    (~14 ms/key) dwarfs everything else at N=1000.  The pool returns
    **the pair the backend would have regenerated**, byte for byte, which
    is what makes reuse observationally transparent.

    On a hit the pair is re-adopted into the *requesting* backend
    instance (:meth:`CryptoBackend.adopt_keypair`): per-scenario backends
    each need their own simsig oracle entry even though the pair itself
    is shared.  Bounded LRU so a long-lived worker sweeping many seeds
    cannot grow without bound.
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError("KeypairPool capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple[str, bytes], KeyPair] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, backend: Any, seed: bytes) -> KeyPair:
        """The pair for ``(backend.name, seed)``, deriving it on first use.

        ``backend`` is a :class:`~repro.crypto.backend.CryptoBackend`
        (duck-typed here to keep this module import-light).
        """
        key = (backend.name, seed)
        pair = self._entries.get(key)
        if pair is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            backend.adopt_keypair(pair)
            return pair
        self.misses += 1
        pair = backend.generate_keypair(seed)
        self._entries[key] = pair
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return pair

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """JSON-clean execution counters (for crypto_stats / telemetry)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"KeypairPool(size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: The campaign-level pool: one per process, shared by every scenario a
#: reused worker executes (gated per scenario by
#: ``NodeConfig.crypto_keypair_pool``).
DEFAULT_KEYPAIR_POOL = KeypairPool()
