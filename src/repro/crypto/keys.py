"""Key-pair containers shared by all crypto backends.

A :class:`PublicKey` is the object that travels inside protocol messages
(``X_PK`` in Table 2); its :meth:`PublicKey.encode` form feeds both the
codec and the CGA hash.  :class:`PrivateKey` never leaves the owning node
-- the message codec refuses to serialise it, which is how the simulation
enforces "an adversary cannot learn SK".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class PublicKey:
    """A backend-tagged public key.

    ``material`` is backend-specific (e.g. ``(n, e)`` for RSA, a 16-byte
    identifier for simulated signatures).  Equality and hashing go through
    the canonical encoding so keys can be used as dict keys.
    """

    backend: str
    material: Any

    def encode(self) -> bytes:
        """Canonical byte encoding, stable across runs; feeds H(PK, rn)."""
        from repro.crypto.backend import get_backend

        return get_backend(self.backend).encode_public_key(self)

    def __hash__(self) -> int:
        return hash((self.backend, self.encode()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PublicKey):
            return NotImplemented
        return self.backend == other.backend and self.encode() == other.encode()

    def __repr__(self) -> str:
        return f"PublicKey({self.backend}, {self.encode().hex()[:16]}...)"


@dataclass(frozen=True)
class PrivateKey:
    """A backend-tagged private key.  Never serialised, never transmitted."""

    backend: str
    material: Any = field(repr=False)

    def __repr__(self) -> str:
        return f"PrivateKey({self.backend}, <secret>)"


@dataclass(frozen=True)
class KeyPair:
    """A host's ``(PK, SK)`` pair."""

    public: PublicKey
    private: PrivateKey

    @property
    def backend(self) -> str:
        return self.public.backend

    def __repr__(self) -> str:
        return f"KeyPair({self.public!r})"
