"""Scenario-wide shared cache of signature-verification verdicts.

PR 2 gave every node a private LRU memo of ``(public_key, payload,
signature)`` -> verdict, which collapses the *same node* re-checking the
same flooded copy.  A flooded, signed control message is however
verified at *many* nodes -- every relay under ``verify_at_intermediate``,
every destination copy -- and each node used to pay the backend
computation once even though the verdict is a pure function of the
triple.  :class:`SharedVerifyCache` is the per-scenario promotion of
that memo: one instance hangs off :class:`~repro.core.context.NetContext`
and a signature verified once at *any* node is a hit everywhere.

Byte-identity contract (the ``medium_vectorized`` discipline): a shared
hit replays the **exact observable sequence of a real verify** -- the
per-node LRU is consulted first and left untouched in semantics, the
``verify`` metric op is counted, the backend's simulated ``op_cost`` is
charged as crypto debt -- and only the backend's *host-time* computation
is skipped.  Hit/miss/eviction counters therefore live on this object
(surfaced via ``Scenario.enable_crypto_stats`` and the telemetry
sidecar), never in ``MetricsCollector.summary()``: a summary field that
moved with the flag would break the A/B byte-compare.

Key design: ``(backend_name, public_key, payload, signature)``.  The
:class:`~repro.crypto.keys.PublicKey` hashes through its canonical byte
encoding, so the key is effectively ``(backend, pubkey_bytes, message
bytes, signature bytes)``; hashing the raw bytes costs a siphash pass,
which is far cheaper than hashing them *again* through SHA-256 to build
a digest key would be (simsig's whole verify is one SHA-256 -- a digest
key would cost as much as the work it saves).  Negative verdicts are
cached too, and safely: a verdict is a deterministic pure function of
the exact triple, so a cached ``False`` can only ever answer the same
forged triple again -- it can never mask a *different* signature, which
hashes to a different key (regression-tested against the adversary
scenarios in ``tests/test_crypto_equivalence.py``).
"""

from __future__ import annotations

from collections import OrderedDict


class SharedVerifyCache:
    """Bounded LRU of verification verdicts, shared by a scenario's nodes.

    Execution-only observability: :attr:`hits`, :attr:`misses`,
    :attr:`evictions` and the per-node :attr:`hits_by_node` breakdown
    measure host work saved and never feed simulation-visible state.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("SharedVerifyCache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: node name -> shared hits observed there (the per-node
        #: ``verify_shared_hit`` counter; execution-only by design).
        self.hits_by_node: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, node_name: str = "") -> bool | None:
        """The cached verdict for ``key``, or ``None`` on a miss.

        Counts the hit/miss and refreshes LRU recency; ``node_name``
        attributes the hit in :attr:`hits_by_node`.
        """
        verdict = self._entries.get(key)
        if verdict is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if node_name:
            self.hits_by_node[node_name] = self.hits_by_node.get(node_name, 0) + 1
        return verdict

    def peek(self, key: tuple) -> bool | None:
        """Non-mutating :meth:`lookup`: no counters, no recency update.

        Used by the batch-verify pre-pass to decide which triples need a
        real computation without perturbing the hit statistics that the
        sequential replay will record.
        """
        return self._entries.get(key)

    def store(self, key: tuple, verdict: bool) -> None:
        """Memoize ``verdict`` (True *and* False; see module docstring)."""
        self._entries[key] = verdict
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.hits_by_node.clear()

    def stats(self) -> dict:
        """JSON-clean execution counters (for crypto_stats / telemetry)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "nodes_hitting": len(self.hits_by_node),
        }

    def __repr__(self) -> str:
        return (
            f"SharedVerifyCache(size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
