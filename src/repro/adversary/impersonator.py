"""Impersonation attacks (Section 4, "Impersonation of DNS" + CGA claims).

Two distinct impersonations:

* :class:`DNSImpersonatorRouter` -- an on-path relay that inspects the
  DNS queries it forwards and races the real server with forged
  responses (optionally dropping the real query so only the forgery
  arrives).  The defence is the pre-distributed DNS public key: the
  client verifies every response signature against it, so the forgery
  is rejected no matter how fast it arrives.

* :func:`attempt_address_takeover` -- a host that simply *adopts*
  another host's IP address without running DAD and without owning the
  matching key pair.  It can source frames with that address (the link
  layer doesn't stop it), but the moment it must *prove* the identity
  -- answering a discovery as the destination, defending in DAD,
  reporting a RERR -- the CGA check ``low64(IP) == H(PK, rn)`` fails,
  because finding (PK', rn') hashing to the victim's interface
  identifier is a second-preimage search.
"""

from __future__ import annotations

from repro.core.node import Node
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import CGAParams
from repro.messages import signing
from repro.messages.base import CodecError
from repro.messages.codec import decode_message
from repro.messages.data import DataPacket
from repro.messages.dns import DNSQuery, DNSResponse
from repro.routing.secure_dsr import SecureDSRRouter


class DNSImpersonatorRouter(SecureDSRRouter):
    """On-path relay that forges DNS responses for queries it carries."""

    def __init__(
        self,
        node,
        fake_answer: IPv6Address,
        drop_real_query: bool = True,
    ):
        super().__init__(node)
        #: The address the forged responses point victims at.
        self.fake_answer = fake_answer
        self.drop_real_query = drop_real_query
        self.responses_forged = 0

    def _forward_data(self, msg: DataPacket) -> None:
        query = self._extract_query(msg)
        if query is not None:
            self._forge_response(query, msg)
            if self.drop_real_query:
                self.node.note(f"impersonator dropped DNS query {query.domain_name!r}")
                return
        super()._forward_data(msg)

    @staticmethod
    def _extract_query(msg: DataPacket) -> DNSQuery | None:
        if not msg.payload:
            return None
        try:
            inner = decode_message(msg.payload)
        except CodecError:
            return None
        return inner if isinstance(inner, DNSQuery) else None

    def _forge_response(self, query: DNSQuery, packet: DataPacket) -> None:
        """Answer with our own signature over the attacker-chosen binding."""
        self.responses_forged += 1
        forged = DNSResponse(
            domain_name=query.domain_name,
            ip=self.fake_answer,
            found=True,
            ch=query.ch,  # we can echo the challenge -- it travels in clear
            signature=self.node.sign(
                signing.dns_response_payload(query.domain_name, self.fake_answer, query.ch)
            ),
        )
        my_pos = packet.segment_index + 2
        path = packet.full_path()
        reverse_route = tuple(reversed(path[1:my_pos]))
        reply = DataPacket(
            sip=self.node.ip,
            dip=packet.sip,
            seq=self.node.next_seq(),
            route=reverse_route,
            payload=forged.wire_bytes(),
            sent_at=self.node.sim.now,
            hop_limit=self.cfg.hop_limit,
        )
        # Impersonate the server at the network layer too: the payload
        # signature is what actually matters to the victim.
        self._transmit(reply, None, None, retries=0)


def attempt_address_takeover(node: Node, victim_ip: IPv6Address) -> None:
    """Make ``node`` claim ``victim_ip`` as its own address, skipping DAD.

    The node keeps its real key pair, so every identity proof it later
    attempts for this address fails the CGA check.  Pair with a normal
    router to measure how far an address thief gets (answer: it can
    receive frames sent to the address by confused neighbours, but no
    secure exchange completes).
    """
    node.abandon_identity()
    node.ip = victim_ip
    # rn=0 with our key will NOT hash to the victim's interface id --
    # that is the point.  We store it so signing code paths still run.
    node.cga_params = CGAParams(node.public_key, 0)
    node.note(f"adopted stolen address {victim_ip} (no matching key)")
