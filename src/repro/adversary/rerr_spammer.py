"""The RERR spammer (Section 4, "Replayed or Forged RERR").

An on-path relay that reports its forward link broken on every packet
it carries -- while actually forwarding or dropping, configurably.  Its
reports are *legitimate* in form: it is on the route, it signs with its
real identity, and the paper concedes "the source has to accept this
report...".  The defence is frequency tracking: "if the malicious host
keeps on conducting such attacks, its identity will be tracked by the
initiator" -- after ``rerr_suspicion_threshold`` reports in the window,
the source penalises the reporter's credit and routes around it.

An *off-path* forgery variant is provided too
(:meth:`RERRSpamRouter.forge_offpath_rerr`): a RERR for a route the
spammer is not on, which the source's on-route check rejects outright.
"""

from __future__ import annotations

from repro.ipv6.address import IPv6Address
from repro.messages import signing
from repro.messages.data import DataPacket
from repro.messages.routing import RERR
from repro.routing.secure_dsr import SecureDSRRouter


class RERRSpamRouter(SecureDSRRouter):
    """Relay that cries wolf about its next-hop link."""

    def __init__(self, node, also_drop: bool = False, spam_probability: float = 1.0):
        super().__init__(node)
        self.also_drop = also_drop
        self.spam_probability = spam_probability
        self._spam_rng = node.rng("rerr-spam")
        self.rerrs_spammed = 0

    def _forward_data(self, msg: DataPacket) -> None:
        spam = self._spam_rng.random() < self.spam_probability
        if spam:
            self._spam_rerr(msg)
        if spam and self.also_drop:
            self.node.note(f"rerr-spammer dropped data seq={msg.seq}")
            return
        super()._forward_data(msg)

    def _spam_rerr(self, msg: DataPacket) -> None:
        """A well-formed, truthfully-signed, but false report."""
        self.rerrs_spammed += 1
        fwd = msg.advance()
        path = fwd.full_path()
        my_pos = fwd.segment_index + 1
        if my_pos + 1 >= len(path):
            return
        next_hop = path[my_pos + 1]
        return_route = tuple(reversed(path[1:my_pos]))
        rerr = RERR(
            reporter_ip=self.node.ip,
            broken_next_hop=next_hop,
            signature=self.node.sign(
                signing.rerr_payload(self.node.ip, next_hop)
            ),
            public_key=self.node.public_key,
            rn=self._own_rn(),
            sip=msg.sip,
            return_route=return_route,
            hop_limit=self.cfg.hop_limit,
        )
        first = return_route[0] if return_route else msg.sip
        self.node.unicast_ip(first, rerr)

    def forge_offpath_rerr(
        self,
        victim_source: IPv6Address,
        fake_reporter_next: IPv6Address,
    ) -> None:
        """Report a broken link on a route we are NOT part of.

        Signed with our own real identity (we cannot do better), claiming
        our link to ``fake_reporter_next`` broke, aimed at a source whose
        routes never contained us.  The source's "is the reporter on one
        of my routes?" check rejects it.
        """
        self.rerrs_spammed += 1
        rerr = RERR(
            reporter_ip=self.node.ip,
            broken_next_hop=fake_reporter_next,
            signature=self.node.sign(
                signing.rerr_payload(self.node.ip, fake_reporter_next)
            ),
            public_key=self.node.public_key,
            rn=self._own_rn(),
            sip=victim_source,
            return_route=(),
            hop_limit=self.cfg.hop_limit,
        )
        self.node.broadcast(rerr)
