"""Replay attacks (Section 4).

The replayer records every AREP, DREP, RREP and CREP it overhears and
fires the recordings back when a fresh AREQ/RREQ with matching
addresses appears.  The paper's defence is challenge/sequence binding:
the stored signature covers the *old* challenge or sequence number, so
the victim's verification finds a mismatch every time.  The experiment
asserts the acceptance count is exactly zero.
"""

from __future__ import annotations

from repro.core.node import Node
from repro.messages.bootstrap import AREP, AREQ, DREP
from repro.messages.routing import CREP, RERR, RREP, RREQ
from repro.phy.medium import Frame


class ReplayAgent:
    """Record-and-replay component; attach alongside any router.

    The host it rides on otherwise behaves normally -- replaying is a
    passive-then-active attack needing no routing misbehaviour.
    """

    def __init__(self, node: Node):
        self.node = node
        # "Adversary nodes may ... listen to others": monitor mode lets the
        # replayer record unicast replies it is not a party to.
        node.ctx.medium.set_promiscuous(node.link_id, True)
        self.recorded_areps: list[AREP] = []
        self.recorded_dreps: list[DREP] = []
        self.recorded_rreps: list[RREP] = []
        self.recorded_creps: list[CREP] = []
        self.recorded_rerrs: list[RERR] = []
        self.replays_fired = 0

        node.register_handler(AREP, self._record_arep)
        node.register_handler(DREP, self._record_drep)
        node.register_handler(RREP, self._record_rrep)
        node.register_handler(CREP, self._record_crep)
        node.register_handler(RERR, self._record_rerr)
        node.register_handler(AREQ, self._maybe_replay_bootstrap)
        node.register_handler(RREQ, self._maybe_replay_routing)

    # -- recording ------------------------------------------------------------
    def _record_arep(self, frame: Frame, msg: AREP) -> None:
        self.recorded_areps.append(msg)

    def _record_drep(self, frame: Frame, msg: DREP) -> None:
        self.recorded_dreps.append(msg)

    def _record_rrep(self, frame: Frame, msg: RREP) -> None:
        self.recorded_rreps.append(msg)

    def _record_crep(self, frame: Frame, msg: CREP) -> None:
        self.recorded_creps.append(msg)

    def _record_rerr(self, frame: Frame, msg: RERR) -> None:
        self.recorded_rerrs.append(msg)

    # -- replaying ---------------------------------------------------------------
    def _maybe_replay_bootstrap(self, frame: Frame, msg: AREQ) -> None:
        """A new joiner probes: replay any stored reply about that address.

        A stale AREP carries a signature over an *old* challenge; if it
        were accepted the joiner would needlessly give up its address (a
        denial-of-service on bootstrap).
        """
        for old in self.recorded_areps:
            if old.sip == msg.sip and not old.to_dns:
                self.replays_fired += 1
                self.node.broadcast(old.replace(route_record=()))
        for old in self.recorded_dreps:
            if old.domain_name == msg.domain_name and msg.domain_name:
                self.replays_fired += 1
                self.node.broadcast(old.replace(route_record=()))

    def _maybe_replay_routing(self, frame: Frame, msg: RREQ) -> None:
        """A new discovery starts: replay stored replies for that destination.

        The stored RREP's signature covers the old sequence number; the
        source's stale-seq / signature check rejects it.
        """
        for old in self.recorded_rreps:
            if old.dip == msg.dip and old.sip == msg.sip:
                self.replays_fired += 1
                # Deliver straight to the victim if adjacent, else flood.
                self.node.broadcast(old)
        for old in self.recorded_rerrs:
            if old.sip == msg.sip:
                self.replays_fired += 1
                self.node.broadcast(old.replace(return_route=()))

    def replay_everything(self) -> int:
        """Fire every recording at once (stress variant used in tests)."""
        count = 0
        for msg in (
            self.recorded_areps + self.recorded_dreps
            + self.recorded_rreps + self.recorded_creps + self.recorded_rerrs
        ):
            self.node.broadcast(msg)
            count += 1
        self.replays_fired += count
        return count
