"""The black hole attacker (Section 4).

"A malicious node may announce having good routes leading to all other
hosts and thus attract all hosts choosing it as a relay node.  When data
packets arrive, the host may simply ignore them."

Two attraction strategies, matching what each protocol level permits:

* Against *plain DSR* it forges RREPs for every RREQ it hears
  (``forge_rreps=True``), claiming a 1-hop route to any destination --
  the classic attack, and it works because nothing is verified.
* Against the *secure* protocol it cannot forge a verifiable RREP, so it
  participates honestly in discovery (its SRR entry is genuine -- it
  *is* who it says it is) and simply drops the data afterwards.  The
  paper's point is exactly that the attack then degenerates: the
  identity on the route is real, probing pins the drop on it, and
  credit management routes around it.

It ACKs packets addressed to *itself* (including probes): a black hole
that went silent as a destination would be trivially identifiable.
"""

from __future__ import annotations

from repro.messages import signing
from repro.messages.data import DataPacket
from repro.messages.routing import RREP, RREQ
from repro.phy.medium import Frame
from repro.routing.secure_dsr import SecureDSRRouter


class BlackholeRouter(SecureDSRRouter):
    """Drops forwarded data; optionally forges RREPs to attract flows."""

    def __init__(self, node, forge_rreps: bool = False, drop_probability: float = 1.0):
        super().__init__(node)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.forge_rreps = forge_rreps
        self.drop_probability = drop_probability
        self._drop_rng = node.rng("blackhole")
        self.packets_dropped = 0
        self.rreps_forged = 0

    def _forward_data(self, msg: DataPacket) -> None:
        if self._drop_rng.random() < self.drop_probability:
            self.packets_dropped += 1
            self.node.note(f"blackhole dropped data seq={msg.seq} for {msg.dip}")
            return
        super()._forward_data(msg)

    def _on_rreq(self, frame: Frame, msg: RREQ) -> None:
        if (
            self.forge_rreps
            and self.node.configured
            and not self.node.owns_address(msg.dip)
            and (msg.sip, msg.seq) not in self._seen_rreqs
        ):
            # Forge the attraction reply, then ALSO participate honestly
            # (below): if the forgery is rejected, the black hole still
            # gets onto legitimately discovered routes as a relay.
            self._forge_rrep(msg)
        super()._on_rreq(frame, msg)

    def _forge_rrep(self, msg: RREQ) -> None:
        """Claim "the destination is right behind me" with our own key.

        The forged route is (hops so far) + us; the signature is ours,
        not the destination's, so the CGA check at S fails under the
        secure protocol -- and sails through under plain DSR.
        """
        self.rreps_forged += 1
        route = msg.route_ips + (self.node.ip,)
        fake_sig = self.node.sign(signing.rrep_payload(msg.sip, msg.seq, route))
        rrep = RREP(
            sip=msg.sip,
            dip=msg.dip,
            seq=msg.seq,
            route=route,
            signature=fake_sig,
            public_key=self.node.public_key,  # our key, not D's
            rn=self._own_rn(),
            hop_limit=self.cfg.hop_limit,
        )
        next_hop = route[-2] if len(route) >= 2 else msg.sip
        self.node.unicast_ip(next_hop, rrep)
