"""The Section 4 attackers.

Each adversary plays by the simulation's physics and crypto rules: it
can transmit any frame it likes and lie in any field, but it cannot read
other nodes' private keys or forge signatures.  Within those rules:

* :class:`~repro.adversary.blackhole.BlackholeRouter` -- attracts /
  accepts traffic, silently drops what it should forward (Section 4,
  black hole attack).
* :class:`~repro.adversary.forger.ForgingRouter` -- forges RREPs
  (claiming to be the destination), splices bogus hops into the SRR,
  forges ACKs.
* :class:`~repro.adversary.replayer.ReplayAgent` -- records and replays
  AREP/DREP/RREP/CREP/RERR messages.
* :class:`~repro.adversary.impersonator.DNSImpersonatorRouter` -- an
  on-path relay that answers DNS queries with forged responses;
  :func:`~repro.adversary.impersonator.attempt_address_takeover` -- a
  host that adopts someone else's address without the matching key.
* :class:`~repro.adversary.rerr_spammer.RERRSpamRouter` -- an on-path
  relay that floods spurious route errors.
* :class:`~repro.adversary.identity_churner.IdentityChurnBlackhole` --
  a black hole that re-bootstraps fresh CGA identities to shed bad
  credit (the paper's "a hostile node may keep on changing its
  identity" case).
"""

from repro.adversary.blackhole import BlackholeRouter
from repro.adversary.forger import ForgingRouter
from repro.adversary.replayer import ReplayAgent
from repro.adversary.impersonator import DNSImpersonatorRouter, attempt_address_takeover
from repro.adversary.rerr_spammer import RERRSpamRouter
from repro.adversary.identity_churner import IdentityChurnBlackhole

__all__ = [
    "BlackholeRouter",
    "ForgingRouter",
    "ReplayAgent",
    "DNSImpersonatorRouter",
    "attempt_address_takeover",
    "RERRSpamRouter",
    "IdentityChurnBlackhole",
]
