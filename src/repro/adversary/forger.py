"""Message forgery attacks (Section 4, "Replayed or Forged ...").

The forger holds a perfectly valid identity of its own; what it cannot
do is produce another host's signature.  :class:`ForgingRouter` tries
anyway, in three ways the experiments measure separately:

* ``forge_rrep`` -- answer discoveries pretending to be the destination
  (same mechanism as the black hole's attraction step);
* ``spoof_hop`` -- as a relay, append an SRR entry for a *different* IP
  (an innocent third party, or a fabricated address).  Against the full
  protocol the destination's per-hop check rejects it; against the
  BSAR-like baseline it passes, poisoning the discovered route;
* ``forge_ack`` -- inject fake end-to-end ACKs for flows it relays,
  trying to mint credit and mask drops.
"""

from __future__ import annotations

from repro.ipv6.address import IPv6Address
from repro.messages import signing
from repro.messages.data import AckPacket, DataPacket
from repro.messages.routing import RREQ, SRREntry
from repro.phy.medium import Frame
from repro.routing.secure_dsr import SecureDSRRouter


class ForgingRouter(SecureDSRRouter):
    """A relay that lies in route records and acknowledgements."""

    def __init__(
        self,
        node,
        spoof_hop_ip: IPv6Address | None = None,
        forge_acks: bool = False,
        drop_data: bool = False,
    ):
        super().__init__(node)
        #: The IP to splice into SRRs (None disables hop spoofing).
        self.spoof_hop_ip = spoof_hop_ip
        self.forge_acks = forge_acks
        self.drop_data = drop_data
        self.hops_spoofed = 0
        self.acks_forged = 0

    # -- SRR hop spoofing ---------------------------------------------------
    def _relay_rreq(self, msg: RREQ) -> None:
        if self.spoof_hop_ip is None:
            super()._relay_rreq(msg)
            return
        if msg.hop_limit <= 1:
            return
        self.hops_spoofed += 1
        # Claim the spoofed IP relayed this RREQ.  We sign with our own
        # key (we have no other) -- under per-hop verification the CGA
        # check "low64(IP) == H(PK, rn)" fails; under endpoint-only
        # verification nobody ever looks.
        forged = SRREntry(
            ip=self.spoof_hop_ip,
            signature=self.node.sign(
                signing.srr_entry_payload(self.spoof_hop_ip, msg.seq)
            ),
            public_key=self.node.public_key,
            rn=self._own_rn(),
        )
        relayed = msg.append_entry(forged)
        delay = self._rng.uniform(0.0, self.cfg.rebroadcast_jitter)
        self.node.sim.schedule(delay, self.node.broadcast, relayed)

    # -- data handling ---------------------------------------------------------
    def _forward_data(self, msg: DataPacket) -> None:
        if self.forge_acks:
            self._inject_fake_ack(msg)
        if self.drop_data:
            self.node.note(f"forger dropped data seq={msg.seq}")
            return
        super()._forward_data(msg)

    def _inject_fake_ack(self, msg: DataPacket) -> None:
        """Pretend the destination acknowledged (signature is ours, not D's)."""
        self.acks_forged += 1
        fake = AckPacket(
            sip=msg.sip,
            dip=msg.dip,
            seq=msg.seq,
            route=msg.route,
            signature=self.node.sign(
                signing.ack_payload(msg.sip, msg.dip, msg.seq)
            ),
            public_key=self.node.public_key,
            rn=self._own_rn(),
            hop_limit=self.cfg.hop_limit,
        )
        # Send it back toward the source along the reverse prefix.
        my_pos = msg.segment_index + 2  # our position in the full path
        path = msg.full_path()
        prev = path[my_pos - 1] if my_pos >= 1 else msg.sip
        self.node.unicast_ip(prev, fake)
