"""The identity-churning black hole.

"A hostile node may keep on changing its identity, which is allowed in
IPv6.  So S may not be able to find a node with a particularly high
RERR reporting frequency."  (Section 3.4)

CGAs make identity change cheap: draw a fresh ``rn``, re-run DAD, and
the old reputation is unreachable.  This attacker is a black hole that
re-bootstraps on a timer, shedding whatever negative credit it has
accumulated.  The paper's countermeasure is the *low initial credit*:
in hostile mode a source prefers relays with proven history, and a
freshly churned identity never has any -- so churning trades a bad
reputation for a permanently mediocre one, and attack traffic dries up
either way.
"""

from __future__ import annotations

from repro.adversary.blackhole import BlackholeRouter
from repro.core.node import Node


class IdentityChurnBlackhole(BlackholeRouter):
    """Black hole that periodically re-bootstraps a fresh CGA identity."""

    def __init__(self, node: Node, churn_interval: float = 20.0, **kw):
        super().__init__(node, **kw)
        if churn_interval <= 0:
            raise ValueError("churn_interval must be positive")
        self.churn_interval = churn_interval
        self.identities_used = 0
        self._churn_scheduled = False

    def start_churning(self) -> None:
        """Begin the churn cycle (call after the first bootstrap completes)."""
        if self._churn_scheduled:
            return
        self._churn_scheduled = True
        self.node.sim.schedule(self.churn_interval, self._churn)

    def _churn(self) -> None:
        if self.node.configured:
            old = self.node.ip
            self.identities_used += 1
            self.node.abandon_identity()
            # Wipe protocol state tied to the old identity.
            self.cache.clear()
            self._seen_rreqs.clear()
            self.node.note(f"churning identity away from {old}")
            bootstrap = self.node.bootstrap
            if bootstrap is not None:
                bootstrap.state = "idle"
                bootstrap.start(domain_name="")
        self.node.sim.schedule(self.churn_interval, self._churn)
