"""Per-source credit ledger.

The paper's rules (Section 3.4):

* "Whenever a data packet is correctly acknowledged by D, the credit of
  each host in the route is increased by one."
* "A new node should be given a low credit."
* "If a host is found to misbehave, its credits are decreased by a very
  large amount."

Credits are keyed by IP address.  That is exactly what the paper
intends: a malicious host *can* shed a bad reputation by changing its
CGA, but the new identity starts at the low initial credit, so in
``hostile_mode`` the source still prefers proven relays -- churning
identities never earns trust, it only resets to the floor.

The manager also tracks RERR report frequency per reporter (the "RERR
messages reported by the same host with a particularly high frequency"
heuristic) over a sliding window.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.ipv6.address import IPv6Address


class CreditManager:
    """Credit ledger + RERR frequency tracker for one source node."""

    def __init__(
        self,
        initial: float = 1.0,
        reward: float = 1.0,
        penalty: float = 50.0,
        rerr_window: float = 30.0,
        rerr_threshold: int = 3,
    ):
        if initial < 0 or reward <= 0 or penalty <= 0:
            raise ValueError("initial >= 0, reward > 0, penalty > 0 required")
        self.initial = initial
        self.reward_amount = reward
        self.penalty_amount = penalty
        self.rerr_window = rerr_window
        self.rerr_threshold = rerr_threshold
        self._credits: dict[IPv6Address, float] = {}
        self._rerr_times: dict[IPv6Address, deque[float]] = defaultdict(deque)
        # Counters for experiment reporting.
        self.rewards_granted = 0
        self.penalties_applied = 0

    # -- credit -------------------------------------------------------------
    def credit(self, host: IPv6Address) -> float:
        """Current credit; unknown hosts sit at the low initial value."""
        return self._credits.get(host, self.initial)

    def known_hosts(self) -> list[IPv6Address]:
        return list(self._credits)

    def reward(self, host: IPv6Address, amount: float | None = None) -> None:
        """+1 (or ``amount``) -- a packet this host relayed was ACKed."""
        self._credits[host] = self.credit(host) + (
            self.reward_amount if amount is None else amount
        )
        self.rewards_granted += 1

    def reward_route(self, route: tuple[IPv6Address, ...]) -> None:
        """Reward every intermediate host of an ACKed route."""
        for hop in route:
            self.reward(hop)

    def penalize(self, host: IPv6Address) -> None:
        """"Decreased by a very large amount" -- misbehaviour detected."""
        self._credits[host] = self.credit(host) - self.penalty_amount
        self.penalties_applied += 1

    def is_suspect(self, host: IPv6Address) -> bool:
        """Hosts with negative credit are treated as hostile."""
        return self.credit(host) < 0.0

    # -- RERR frequency tracking -----------------------------------------------
    def record_rerr(self, reporter: IPv6Address, now: float) -> bool:
        """Log a RERR from ``reporter``; True if its frequency is now suspicious.

        The sliding window drops entries older than ``rerr_window``.
        """
        times = self._rerr_times[reporter]
        times.append(now)
        cutoff = now - self.rerr_window
        while times and times[0] < cutoff:
            times.popleft()
        return len(times) >= self.rerr_threshold

    def rerr_count(self, reporter: IPv6Address, now: float) -> int:
        times = self._rerr_times.get(reporter)
        if not times:
            return 0
        cutoff = now - self.rerr_window
        return sum(1 for t in times if t >= cutoff)
