"""Credit-aware route selection.

The paper: "In a highly hostile environment, S should try to choose a
route in which all hosts exhibit high credits."  Two modes:

* **normal** -- shortest route first, credit as tie-break; suspects
  (negative credit) are always avoided when an alternative exists.
* **hostile** -- credit score first (bottleneck or mean), length as
  tie-break; routes containing suspects are excluded outright unless
  nothing else exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.credit.manager import CreditManager
from repro.ipv6.address import IPv6Address

Route = tuple[IPv6Address, ...]


@dataclass(frozen=True)
class RoutePolicy:
    """Route-choice knobs (mirrors the NodeConfig credit fields)."""

    hostile_mode: bool = False
    metric: str = "min"  # "min" (bottleneck credit) or "mean"

    def __post_init__(self):
        if self.metric not in ("min", "mean"):
            raise ValueError(f"unknown credit metric {self.metric!r}")


def route_score(credits: CreditManager, route: Route, metric: str = "min") -> float:
    """Aggregate credit of a route's intermediate hops.

    An empty route (destination is a neighbour) scores +inf: no relays,
    nothing to distrust.
    """
    if not route:
        return float("inf")
    values = [credits.credit(h) for h in route]
    if metric == "min":
        return min(values)
    return sum(values) / len(values)


def has_suspect(credits: CreditManager, route: Route) -> bool:
    return any(credits.is_suspect(h) for h in route)


def select_route(
    credits: CreditManager,
    candidates: list[Route],
    policy: RoutePolicy,
) -> Route | None:
    """Pick the best candidate route under the policy (None if empty).

    Suspect-free candidates are always preferred; if every candidate
    contains a suspect the least-bad one is returned (the paper keeps
    the network usable rather than refusing to route).
    """
    if not candidates:
        return None
    clean = [r for r in candidates if not has_suspect(credits, r)]
    pool = clean if clean else candidates

    if policy.hostile_mode:
        # Highest credit score, then shortest.
        return max(pool, key=lambda r: (route_score(credits, r, policy.metric), -len(r)))
    # Shortest, then highest credit score.
    return min(pool, key=lambda r: (len(r), -route_score(credits, r, policy.metric)))
