"""Credit management (Section 3.4).

Each source node keeps a :class:`~repro.credit.manager.CreditManager`
scoring the hosts that relay for it: +1 per end-to-end-ACKed packet,
a very large penalty on detected misbehaviour, and a deliberately low
initial credit so that an attacker who rotates IPv6 identities (which
CGAs make cheap) restarts from the bottom every time.

:mod:`repro.credit.policy` turns per-host credits into route choices.
"""

from repro.credit.manager import CreditManager
from repro.credit.policy import route_score, select_route, RoutePolicy

__all__ = ["CreditManager", "route_score", "select_route", "RoutePolicy"]
