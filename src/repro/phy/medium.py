"""The shared wireless medium.

Unit-disk connectivity: two radios hear each other iff their Euclidean
distance is at most ``radio_range``.  Delivery latency is

    ``tx_delay(size) + propagation(distance) + proc_delay``

with ``tx_delay = size * 8 / bitrate``.  Each (frame, receiver) pair
draws independent Bernoulli loss.  Unicast frames emulate an 802.11-like
MAC: up to ``mac_retries`` retransmissions, then a failure callback --
which is exactly the "link broken" signal DSR route maintenance needs.

Receiver lookup goes through an incremental neighbor index (see
:mod:`repro.phy.neighbor_index`): the default ``"grid"`` spatial hash
answers "who can hear this position?" in O(local density) and is kept
current by ``attach``/``detach``/``set_position``/``set_enabled``, so a
network-wide flood is near-linear in N instead of quadratic.  The
``"naive"`` index preserves the original full scan; both visit in-range
receivers in ascending link-id order, so the ``phy/loss`` RNG draw
sequence -- and every metric and trace -- is byte-identical across
index choices.

Broadcast pipeline
------------------

``broadcast`` runs one of two paths, selected by ``vectorized``
(default on; ``False`` keeps the scalar loop for A/B comparison):

* candidate lookup -- the index returns the cached
  :class:`~repro.phy.neighbor_index.CandidateBlock` for the sender's
  cell block: sorted candidate ids plus a numpy position matrix;
* distance/loss -- one numpy subtraction + ``sqrt`` yields every
  sender->candidate distance, and one
  :meth:`~repro.sim.rng.SimRNG.random_batch` draw yields every
  per-receiver loss variate;
* batch schedule -- survivors are pushed onto the kernel heap via
  :meth:`~repro.sim.kernel.Simulator.schedule_batch`, skipping
  per-event handle allocation.

Both paths compute distances as ``sqrt(dx*dx + dy*dy)`` -- multiply,
add, and square root are all correctly-rounded IEEE-754 operations, so
the scalar (``math.sqrt``) and vectorised (``numpy.sqrt``) forms are
bit-identical -- and draw one ``phy/loss`` variate per in-range receiver
in ascending link-id order, so scalar and vectorised runs (like grid
and naive runs) produce byte-identical metrics and traces
(tests/test_vectorized_equivalence.py pins this).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.ipv6.address import IPv6Address
from repro.phy.neighbor_index import INDEX_KINDS, make_index
from repro.sim.kernel import Simulator

#: Destination pseudo-link-id for broadcast frames.
BROADCAST_LINK = -1

_SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class Frame:
    """A link-layer frame.

    ``src_ip`` is the *claimed* network-layer source -- unauthenticated,
    like a MAC header; receivers use it to maintain IP -> link-id
    neighbour caches.  ``payload`` is a protocol Message object;
    ``size`` its wire size in bytes (precomputed by the sender so the
    medium never needs to re-encode).
    """

    src_link: int
    dst_link: int  # BROADCAST_LINK for floods
    src_ip: IPv6Address
    payload: Any
    size: int


@dataclass
class RadioHandle:
    """One node's attachment to the medium."""

    link_id: int
    position: tuple[float, float]
    deliver: Callable[[Frame], None]
    enabled: bool = True
    #: Counters for overhead accounting.
    frames_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    bytes_received: int = 0


class WirelessMedium:
    """Broadcast medium with unit-disk connectivity.

    Parameters
    ----------
    sim:
        The simulation kernel (all deliveries are scheduled events).
    radio_range:
        Unit-disk radius in metres.
    bitrate:
        Link bitrate in bits/s (default 2 Mb/s: 802.11 classic, the
        paper's era).
    loss_rate:
        Independent per-(frame, receiver) Bernoulli loss probability.
    proc_delay:
        Fixed per-hop processing delay in seconds.
    mac_retries:
        Unicast retransmission budget before reporting link failure.
    ack_timeout:
        Per-attempt wait before a retry / failure verdict.
    index:
        Neighbor index implementation: ``"grid"`` (spatial hash, the
        default) or ``"naive"`` (full scan).  Byte-identical results.
    vectorized:
        Run broadcasts through the numpy pipeline (default) or the
        scalar loop.  Byte-identical results; the scalar path exists
        for A/B benchmarking and equivalence tests.
    """

    def __init__(
        self,
        sim: Simulator,
        radio_range: float = 250.0,
        bitrate: float = 2e6,
        loss_rate: float = 0.0,
        proc_delay: float = 1e-4,
        mac_retries: int = 3,
        ack_timeout: float = 5e-3,
        index: str = "grid",
        vectorized: bool = True,
    ):
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if index not in INDEX_KINDS:
            raise ValueError(
                f"unknown medium index {index!r} (expected one of {INDEX_KINDS})"
            )
        self.sim = sim
        self.radio_range = radio_range
        self.bitrate = bitrate
        self.loss_rate = loss_rate
        self.proc_delay = proc_delay
        self.mac_retries = mac_retries
        self.ack_timeout = ack_timeout
        self.index_kind = index
        self.vectorized = bool(vectorized)
        self._index = make_index(index, radio_range)
        #: Optional TraceRecorder for medium-level notes (wired by NetContext).
        self.trace = None
        self._radios: dict[int, RadioHandle] = {}
        #: Radios that receive copies of *unicast* frames they can overhear
        #: (802.11 monitor mode; used by eavesdropping adversaries).
        self._promiscuous: set[int] = set()
        #: Sorted snapshot of ``_promiscuous``, rebuilt on change so the
        #: per-attempt unicast loop never re-sorts (it retries often).
        self._promiscuous_sorted: tuple[int, ...] = ()
        self._next_link_id = 0
        self._rng = sim.rng("phy/loss")
        #: Vectorised-path memo: sender link id -> (block, dists, rx ids).
        #: Valid exactly while the index still serves the *same*
        #: CandidateBlock object for the sender's cell -- blocks are
        #: immutable and replaced wholesale on any insert/remove/move/
        #: set_enabled that touches their footprint (which includes any
        #: move of the sender itself), so object identity is a sound
        #: freshness token.  Static and low-mobility scenarios therefore
        #: compute each sender's receiver set and distances once, not
        #: once per frame.
        self._range_cache: dict[int, tuple] = {}
        #: Optional fault filter: ``hook(src_link, dst_link, frame) ->
        #: Frame | None``, applied per (frame, receiver) pair *before*
        #: that receiver's loss draw, in the same ascending-link-id
        #: order as the draws.  ``None`` suppresses the copy -- and
        #: consumes NO ``phy/loss`` draw, so installing/removing the
        #: hook around fault windows never shifts the loss stream for
        #: unaffected traffic.  A returned frame (possibly a corrupted
        #: replacement) proceeds to the normal loss draw.  While a hook
        #: is installed, broadcasts take the scalar path (byte-identical
        #: to the vectorized one by contract).
        self.fault_hook: Callable[[int, int, Frame], Frame | None] | None = None
        # Medium-wide counters.
        self.total_frames = 0
        self.total_bytes = 0
        self.dropped_frames = 0
        #: Copies suppressed by :attr:`fault_hook` (distinct from
        #: ``dropped_frames``: suppression consumes no loss draw).
        self.suppressed_frames = 0

    # -- attachment ------------------------------------------------------
    def _note(self, text: str) -> None:
        """Drop a medium-level annotation into the trace (if wired)."""
        if self.trace is not None:
            self.trace.record(self.sim.now, "medium", "note", "PHY", text)

    def attach(
        self,
        position: tuple[float, float],
        deliver: Callable[[Frame], None],
    ) -> RadioHandle:
        """Join the medium at ``position``; returns this radio's handle."""
        handle = RadioHandle(self._next_link_id, tuple(position), deliver)
        self._radios[handle.link_id] = handle
        self._index.insert(handle.link_id, handle.position)
        self._next_link_id += 1
        return handle

    def detach(self, link_id: int) -> None:
        """Leave the medium (host powered off / departed)."""
        if self._radios.pop(link_id, None) is not None:
            self._index.remove(link_id)
            self._range_cache.pop(link_id, None)
            # A departed snoop must not haunt every future unicast: a
            # stale id left in the sorted snapshot would defeat the
            # empty-set fast path forever.
            if link_id in self._promiscuous:
                self.set_promiscuous(link_id, False)

    def has_link(self, link_id: int) -> bool:
        """True while ``link_id`` is attached (mobility models poll this)."""
        return link_id in self._radios

    def set_enabled(self, link_id: int, enabled: bool) -> None:
        """Radio on/off without losing the attachment (used by churn models).

        A detached link id is a graceful no-op: a churn model may race a
        scenario-driven detach, and losing that race must not crash the run.
        """
        radio = self._radios.get(link_id)
        if radio is None:
            self._note(f"set_enabled({enabled}) on detached link {link_id}")
            return
        radio.enabled = enabled
        self._index.set_enabled(link_id, enabled)

    def set_position(self, link_id: int, position: tuple[float, float]) -> None:
        """Move a radio (graceful no-op on a detached link id, as above)."""
        radio = self._radios.get(link_id)
        if radio is None:
            self._note(f"set_position on detached link {link_id}")
            return
        radio.position = tuple(position)
        self._index.move(link_id, radio.position)

    def set_promiscuous(self, link_id: int, enabled: bool = True) -> None:
        """Monitor mode: overhear unicast frames between other nodes."""
        if enabled:
            self._promiscuous.add(link_id)
        else:
            self._promiscuous.discard(link_id)
        self._promiscuous_sorted = tuple(sorted(self._promiscuous))

    def position(self, link_id: int) -> tuple[float, float]:
        return self._radios[link_id].position

    @property
    def link_ids(self) -> list[int]:
        return list(self._radios)

    # -- geometry ---------------------------------------------------------
    def distance(self, a: int, b: int) -> float:
        pa, pb = self._radios[a].position, self._radios[b].position
        dx, dy = pa[0] - pb[0], pa[1] - pb[1]
        # sqrt(dx*dx + dy*dy), NOT math.hypot: multiply/add/sqrt are
        # correctly-rounded IEEE-754 ops, so this form is bit-identical
        # to the vectorised numpy computation (math.hypot is not).
        return math.sqrt(dx * dx + dy * dy)

    def in_range(self, a: int, b: int) -> bool:
        if a == b:
            return False
        ra, rb = self._radios.get(a), self._radios.get(b)
        if ra is None or rb is None or not ra.enabled or not rb.enabled:
            return False
        return self.distance(a, b) <= self.radio_range

    def _in_range_pairs(self, link_id: int) -> list[tuple[int, float]]:
        """``(other_id, distance)`` for enabled radios in range, ascending.

        Each sender->receiver distance is measured exactly once and
        carried to the delay computation (the old path measured it twice:
        once for the range test, again for the delivery delay).  The
        ascending order is load-bearing: it matches the naive scan's
        iteration order, which pins the ``phy/loss`` draw sequence (see
        :mod:`repro.phy.neighbor_index`).
        """
        radio = self._radios.get(link_id)
        if radio is None or not radio.enabled:
            return []
        px, py = radio.position
        r = self.radio_range
        block = self._index.candidates_with_positions(radio.position)
        out: list[tuple[int, float]] = []
        for other, (ox, oy) in zip(block.ids, block.pts):
            if other == link_id:
                continue
            dx, dy = px - ox, py - oy
            d = math.sqrt(dx * dx + dy * dy)
            if d <= r:
                out.append((other, d))
        return out

    def neighbors(self, link_id: int) -> list[int]:
        """Link ids currently within radio range (instantaneous truth)."""
        return [other for other, _ in self._in_range_pairs(link_id)]

    # -- timing -----------------------------------------------------------
    def tx_delay(self, size: int) -> float:
        return size * 8 / self.bitrate

    def _delivery_delay(self, size: int, distance: float) -> float:
        return self.tx_delay(size) + distance / _SPEED_OF_LIGHT + self.proc_delay

    # -- transmission -----------------------------------------------------
    def broadcast(self, frame: Frame) -> int:
        """Transmit to every enabled radio in range.

        Returns the number of receivers the frame was *scheduled* to
        (losses still apply per receiver).

        Delivery contract (pinned by tests/test_medium_contract.py): a
        receiver gets the frame iff it was attached **and enabled at
        send time** (that decides candidacy and whether it consumes a
        loss draw) AND is still attached and enabled **at delivery
        time** (``_deliver`` re-checks; in-flight disable/detach
        silently eats the copy).  A radio disabled at send time is
        excluded from the candidate set on *both* pipelines -- the
        vectorized path's cached CandidateBlock cannot be stale here,
        because ``set_enabled``/``attach``/``detach``/``set_position``
        all replace the affected block wholesale and the cache is keyed
        on block object identity -- so it consumes no ``phy/loss`` draw
        and re-enabling before the would-be delivery time cannot
        resurrect the frame.
        """
        sender = self._radios.get(frame.src_link)
        if sender is None or not sender.enabled:
            return 0
        self.total_frames += 1
        self.total_bytes += frame.size
        sender.frames_sent += 1
        sender.bytes_sent += frame.size
        hook = self.fault_hook
        if self.vectorized and hook is None:
            return self._broadcast_vectorized(frame, sender)
        count = 0
        for other_id, dist in self._in_range_pairs(frame.src_link):
            count += 1
            fx = frame
            if hook is not None:
                fx = hook(frame.src_link, other_id, frame)
                if fx is None:
                    self.suppressed_frames += 1
                    continue  # no loss draw: see fault_hook contract
            if self._rng.random() < self.loss_rate:
                self.dropped_frames += 1
                continue
            delay = self._delivery_delay(frame.size, dist)
            self.sim.schedule(delay, self._deliver, other_id, fx)
        return count

    def _broadcast_vectorized(self, frame: Frame, sender: RadioHandle) -> int:
        """The numpy pipeline: cached receiver set -> batch losses ->
        batch schedule.  Byte-identical to the scalar loop above."""
        src = frame.src_link
        block = self._index.candidates_with_positions(sender.position)
        cached = self._range_cache.get(src)
        if cached is None or cached[0] is not block:
            cached = self._compute_range(src, sender, block)
            self._range_cache[src] = cached
        _, rx_dists, rx_id_list = cached
        count = len(rx_id_list)
        if count == 0:
            return 0
        # One batched draw per in-range receiver, ascending id -- the same
        # stream consumption as `count` scalar draws (SimRNG.random_batch).
        draws = self._rng.random_batch(count)
        if self.loss_rate > 0.0:
            survived = draws >= self.loss_rate
            delivered = int(survived.sum())
            if delivered < count:
                self.dropped_frames += count - delivered
                if delivered == 0:
                    return count
                rx_dists = rx_dists[survived]
                rx_id_list = [
                    rx for rx, ok in zip(rx_id_list, survived.tolist()) if ok
                ]
        # (tx + d/c) + proc in exactly the scalar path's operation order;
        # the in-place ops touch only this fresh `delays` array, never the
        # cached distances.
        delays = rx_dists / _SPEED_OF_LIGHT
        delays += self.tx_delay(frame.size)
        delays += self.proc_delay
        # .tolist() yields python floats: event times (and thus sim.now,
        # latencies, traces, JSON summaries) must never carry numpy
        # scalar types.
        self.sim.schedule_batch(
            delays.tolist(),
            self._deliver,
            [(rx, frame) for rx in rx_id_list],
        )
        return count

    def _compute_range(self, src: int, sender: RadioHandle, block) -> tuple:
        """Distances from ``src`` to every in-range candidate in ``block``.

        Returns ``(block, rx_dists, rx_id_list)`` with receivers in
        ascending link-id order; cached per sender until the index
        replaces the block (see ``_range_cache``).
        """
        if not block.ids:
            return (block, np.empty(0, dtype=np.float64), [])
        sx, sy = sender.position
        dx = block.pos_arr[:, 0] - sx
        dy = block.pos_arr[:, 1] - sy
        # In-place sqrt(dx*dx + dy*dy): the same correctly-rounded IEEE
        # op sequence as the scalar path, no extra temporaries.
        dx *= dx
        dy *= dy
        dx += dy
        dists = np.sqrt(dx, out=dx)
        in_range = dists <= self.radio_range
        # The sender is enabled, hence present in its own block: mask it
        # out by position (sorted ids) instead of a full-array compare.
        i = bisect_left(block.ids, src)
        if i < len(block.ids) and block.ids[i] == src:
            in_range[i] = False
        rx_dists = dists[in_range]
        return (block, rx_dists, block.id_arr[in_range].tolist())

    def unicast(
        self,
        frame: Frame,
        on_fail: Callable[[Frame], None] | None = None,
        on_success: Callable[[Frame], None] | None = None,
    ) -> None:
        """Transmit to ``frame.dst_link`` with MAC-style retries.

        ``on_fail`` fires (after the retry budget) when the destination
        is out of range, detached, disabled, or every attempt was lost --
        indistinguishable causes at the sender, as on real hardware.
        """
        if frame.dst_link == BROADCAST_LINK:
            raise ValueError("unicast frame has broadcast destination")
        self._attempt_unicast(frame, 0, on_fail, on_success)

    def _attempt_unicast(
        self,
        frame: Frame,
        attempt: int,
        on_fail: Callable[[Frame], None] | None,
        on_success: Callable[[Frame], None] | None,
    ) -> None:
        sender = self._radios.get(frame.src_link)
        if sender is None or not sender.enabled:
            return  # sender itself left; nobody to notify
        self.total_frames += 1
        self.total_bytes += frame.size
        sender.frames_sent += 1
        sender.bytes_sent += frame.size

        # Monitor-mode radios overhear the transmission regardless of the
        # MAC destination (each copy draws loss independently).  The empty
        # set -- the common case, checked first so retries pay nothing --
        # skips the loop entirely; the sorted snapshot is maintained by
        # set_promiscuous, keeping the loss-draw sequence independent of
        # set internals (the index-equivalence determinism contract).
        hook = self.fault_hook
        if self._promiscuous:
            for snoop in self._promiscuous_sorted:
                if snoop in (frame.src_link, frame.dst_link):
                    continue
                if not self.in_range(frame.src_link, snoop):
                    continue
                sx = frame
                if hook is not None:
                    sx = hook(frame.src_link, snoop, frame)
                    if sx is None:
                        self.suppressed_frames += 1
                        continue  # no loss draw (fault_hook contract)
                if self._rng.random() < self.loss_rate:
                    continue
                delay = self._delivery_delay(
                    frame.size, self.distance(frame.src_link, snoop)
                )
                self.sim.schedule(delay, self._deliver, snoop, sx)

        reachable = self.in_range(frame.src_link, frame.dst_link)
        fx = frame
        if reachable and hook is not None:
            fx = hook(frame.src_link, frame.dst_link, frame)
            if fx is None:
                # Suppressed copies look like an out-of-range receiver:
                # no loss draw, and the MAC walks its retry budget -- so
                # a partitioned/flapped link degrades into the normal
                # "link broken" signal DSR route maintenance expects.
                self.suppressed_frames += 1
                reachable = False
        lost = reachable and self._rng.random() < self.loss_rate
        if reachable and not lost:
            delay = self._delivery_delay(
                frame.size, self.distance(frame.src_link, frame.dst_link)
            )
            self.sim.schedule(delay, self._deliver, frame.dst_link, fx)
            if on_success is not None:
                # MAC ack arrives one round trip later.  The callback
                # gets the *sent* frame: corruption happens in flight,
                # the sender's MAC still sees its ack.
                self.sim.schedule(delay + self.proc_delay, on_success, frame)
            return
        if lost:
            self.dropped_frames += 1
        if attempt < self.mac_retries:
            self.sim.schedule(
                self.ack_timeout, self._attempt_unicast, frame, attempt + 1,
                on_fail, on_success,
            )
        elif on_fail is not None:
            self.sim.schedule(self.ack_timeout, on_fail, frame)

    def _deliver(self, link_id: int, frame: Frame) -> None:
        """Delivery-time half of the contract pinned on :meth:`broadcast`:
        a receiver that detached or disabled while the frame was in
        flight silently eats the copy, even if it re-enables later."""
        radio = self._radios.get(link_id)
        if radio is None or not radio.enabled:
            return  # receiver left/slept while the frame was in flight
        radio.frames_received += 1
        radio.bytes_received += frame.size
        radio.deliver(frame)
