"""Node placement generators and connectivity analysis.

Placements return ``(n, 2)`` float arrays of positions.  Connectivity
helpers build the unit-disk neighbour graph with a vectorised pairwise
distance computation (NumPy broadcasting; no Python double loop) --
checking that a generated scenario is connected before running it is on
every benchmark's hot path.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import SimRNG


def uniform_positions(n: int, area: tuple[float, float], rng: SimRNG) -> np.ndarray:
    """``n`` points uniform over an ``area = (width, height)`` rectangle."""
    if n <= 0:
        raise ValueError("n must be positive")
    xs = rng.uniform_array(0.0, area[0], n)
    ys = rng.uniform_array(0.0, area[1], n)
    return np.column_stack([xs, ys])


def grid_positions(n: int, spacing: float) -> np.ndarray:
    """First ``n`` points of a square grid with the given spacing."""
    if n <= 0:
        raise ValueError("n must be positive")
    side = int(np.ceil(np.sqrt(n)))
    idx = np.arange(n)
    return np.column_stack([(idx % side) * spacing, (idx // side) * spacing]).astype(float)


def chain_positions(n: int, spacing: float) -> np.ndarray:
    """A straight line of ``n`` nodes -- the canonical k-hop topology.

    With ``spacing`` just under the radio range, node i only hears
    i-1 and i+1, giving exact control over hop counts (used by the
    Figure 2/3 reproductions).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


def clustered_positions(
    n: int,
    clusters: int,
    area: tuple[float, float],
    cluster_std: float,
    rng: SimRNG,
) -> np.ndarray:
    """Gaussian clusters -- models teams converging on a disaster site."""
    if clusters <= 0 or n <= 0:
        raise ValueError("n and clusters must be positive")
    centers = uniform_positions(clusters, area, rng)
    assignment = np.array([rng.randint(0, clusters - 1) for _ in range(n)])
    offsets = rng.normal_array(0.0, cluster_std, (n, 2))
    pts = centers[assignment] + offsets
    return np.clip(pts, [0.0, 0.0], [area[0], area[1]])


def adjacency(positions: np.ndarray, radio_range: float) -> np.ndarray:
    """Boolean unit-disk adjacency matrix (diagonal False)."""
    diff = positions[:, None, :] - positions[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    adj = dist2 <= radio_range * radio_range
    np.fill_diagonal(adj, False)
    return adj


def connectivity_graph(positions: np.ndarray, radio_range: float) -> dict[int, list[int]]:
    """Adjacency lists of the unit-disk graph."""
    adj = adjacency(positions, radio_range)
    return {i: list(np.flatnonzero(adj[i])) for i in range(len(positions))}


def is_connected(positions: np.ndarray, radio_range: float) -> bool:
    """True iff the unit-disk graph is a single connected component (BFS)."""
    n = len(positions)
    if n <= 1:
        return True
    adj = adjacency(positions, radio_range)
    seen = np.zeros(n, dtype=bool)
    frontier = [0]
    seen[0] = True
    while frontier:
        nxt = []
        for u in frontier:
            for v in np.flatnonzero(adj[u] & ~seen):
                seen[v] = True
                nxt.append(int(v))
        frontier = nxt
    return bool(seen.all())


def connected_uniform_positions(
    n: int,
    area: tuple[float, float],
    radio_range: float,
    rng: SimRNG,
    max_tries: int = 200,
) -> np.ndarray:
    """Rejection-sample a *connected* uniform placement.

    Raises ``RuntimeError`` if the density is too low to find one in
    ``max_tries`` draws (the caller should shrink the area or add nodes
    rather than silently run a partitioned scenario).
    """
    for _ in range(max_tries):
        pts = uniform_positions(n, area, rng)
        if is_connected(pts, radio_range):
            return pts
    raise RuntimeError(
        f"no connected placement of {n} nodes in {area} at range {radio_range} "
        f"after {max_tries} tries; increase density"
    )


def hop_count(positions: np.ndarray, radio_range: float, src: int, dst: int) -> int:
    """Shortest hop distance in the unit-disk graph, or -1 if unreachable."""
    n = len(positions)
    adj = adjacency(positions, radio_range)
    dist = np.full(n, -1, dtype=int)
    dist[src] = 0
    frontier = [src]
    while frontier:
        nxt = []
        for u in frontier:
            for v in np.flatnonzero(adj[u]):
                if dist[v] == -1:
                    dist[v] = dist[u] + 1
                    nxt.append(int(v))
        frontier = nxt
    return int(dist[dst])
