"""Incremental neighbor indices for the wireless medium.

The medium answers one geometric question on every transmission: *which
radios might be within ``radio_range`` of this position?*  The naive
answer -- scan every attached radio -- costs O(N) per frame and makes a
network-wide flood O(N^2), which caps campaign sweeps at a few dozen
nodes.  :class:`SpatialHashGrid` replaces the scan with a uniform grid
of square cells of side ``cell_size == radio_range``: a radio at
position ``p`` lives in cell ``(floor(px / s), floor(py / s))``, and
every point within ``radio_range`` of ``p`` necessarily falls in the
3x3 block of cells around ``p``'s cell.  Range queries therefore touch
only local occupancy, and ``attach``/``detach``/``set_position``/
``set_enabled`` maintain the structure incrementally in O(1), so a
flood round over a bounded-density deployment is O(N * degree) instead
of O(N^2).

Determinism-ordering contract
-----------------------------

Both index implementations MUST honour the following contract, which is
what keeps grid-indexed runs **byte-identical** to the naive scan:

1. ``candidates_near(position)`` returns a *superset* of every enabled
   radio within ``cell_size`` of ``position`` (false positives are fine;
   false negatives are not).
2. Candidates are yielded in **strictly ascending link-id order**.

The medium filters candidates with the exact unit-disk test and draws
exactly one ``phy/loss`` RNG variate per in-range receiver.  Link ids
are assigned monotonically and never reused, so the naive full scan --
which iterates the radio dict in insertion order -- also visits
receivers in ascending link-id order.  Under (1) + (2) the sequence of
in-range receivers, and therefore the sequence of loss draws, delivery
events, metrics, and trace lines, is identical whichever index computed
the candidate set.  Any future index implementation (k-d tree, sorted
sweep, ...) must sort its candidates the same way before yielding.
"""

from __future__ import annotations


class NaiveScanIndex:
    """The O(N) reference index: every attached radio is a candidate.

    Exists so the medium has a single code path whichever index is
    selected, and so equivalence tests can pin the grid against the
    original full-scan semantics.
    """

    kind = "naive"

    def __init__(self):
        # link_id -> enabled; insertion-ordered, and link ids are
        # monotonic, so iteration is already ascending (contract #2).
        self._links: dict[int, bool] = {}

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link_id: int) -> bool:
        return link_id in self._links

    def insert(self, link_id: int, position: tuple[float, float]) -> None:
        self._links[link_id] = True

    def remove(self, link_id: int) -> None:
        self._links.pop(link_id, None)

    def move(self, link_id: int, position: tuple[float, float]) -> None:
        pass  # position plays no role in the full scan

    def set_enabled(self, link_id: int, enabled: bool) -> None:
        if link_id in self._links:
            self._links[link_id] = enabled

    def candidates_near(self, position: tuple[float, float]) -> list[int]:
        """All attached link ids (disabled ones included; they are
        filtered by the medium's exact in-range test, exactly as the
        original scan did -- and they draw no RNG either way)."""
        return list(self._links)


class SpatialHashGrid:
    """Uniform spatial-hash grid over square cells of side ``cell_size``.

    ``cell_size`` must equal the radio range for the 3x3-block query to
    be a correct superset (see the module docstring's contract).  The
    grid stores only *enabled* radios in its cells -- a disabled radio
    keeps its position record but occupies no cell, so churn-heavy
    scenarios do not pay for absent nodes -- and re-enters its current
    cell on re-enable.
    """

    kind = "grid"

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        # cell key -> set of enabled link ids in that cell
        self._cells: dict[tuple[int, int], set[int]] = {}
        # link_id -> (position, enabled)
        self._links: dict[int, tuple[tuple[float, float], bool]] = {}

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link_id: int) -> bool:
        return link_id in self._links

    @property
    def occupied_cells(self) -> int:
        """Non-empty cell count (introspection for tests/benchmarks)."""
        return sum(1 for members in self._cells.values() if members)

    def _cell_of(self, position: tuple[float, float]) -> tuple[int, int]:
        s = self.cell_size
        return (int(position[0] // s), int(position[1] // s))

    def _cell_add(self, cell: tuple[int, int], link_id: int) -> None:
        self._cells.setdefault(cell, set()).add(link_id)

    def _cell_discard(self, cell: tuple[int, int], link_id: int) -> None:
        members = self._cells.get(cell)
        if members is not None:
            members.discard(link_id)
            if not members:
                del self._cells[cell]

    # -- incremental maintenance ---------------------------------------
    def insert(self, link_id: int, position: tuple[float, float]) -> None:
        position = (float(position[0]), float(position[1]))
        self._links[link_id] = (position, True)
        self._cell_add(self._cell_of(position), link_id)

    def remove(self, link_id: int) -> None:
        entry = self._links.pop(link_id, None)
        if entry is None:
            return
        position, enabled = entry
        if enabled:
            self._cell_discard(self._cell_of(position), link_id)

    def move(self, link_id: int, position: tuple[float, float]) -> None:
        entry = self._links.get(link_id)
        if entry is None:
            return
        old_position, enabled = entry
        position = (float(position[0]), float(position[1]))
        self._links[link_id] = (position, enabled)
        if not enabled:
            return  # occupies no cell; re-enable will place it
        old_cell, new_cell = self._cell_of(old_position), self._cell_of(position)
        if old_cell != new_cell:
            self._cell_discard(old_cell, link_id)
            self._cell_add(new_cell, link_id)

    def set_enabled(self, link_id: int, enabled: bool) -> None:
        entry = self._links.get(link_id)
        if entry is None:
            return
        position, was_enabled = entry
        if was_enabled == enabled:
            return
        self._links[link_id] = (position, enabled)
        if enabled:
            self._cell_add(self._cell_of(position), link_id)
        else:
            self._cell_discard(self._cell_of(position), link_id)

    # -- queries --------------------------------------------------------
    def candidates_near(self, position: tuple[float, float]) -> list[int]:
        """Enabled link ids in the 3x3 cell block around ``position``,
        in ascending link-id order (the determinism contract)."""
        cx, cy = self._cell_of(position)
        cells = self._cells
        out: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                members = cells.get((cx + dx, cy + dy))
                if members:
                    out.extend(members)
        out.sort()
        return out


#: Selectable index implementations, by spec name.
INDEX_KINDS = ("grid", "naive")


def make_index(kind: str, cell_size: float):
    """Build the index implementation named ``kind`` (see INDEX_KINDS)."""
    if kind == "grid":
        return SpatialHashGrid(cell_size)
    if kind == "naive":
        return NaiveScanIndex()
    raise ValueError(
        f"unknown medium index {kind!r} (expected one of {INDEX_KINDS})"
    )
