"""Incremental neighbor indices for the wireless medium.

The medium answers one geometric question on every transmission: *which
radios might be within ``radio_range`` of this position?*  The naive
answer -- scan every attached radio -- costs O(N) per frame and makes a
network-wide flood O(N^2), which caps campaign sweeps at a few dozen
nodes.  :class:`SpatialHashGrid` replaces the scan with a uniform grid
of square cells of side ``cell_size == radio_range``: a radio at
position ``p`` lives in cell ``(floor(px / s), floor(py / s))``, and
every point within ``radio_range`` of ``p`` necessarily falls in the
3x3 block of cells around ``p``'s cell.  Range queries therefore touch
only local occupancy, and ``attach``/``detach``/``set_position``/
``set_enabled`` maintain the structure incrementally in O(1), so a
flood round over a bounded-density deployment is O(N * degree) instead
of O(N^2).

Candidate-block cache
---------------------

Both indices additionally answer
``candidates_with_positions(position)``: the enabled candidates *with*
their positions, materialised once per cell block as a
:class:`CandidateBlock` (sorted ids + a numpy position matrix) and
cached until a mutation touches the block.  A broadcast-heavy static or
low-mobility scenario therefore stops re-walking (and re-sorting) the
3x3 cell block on every frame, and the vectorised broadcast path gets
its distance computation as a single numpy subtraction instead of a
per-candidate dict walk.  ``insert``/``remove``/``move``/``set_enabled``
invalidate exactly the (up to nine) cached blocks whose 3x3 footprint
covers the mutated cell, so the cache never serves stale membership or
stale positions.

Determinism-ordering contract
-----------------------------

Both index implementations MUST honour the following contract, which is
what keeps grid-indexed runs **byte-identical** to the naive scan:

1. ``candidates_near(position)`` returns a *superset* of every enabled
   radio within ``cell_size`` of ``position`` (false positives are fine;
   false negatives are not).  ``candidates_with_positions`` returns the
   same superset restricted to *enabled* radios (the medium draws no RNG
   for disabled ones either way), with positions exactly equal to those
   last supplied via ``insert``/``move``.
2. Candidates are yielded in **strictly ascending link-id order**.

The medium filters candidates with the exact unit-disk test and draws
exactly one ``phy/loss`` RNG variate per in-range receiver.  Link ids
are assigned monotonically and never reused, so the naive full scan --
which iterates the radio dict in insertion order -- also visits
receivers in ascending link-id order.  Under (1) + (2) the sequence of
in-range receivers, and therefore the sequence of loss draws, delivery
events, metrics, and trace lines, is identical whichever index computed
the candidate set.  Any future index implementation (k-d tree, sorted
sweep, ...) must sort its candidates the same way before yielding.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class CandidateBlock(NamedTuple):
    """One cached answer to "who is (maybe) near this cell block?".

    ``ids``/``pts`` serve the scalar path (plain-python iteration);
    ``id_arr``/``pos_arr`` serve the vectorised path (one numpy
    subtraction per broadcast).  All four views list the same radios in
    ascending link-id order.  Blocks are immutable once built -- a
    mutation replaces the cache entry rather than editing it, so a block
    handed to the medium can never change mid-broadcast.
    """

    ids: tuple[int, ...]
    pts: tuple[tuple[float, float], ...]
    id_arr: np.ndarray  # shape (k,), int64
    pos_arr: np.ndarray  # shape (k, 2), float64


_EMPTY_BLOCK = CandidateBlock(
    (), (), np.empty(0, dtype=np.int64), np.empty((0, 2), dtype=np.float64)
)


def _build_block(ids: list[int], positions: list[tuple[float, float]]) -> CandidateBlock:
    if not ids:
        return _EMPTY_BLOCK
    return CandidateBlock(
        tuple(ids),
        tuple(positions),
        np.array(ids, dtype=np.int64),
        np.array(positions, dtype=np.float64).reshape(len(ids), 2),
    )


class NaiveScanIndex:
    """The O(N) reference index: every attached radio is a candidate.

    Exists so the medium has a single code path whichever index is
    selected, and so equivalence tests can pin the grid against the
    original full-scan semantics.  Its candidate "block" is the whole
    network, cached as one :class:`CandidateBlock` and invalidated by
    any mutation.
    """

    kind = "naive"

    def __init__(self):
        # link_id -> (position, enabled); insertion-ordered, and link ids
        # are monotonic, so iteration is already ascending (contract #2).
        self._links: dict[int, tuple[tuple[float, float], bool]] = {}
        self._block: CandidateBlock | None = None

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link_id: int) -> bool:
        return link_id in self._links

    def insert(self, link_id: int, position: tuple[float, float]) -> None:
        self._links[link_id] = ((float(position[0]), float(position[1])), True)
        self._block = None

    def remove(self, link_id: int) -> None:
        if self._links.pop(link_id, None) is not None:
            self._block = None

    def move(self, link_id: int, position: tuple[float, float]) -> None:
        entry = self._links.get(link_id)
        if entry is None:
            return
        self._links[link_id] = ((float(position[0]), float(position[1])), entry[1])
        self._block = None

    def set_enabled(self, link_id: int, enabled: bool) -> None:
        entry = self._links.get(link_id)
        if entry is not None and entry[1] != enabled:
            self._links[link_id] = (entry[0], enabled)
            self._block = None

    def candidates_near(self, position: tuple[float, float]) -> list[int]:
        """All attached link ids (disabled ones included; they are
        filtered by the medium's exact in-range test, exactly as the
        original scan did -- and they draw no RNG either way)."""
        return list(self._links)

    def candidates_with_positions(
        self, position: tuple[float, float]
    ) -> CandidateBlock:
        """Every *enabled* radio with its position, ascending id."""
        block = self._block
        if block is None:
            ids = [lid for lid, (_, enabled) in self._links.items() if enabled]
            pts = [self._links[lid][0] for lid in ids]
            block = _build_block(ids, pts)
            self._block = block
        return block


class SpatialHashGrid:
    """Uniform spatial-hash grid over square cells of side ``cell_size``.

    ``cell_size`` must equal the radio range for the 3x3-block query to
    be a correct superset (see the module docstring's contract).  The
    grid stores only *enabled* radios in its cells -- a disabled radio
    keeps its position record but occupies no cell, so churn-heavy
    scenarios do not pay for absent nodes -- and re-enters its current
    cell on re-enable.  Query results are cached per cell block and
    invalidated precisely (see "Candidate-block cache" above).
    """

    kind = "grid"

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        # cell key -> set of enabled link ids in that cell
        self._cells: dict[tuple[int, int], set[int]] = {}
        # link_id -> (position, enabled)
        self._links: dict[int, tuple[tuple[float, float], bool]] = {}
        # center cell key -> cached CandidateBlock for its 3x3 footprint
        self._block_cache: dict[tuple[int, int], CandidateBlock] = {}

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link_id: int) -> bool:
        return link_id in self._links

    @property
    def occupied_cells(self) -> int:
        """Non-empty cell count (introspection for tests/benchmarks)."""
        return sum(1 for members in self._cells.values() if members)

    @property
    def cached_blocks(self) -> int:
        """Live cached candidate blocks (introspection for tests)."""
        return len(self._block_cache)

    def _cell_of(self, position: tuple[float, float]) -> tuple[int, int]:
        s = self.cell_size
        return (int(position[0] // s), int(position[1] // s))

    def _cell_add(self, cell: tuple[int, int], link_id: int) -> None:
        self._cells.setdefault(cell, set()).add(link_id)

    def _cell_discard(self, cell: tuple[int, int], link_id: int) -> None:
        members = self._cells.get(cell)
        if members is not None:
            members.discard(link_id)
            if not members:
                del self._cells[cell]

    def _invalidate_around(self, cell: tuple[int, int]) -> None:
        """Drop every cached block whose 3x3 footprint covers ``cell``."""
        cache = self._block_cache
        if not cache:
            return
        cx, cy = cell
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                cache.pop((cx + dx, cy + dy), None)

    # -- incremental maintenance ---------------------------------------
    def insert(self, link_id: int, position: tuple[float, float]) -> None:
        position = (float(position[0]), float(position[1]))
        self._links[link_id] = (position, True)
        cell = self._cell_of(position)
        self._cell_add(cell, link_id)
        self._invalidate_around(cell)

    def remove(self, link_id: int) -> None:
        entry = self._links.pop(link_id, None)
        if entry is None:
            return
        position, enabled = entry
        if enabled:
            cell = self._cell_of(position)
            self._cell_discard(cell, link_id)
            self._invalidate_around(cell)

    def move(self, link_id: int, position: tuple[float, float]) -> None:
        entry = self._links.get(link_id)
        if entry is None:
            return
        old_position, enabled = entry
        position = (float(position[0]), float(position[1]))
        self._links[link_id] = (position, enabled)
        if not enabled:
            return  # occupies no cell (and no cached block); re-enable places it
        old_cell, new_cell = self._cell_of(old_position), self._cell_of(position)
        if old_cell != new_cell:
            self._cell_discard(old_cell, link_id)
            self._cell_add(new_cell, link_id)
            self._invalidate_around(old_cell)
            self._invalidate_around(new_cell)
        else:
            # Same cell, new coordinates: membership is intact but any
            # cached block holds the stale position.
            self._invalidate_around(old_cell)

    def set_enabled(self, link_id: int, enabled: bool) -> None:
        entry = self._links.get(link_id)
        if entry is None:
            return
        position, was_enabled = entry
        if was_enabled == enabled:
            return
        self._links[link_id] = (position, enabled)
        cell = self._cell_of(position)
        if enabled:
            self._cell_add(cell, link_id)
        else:
            self._cell_discard(cell, link_id)
        self._invalidate_around(cell)

    # -- queries --------------------------------------------------------
    def candidates_near(self, position: tuple[float, float]) -> list[int]:
        """Enabled link ids in the 3x3 cell block around ``position``,
        in ascending link-id order (the determinism contract)."""
        return list(self.candidates_with_positions(position).ids)

    def candidates_with_positions(
        self, position: tuple[float, float]
    ) -> CandidateBlock:
        """The cached :class:`CandidateBlock` for ``position``'s cell."""
        key = self._cell_of(position)
        block = self._block_cache.get(key)
        if block is None:
            cx, cy = key
            cells = self._cells
            ids: list[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    members = cells.get((cx + dx, cy + dy))
                    if members:
                        ids.extend(members)
            ids.sort()
            links = self._links
            block = _build_block(ids, [links[lid][0] for lid in ids])
            self._block_cache[key] = block
        return block


#: Selectable index implementations, by spec name.
INDEX_KINDS = ("grid", "naive")


def make_index(kind: str, cell_size: float):
    """Build the index implementation named ``kind`` (see INDEX_KINDS)."""
    if kind == "grid":
        return SpatialHashGrid(cell_size)
    if kind == "naive":
        return NaiveScanIndex()
    raise ValueError(
        f"unknown medium index {kind!r} (expected one of {INDEX_KINDS})"
    )
