"""Mobility models.

Each model drives the positions of attached radios through simulation
events.  :class:`RandomWaypoint` is the classic MANET model (pick a
destination, move at a uniform-random speed, pause, repeat);
:class:`ChurnModel` teleports nodes in and out of the network, which is
how the experiments model hosts joining/leaving (and adversaries
re-entering with fresh identities).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.phy.medium import WirelessMedium
from repro.sim.kernel import Simulator
from repro.sim.rng import SimRNG


class MobilityModel(ABC):
    """Base: a model owns a set of link ids and updates their positions."""

    @abstractmethod
    def start(self) -> None:
        """Begin driving positions (no-op for static models)."""

    @abstractmethod
    def stop(self) -> None:
        """Stop driving positions."""


class StaticMobility(MobilityModel):
    """Positions never change.  Exists so scenarios treat mobility uniformly."""

    def __init__(self, medium: WirelessMedium, link_ids: list[int]):
        self.medium = medium
        self.link_ids = list(link_ids)

    def start(self) -> None:  # noqa: D102 - trivially documented by class
        pass

    def stop(self) -> None:  # noqa: D102
        pass


class RandomWaypoint(MobilityModel):
    """Random waypoint over a rectangular area.

    Parameters
    ----------
    speed_range:
        (min, max) speed in m/s, drawn uniformly per leg.
    pause:
        Pause time at each waypoint in seconds.
    tick:
        Position-update granularity.  Positions move in straight lines
        between updates; 1 s at pedestrian speeds keeps the error well
        under a radio range.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        link_ids: list[int],
        area: tuple[float, float],
        speed_range: tuple[float, float] = (1.0, 5.0),
        pause: float = 10.0,
        tick: float = 1.0,
        rng: SimRNG | None = None,
    ):
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ValueError("speed_range must satisfy 0 < min <= max")
        self.sim = sim
        self.medium = medium
        self.link_ids = list(link_ids)
        self.area = area
        self.speed_range = speed_range
        self.pause = pause
        self.tick = tick
        self._rng = rng or sim.rng("mobility/rwp")
        self._running = False
        # Per-node leg state: (target, speed, pause_until)
        self._legs: dict[int, tuple[tuple[float, float], float, float]] = {}

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for lid in self.link_ids:
            self._legs[lid] = (self._pick_waypoint(), self._pick_speed(), 0.0)
        self.sim.schedule(self.tick, self._step)

    def stop(self) -> None:
        self._running = False

    def _pick_waypoint(self) -> tuple[float, float]:
        return (self._rng.uniform(0, self.area[0]), self._rng.uniform(0, self.area[1]))

    def _pick_speed(self) -> float:
        return self._rng.uniform(*self.speed_range)

    def _step(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for lid in self.link_ids:
            if not self.medium.has_link(lid):
                continue  # detached mid-run; the medium ignores it too
            target, speed, pause_until = self._legs[lid]
            if now < pause_until:
                continue
            x, y = self.medium.position(lid)
            dx, dy = target[0] - x, target[1] - y
            dist = math.hypot(dx, dy)
            step = speed * self.tick
            if dist <= step:
                # Arrived: pause, then pick a new leg.
                self.medium.set_position(lid, target)
                self._legs[lid] = (
                    self._pick_waypoint(),
                    self._pick_speed(),
                    now + self.pause,
                )
            else:
                self.medium.set_position(
                    lid, (x + dx / dist * step, y + dy / dist * step)
                )
        self.sim.schedule(self.tick, self._step)


class ChurnModel(MobilityModel):
    """Random join/leave churn via radio enable/disable.

    Every ``interval`` seconds (exponential), a uniformly chosen node
    toggles between present and absent.  ``min_present`` keeps the
    network from churning itself empty.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        link_ids: list[int],
        interval: float = 30.0,
        min_present: int = 2,
        rng: SimRNG | None = None,
    ):
        self.sim = sim
        self.medium = medium
        self.link_ids = list(link_ids)
        self.interval = interval
        self.min_present = min_present
        self._rng = rng or sim.rng("mobility/churn")
        self._running = False
        self._absent: set[int] = set()
        #: Hooks: called with link_id on each transition.
        self.on_leave = None
        self.on_join = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(self._rng.expovariate(1.0 / self.interval), self._toggle)

    def stop(self) -> None:
        self._running = False

    def _toggle(self) -> None:
        if not self._running:
            return
        lid = self._rng.choice(self.link_ids)
        # A scenario may detach a radio the model still tracks; the
        # medium treats enable/disable of a detached link as a no-op,
        # so the toggle below is safe either way.
        if lid in self._absent:
            self._absent.discard(lid)
            self.medium.set_enabled(lid, True)
            if self.on_join:
                self.on_join(lid)
        elif len(self.link_ids) - len(self._absent) > self.min_present:
            self._absent.add(lid)
            self.medium.set_enabled(lid, False)
            if self.on_leave:
                self.on_leave(lid)
        self.sim.schedule(self._rng.expovariate(1.0 / self.interval), self._toggle)
