"""Wireless physical/link substrate.

A deterministic unit-disk radio model standing in for the paper's
(unspecified) 802.11 testbed:

* :class:`~repro.phy.medium.WirelessMedium` -- broadcast/unicast frame
  delivery with transmission + propagation delay, Bernoulli per-link
  loss, and MAC-style unicast retries with failure callbacks (the signal
  DSR route maintenance consumes).
* :mod:`repro.phy.mobility` -- static, random-waypoint and teleporting
  membership churn models.
* :mod:`repro.phy.neighbor_index` -- incremental spatial-hash grid (and
  the naive full-scan reference) behind the medium's range queries; the
  fast path that makes 1000-node floods near-linear.
* :mod:`repro.phy.topology` -- placement generators (uniform, grid,
  chain, clustered) and connectivity analysis.

Frames carry an unauthenticated ``(src_link, src_ip)`` pair, mirroring
MAC/ND caches in real stacks: any node may *claim* any source IP at the
link layer, and it is the protocol's cryptographic checks -- not the
radio -- that must catch lies.  Collisions are not modelled; per-link
Bernoulli loss plus jittered rebroadcasts capture the loss behaviour the
protocol logic is sensitive to (see DESIGN.md substitutions).
"""

from repro.phy.medium import Frame, RadioHandle, WirelessMedium, BROADCAST_LINK
from repro.phy.mobility import MobilityModel, StaticMobility, RandomWaypoint, ChurnModel
from repro.phy.neighbor_index import NaiveScanIndex, SpatialHashGrid, make_index
from repro.phy.topology import (
    chain_positions,
    grid_positions,
    uniform_positions,
    clustered_positions,
    connectivity_graph,
    is_connected,
)

__all__ = [
    "Frame",
    "RadioHandle",
    "WirelessMedium",
    "BROADCAST_LINK",
    "MobilityModel",
    "StaticMobility",
    "RandomWaypoint",
    "ChurnModel",
    "NaiveScanIndex",
    "SpatialHashGrid",
    "make_index",
    "chain_positions",
    "grid_positions",
    "uniform_positions",
    "clustered_positions",
    "connectivity_graph",
    "is_connected",
]
