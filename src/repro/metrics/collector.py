"""The scenario-wide metrics collector.

Counts are grouped into small orthogonal families so experiments can
read exactly what they need:

* per-message-type send/receive counts and bytes (control overhead),
* per-flow data delivery (PDR, end-to-end latency),
* security verdicts (messages accepted/rejected and why),
* crypto operation counts,
* bootstrap outcomes (DAD rounds, collisions detected, time to address).

The collector is deliberately passive -- plain counters, no simulation
side effects -- so attaching it never perturbs a run.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.ipv6.address import IPv6Address


@dataclass
class FlowStats:
    """Delivery bookkeeping for one (src, dst) data flow."""

    sent: int = 0
    delivered: int = 0
    acked: int = 0
    dropped: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def pdr(self) -> float:
        """Packet delivery ratio; 0 when nothing was sent."""
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class MetricsCollector:
    """Scenario-wide event sink.  See module docstring for the families."""

    def __init__(self):
        # message-type name -> counters
        self.msgs_sent: dict[str, int] = defaultdict(int)
        self.msgs_received: dict[str, int] = defaultdict(int)
        self.bytes_sent: dict[str, int] = defaultdict(int)
        # (src, dst) -> FlowStats
        self.flows: dict[tuple[IPv6Address, IPv6Address], FlowStats] = defaultdict(FlowStats)
        # security verdict -> count;  verdict strings are dotted, e.g.
        # "rrep.rejected.bad_signature", "arep.accepted"
        self.verdicts: dict[str, int] = defaultdict(int)
        # crypto op counts per backend
        self.crypto_ops: dict[str, int] = defaultdict(int)
        # bootstrap outcomes
        self.dad_rounds: dict[str, int] = defaultdict(int)  # node name -> rounds
        self.dad_time: dict[str, float] = {}  # node name -> seconds to final addr
        self.collisions_detected = 0
        self.name_conflicts_detected = 0
        # route discovery
        self.discoveries_started = 0
        self.discoveries_succeeded = 0
        self.discovery_latencies: list[float] = []
        self.creps_used = 0
        self.rerrs_received = 0

    # -- message accounting ------------------------------------------------
    def on_send(self, msg_name: str, size: int) -> None:
        self.msgs_sent[msg_name] += 1
        self.bytes_sent[msg_name] += size

    def on_receive(self, msg_name: str) -> None:
        self.msgs_received[msg_name] += 1

    def control_bytes(self) -> int:
        """Total control-plane bytes (everything except DATA payload carriers)."""
        return sum(v for k, v in self.bytes_sent.items() if k != "DATA")

    def control_messages(self) -> int:
        return sum(v for k, v in self.msgs_sent.items() if k != "DATA")

    # -- data plane ----------------------------------------------------------
    def on_data_sent(self, src: IPv6Address, dst: IPv6Address) -> None:
        self.flows[(src, dst)].sent += 1

    def on_data_delivered(self, src: IPv6Address, dst: IPv6Address, latency: float) -> None:
        st = self.flows[(src, dst)]
        st.delivered += 1
        st.latencies.append(latency)

    def on_data_acked(self, src: IPv6Address, dst: IPv6Address) -> None:
        self.flows[(src, dst)].acked += 1

    def on_data_dropped(self, src: IPv6Address, dst: IPv6Address) -> None:
        self.flows[(src, dst)].dropped += 1

    def delivered(self, src: IPv6Address, dst: IPv6Address) -> int:
        return self.flows[(src, dst)].delivered

    def pdr(self, src: IPv6Address | None = None, dst: IPv6Address | None = None) -> float:
        """PDR of one flow, or aggregate over all flows."""
        if src is not None and dst is not None:
            return self.flows[(src, dst)].pdr
        sent = sum(f.sent for f in self.flows.values())
        delivered = sum(f.delivered for f in self.flows.values())
        return delivered / sent if sent else 0.0

    # -- security ------------------------------------------------------------
    def on_verdict(self, verdict: str) -> None:
        self.verdicts[verdict] += 1

    def accepted(self, msg: str) -> int:
        return self.verdicts[f"{msg}.accepted"]

    def rejected(self, msg: str) -> int:
        """All rejections of a message kind, summed over reasons."""
        prefix = f"{msg}.rejected"
        return sum(v for k, v in self.verdicts.items() if k.startswith(prefix))

    # -- crypto ----------------------------------------------------------------
    def on_crypto(self, backend: str, op: str) -> None:
        self.crypto_ops[f"{backend}.{op}"] += 1

    def crypto_total(self, op: str | None = None) -> int:
        if op is None:
            return sum(self.crypto_ops.values())
        return sum(v for k, v in self.crypto_ops.items() if k.endswith(f".{op}"))

    # -- bootstrap ----------------------------------------------------------------
    def on_dad_round(self, node_name: str) -> None:
        self.dad_rounds[node_name] += 1

    def on_address_configured(self, node_name: str, elapsed: float) -> None:
        self.dad_time[node_name] = elapsed

    def on_collision_detected(self) -> None:
        self.collisions_detected += 1

    def on_name_conflict(self) -> None:
        self.name_conflicts_detected += 1

    # -- route discovery -------------------------------------------------------
    def on_discovery_started(self) -> None:
        self.discoveries_started += 1

    def on_discovery_succeeded(self, latency: float, via_crep: bool = False) -> None:
        self.discoveries_succeeded += 1
        self.discovery_latencies.append(latency)
        if via_crep:
            self.creps_used += 1

    def on_rerr(self) -> None:
        self.rerrs_received += 1

    @property
    def mean_discovery_latency(self) -> float:
        lat = self.discovery_latencies
        return sum(lat) / len(lat) if lat else 0.0
