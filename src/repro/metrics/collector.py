"""The scenario-wide metrics collector.

Counts are grouped into small orthogonal families so experiments can
read exactly what they need:

* per-message-type send/receive counts and bytes (control overhead),
* per-flow data delivery (PDR, end-to-end latency),
* security verdicts (messages accepted/rejected and why),
* crypto operation counts,
* bootstrap outcomes (DAD rounds, collisions detected, time to address).

The collector is deliberately passive -- plain counters, no simulation
side effects -- so attaching it never perturbs a run.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.ipv6.address import IPv6Address
from repro.messages.codec import encode_call_count


def _quantile_sorted(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); 0 when empty.

    Pure python so the collector stays dependency-free and the result is
    bit-stable across numpy versions (campaign baselines diff on it).
    Taking several quantiles of one list?  Use :func:`percentiles`,
    which sorts once instead of per call.
    """
    return _quantile_sorted(sorted(values), q)


def percentiles(values: list[float], qs) -> list[float]:
    """Several quantiles of one list, sharing a single sort.

    Byte-identical to calling :func:`percentile` per ``q`` -- the sort
    and the interpolation are the same -- just without re-sorting the
    full list for every quantile, which is measurably cheaper on the
    big per-flow latency lists of heavy campaigns.
    """
    ordered = sorted(values)
    return [_quantile_sorted(ordered, q) for q in qs]


@dataclass
class FlowStats:
    """Delivery bookkeeping for one (src, dst) data flow."""

    sent: int = 0
    delivered: int = 0
    acked: int = 0
    dropped: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def pdr(self) -> float:
        """Packet delivery ratio; 0 when nothing was sent."""
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class MetricsCollector:
    """Scenario-wide event sink.  See module docstring for the families.

    ``encode_calls`` is delta-tracked from the *process-wide*
    ``encode_call_count()`` counter, so it is only attributable to this
    collector while at most one scenario is live per process at a time
    and the collector's window is closed (:meth:`freeze`, or simply
    discarding it) before the next run starts.  That is how the campaign
    executes (workers run scenarios strictly sequentially and ship only
    the frozen ``summary()`` dict across the process boundary, see
    :mod:`repro.campaign.runner`); code that keeps an earlier run's
    collector live through a later run, or interleaves two live
    scenarios in one process, will see encodes cross-attributed.
    """

    def __init__(self):
        # message-type name -> counters
        self.msgs_sent: dict[str, int] = defaultdict(int)
        self.msgs_received: dict[str, int] = defaultdict(int)
        self.bytes_sent: dict[str, int] = defaultdict(int)
        # (src, dst) -> FlowStats
        self.flows: dict[tuple[IPv6Address, IPv6Address], FlowStats] = defaultdict(FlowStats)
        # security verdict -> count;  verdict strings are dotted, e.g.
        # "rrep.rejected.bad_signature", "arep.accepted"
        self.verdicts: dict[str, int] = defaultdict(int)
        # crypto op counts per backend
        self.crypto_ops: dict[str, int] = defaultdict(int)
        # bootstrap outcomes
        self.dad_rounds: dict[str, int] = defaultdict(int)  # node name -> rounds
        self.dad_time: dict[str, float] = {}  # node name -> seconds to final addr
        self.collisions_detected = 0
        self.name_conflicts_detected = 0
        # route discovery
        self.discoveries_started = 0
        self.discoveries_succeeded = 0
        self.discovery_latencies: list[float] = []
        self.creps_used = 0
        self.rerrs_received = 0
        # codec work: snapshot of the process-wide encode counter, so
        # ``encode_calls`` reads "actual message encodes since this
        # collector was created" -- the wire cache's proof of work saved.
        # ``None`` base marks a frozen (merged) collector that reports
        # only its folded-in total and never accrues further.
        self._encode_calls_base: int | None = encode_call_count()
        self._encode_calls_merged = 0
        # opt-in kernel instrumentation: a zero-arg callable returning
        # the kernel_stats dict, attached by Scenario.enable_kernel_stats
        self._kernel_stats_provider = None
        # opt-in crypto fast-path instrumentation, same pattern
        # (attached by Scenario.enable_crypto_stats)
        self._crypto_stats_provider = None
        # opt-in fault-injection columns, same pattern (attached by
        # ScenarioBuilder.build when the fault plan has events)
        self._fault_stats_provider = None

    @property
    def encode_calls(self) -> int:
        """Actual codec encode executions attributable to this collector.

        Encodes executed since construction (collectors are created with
        their scenario and read after its run, so this is "the run's
        encodes" in the usual one-scenario-at-a-time flow), plus totals
        folded in by :meth:`merge`.  A merged collector is frozen: it
        reports exactly the sum of its children at merge time, and never
        counts encodes that happen afterwards.  Wire-cache hits do not
        count anywhere.
        """
        if self._encode_calls_base is None:
            return self._encode_calls_merged
        return (
            encode_call_count() - self._encode_calls_base
            + self._encode_calls_merged
        )

    def freeze(self) -> None:
        """Close this collector's encode window at "now".  Idempotent.

        A live collector's ``encode_calls`` window extends to the moment
        it is read, so a collector kept alive past its own run absorbs
        every later run's encodes in the same process.  Call ``freeze()``
        at the end of a run whenever collectors from *sequential*
        same-process runs will later be read or merged together.  The
        campaign runner freezes at its run boundary before reading
        ``summary()`` (campaign workers are reused across runs).
        """
        if self._encode_calls_base is not None:
            self._encode_calls_merged = self.encode_calls
            self._encode_calls_base = None

    def attach_kernel_stats(self, provider) -> None:
        """Surface kernel profiling in :meth:`summary` (opt-in).

        ``provider`` is a zero-arg callable returning a JSON-clean dict
        (typically ``sim.stats_summary``).  When attached, ``summary()``
        gains a nested ``"kernel_stats"`` block; when not, the summary
        is byte-identical to an uninstrumented run -- campaign records
        therefore never contain it (the runner never attaches one).
        """
        self._kernel_stats_provider = provider

    def attach_crypto_stats(self, provider) -> None:
        """Surface crypto fast-path execution counters in :meth:`summary`.

        Same opt-in contract as :meth:`attach_kernel_stats`: ``provider``
        is a zero-arg callable returning a JSON-clean dict (typically
        ``Scenario.crypto_stats``: backend sign/verify call counts,
        shared-verify-cache hits/misses, keypair-pool hits).  These are
        host-execution measurements -- a shared-cache hit changes none of
        the flat summary fields by design -- so they only appear when
        explicitly attached and are never byte-compared.
        """
        self._crypto_stats_provider = provider

    def attach_fault_stats(self, provider) -> None:
        """Surface fault-injection outcomes in :meth:`summary` (opt-in).

        ``provider`` is a zero-arg callable returning a *flat numeric*
        dict (typically ``FaultInjector.stats``: faults_injected,
        crash/recovery counts, re_dad_count, recovery_time_mean/max,
        availability, suppressed/corrupted frame counts) merged into the
        top-level summary so the campaign aggregator folds the columns
        like any others.  Attached only when a scenario's fault plan has
        events, so fault-free summaries stay byte-identical to pre-fault
        builds.
        """
        self._fault_stats_provider = provider

    # -- message accounting ------------------------------------------------
    def on_send(self, msg_name: str, size: int) -> None:
        self.msgs_sent[msg_name] += 1
        self.bytes_sent[msg_name] += size

    def on_receive(self, msg_name: str) -> None:
        self.msgs_received[msg_name] += 1

    def control_bytes(self) -> int:
        """Total control-plane bytes (everything except DATA payload carriers)."""
        return sum(v for k, v in self.bytes_sent.items() if k != "DATA")

    def control_messages(self) -> int:
        return sum(v for k, v in self.msgs_sent.items() if k != "DATA")

    # -- data plane ----------------------------------------------------------
    def on_data_sent(self, src: IPv6Address, dst: IPv6Address) -> None:
        self.flows[(src, dst)].sent += 1

    def on_data_delivered(self, src: IPv6Address, dst: IPv6Address, latency: float) -> None:
        st = self.flows[(src, dst)]
        st.delivered += 1
        st.latencies.append(latency)

    def on_data_acked(self, src: IPv6Address, dst: IPv6Address) -> None:
        self.flows[(src, dst)].acked += 1

    def on_data_dropped(self, src: IPv6Address, dst: IPv6Address) -> None:
        self.flows[(src, dst)].dropped += 1

    def delivered(self, src: IPv6Address, dst: IPv6Address) -> int:
        return self.flows[(src, dst)].delivered

    def pdr(self, src: IPv6Address | None = None, dst: IPv6Address | None = None) -> float:
        """PDR of one flow, or aggregate over all flows."""
        if src is not None and dst is not None:
            return self.flows[(src, dst)].pdr
        sent = sum(f.sent for f in self.flows.values())
        delivered = sum(f.delivered for f in self.flows.values())
        return delivered / sent if sent else 0.0

    # -- security ------------------------------------------------------------
    def on_verdict(self, verdict: str) -> None:
        self.verdicts[verdict] += 1

    def accepted(self, msg: str) -> int:
        return self.verdicts[f"{msg}.accepted"]

    def rejected(self, msg: str) -> int:
        """All rejections of a message kind, summed over reasons."""
        prefix = f"{msg}.rejected"
        return sum(v for k, v in self.verdicts.items() if k.startswith(prefix))

    # -- crypto ----------------------------------------------------------------
    def on_crypto(self, backend: str, op: str) -> None:
        self.crypto_ops[f"{backend}.{op}"] += 1

    def crypto_total(self, op: str | None = None) -> int:
        if op is None:
            return sum(self.crypto_ops.values())
        return sum(v for k, v in self.crypto_ops.items() if k.endswith(f".{op}"))

    # -- bootstrap ----------------------------------------------------------------
    def on_dad_round(self, node_name: str) -> None:
        self.dad_rounds[node_name] += 1

    def on_address_configured(self, node_name: str, elapsed: float) -> None:
        self.dad_time[node_name] = elapsed

    def on_collision_detected(self) -> None:
        self.collisions_detected += 1

    def on_name_conflict(self) -> None:
        self.name_conflicts_detected += 1

    # -- route discovery -------------------------------------------------------
    def on_discovery_started(self) -> None:
        self.discoveries_started += 1

    def on_discovery_succeeded(self, latency: float, via_crep: bool = False) -> None:
        self.discoveries_succeeded += 1
        self.discovery_latencies.append(latency)
        if via_crep:
            self.creps_used += 1

    def on_rerr(self) -> None:
        self.rerrs_received += 1

    @property
    def mean_discovery_latency(self) -> float:
        lat = self.discovery_latencies
        return sum(lat) / len(lat) if lat else 0.0

    # -- aggregation ------------------------------------------------------
    def summary(self) -> dict:
        """A flat, JSON-serializable digest of the whole run.

        Every value is an int or float, so summaries can be written to
        JSONL, diffed byte-for-byte across campaign replicates, and
        averaged column-wise by the campaign aggregator.  The exceptions
        are the nested ``kernel_stats`` and ``crypto_stats`` blocks,
        present only when the corresponding instrumentation was
        explicitly attached (:meth:`attach_kernel_stats` /
        :meth:`attach_crypto_stats`); they hold host-execution
        measurements and are deliberately absent from anything
        byte-compared.
        """
        latencies = [lat for f in self.flows.values() for lat in f.latencies]
        latency_p50, latency_p95 = percentiles(latencies, (50.0, 95.0))
        data_sent = sum(f.sent for f in self.flows.values())
        data_delivered = sum(f.delivered for f in self.flows.values())
        boot_times = list(self.dad_time.values())
        out = {
            # data plane
            "flows": len(self.flows),
            "data_sent": data_sent,
            "data_delivered": data_delivered,
            "data_acked": sum(f.acked for f in self.flows.values()),
            "data_dropped": sum(f.dropped for f in self.flows.values()),
            "pdr": data_delivered / data_sent if data_sent else 0.0,
            "latency_mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "latency_p50": latency_p50,
            "latency_p95": latency_p95,
            # control overhead
            "msgs_sent_total": sum(self.msgs_sent.values()),
            "msgs_received_total": sum(self.msgs_received.values()),
            "bytes_sent_total": sum(self.bytes_sent.values()),
            "control_messages": self.control_messages(),
            "control_bytes": self.control_bytes(),
            # security
            "verdicts_accepted": sum(
                v for k, v in self.verdicts.items() if ".accepted" in k
            ),
            "verdicts_rejected": sum(
                v for k, v in self.verdicts.items() if ".rejected" in k
            ),
            # crypto
            "crypto_ops_total": sum(self.crypto_ops.values()),
            "crypto_sign_ops": self.crypto_total("sign"),
            "crypto_verify_ops": self.crypto_total("verify"),
            "crypto_verify_cache_hits": self.crypto_total("verify_cached"),
            # codec
            "encode_calls": self.encode_calls,
            # bootstrap
            "configured_nodes": len(self.dad_time),
            "dad_rounds_total": sum(self.dad_rounds.values()),
            "bootstrap_time_mean": (
                sum(boot_times) / len(boot_times) if boot_times else 0.0
            ),
            "bootstrap_time_max": max(boot_times) if boot_times else 0.0,
            "collisions_detected": self.collisions_detected,
            "name_conflicts_detected": self.name_conflicts_detected,
            # route discovery
            "discoveries_started": self.discoveries_started,
            "discoveries_succeeded": self.discoveries_succeeded,
            "discovery_latency_mean": self.mean_discovery_latency,
            "discovery_latency_p95": percentile(self.discovery_latencies, 95.0),
            "creps_used": self.creps_used,
            "rerrs_received": self.rerrs_received,
        }
        if self._fault_stats_provider is not None:
            out.update(self._fault_stats_provider())
        if self._kernel_stats_provider is not None:
            out["kernel_stats"] = self._kernel_stats_provider()
        if self._crypto_stats_provider is not None:
            out["crypto_stats"] = self._crypto_stats_provider()
        return out

    @classmethod
    def merge(cls, collectors) -> "MetricsCollector":
        """Combine several collectors (e.g. one per campaign run) into one.

        Counters sum, flow stats and latency lists concatenate.  The
        per-node bootstrap dicts are keyed by node name, which repeats
        across runs; ``dad_rounds`` sums on collision and ``dad_time``
        keeps the worst (max) time, so the merged view stays a
        conservative aggregate rather than silently overwriting.

        ``encode_calls`` sums each child's reading at merge time, so
        children that ran sequentially in *one* process must have been
        :meth:`freeze`-d at their own run boundaries -- a still-live
        earlier child's window covers the later runs too, double-counting
        their encodes in the sum.  (The campaign never merges live
        collectors: workers ship frozen ``summary()`` dicts, and the
        aggregator combines those.)
        """
        merged = cls()
        for coll in collectors:
            for k, v in coll.msgs_sent.items():
                merged.msgs_sent[k] += v
            for k, v in coll.msgs_received.items():
                merged.msgs_received[k] += v
            for k, v in coll.bytes_sent.items():
                merged.bytes_sent[k] += v
            for key, st in coll.flows.items():
                agg = merged.flows[key]
                agg.sent += st.sent
                agg.delivered += st.delivered
                agg.acked += st.acked
                agg.dropped += st.dropped
                agg.latencies.extend(st.latencies)
            for k, v in coll.verdicts.items():
                merged.verdicts[k] += v
            for k, v in coll.crypto_ops.items():
                merged.crypto_ops[k] += v
            for k, v in coll.dad_rounds.items():
                merged.dad_rounds[k] += v
            for k, v in coll.dad_time.items():
                merged.dad_time[k] = max(v, merged.dad_time.get(k, 0.0))
            merged.collisions_detected += coll.collisions_detected
            merged.name_conflicts_detected += coll.name_conflicts_detected
            merged.discoveries_started += coll.discoveries_started
            merged.discoveries_succeeded += coll.discoveries_succeeded
            merged.discovery_latencies.extend(coll.discovery_latencies)
            merged.creps_used += coll.creps_used
            merged.rerrs_received += coll.rerrs_received
            merged._encode_calls_merged += coll.encode_calls
        # Freeze: the merged view must not keep counting encodes that
        # happen in this process after the merge (see encode_calls).
        merged._encode_calls_base = None
        return merged
