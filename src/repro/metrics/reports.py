"""Aggregated report views over a :class:`MetricsCollector`.

The benchmark harness prints these; they are also handy interactively.
``format_table`` renders the same fixed-width ASCII tables used in
EXPERIMENTS.md, so documented results and rerun output line up exactly.
"""

from __future__ import annotations

from repro.metrics.collector import MetricsCollector


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width ASCII table; every cell stringified."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def delivery_report(metrics: MetricsCollector) -> str:
    """Per-flow PDR / latency table."""
    rows = []
    for (src, dst), st in sorted(metrics.flows.items(), key=lambda kv: str(kv[0])):
        rows.append([
            str(src), str(dst), st.sent, st.delivered,
            f"{st.pdr:.3f}", f"{st.mean_latency * 1e3:.2f} ms",
        ])
    return format_table(
        ["src", "dst", "sent", "delivered", "PDR", "mean latency"],
        rows,
        title="Data delivery",
    )


def overhead_report(metrics: MetricsCollector) -> str:
    """Control-message counts and byte overhead by type."""
    rows = []
    for name in sorted(set(metrics.msgs_sent) | set(metrics.msgs_received)):
        rows.append([
            name,
            metrics.msgs_sent.get(name, 0),
            metrics.msgs_received.get(name, 0),
            metrics.bytes_sent.get(name, 0),
        ])
    rows.append(["(control total)", metrics.control_messages(), "", metrics.control_bytes()])
    return format_table(
        ["message", "sent", "received", "bytes sent"],
        rows,
        title="Control overhead",
    )


def security_report(metrics: MetricsCollector) -> str:
    """Accept/reject verdicts, grouped by message kind and reason."""
    rows = [[k, v] for k, v in sorted(metrics.verdicts.items())]
    return format_table(["verdict", "count"], rows, title="Security verdicts")


def crypto_report(metrics: MetricsCollector) -> str:
    rows = [[k, v] for k, v in sorted(metrics.crypto_ops.items())]
    rows.append(["(total)", metrics.crypto_total()])
    return format_table(["backend.op", "count"], rows, title="Crypto operations")
