"""Measurement plumbing.

One :class:`~repro.metrics.collector.MetricsCollector` per scenario;
nodes and protocol components report events into it and the benchmark
harness reads aggregated views out of
:mod:`repro.metrics.reports`.
"""

from repro.metrics.collector import MetricsCollector, FlowStats, percentile
from repro.metrics.reports import (
    delivery_report,
    overhead_report,
    security_report,
    format_table,
)

__all__ = [
    "MetricsCollector",
    "FlowStats",
    "percentile",
    "delivery_report",
    "overhead_report",
    "security_report",
    "format_table",
]
