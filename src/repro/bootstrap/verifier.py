"""The paper's two-step identity verification, as a reusable check.

Every identity-bearing message (AREP, each SRR entry, RREP, CREP legs,
RERR) is validated the same way (Sections 3.1 and 3.3):

1. **CGA check** -- the lower 64 bits of the claimed IP equal
   ``H(PK, rn)`` (and the address is well-formed site-local), binding
   the IP to the key pair;
2. **Signature check** -- the attached ``[...]_SK`` decrypts (verifies)
   under PK over the expected canonical payload, proving possession of
   the private key *for this specific context* (challenge, sequence
   number, route...).

Passing both means "the sender is who the address says it is";
:func:`verify_identity` returns a structured verdict so callers can
report *why* something was rejected (the benchmarks aggregate these
reasons).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.backend import CryptoBackend
from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import CGAParams, verify_cga


@dataclass(frozen=True)
class IdentityCheck:
    """Verdict of a two-step identity verification."""

    ok: bool
    #: "" when ok; otherwise "bad_cga" or "bad_signature".
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def verify_identity(
    backend: CryptoBackend,
    ip: IPv6Address,
    public_key: PublicKey,
    rn: int,
    signature: bytes,
    payload: bytes,
    verify_fn=None,
) -> IdentityCheck:
    """Run the CGA check then the signature check (see module docstring).

    ``payload`` must be the canonical signed bytes from
    :mod:`repro.messages.signing` -- caller picks the right constructor
    for the message kind being verified.  ``verify_fn`` (default
    ``backend.verify``) lets node code route the signature check through
    :meth:`repro.core.node.Node.verify` so metrics and simulated crypto
    delay are accounted.
    """
    try:
        params = CGAParams(public_key, rn)
    except ValueError:
        return IdentityCheck(False, "bad_cga")
    if not verify_cga(ip, params):
        return IdentityCheck(False, "bad_cga")
    check = verify_fn if verify_fn is not None else backend.verify
    if not check(public_key, payload, signature):
        return IdentityCheck(False, "bad_signature")
    return IdentityCheck(True)


def verify_identity_batch(
    items: list[tuple[IPv6Address, PublicKey, int, bytes, bytes]],
    verify_batch_fn,
) -> tuple[int, str]:
    """Batched :func:`verify_identity` with first-failure semantics.

    ``items`` holds ``(ip, public_key, rn, signature, payload)`` tuples
    (a RREQ's source-route entries, presented together);
    ``verify_batch_fn`` is :meth:`repro.core.node.Node.verify_batch`.
    Returns ``(n_ok, reason)``: how many leading items passed both
    checks, and ``""`` (all passed) or the first failing item's reason.

    Equivalent, observably, to calling :func:`verify_identity` per item
    in order and stopping at the first failure: the CGA checks are pure
    hashing with no metrics/trace/debt side effects, so hoisting them
    ahead of the signature pass cannot be seen from inside the
    simulation; the signature checks then run through the node's batch
    path in original item order, which replays per-item accounting
    exactly and stops where the sequential loop would have stopped.
    """
    sig_items: list[tuple[PublicKey, bytes, bytes]] = []
    first_bad_cga = len(items)
    for i, (ip, public_key, rn, signature, payload) in enumerate(items):
        try:
            params = CGAParams(public_key, rn)
            cga_ok = verify_cga(ip, params)
        except ValueError:
            cga_ok = False
        if not cga_ok:
            # Items past a CGA failure are unreachable in the sequential
            # loop; never verify (or even precompute) their signatures.
            first_bad_cga = i
            break
        sig_items.append((public_key, payload, signature))
    verdicts = verify_batch_fn(sig_items)
    if verdicts and not verdicts[-1]:
        return (len(verdicts) - 1, "bad_signature")
    if first_bad_cga < len(items):
        return (first_bad_cga, "bad_cga")
    return (len(items), "")
