"""Secure address autoconfiguration (Section 3.1).

:class:`~repro.bootstrap.autoconf.BootstrapManager` drives a node from
"no address" to a verified-unique CGA site-local address and (optionally)
a registered domain name:

1. generate ``fec0::H(PK, rn)`` with a fresh random modifier,
2. flood ``AREQ(SIP, seq, DN, ch, RR)`` and wait ``dad_timeout``,
3. a duplicate holder answers ``AREP`` (challenge signed; CGA-checked),
   forcing a new ``rn`` and another round,
4. the DNS server answers a name conflict with a signed ``DREP``,
   forcing a new name,
5. silence means success: adopt the identity (and the DNS registers the
   name after its own quiet window).

:mod:`repro.bootstrap.verifier` holds the two-step identity check
("CGA hash matches" + "challenge correctly signed") shared with the
routing and DNS layers.
"""

from repro.bootstrap.autoconf import BootstrapManager
from repro.bootstrap.verifier import verify_identity, IdentityCheck

__all__ = ["BootstrapManager", "verify_identity", "IdentityCheck"]
