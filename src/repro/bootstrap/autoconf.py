"""Secure address autoconfiguration -- the Section 3.1 state machine.

Three roles share this component:

* **Joiner** -- :meth:`BootstrapManager.start` floods AREQ rounds until
  one passes silently (then the node adopts the address) or the retry
  budget is exhausted.
* **Relay/defender** -- every configured node rebroadcasts first-seen
  AREQs with its own address appended to RR, and *defends* its address
  when an AREQ claims it: a signed AREP travels the reverse RR to the
  joiner and a second signed copy warns the DNS.
* **Forwarder** -- nodes on the reverse RR relay AREP/DREP hop by hop;
  the final hop to the (still address-less) joiner is broadcast, per the
  paper's footnote.

Replay safety: the joiner draws a fresh ``ch`` per round; an AREP is
accepted only if its signature covers the *pending* challenge, so
recorded replies from earlier rounds (or other joiners) verify but don't
match and are rejected.
"""

from __future__ import annotations

from typing import Callable

from repro.bootstrap.verifier import verify_identity
from repro.core.node import Node
from repro.ipv6.address import IPv6Address
from repro.ipv6.cga import generate_cga
from repro.messages import signing
from repro.messages.bootstrap import AREP, AREQ, DREP
from repro.phy.medium import Frame
from repro.sim.process import Timer


class BootstrapManager:
    """Per-node secure DAD + name-registration driver."""

    def __init__(self, node: Node):
        self.node = node
        self.cfg = node.config
        self._rng = node.rng("bootstrap")
        # Joiner state
        self.state = "idle"  # idle | probing | configured | failed
        self.tentative_ip: IPv6Address | None = None
        self._tentative_params = None
        self.pending_ch: int | None = None
        self.pending_seq: int | None = None
        self.requested_name = ""
        self.round = 0
        self._started_at = 0.0
        self._timer = Timer(node.sim, self._dad_timeout_fired)
        self.on_configured: list[Callable[[Node], None]] = []
        self.on_failed: list[Callable[[Node], None]] = []
        # Flood dedup: (sip, seq) for AREQs, (sip, ch) for DNS-warning AREPs
        self._seen_areqs: set[tuple[IPv6Address, int]] = set()
        self._seen_warnings: set[tuple[IPv6Address, int]] = set()

        node.register_handler(AREQ, self._on_areq)
        node.register_handler(AREP, self._on_arep)
        node.register_handler(DREP, self._on_drep)

    # ------------------------------------------------------------------
    # joiner side
    # ------------------------------------------------------------------
    def start(self, domain_name: str = "") -> None:
        """Begin secure DAD, optionally registering ``domain_name``."""
        if self.state == "probing":
            raise RuntimeError(f"{self.node.name}: DAD already in progress")
        self.requested_name = domain_name
        self.round = 0
        self._started_at = self.node.sim.now
        self.state = "probing"
        self._new_address_round(new_rn=True)

    def reprobe(self) -> None:
        """Re-run DAD on the *current* address (partition-heal support).

        After a network merge, two halves may each hold a node that
        configured the same address while they could not hear each
        other; every configured host therefore optimistically re-probes.
        The common case -- still unique -- just re-announces the existing
        identity (and re-registers its name, since the AREQ carries it);
        an actual duplicate triggers the normal AREP defence and the
        loser draws a fresh address, exactly as in initial DAD.
        """
        if self.state != "configured":
            return
        self.state = "probing"
        self.round = 0
        self._started_at = self.node.sim.now
        self.tentative_ip = self.node.ip
        self._tentative_params = self.node.cga_params
        self.requested_name = self.node.domain_name
        self._new_address_round(new_rn=False)

    def reset_state(self) -> None:
        """Crash support: forget all DAD/registration state (cold boot).

        Cancels the round timer and clears joiner state and flood-dedup
        sets.  The ``on_configured``/``on_failed`` callback lists are
        deliberately kept: they are harness-level wiring (metrics,
        experiment orchestration), not protocol soft state.
        """
        self._timer.cancel()
        self.state = "idle"
        self.tentative_ip = None
        self._tentative_params = None
        self.pending_ch = None
        self.pending_seq = None
        self.requested_name = ""
        self.round = 0
        self._seen_areqs.clear()
        self._seen_warnings.clear()

    def _new_address_round(self, new_rn: bool) -> None:
        """Launch one DAD round; ``new_rn`` redraws the address modifier."""
        self.round += 1
        if self.round > self.cfg.dad_max_retries:
            self.state = "failed"
            self.node.note("bootstrap failed: retry budget exhausted")
            for cb in self.on_failed:
                cb(self.node)
            return
        if new_rn or self.tentative_ip is None:
            self.tentative_ip, self._tentative_params = generate_cga(
                self.node.public_key, self._rng
            )
        self.pending_ch = self._rng.nonce(64)
        self.pending_seq = self.node.next_seq()
        self.node.ctx.metrics.on_dad_round(self.node.name)
        areq = AREQ(
            sip=self.tentative_ip,
            seq=self.pending_seq,
            domain_name=self.requested_name,
            ch=self.pending_ch,
            route_record=(),
            hop_limit=self.cfg.hop_limit,
        )
        # Mark our own probe as seen so a looped-back copy is not relayed.
        self._seen_areqs.add((areq.sip, areq.seq))
        # The joiner claims the tentative source so neighbours can cache it
        # even before DAD completes (harmless: the crypto checks gate trust).
        self.node.broadcast(areq, claimed_src=self.tentative_ip)
        self._timer.start(self.cfg.dad_timeout)

    def _dad_timeout_fired(self) -> None:
        """Silence for dad_timeout => address (and name) presumed unique."""
        if self.state != "probing":
            return
        self.state = "configured"
        self.node.adopt_identity(self.tentative_ip, self._tentative_params)
        self.node.domain_name = self.requested_name
        elapsed = self.node.sim.now - self._started_at
        self.node.ctx.metrics.on_address_configured(self.node.name, elapsed)
        self.node.note(f"configured {self.node.ip} after {self.round} round(s)")
        if self.requested_name and self.cfg.enable_registration_refresh:
            self.node.sim.schedule(
                self.cfg.registration_refresh_delay, self._registration_refresh
            )
        for cb in self.on_configured:
            cb(self.node)

    def _registration_refresh(self) -> None:
        """Re-flood a registration AREQ now that the network can relay it.

        The very first joiners probe into a network where no neighbour is
        configured yet, so their original AREQ may never have reached the
        DNS; this refresh repeats the (DAD + registration) announcement
        from a fully formed network.  A DREP can still arrive and take
        the name away (we were not first after all).
        """
        if self.state != "configured" or not self.node.domain_name:
            return
        self.pending_ch = self._rng.nonce(64)
        self.pending_seq = self.node.next_seq()
        areq = AREQ(
            sip=self.node.ip,
            seq=self.pending_seq,
            domain_name=self.node.domain_name,
            ch=self.pending_ch,
            route_record=(),
            hop_limit=self.cfg.hop_limit,
        )
        self._seen_areqs.add((areq.sip, areq.seq))
        self.node.broadcast(areq)

    # ------------------------------------------------------------------
    # responder / relay side
    # ------------------------------------------------------------------
    def _on_areq(self, frame: Frame, msg: AREQ) -> None:
        key = (msg.sip, msg.seq)
        if key in self._seen_areqs:
            return
        self._seen_areqs.add(key)

        if self.node.configured and msg.sip == self.node.ip:
            self._defend_address(msg)
            return
        # Non-colliding configured nodes relay the flood.
        if self.node.configured and msg.hop_limit > 1:
            relayed = msg.append_hop(self.node.ip)
            delay = self._rng.uniform(0.0, self.cfg.rebroadcast_jitter)
            self.node.sim.schedule(delay, self.node.broadcast, relayed)

    def _defend_address(self, msg: AREQ) -> None:
        """We hold the address the AREQ probes: answer with proof (AREP)."""
        self.node.ctx.metrics.on_collision_detected()
        self.node.verdict("dad.collision_detected")
        signature = self.node.sign(signing.arep_payload(self.node.ip, msg.ch))
        arep = AREP(
            sip=self.node.ip,
            route_record=msg.route_record,
            signature=signature,
            public_key=self.node.public_key,
            rn=self.node.cga_params.rn,
            ch=msg.ch,
            hop_limit=self.cfg.hop_limit,
        )
        self._send_reverse(arep, msg.route_record)
        # Warn the DNS so it drops any pending (DN, SIP) registration.
        warning = arep.replace(to_dns=True, route_record=())
        self._seen_warnings.add((warning.sip, warning.ch))
        self.node.broadcast(warning)

    def _send_reverse(self, msg: AREP | DREP, rr: tuple[IPv6Address, ...]) -> None:
        """First hop of the reverse-RR unicast (or final-hop broadcast)."""
        if rr:
            self.node.unicast_ip(rr[-1], msg)
        else:
            # Joiner is a direct neighbour; it has no routable address yet,
            # so the last hop is a broadcast (paper footnote).
            self.node.broadcast(msg)

    def _forward_reverse(self, msg: AREP | DREP, rr: tuple[IPv6Address, ...]) -> bool:
        """Relay a reverse-path reply if we sit on its RR.  True if consumed."""
        if not self.node.configured or self.node.ip not in rr:
            return False
        idx = rr.index(self.node.ip)
        fwd = msg.replace(hop_limit=msg.hop_limit - 1)
        if fwd.hop_limit <= 0:
            return True
        if idx == 0:
            self.node.broadcast(fwd)  # final hop to the address-less joiner
        else:
            self.node.unicast_ip(rr[idx - 1], fwd)
        return True

    # ------------------------------------------------------------------
    # reply handling (joiner + relays)
    # ------------------------------------------------------------------
    def _on_arep(self, frame: Frame, msg: AREP) -> None:
        if msg.to_dns:
            self._relay_dns_warning(msg)
            return
        if self.state == "probing" and msg.sip == self.tentative_ip:
            self._consume_arep(msg)
            return
        self._forward_reverse(msg, msg.route_record)

    def _relay_dns_warning(self, msg: AREP) -> None:
        """Flood-relay the DNS warning copy (dedup on (SIP, ch))."""
        key = (msg.sip, msg.ch)
        if key in self._seen_warnings:
            return
        self._seen_warnings.add(key)
        if self.node.configured and msg.hop_limit > 1:
            delay = self._rng.uniform(0.0, self.cfg.rebroadcast_jitter)
            self.node.sim.schedule(
                delay, self.node.broadcast, msg.replace(hop_limit=msg.hop_limit - 1)
            )

    def _consume_arep(self, msg: AREP) -> None:
        """Joiner-side AREP validation: CGA check + challenge signature."""
        payload = signing.arep_payload(self.tentative_ip, self.pending_ch)
        check = verify_identity(
            self.node.backend, msg.sip, msg.public_key, msg.rn,
            msg.signature, payload, verify_fn=self.node.verify,
        )
        if not check:
            self.node.verdict(f"arep.rejected.{check.reason}")
            return
        self.node.verdict("arep.accepted")
        # Genuine collision: draw a fresh rn, keep PK, try again (paper 3.1).
        self._timer.cancel()
        self._new_address_round(new_rn=True)

    def _on_drep(self, frame: Frame, msg: DREP) -> None:
        if self.state == "probing" and msg.sip == self.tentative_ip:
            self._consume_drep(msg)
            return
        if (
            self.state == "configured"
            and msg.sip == self.node.ip
            and msg.domain_name == self.node.domain_name
        ):
            self._consume_refresh_drep(msg)
            return
        self._forward_reverse(msg, msg.route_record)

    def _consume_refresh_drep(self, msg: DREP) -> None:
        """The refresh announcement lost the FCFS race: give up the name."""
        dns_pk = self.node.ctx.dns_public_key
        if dns_pk is None or self.pending_ch is None:
            return
        payload = signing.drep_payload(self.node.domain_name, self.pending_ch)
        if not self.node.verify(dns_pk, payload, msg.signature):
            self.node.verdict("drep.rejected.bad_signature")
            return
        self.node.verdict("drep.accepted")
        self.node.ctx.metrics.on_name_conflict()
        lost = self.node.domain_name
        self.node.domain_name = self._next_name(lost)
        self.node.note(f"lost name {lost!r} post-configuration; now {self.node.domain_name!r}")
        self.node.sim.schedule(
            self.cfg.registration_refresh_delay, self._registration_refresh
        )

    def _consume_drep(self, msg: DREP) -> None:
        """Joiner-side DREP validation: DNS signature over (DN, ch)."""
        dns_pk = self.node.ctx.dns_public_key
        if dns_pk is None:
            self.node.verdict("drep.rejected.no_dns_key")
            return
        payload = signing.drep_payload(self.requested_name, self.pending_ch)
        if msg.domain_name != self.requested_name or not self.node.verify(
            dns_pk, payload, msg.signature
        ):
            self.node.verdict("drep.rejected.bad_signature")
            return
        self.node.verdict("drep.accepted")
        self.node.ctx.metrics.on_name_conflict()
        # Name taken: pick a new one, keep the address, rerun the probe.
        self._timer.cancel()
        self.requested_name = self._next_name(self.requested_name)
        self.node.note(f"name conflict; retrying as {self.requested_name!r}")
        self._new_address_round(new_rn=False)

    @staticmethod
    def _next_name(name: str) -> str:
        """Derive the next candidate name after a conflict (foo -> foo-2 -> foo-3)."""
        stem, dash, suffix = name.rpartition("-")
        if dash and suffix.isdigit():
            return f"{stem}-{int(suffix) + 1}"
        return f"{name}-2"
