"""Timer helpers layered on the kernel.

The protocol stack needs two recurring patterns:

* :class:`Timer` -- a one-shot timeout that can be restarted/cancelled
  (DAD wait periods, RREQ reply timeouts, retransmissions).
* :class:`PeriodicTimer` -- a fixed-interval tick (beaconing, traffic
  generation, credit decay), optionally jittered.

Both are thin wrappers over :meth:`Simulator.schedule`; they exist so
protocol code reads declaratively and cancellation is single-call.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import EventHandle, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start()`` arms the timer; if it is already armed the old deadline is
    cancelled first, so ``start`` doubles as "restart".  The callback runs
    once per arming.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None], *args: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._handle: EventHandle | None = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def deadline(self) -> float | None:
        """Absolute firing time, or None when not armed."""
        return self._handle.time if self.armed else None

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback(*self._args)


class PeriodicTimer:
    """A repeating timer with optional per-tick jitter.

    The next tick is scheduled *after* the callback runs, so a slow or
    re-entrant callback cannot cause tick pile-up.  ``jitter`` is the
    fractional perturbation applied per tick (0 disables it).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
        jitter: float = 0.0,
        rng_stream: str = "periodic-timer",
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._jitter = jitter
        self._rng = sim.rng(rng_stream)
        self._handle: EventHandle | None = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay: float | None = None) -> None:
        """Start ticking.  First tick after ``initial_delay`` (default: one interval)."""
        if self._running:
            return
        self._running = True
        delay = self.interval if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(self._maybe_jitter(delay), self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _maybe_jitter(self, delay: float) -> float:
        if self._jitter == 0.0:
            return delay
        return self._rng.jitter(delay, self._jitter)

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._callback(*self._args)
        if self._running:
            self._handle = self._sim.schedule(self._maybe_jitter(self.interval), self._tick)
