"""Discrete-event simulation kernel.

The kernel is intentionally small: a priority queue of timestamped events,
a simulation clock, and deterministic seeded randomness.  Everything else
in the stack (radio medium, protocol timers, traffic generators) is built
on :class:`~repro.sim.kernel.Simulator`.

Determinism contract
--------------------
Runs are reproducible bit-for-bit given the same seed: the event queue
breaks timestamp ties by insertion order, and all randomness flows through
:class:`~repro.sim.rng.SimRNG` streams derived from the master seed.
"""

from repro.sim.kernel import Event, EventHandle, Simulator
from repro.sim.rng import SimRNG, derive_seed, spawn_seed
from repro.sim.process import Timer, PeriodicTimer

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimRNG",
    "derive_seed",
    "spawn_seed",
    "Timer",
    "PeriodicTimer",
]
