"""The discrete-event simulation kernel.

A :class:`Simulator` owns a simulation clock and an event queue.  Heap
entries are plain ``(time, priority, seq, payload)`` tuples; ``seq`` is
a monotonically increasing insertion counter so that events scheduled
for the same instant fire in FIFO order, which makes every run
deterministic.  Because ``seq`` is unique, tuple comparison never
reaches ``payload`` -- heap ordering runs entirely in C, which matters:
comparisons during ``heappush``/``heappop`` are the single hottest
operation in a large simulation.

``payload`` is either an :class:`Event` (the cancellable record behind
an :class:`EventHandle`) or, for :meth:`Simulator.schedule_batch`, a
bare ``(callback, args)`` tuple -- batch-scheduled events cannot be
cancelled, so they skip the Event allocation entirely.

The kernel deliberately has no notion of "processes" or coroutines: the
protocol stack is written in callback style, which profiles faster in
CPython and keeps stack traces shallow.  Convenience timer helpers live
in :mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


@dataclass(slots=True)
class Event:
    """A cancellable scheduled callback (the payload of a heap entry).

    Events are never compared -- heap ordering is decided by the
    ``(time, priority, seq)`` prefix of the entry tuple -- so this is a
    plain record.  ``slots=True``: events are among the most allocated
    objects in a large simulation.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None]
    args: tuple = ()
    cancelled: bool = False
    #: Set once the kernel pops the entry; a later cancel() is then a
    #: pure no-op and must not count as heap residue.
    popped: bool = False


class EventHandle:
    """Cancellable reference to a scheduled :class:`Event`."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator | None" = None):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """The simulation time at which the event is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        Cancellation is lazy: the heap entry stays in place and is skipped
        when popped, which is O(1) here at the cost of heap residue.  The
        kernel tracks the residue and compacts the heap automatically when
        cancelled entries dominate a large heap (see
        :meth:`Simulator.drain_cancelled`), so mobile large-N scenarios
        that cancel many MAC/retransmit timers stay O(live events).
        """
        if self._event.cancelled:
            return
        self._event.cancelled = True
        # Cancelling an event that already fired (e.g. a timer callback
        # stopping its own timer) leaves nothing in the heap -- counting
        # it as residue would drift the compaction trigger upward forever.
        if self._sim is not None and not self._event.popped:
            self._sim._on_cancel()


#: Heaps smaller than this are never auto-compacted: rebuilding a small
#: heap costs more than skipping its residue ever will.
AUTO_COMPACT_MIN_HEAP = 4096


def _entry_cancelled(entry: tuple) -> bool:
    """True when a heap entry's payload is a cancelled :class:`Event`
    (batch payloads -- bare ``(callback, args)`` tuples -- have no
    cancel path)."""
    payload = entry[3]
    return type(payload) is Event and payload.cancelled


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all randomness drawn through :meth:`rng`.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, seed: int = 0):
        self._heap: list[tuple] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running = False
        self._seed = seed
        self._rng_streams: dict[str, Any] = {}
        self._events_executed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._stats = None  # opt-in KernelStats sink; None = uninstrumented

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def events_pending(self) -> int:
        """Number of heap entries not yet popped, including cancelled residue."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still sitting in the heap."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """How many times the heap was auto-compacted."""
        return self._compactions

    # ------------------------------------------------------------------
    # instrumentation (opt-in; see repro.obs.kernel_stats)
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The attached :class:`~repro.obs.kernel_stats.KernelStats`
        sink, or ``None`` when the kernel runs uninstrumented."""
        return self._stats

    def enable_stats(self, stats=None):
        """Attach a stats sink and switch to the instrumented run loop.

        Returns the sink (a fresh
        :class:`~repro.obs.kernel_stats.KernelStats` unless one is
        passed in).  Instrumentation is observation-only -- it never
        touches the clock, the RNG streams, or event ordering, so an
        instrumented run executes the exact same simulation.  The
        *uninstrumented* path is a separate loop with zero added work,
        so leaving stats off costs nothing.
        """
        if stats is None:
            from repro.obs.kernel_stats import KernelStats

            stats = KernelStats()
        self._stats = stats
        stats.observe_heap(len(self._heap))
        return stats

    def disable_stats(self):
        """Detach and return the stats sink (``None`` if never enabled)."""
        stats, self._stats = self._stats, None
        return stats

    def stats_summary(self) -> dict | None:
        """The sink's JSON-clean digest with kernel counters folded in."""
        if self._stats is None:
            return None
        return self._stats.summary(self)

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, stream: str = "default"):
        """Return the named :class:`~repro.sim.rng.SimRNG` stream.

        Distinct streams are statistically independent and each is
        deterministically derived from ``(seed, stream)``, so adding a new
        consumer of randomness does not perturb existing streams.
        """
        from repro.sim.rng import SimRNG

        if stream not in self._rng_streams:
            self._rng_streams[stream] = SimRNG(self._seed, stream)
        return self._rng_streams[stream]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after the
        current callback returns, in FIFO order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        event = Event(time, priority, self._seq, callback, args)
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def schedule_batch(
        self,
        delays,
        callback: Callable[..., None],
        args_seq,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` once per ``(delay, args)`` pair.

        The bulk form of :meth:`schedule` for hot paths that fan one
        transmission out to many receivers: pre-built ``(time, priority,
        seq, (callback, args))`` heap entries are pushed directly, with
        no per-event :class:`Event`/:class:`EventHandle` allocation, so
        none of the events can be cancelled individually.  Entries get
        consecutive ``seq`` numbers in iteration order, which makes a
        batch push observably identical (including FIFO tie-breaking) to
        an equivalent sequence of :meth:`schedule` calls.

        Both sequences are materialized, length-checked, and every delay
        validated before anything is pushed: an invalid batch schedules
        nothing (batch entries cannot be cancelled, so a partial push
        would be unrecoverable).
        """
        delays = delays if isinstance(delays, (list, tuple)) else list(delays)
        args_seq = args_seq if isinstance(args_seq, (list, tuple)) else list(args_seq)
        if len(delays) != len(args_seq):
            raise SimulationError(
                f"schedule_batch length mismatch: {len(delays)} delays"
                f" vs {len(args_seq)} args"
            )
        for delay in delays:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})"
                )
        now = self._now
        heap = self._heap
        push = heapq.heappush
        seq = self._seq
        for delay, args in zip(delays, args_seq):
            push(heap, (now + delay, priority, seq, (callback, args)))
            seq += 1
        self._seq = seq

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        """Handle-cancel hook: count residue, auto-compact when it dominates.

        Compaction triggers only on heaps larger than
        ``AUTO_COMPACT_MIN_HEAP`` whose entries are more than half
        cancelled -- large mobile scenarios cancel thousands of MAC and
        retransmit timers, and without compaction the heap (and every
        push/pop) grows with *scheduled* rather than *live* events.
        """
        self._cancelled_pending += 1
        if (
            len(self._heap) > AUTO_COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self.drain_cancelled()
            self._compactions += 1

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue is empty."""
        stats = self._stats
        while self._heap:
            if stats is not None:
                stats.observe_heap(len(self._heap))
            time, _, _, payload = heapq.heappop(self._heap)
            if type(payload) is Event:
                payload.popped = True
                if payload.cancelled:
                    self._cancelled_pending -= 1
                    if stats is not None:
                        stats.cancelled_skipped += 1
                    continue
                callback, args = payload.callback, payload.args
            else:
                callback, args = payload
            self._now = time
            self._events_executed += 1
            if stats is not None:
                self._timed_call(stats, callback, args)
            else:
                callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so back-to-back
        ``run(until=...)`` calls behave like contiguous epochs.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if self._stats is None:
                self._drain(until, max_events)
            else:
                self._drain_instrumented(until, max_events)
        finally:
            self._running = False

    def _drain(self, until: float | None, max_events: int | None) -> None:
        """The uninstrumented hot loop -- nothing beyond event dispatch."""
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if max_events is not None and executed >= max_events:
                return
            if until is not None and heap[0][0] > until:
                break
            time, _, _, payload = pop(heap)
            if type(payload) is Event:
                payload.popped = True
                if payload.cancelled:
                    self._cancelled_pending -= 1
                    continue
                callback, args = payload.callback, payload.args
            else:
                callback, args = payload
            self._now = time
            self._events_executed += 1
            executed += 1
            callback(*args)
        if until is not None and until > self._now:
            self._now = until

    def _drain_instrumented(self, until: float | None,
                            max_events: int | None) -> None:
        """Twin of :meth:`_drain` that feeds the attached stats sink.

        Identical event semantics (ordering, clock, cancellation); adds
        heap high-water sampling at each event boundary, cancelled-skip
        counting, and per-handler wall-time buckets.  Heap length peaks
        right after a callback returns (callbacks only push), so
        loop-top sampling observes the true high-water mark between
        compactions.
        """
        from time import perf_counter

        stats = self._stats
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        loop_started = perf_counter()
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    return
                if until is not None and heap[0][0] > until:
                    break
                stats.observe_heap(len(heap))
                time, _, _, payload = pop(heap)
                if type(payload) is Event:
                    payload.popped = True
                    if payload.cancelled:
                        self._cancelled_pending -= 1
                        stats.cancelled_skipped += 1
                        continue
                    callback, args = payload.callback, payload.args
                else:
                    callback, args = payload
                self._now = time
                self._events_executed += 1
                executed += 1
                self._timed_call(stats, callback, args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            stats.instrumented_events += executed
            stats.wall_seconds += perf_counter() - loop_started

    @staticmethod
    def _timed_call(stats, callback, args) -> None:
        from time import perf_counter

        from repro.obs.kernel_stats import handler_kind

        started = perf_counter()
        try:
            callback(*args)
        finally:
            stats.observe_handler(handler_kind(callback),
                                  perf_counter() - started)

    def drain_cancelled(self) -> int:
        """Compact the heap by dropping cancelled residue.  Returns count dropped.

        Runs automatically when cancelled residue exceeds half of a
        large (> ``AUTO_COMPACT_MIN_HEAP``-entry) heap; still callable
        explicitly for long simulations with unusual cancel patterns.
        """
        before = len(self._heap)
        if self._stats is not None:
            # the pre-compaction length is a heap peak the run loop's
            # boundary sampling cannot see (compaction fires mid-callback)
            self._stats.observe_heap(before)
        live = [entry for entry in self._heap if not _entry_cancelled(entry)]
        heapq.heapify(live)
        # Mutate in place rather than rebinding: auto-compaction can fire
        # from _on_cancel() while run() is mid-loop (a callback cancelling
        # handles), and run() holds a local alias to this list -- rebinding
        # would strand that alias on the stale heap.
        self._heap[:] = live
        self._cancelled_pending = 0
        return before - len(live)
