"""Deterministic, named random-number streams.

Every source of randomness in the stack (jitter, mobility, traffic,
key generation for simulated identities...) draws from a :class:`SimRNG`
stream.  Streams are derived from ``(master_seed, stream_name)`` via
SHA-256, so

* the same seed reproduces a run exactly, and
* adding a new stream never perturbs draws on existing streams
  (unlike sharing one ``random.Random``).

``SimRNG`` wraps :class:`numpy.random.Generator` for bulk vectorised
draws and exposes a few protocol-centric helpers (nonce, jitter).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, stream)``.

    Uses SHA-256 over a canonical encoding; collision-free in practice
    and stable across platforms and Python versions.
    """
    payload = master_seed.to_bytes(16, "big", signed=False) + b"/" + stream.encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seed(master_seed: int, run_index: int) -> int:
    """Derive an independent master seed for replicate run ``run_index``.

    Campaign sweeps give every run its own 64-bit master seed so that
    replicates are statistically independent yet exactly reproducible:
    the result depends only on ``(master_seed, run_index)``, never on
    which worker process executes the run or in what order.
    """
    if run_index < 0:
        raise ValueError("run_index must be non-negative")
    return derive_seed(master_seed, f"spawn/{run_index}")


class SimRNG:
    """A named deterministic random stream.

    Parameters
    ----------
    master_seed:
        The simulator-wide seed.
    stream:
        Name of this stream, e.g. ``"mobility"`` or ``"node/3/jitter"``.
    """

    def __init__(self, master_seed: int, stream: str = "default"):
        if master_seed < 0:
            raise ValueError("master_seed must be non-negative")
        self.master_seed = master_seed
        self.stream = stream
        self._gen = np.random.Generator(np.random.PCG64(derive_seed(master_seed, stream)))

    # -- scalar draws ---------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self._gen.random())

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi)."""
        return float(self._gen.uniform(lo, hi))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return int(self._gen.integers(lo, hi + 1))

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return float(self._gen.exponential(1.0 / rate))

    def choice(self, seq):
        """Uniformly choose one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def sample(self, seq, k: int) -> list:
        """Sample ``k`` distinct elements (order randomised)."""
        if k > len(seq):
            raise ValueError("sample larger than population")
        idx = self._gen.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in idx]

    def shuffle(self, lst: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._gen.shuffle(lst)

    # -- vector draws ---------------------------------------------------
    def random_batch(self, n: int) -> np.ndarray:
        """``n`` uniform floats in [0, 1) in one vectorised draw.

        Stream-identical to ``n`` successive :meth:`random` calls: PCG64
        consumes 64 bits per double either way, so a consumer may switch
        between scalar and batched draws (or mix batch sizes) without
        perturbing the stream.  This is the contract that lets the
        medium's vectorised broadcast path reproduce the scalar path's
        loss draws byte-for-byte (pinned by tests/test_sim_rng.py).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        return self._gen.random(n)

    def uniform_array(self, lo: float, hi: float, size) -> np.ndarray:
        """Vectorised uniform draws; preferred for bulk placement/mobility."""
        return self._gen.uniform(lo, hi, size=size)

    def normal_array(self, mean: float, std: float, size) -> np.ndarray:
        return self._gen.normal(mean, std, size=size)

    # -- protocol helpers -----------------------------------------------
    def nonce(self, bits: int = 64) -> int:
        """A random ``bits``-bit integer, for challenges and sequence seeds."""
        if bits <= 0 or bits % 8:
            raise ValueError("bits must be a positive multiple of 8")
        raw = self._gen.bytes(bits // 8)
        return int.from_bytes(raw, "big")

    def bytes(self, n: int) -> bytes:
        return self._gen.bytes(n)

    def jitter(self, base: float, fraction: float = 0.1) -> float:
        """``base`` perturbed by up to ±``fraction``, never negative.

        Protocol broadcasts are jittered to avoid synchronised collisions,
        mirroring real MANET implementations.
        """
        lo = max(0.0, base * (1 - fraction))
        hi = base * (1 + fraction)
        return self.uniform(lo, hi)

    def spawn(self, substream: str) -> "SimRNG":
        """Derive an independent child stream, e.g. per node."""
        return SimRNG(self.master_seed, f"{self.stream}/{substream}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimRNG(seed={self.master_seed}, stream={self.stream!r})"
