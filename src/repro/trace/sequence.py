"""ASCII message-sequence charts from trace events.

Reproduces the *shape* of the paper's Figure 2 (secure DAD) and
Figure 3 (route discovery): time flows downward, one column per node,
arrows annotate which message crossed between which protocol parties.

Link-layer relaying means a unicast AREP from R to S appears as several
``send`` events (one per hop); the chart shows each hop, which is more
informative than the paper's end-to-end arrows and collapses to them
visually when nodes are adjacent.
"""

from __future__ import annotations

from repro.trace.recorder import TraceEvent, TraceRecorder

_COLUMN_WIDTH = 14


def render_sequence_chart(
    trace: TraceRecorder,
    nodes: list[str],
    msg_types: set[str] | None = None,
    max_rows: int = 200,
) -> str:
    """Render sends as a downward-flowing sequence chart.

    Parameters
    ----------
    nodes:
        Column order, left to right (e.g. ``["S", "I1", "I2", "R", "DNS"]``).
    msg_types:
        Restrict to these message names (e.g. ``{"AREQ", "AREP"}``);
        None shows everything.
    """
    col = {name: i for i, name in enumerate(nodes)}
    width = _COLUMN_WIDTH
    header = "".join(name.center(width) for name in nodes)
    ruler = "".join("|".center(width) for _ in nodes)
    lines = [header, ruler]

    rows = 0
    for ev in trace.events:
        if ev.kind != "send" or ev.node not in col:
            continue
        if msg_types is not None and ev.msg_type not in msg_types:
            continue
        rows += 1
        if rows > max_rows:
            lines.append(f"... ({rows - max_rows} more rows)")
            break
        lines.append(_render_send_row(ev, col, nodes, width))
        lines.append(ruler)
    return "\n".join(lines)


def _render_send_row(ev: TraceEvent, col: dict[str, int], nodes: list[str], width: int) -> str:
    """One arrow row.  ``ev.detail`` may embed '->target' to aim the arrow."""
    src_idx = col[ev.node]
    target = None
    if "->" in ev.detail:
        maybe = ev.detail.split("->", 1)[1].split()[0].strip()
        target = col.get(maybe)
    label = f"{ev.msg_type}@{ev.time:.3f}"

    if target is None or target == src_idx:
        # Broadcast: draw from the source column outward both ways.
        cells = []
        for i in range(len(nodes)):
            if i == src_idx:
                cells.append(f"*{ev.msg_type}*".center(width))
            else:
                cells.append(("~" * (width - 4)).center(width))
        return "".join(cells)

    lo, hi = min(src_idx, target), max(src_idx, target)
    cells = []
    for i in range(len(nodes)):
        if i < lo or i > hi:
            cells.append("|".center(width))
        elif i == src_idx:
            cells.append(("o" + "-" * (width - 6)).center(width))
        elif i == target:
            head = ">" if target > src_idx else "<"
            cells.append((head + " " + label)[:width].center(width))
        else:
            cells.append("-" * width)
    return "".join(cells)


def transcript(trace: TraceRecorder, msg_types: set[str] | None = None) -> str:
    """Flat "t | node | SEND/RECV | msg | detail" transcript (Fig 2/3 narration)."""
    lines = []
    for ev in trace.events:
        if ev.kind not in ("send", "recv"):
            continue
        if msg_types is not None and ev.msg_type not in msg_types:
            continue
        lines.append(
            f"t={ev.time:9.6f}  {ev.node:>8}  {ev.kind.upper():<4}  "
            f"{ev.msg_type:<5} {ev.detail}"
        )
    return "\n".join(lines)
