"""Event tracing and message-sequence-chart rendering.

:class:`~repro.trace.recorder.TraceRecorder` captures per-node
send/receive/verdict events; :mod:`repro.trace.sequence` renders them as
the ASCII message-sequence charts that reproduce Figures 2 and 3 of the
paper.
"""

from repro.trace.recorder import TraceEvent, TraceRecorder
from repro.trace.sequence import render_sequence_chart

__all__ = ["TraceEvent", "TraceRecorder", "render_sequence_chart"]
