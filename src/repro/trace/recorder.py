"""Per-run event trace.

Nodes report ``send``/``recv``/``verdict``/``note`` events; the recorder
keeps them in simulation-time order (appends are already ordered because
the kernel is sequential).  Filters return lightweight views -- no
copying of message objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One traced protocol event.

    ``kind`` is ``"send"``, ``"recv"``, ``"verdict"`` or ``"note"``;
    ``detail`` is the message summary or verdict string.
    """

    time: float
    node: str
    kind: str
    msg_type: str
    detail: str
    payload: Any = None

    def __str__(self) -> str:
        return f"[{self.time:10.6f}] {self.node:>8} {self.kind:<7} {self.msg_type:<5} {self.detail}"


class TraceRecorder:
    """Append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True, capacity: int | None = None):
        self.enabled = enabled
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(
        self,
        time: float,
        node: str,
        kind: str,
        msg_type: str,
        detail: str,
        payload: Any = None,
    ) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, node, kind, msg_type, detail, payload))

    # -- queries -----------------------------------------------------------
    def filter(
        self,
        kind: str | None = None,
        msg_type: str | None = None,
        node: str | None = None,
    ) -> list[TraceEvent]:
        out: Iterable[TraceEvent] = self.events
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        if msg_type is not None:
            out = (e for e in out if e.msg_type == msg_type)
        if node is not None:
            out = (e for e in out if e.node == node)
        return list(out)

    def sends(self, msg_type: str | None = None) -> list[TraceEvent]:
        return self.filter(kind="send", msg_type=msg_type)

    def receipts(self, msg_type: str | None = None) -> list[TraceEvent]:
        return self.filter(kind="recv", msg_type=msg_type)

    def dump(self, limit: int | None = None) -> str:
        """Human-readable chronological dump."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
