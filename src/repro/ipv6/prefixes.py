"""Well-known prefixes and the Figure 1 site-local layout.

Figure 1 of the paper splits a site-local MANET address into four fields::

    | 10 bits          | 38 bits   | 16 bits   | 64 bits        |
    | 1111 1110 11     | all zero  | subnet ID | H(PK, rn)      |
    (site-local prefix fec0::/10)

The subnet ID "makes no sense for a MANET" and is fixed to zero, so every
host address is ``fec0::H(PK, rn)``.  The three RFC-reserved site-local
DNS anycast addresses (draft-ietf-ipv6-dns-discovery) are also defined
here; the DNS server answers on all of them.
"""

from __future__ import annotations

from repro.ipv6.address import IPv6Address

#: fec0::/10 -- the 10-bit site-local prefix value (1111111011 binary).
SITE_LOCAL_PREFIX_BITS = 0b1111111011
SITE_LOCAL_PREFIX_LEN = 10

#: The full /128 with only the prefix set, i.e. fec0::
SITE_LOCAL_PREFIX = IPv6Address(SITE_LOCAL_PREFIX_BITS << 118)

#: Unspecified address (::), used as the IP source before DAD completes.
UNSPECIFIED = IPv6Address(0)

#: Simulator-level broadcast destination (stands in for ff02::1 flooding).
ALL_NODES_MULTICAST = IPv6Address("ff02::1")

#: The three well-known site-local DNS server anycast addresses
#: (fec0:0:0:ffff::1..3) from IPv6 stateless DNS discovery.
DNS_ANYCAST_ADDRESSES = (
    IPv6Address("fec0:0:0:ffff::1"),
    IPv6Address("fec0:0:0:ffff::2"),
    IPv6Address("fec0:0:0:ffff::3"),
)

_INTERFACE_ID_MASK = (1 << 64) - 1


def is_site_local(addr: IPv6Address) -> bool:
    """True iff ``addr`` is under fec0::/10."""
    return addr.high_bits(SITE_LOCAL_PREFIX_LEN) == SITE_LOCAL_PREFIX_BITS


def is_dns_anycast(addr: IPv6Address) -> bool:
    """True iff ``addr`` is one of the well-known DNS discovery addresses."""
    return addr in DNS_ANYCAST_ADDRESSES


def site_local_from_interface_id(interface_id: int, subnet_id: int = 0) -> IPv6Address:
    """Assemble a Figure 1 address from its fields.

    Parameters
    ----------
    interface_id:
        The 64-bit ``H(PK, rn)`` value.
    subnet_id:
        The 16-bit subnet field; 0 for MANET hosts, may be set by a
        gateway when bridging to the Internet (per the paper).
    """
    if not 0 <= interface_id <= _INTERFACE_ID_MASK:
        raise ValueError("interface_id must be a 64-bit unsigned integer")
    if not 0 <= subnet_id <= 0xFFFF:
        raise ValueError("subnet_id must be a 16-bit unsigned integer")
    value = (SITE_LOCAL_PREFIX_BITS << 118) | (subnet_id << 64) | interface_id
    return IPv6Address(value)


def split_fields(addr: IPv6Address) -> tuple[int, int, int, int]:
    """Decompose an address into Figure 1's (prefix, zeros, subnet, iface) fields."""
    prefix = addr.high_bits(10)
    zeros = (addr.value >> 80) & ((1 << 38) - 1)
    return prefix, zeros, addr.subnet_id, addr.interface_id
