"""IPv6 addressing substrate.

Implements exactly the slice of IPv6 the paper relies on:

* 128-bit addresses with parse/format (:mod:`repro.ipv6.address`),
* the site-local prefix layout of Figure 1 and the well-known DNS
  anycast addresses (:mod:`repro.ipv6.prefixes`),
* cryptographically generated addresses ``fec0::H(PK, rn)`` with
  generation and ownership verification (:mod:`repro.ipv6.cga`).
"""

from repro.ipv6.address import IPv6Address
from repro.ipv6.prefixes import (
    SITE_LOCAL_PREFIX,
    DNS_ANYCAST_ADDRESSES,
    UNSPECIFIED,
    ALL_NODES_MULTICAST,
    is_site_local,
    site_local_from_interface_id,
)
from repro.ipv6.cga import CGAParams, generate_cga, verify_cga, cga_address

__all__ = [
    "IPv6Address",
    "SITE_LOCAL_PREFIX",
    "DNS_ANYCAST_ADDRESSES",
    "UNSPECIFIED",
    "ALL_NODES_MULTICAST",
    "is_site_local",
    "site_local_from_interface_id",
    "CGAParams",
    "generate_cga",
    "verify_cga",
    "cga_address",
]
