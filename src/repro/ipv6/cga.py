"""Cryptographically generated addresses (CGA) -- Section 2.3 / Figure 1.

A host with key pair (PK, SK) picks a 64-bit random modifier ``rn`` and
takes the site-local address ``fec0::H(PK, rn)``.  Two properties follow
(paper, Section 3.1):

1. An adversary cannot claim an address it does not own: it would need a
   pair (PK', rn') with ``H(PK', rn') == H(PK, rn)`` **and** the matching
   private key, since every protocol message carrying the address is
   challenged against SK'.
2. Hash collisions between honest hosts are survivable: the host draws a
   fresh ``rn`` (keeping PK) and retries DAD.

:func:`verify_cga` is the check every receiver performs -- "the lower
part of X_IP equals H(X_PK, X_rn)" -- used by the DAD, RREQ/RREP and
RERR verification paths alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import cga_hash
from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address
from repro.ipv6.prefixes import is_site_local, site_local_from_interface_id

_RN_BITS = 64
_RN_MAX = (1 << _RN_BITS) - 1


@dataclass(frozen=True)
class CGAParams:
    """The (PK, rn) pair that proves ownership of a CGA.

    Travels in every identity-bearing protocol message (Table 1's
    ``X_PK, X_rn`` columns).
    """

    public_key: PublicKey
    rn: int

    def __post_init__(self):
        if not 0 <= self.rn <= _RN_MAX:
            raise ValueError("rn must be a 64-bit unsigned integer")

    @property
    def interface_id(self) -> int:
        return cga_hash(self.public_key.encode(), self.rn)


def cga_address(public_key: PublicKey, rn: int, subnet_id: int = 0) -> IPv6Address:
    """The Figure 1 address ``fec0::H(PK, rn)`` for the given parameters."""
    return site_local_from_interface_id(cga_hash(public_key.encode(), rn), subnet_id)


def generate_cga(public_key: PublicKey, rng, subnet_id: int = 0) -> tuple[IPv6Address, CGAParams]:
    """Draw a fresh modifier and return (address, params).

    ``rng`` is a :class:`~repro.sim.rng.SimRNG`; using the simulation RNG
    keeps address generation reproducible per seed.
    """
    rn = rng.nonce(_RN_BITS)
    params = CGAParams(public_key, rn)
    return cga_address(public_key, rn, subnet_id), params


def verify_cga(addr: IPv6Address, params: CGAParams) -> bool:
    """Check "the lower part of addr equals H(PK, rn)" (plus site-local form).

    This is the address-ownership half of the paper's two-step identity
    verification; the other half (a challenge signed by SK) lives in the
    protocol layers.
    """
    if not is_site_local(addr):
        return False
    return addr.interface_id == params.interface_id
