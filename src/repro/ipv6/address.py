"""A 128-bit IPv6 address value type.

Self-contained (no ``ipaddress`` dependency) so the codec, the CGA layer
and the simulator share one immutable, hashable type with exactly the
operations the protocol needs: bit-field access for the Figure 1 layout,
RFC 5952-style compressed formatting for logs, and byte conversion for
the wire codec.
"""

from __future__ import annotations

from functools import total_ordering

_MAX = (1 << 128) - 1


@total_ordering
class IPv6Address:
    """An immutable 128-bit IPv6 address.

    Construct from an integer, 16 bytes, or a textual form::

        IPv6Address("fec0::1")
        IPv6Address(0xfec0 << 112 | 1)
        IPv6Address(b"\\xfe\\xc0" + b"\\x00" * 13 + b"\\x01")
    """

    __slots__ = ("_value",)

    def __init__(self, value: "int | bytes | str | IPv6Address"):
        if isinstance(value, IPv6Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= _MAX:
                raise ValueError("integer out of range for IPv6")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 16:
                raise ValueError(f"IPv6 address needs 16 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            self._value = _parse(value)
        else:
            raise TypeError(f"cannot build IPv6Address from {type(value).__name__}")

    # -- conversions ------------------------------------------------------
    @property
    def value(self) -> int:
        return self._value

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(16, "big")

    @property
    def groups(self) -> tuple[int, ...]:
        """The eight 16-bit groups, most significant first."""
        v = self._value
        return tuple((v >> shift) & 0xFFFF for shift in range(112, -16, -16))

    # -- bit-field accessors for the Figure 1 layout ----------------------
    def high_bits(self, n: int) -> int:
        """The top ``n`` bits as an integer (prefix extraction)."""
        if not 0 <= n <= 128:
            raise ValueError("n must be in [0, 128]")
        return self._value >> (128 - n) if n else 0

    @property
    def interface_id(self) -> int:
        """The low 64 bits -- where H(PK, rn) lives for a CGA."""
        return self._value & ((1 << 64) - 1)

    @property
    def subnet_id(self) -> int:
        """Bits [48, 64) -- the 16-bit subnet ID field of Figure 1."""
        return (self._value >> 64) & 0xFFFF

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv6Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv6Address") -> bool:
        if isinstance(other, IPv6Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value

    def __bytes__(self) -> bytes:
        return self.packed

    def __str__(self) -> str:
        return _format(self.groups)

    def __repr__(self) -> str:
        return f"IPv6Address('{self}')"


def _parse(text: str) -> int:
    """Parse the standard textual forms, including ``::`` compression."""
    text = text.strip().lower()
    if not text:
        raise ValueError("empty IPv6 address")
    if text.count("::") > 1:
        raise ValueError(f"more than one '::' in {text!r}")

    def parse_groups(part: str) -> list[int]:
        if not part:
            return []
        groups = []
        for g in part.split(":"):
            if not g or len(g) > 4:
                raise ValueError(f"bad group {g!r} in {text!r}")
            groups.append(int(g, 16))
        return groups

    if "::" in text:
        head, tail = text.split("::")
        hi, lo = parse_groups(head), parse_groups(tail)
        missing = 8 - len(hi) - len(lo)
        if missing < 1:
            raise ValueError(f"'::' expands to nothing in {text!r}")
        groups = hi + [0] * missing + lo
    else:
        groups = parse_groups(text)
        if len(groups) != 8:
            raise ValueError(f"expected 8 groups in {text!r}, got {len(groups)}")

    value = 0
    for g in groups:
        value = (value << 16) | g
    return value


def _format(groups: tuple[int, ...]) -> str:
    """RFC 5952 formatting: compress the longest run of zero groups (>= 2)."""
    best_start, best_len = -1, 0
    i = 0
    while i < 8:
        if groups[i] == 0:
            j = i
            while j < 8 and groups[j] == 0:
                j += 1
            if j - i > best_len:
                best_start, best_len = i, j - i
            i = j
        else:
            i += 1
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"
