"""Aggregation of campaign run records into reports and JSONL files.

Records are grouped by their sweep parameters (replicates of the same
grid point share a group) and each numeric summary column is reduced to
mean/min/max.  Everything is JSON-clean and deterministically ordered,
so reports diff cleanly across PRs and double as regression baselines.
"""

from __future__ import annotations

import json
import os

from repro.metrics.reports import format_table

#: Columns shown in the human-readable report table (all columns are
#: still present in ``report.json``).
TABLE_METRICS = [
    "pdr",
    "latency_p50",
    "latency_p95",
    "control_bytes",
    "crypto_ops_total",
    "bootstrap_time_mean",
]


def write_jsonl(path, records: list[dict]) -> None:
    """One sorted-key JSON object per line; byte-stable for diffing."""
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path) -> list[dict]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_results(path) -> list[dict]:
    """Load records from a results file or a campaign output directory."""
    if os.path.isdir(path):
        path = os.path.join(path, "results.jsonl")
    return read_jsonl(path)


def group_key(record: dict) -> str:
    """Stable grouping key: the sweep parameters, canonically encoded."""
    return json.dumps(record.get("params", {}), sort_keys=True)


def aggregate(records: list[dict]) -> dict:
    """Reduce records to per-group mean/min/max of every summary column."""
    ok = [r for r in records if r.get("status") == "ok"]
    failed = [r for r in records if r.get("status") != "ok"]

    grouped: dict[str, list[dict]] = {}
    for record in ok:
        grouped.setdefault(group_key(record), []).append(record)

    groups = []
    for key in sorted(grouped):
        members = grouped[key]
        columns: dict[str, list[float]] = {}
        for record in members:
            for name, value in record["summary"].items():
                if isinstance(value, (int, float)):
                    columns.setdefault(name, []).append(float(value))
        metrics = {
            name: {
                "mean": sum(vals) / len(vals),
                "min": min(vals),
                "max": max(vals),
            }
            for name, vals in sorted(columns.items())
        }
        groups.append({
            "params": json.loads(key),
            "runs": len(members),
            "metrics": metrics,
        })

    return {
        "runs": len(records),
        "ok": len(ok),
        "failed": [
            {"run_id": r["run_id"], "status": r["status"],
             "error": r.get("error", "")}
            for r in failed
        ],
        "groups": groups,
    }


def _value_label(value) -> str:
    if isinstance(value, dict):
        # compact structured values: show the discriminating fields only
        kind = value.get("kind")
        if kind is not None:
            extras = [f"{k}={value[k]}" for k in ("n", "clusters") if k in value]
            return f"{kind}({', '.join(extras)})" if extras else str(kind)
        return json.dumps(value, sort_keys=True)
    if isinstance(value, list):
        return f"[{len(value)} item(s)]" if value and isinstance(value[0], dict) \
            else json.dumps(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _params_label(params: dict) -> str:
    if not params:
        return "(base)"
    return " ".join(f"{k}={_value_label(params[k])}" for k in sorted(params))


def report_text(report: dict, metrics: list[str] | None = None) -> str:
    """Fixed-width table of per-group means for the headline metrics."""
    metrics = metrics or TABLE_METRICS
    rows = []
    for group in report["groups"]:
        row = [_params_label(group["params"]), group["runs"]]
        for name in metrics:
            stat = group["metrics"].get(name)
            row.append(f"{stat['mean']:.4g}" if stat else "-")
        rows.append(row)
    table = format_table(
        ["params", "runs"] + metrics,
        rows,
        title=f"Campaign aggregate ({report['ok']}/{report['runs']} runs ok)",
    )
    if report["failed"]:
        lines = [table, "", "Failed runs:"]
        for failure in report["failed"]:
            lines.append(
                f"  {failure['run_id']}: {failure['status']} {failure['error']}"
            )
        return "\n".join(lines)
    return table
