"""Aggregation of campaign run records into reports and JSONL files.

Records are grouped by their sweep parameters (replicates of the same
grid point share a group) and each numeric summary column is reduced to
mean/min/max.  Everything is JSON-clean and deterministically ordered,
so reports diff cleanly across PRs and double as regression baselines.
"""

from __future__ import annotations

import json
import os

from repro.metrics.reports import format_table

#: Columns shown in the human-readable report table (all columns are
#: still present in ``report.json``).
TABLE_METRICS = [
    "pdr",
    "latency_p50",
    "latency_p95",
    "control_bytes",
    "crypto_ops_total",
    "bootstrap_time_mean",
]


def write_jsonl(path, records: list[dict], fsync: bool = False) -> None:
    """One sorted-key JSON object per line; byte-stable for diffing.

    ``fsync=True`` forces the lines to disk before returning, for
    writers (the streaming runner's finalize step) that must survive a
    crash immediately after.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())


def read_jsonl(path) -> list[dict]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def read_jsonl_partial(path) -> tuple[list[dict], list[str]]:
    """Recovery parser for an in-flight or crash-interrupted results file.

    The streaming runner appends one fsync'd line per record, so the
    only damage a crash can inflict is a *torn final line* (the write
    that was in flight).  That tail is discarded and reported in the
    returned warnings; the complete records before it are kept.
    Malformed content anywhere *other* than the final line means the
    file was not produced by the append-only writer and raises
    ``ValueError`` rather than silently dropping data.

    Returns ``(records, warnings)``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    records: list[dict] = []
    warnings: list[str] = []
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
            if not isinstance(record, dict):
                raise ValueError("not a JSON object")
        except ValueError as exc:
            if lineno == len(lines):
                warnings.append(
                    f"{path}: discarded torn final line {lineno} "
                    f"(crash mid-write: {exc})"
                )
                break
            raise ValueError(f"{path}: corrupt line {lineno}: {exc}") from exc
        records.append(record)
    return records, warnings


def load_results(path) -> list[dict]:
    """Load records from a results file or a campaign output directory."""
    if os.path.isdir(path):
        path = os.path.join(path, "results.jsonl")
    return read_jsonl(path)


def load_results_partial(path) -> tuple[list[dict], list[str]]:
    """Tolerant :func:`load_results`: accepts an in-flight campaign.

    Used by ``report`` on a streaming/interrupted campaign and by
    ``resume``; returns ``(records, warnings)`` where warnings describe
    any torn tail that was discarded.
    """
    if os.path.isdir(path):
        path = os.path.join(path, "results.jsonl")
    return read_jsonl_partial(path)


def group_key(record: dict) -> str:
    """Stable grouping key: the sweep parameters, canonically encoded."""
    return json.dumps(record.get("params", {}), sort_keys=True)


def aggregate(records: list[dict]) -> dict:
    """Reduce records to per-group mean/min/max of every summary column."""
    ok = [r for r in records if r.get("status") == "ok"]
    failed = [r for r in records if r.get("status") != "ok"]

    grouped: dict[str, list[dict]] = {}
    for record in ok:
        grouped.setdefault(group_key(record), []).append(record)

    groups = []
    for key in sorted(grouped):
        members = grouped[key]
        columns: dict[str, list[float]] = {}
        for record in members:
            for name, value in record["summary"].items():
                if isinstance(value, (int, float)):
                    columns.setdefault(name, []).append(float(value))
        metrics = {
            name: {
                "mean": sum(vals) / len(vals),
                "min": min(vals),
                "max": max(vals),
            }
            for name, vals in sorted(columns.items())
        }
        groups.append({
            "params": json.loads(key),
            "runs": len(members),
            "metrics": metrics,
        })

    return {
        "runs": len(records),
        "ok": len(ok),
        "failed": [
            {"run_id": r["run_id"], "status": r["status"],
             "error": r.get("error", "")}
            for r in failed
        ],
        "groups": groups,
    }


def _value_label(value) -> str:
    if isinstance(value, dict):
        # compact structured values: show the discriminating fields only
        kind = value.get("kind")
        if kind is not None:
            extras = [f"{k}={value[k]}" for k in ("n", "clusters") if k in value]
            return f"{kind}({', '.join(extras)})" if extras else str(kind)
        return json.dumps(value, sort_keys=True)
    if isinstance(value, list):
        return f"[{len(value)} item(s)]" if value and isinstance(value[0], dict) \
            else json.dumps(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _params_label(params: dict) -> str:
    if not params:
        return "(base)"
    return " ".join(f"{k}={_value_label(params[k])}" for k in sorted(params))


def report_text(report: dict, metrics: list[str] | None = None) -> str:
    """Fixed-width table of per-group means for the headline metrics."""
    metrics = metrics or TABLE_METRICS
    rows = []
    for group in report["groups"]:
        row = [_params_label(group["params"]), group["runs"]]
        for name in metrics:
            stat = group["metrics"].get(name)
            row.append(f"{stat['mean']:.4g}" if stat else "-")
        rows.append(row)
    table = format_table(
        ["params", "runs"] + metrics,
        rows,
        title=f"Campaign aggregate ({report['ok']}/{report['runs']} runs ok)",
    )
    if report["failed"]:
        lines = [table, "", "Failed runs:"]
        for failure in report["failed"]:
            lines.append(
                f"  {failure['run_id']}: {failure['status']} {failure['error']}"
            )
        return "\n".join(lines)
    return table
