"""Aggregation of campaign run records into reports and JSONL files.

Records are grouped by their sweep parameters (replicates of the same
grid point share a group) and each numeric summary column is reduced to
mean/min/max (plus p50/p95 under ``summary_mode="sketch"``).
Everything is JSON-clean and deterministically ordered, so reports diff
cleanly across PRs and double as regression baselines.

Aggregation is *streaming*: :class:`StreamingAggregator` folds records
one at a time into constant-memory :class:`~repro.obs.sketch.MetricSketch`
accumulators, so a 10^5-run campaign aggregates without ever buffering
per-column value lists.  Means are exactly rounded
(:class:`~repro.obs.sketch.ExactSum`), hence independent of record
order -- a live ``report --follow`` that consumes records in completion
order produces the byte-identical report a post-hoc pass over the
finalized, index-sorted file does.
"""

from __future__ import annotations

import json
import os

from repro.metrics.reports import format_table
from repro.obs.sketch import MetricSketch

#: Recognized ``summary_mode`` values: ``exact`` reports mean/min/max,
#: ``sketch`` adds constant-memory p50/p95/count per column.
SUMMARY_MODES = ("exact", "sketch")

#: Columns shown in the human-readable report table (all columns are
#: still present in ``report.json``).
TABLE_METRICS = [
    "pdr",
    "latency_p50",
    "latency_p95",
    "control_bytes",
    "crypto_ops_total",
    "bootstrap_time_mean",
]


def write_jsonl(path, records: list[dict], fsync: bool = False) -> None:
    """One sorted-key JSON object per line; byte-stable for diffing.

    ``fsync=True`` forces the lines to disk before returning, for
    writers (the streaming runner's finalize step) that must survive a
    crash immediately after.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())


def write_json_artifact(path, data) -> None:
    """Canonical pretty-printed JSON artifact (``indent=2, sort_keys``).

    The one serializer behind ``spec.json``/``report.json`` wherever
    they are written (runner finalize, ``campaign merge``), so the
    byte-identity contract between a merged and a single-host campaign
    can never be broken by formatting drift.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_report_artifacts(out_dir, report: dict) -> None:
    """Write ``report.json`` + ``report.txt`` for a finalized campaign."""
    write_json_artifact(os.path.join(out_dir, "report.json"), report)
    with open(os.path.join(out_dir, "report.txt"), "w",
              encoding="utf-8") as fh:
        fh.write(report_text(report) + "\n")


def read_jsonl(path) -> list[dict]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def tail_jsonl(path, offset: int = 0) -> tuple[list[dict], list[str], int]:
    """Incremental recovery parser: parse records appended since ``offset``.

    The primitive behind both crash recovery and live ``report
    --follow``: instead of re-reading the whole file, it seeks to a
    byte ``offset`` (0 for the first read, the previously returned
    offset afterwards) and parses only what the append-only writer has
    added since.  Returns ``(records, warnings, next_offset)`` where
    ``next_offset`` covers exactly the complete records consumed.

    A final line that does not parse -- torn by a crash mid-write, or
    simply still in flight from a live writer -- is *not* consumed: it
    is reported in ``warnings`` and excluded from ``next_offset``, so a
    later call re-reads it once (if ever) it completes.  A final line
    that parses but lacks its newline is a complete record whose
    newline has not landed yet; it is consumed (JSON objects have no
    valid proper prefix, so this is unambiguous).  Malformed content
    anywhere *before* the final line means the file was not produced by
    the append-only writer and raises ``ValueError`` rather than
    silently dropping data.
    """
    with open(path, "rb") as fh:
        if offset:
            fh.seek(offset)
        chunk = fh.read()
    records: list[dict] = []
    warnings: list[str] = []
    consumed = 0
    lines = chunk.split(b"\n")
    fragment = lines.pop()  # bytes after the last newline ("" if none)
    for lineno, raw in enumerate(lines, 1):
        stripped = raw.strip()
        if not stripped:
            consumed += len(raw) + 1
            continue
        try:
            record = json.loads(stripped)
            if not isinstance(record, dict):
                raise ValueError("not a JSON object")
        except ValueError as exc:
            if lineno == len(lines) and not fragment.strip():
                warnings.append(
                    f"{path}: discarded torn final line {lineno} "
                    f"(crash mid-write: {exc})"
                )
                break
            raise ValueError(f"{path}: corrupt line {lineno}: {exc}") from exc
        records.append(record)
        consumed += len(raw) + 1
    else:
        if fragment.strip():
            try:
                record = json.loads(fragment.strip())
                if not isinstance(record, dict):
                    raise ValueError("not a JSON object")
            except ValueError as exc:
                warnings.append(
                    f"{path}: discarded torn final line {len(lines) + 1} "
                    f"(crash mid-write: {exc})"
                )
            else:
                records.append(record)
                consumed += len(fragment)
    return records, warnings, offset + consumed


def read_jsonl_partial(path, offset: int = 0) -> tuple[list[dict], list[str]]:
    """Recovery parser for an in-flight or crash-interrupted results file.

    The streaming runner appends one fsync'd line per record, so the
    only damage a crash can inflict is a *torn final line* (the write
    that was in flight).  That tail is discarded and reported in the
    returned warnings; the complete records before it are kept.
    Malformed content anywhere *other* than the final line means the
    file was not produced by the append-only writer and raises
    ``ValueError`` rather than silently dropping data.

    Returns ``(records, warnings)``; incremental consumers that need to
    resume where they left off use :func:`tail_jsonl` directly.
    """
    records, warnings, _ = tail_jsonl(path, offset)
    return records, warnings


def load_results(path) -> list[dict]:
    """Load records from a results file or a campaign output directory."""
    if os.path.isdir(path):
        path = os.path.join(path, "results.jsonl")
    return read_jsonl(path)


def load_results_partial(path) -> tuple[list[dict], list[str]]:
    """Tolerant :func:`load_results`: accepts an in-flight campaign.

    Used by ``report`` on a streaming/interrupted campaign and by
    ``resume``; returns ``(records, warnings)`` where warnings describe
    any torn tail that was discarded.
    """
    if os.path.isdir(path):
        path = os.path.join(path, "results.jsonl")
    return read_jsonl_partial(path)


def group_key(record: dict) -> str:
    """Stable grouping key: the sweep parameters, canonically encoded."""
    return json.dumps(record.get("params", {}), sort_keys=True)


class StreamingAggregator:
    """Constant-memory, order-independent reduction of run records.

    Feed records one at a time with :meth:`add` -- in any order: file
    order, completion order, index order -- and :meth:`report` yields
    the same bytes, because per-column state is a
    :class:`~repro.obs.sketch.MetricSketch` (exactly-rounded mean,
    exact min/max) rather than a buffered value list, and failed-run
    entries are emitted sorted by run index.  The one order-sensitive
    corner is sketch-mode quantiles beyond the exact buffer
    (:class:`~repro.obs.sketch.StreamingQuantile`): P^2 marker state
    depends on insertion order, so huge-group p50/p95 are
    deterministic only for a fixed feed order (the runner always
    aggregates the finalized, index-sorted records).

    Memory is O(groups x columns + failures), independent of run count.
    """

    def __init__(self, mode: str = "exact"):
        if mode not in SUMMARY_MODES:
            raise ValueError(
                f"unknown summary_mode {mode!r} (expected one of {SUMMARY_MODES})"
            )
        self.mode = mode
        self._groups: dict[str, dict] = {}
        self._failed: list[tuple] = []
        self._runs = 0
        self._ok = 0
        self._quarantined = 0

    def add(self, record: dict) -> None:
        self._runs += 1
        if record.get("status") != "ok":
            # Quarantined runs (a worker-killer that exhausted its retry
            # budget -- see the runner) are failures with their own
            # count: they carry no summary, so they can never leak into
            # the metric sketches below, but they must stay visible in
            # the failed list rather than silently shrinking the matrix.
            if record.get("status") == "quarantined":
                self._quarantined += 1
            self._failed.append((
                record.get("index", self._runs),
                {"run_id": record["run_id"], "status": record["status"],
                 "error": record.get("error", "")},
            ))
            return
        self._ok += 1
        group = self._groups.setdefault(
            group_key(record), {"runs": 0, "columns": {}}
        )
        group["runs"] += 1
        columns = group["columns"]
        for name, value in record["summary"].items():
            if isinstance(value, (int, float)):
                sketch = columns.get(name)
                if sketch is None:
                    sketch = columns[name] = MetricSketch()
                sketch.add(value)

    def add_all(self, records) -> "StreamingAggregator":
        for record in records:
            self.add(record)
        return self

    @property
    def runs_seen(self) -> int:
        return self._runs

    def report(self) -> dict:
        """The aggregate report over everything added so far."""
        sketch_mode = self.mode == "sketch"
        groups = []
        for key in sorted(self._groups):
            group = self._groups[key]
            groups.append({
                "params": json.loads(key),
                "runs": group["runs"],
                "metrics": {
                    name: group["columns"][name].stats(sketch=sketch_mode)
                    for name in sorted(group["columns"])
                },
            })
        report = {
            "runs": self._runs,
            "ok": self._ok,
            "quarantined": self._quarantined,
            "failed": [entry for _, entry in sorted(
                self._failed, key=lambda item: item[0]
            )],
            "groups": groups,
        }
        if sketch_mode:
            report["summary_mode"] = "sketch"
        return report


def aggregate(records: list[dict], mode: str = "exact") -> dict:
    """Reduce records to per-group stats of every summary column.

    ``mode="exact"`` reports mean/min/max; ``mode="sketch"`` adds
    constant-memory p50/p95 and per-column counts.  Implemented on
    :class:`StreamingAggregator`, so a one-shot aggregation and an
    incremental one over the same records are byte-identical.
    """
    return StreamingAggregator(mode).add_all(records).report()


def _value_label(value) -> str:
    if isinstance(value, dict):
        # compact structured values: show the discriminating fields only
        kind = value.get("kind")
        if kind is not None:
            extras = [f"{k}={value[k]}" for k in ("n", "clusters") if k in value]
            return f"{kind}({', '.join(extras)})" if extras else str(kind)
        return json.dumps(value, sort_keys=True)
    if isinstance(value, list):
        return f"[{len(value)} item(s)]" if value and isinstance(value[0], dict) \
            else json.dumps(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _params_label(params: dict) -> str:
    if not params:
        return "(base)"
    return " ".join(f"{k}={_value_label(params[k])}" for k in sorted(params))


def report_text(report: dict, metrics: list[str] | None = None) -> str:
    """Fixed-width table of per-group means for the headline metrics."""
    metrics = metrics or TABLE_METRICS
    rows = []
    for group in report["groups"]:
        row = [_params_label(group["params"]), group["runs"]]
        for name in metrics:
            stat = group["metrics"].get(name)
            row.append(f"{stat['mean']:.4g}" if stat else "-")
        rows.append(row)
    quarantined = report.get("quarantined", 0)
    title = f"Campaign aggregate ({report['ok']}/{report['runs']} runs ok"
    if quarantined:
        title += f", {quarantined} quarantined"
    table = format_table(
        ["params", "runs"] + metrics,
        rows,
        title=title + ")",
    )
    if report["failed"]:
        lines = [table, "", "Failed runs:"]
        for failure in report["failed"]:
            lines.append(
                f"  {failure['run_id']}: {failure['status']} {failure['error']}"
            )
        return "\n".join(lines)
    return table
