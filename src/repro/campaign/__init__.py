"""Campaign engine: sharded parallel scenario sweeps.

The paper's evaluation is a *grid* of scenarios (topology x mobility x
attacker mix x traffic load); this subsystem makes that grid a
first-class artifact:

* :class:`~repro.campaign.spec.CampaignSpec` declares sweeps (cartesian
  axes + random samples over :class:`~repro.scenarios.ScenarioBuilder`
  knobs, replicate counts, workloads, adversary mixes);
* :func:`~repro.campaign.runner.run_campaign` executes the expanded run
  matrix across a multiprocessing pool with per-run deterministic seeds
  (:func:`repro.sim.rng.spawn_seed`) and timeout/failure isolation;
* :mod:`~repro.campaign.aggregate` persists per-run summaries as JSONL
  and reduces them to a grouped report;
* :mod:`~repro.campaign.baseline` diffs two result sets to catch
  PDR/latency regressions across PRs;
* ``python -m repro.campaign run|report|compare`` drives it all from
  the shell.
"""

from repro.campaign.aggregate import aggregate, load_results, report_text, write_jsonl
from repro.campaign.baseline import compare, comparison_text
from repro.campaign.runner import execute_run, run_campaign
from repro.campaign.spec import CampaignSpec, RunSpec

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "aggregate",
    "compare",
    "comparison_text",
    "execute_run",
    "load_results",
    "report_text",
    "run_campaign",
    "write_jsonl",
]
