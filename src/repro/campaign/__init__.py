"""Campaign engine: sharded parallel scenario sweeps.

The paper's evaluation is a *grid* of scenarios (topology x mobility x
attacker mix x traffic load); this subsystem makes that grid a
first-class artifact:

* :class:`~repro.campaign.spec.CampaignSpec` declares sweeps (cartesian
  axes + random samples over :class:`~repro.scenarios.ScenarioBuilder`
  knobs, replicate counts, workloads, adversary mixes, batch size);
* :class:`~repro.campaign.runner.CampaignRunner` (and the
  :func:`~repro.campaign.runner.run_campaign` wrapper) executes the
  expanded run matrix through a pluggable executor backend (the default
  ``"local"`` multiprocessing pool, or ``"inline"``) -- batching runs
  per worker task to amortise dispatch overhead, streaming completed
  records to ``results.jsonl`` as they arrive, and resuming an
  interrupted campaign from that checkpoint -- with per-run
  deterministic seeds (:func:`repro.sim.rng.spawn_seed`) and
  timeout/failure isolation.  Worker count, batch size, executor
  backend, resume interruption points, and shard splits never change
  results;
* :mod:`~repro.campaign.shard` partitions the matrix deterministically
  across hosts (``campaign run --shard i/N``), each shard writing a
  crash-safe checkpoint with a provenance manifest, and
  :mod:`~repro.campaign.merge` fuses those checkpoints back into one
  artifact byte-identical to a single-host run (conflicts quarantined,
  gaps resumable);
* :mod:`~repro.campaign.aggregate` persists per-run summaries as JSONL
  (with a recovery parser for in-flight/crashed files) and reduces
  them to a grouped report;
* :mod:`~repro.campaign.baseline` diffs two result sets to catch
  PDR/latency regressions across PRs;
* ``python -m repro.campaign run|resume|merge|report|compare`` drives
  it all from the shell.
"""

from repro.campaign.aggregate import (
    SUMMARY_MODES,
    StreamingAggregator,
    aggregate,
    load_results,
    load_results_partial,
    read_jsonl_partial,
    report_text,
    tail_jsonl,
    write_json_artifact,
    write_jsonl,
    write_report_artifacts,
)
from repro.campaign.baseline import compare, comparison_text
from repro.campaign.merge import (
    MergeError,
    discover_shard_dirs,
    merge_shards,
    validate_merge_conflicts_file,
)
from repro.campaign.runner import (
    EXECUTOR_REGISTRY,
    CampaignRunner,
    InlineExecutor,
    LocalExecutor,
    auto_batch_size,
    create_executor,
    execute_batch,
    execute_run,
    run_campaign,
)
from repro.campaign.shard import (
    fingerprint_digest,
    load_shard_manifest,
    parse_shard,
    shard_payloads,
    spec_fingerprint,
    write_shard_manifest,
)
from repro.campaign.spec import CampaignSpec, RunSpec

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "EXECUTOR_REGISTRY",
    "InlineExecutor",
    "LocalExecutor",
    "MergeError",
    "RunSpec",
    "SUMMARY_MODES",
    "StreamingAggregator",
    "aggregate",
    "auto_batch_size",
    "compare",
    "comparison_text",
    "create_executor",
    "discover_shard_dirs",
    "execute_batch",
    "execute_run",
    "fingerprint_digest",
    "load_results",
    "load_results_partial",
    "load_shard_manifest",
    "merge_shards",
    "parse_shard",
    "read_jsonl_partial",
    "report_text",
    "run_campaign",
    "shard_payloads",
    "spec_fingerprint",
    "tail_jsonl",
    "validate_merge_conflicts_file",
    "write_json_artifact",
    "write_jsonl",
    "write_report_artifacts",
    "write_shard_manifest",
]
