"""Campaign engine: sharded parallel scenario sweeps.

The paper's evaluation is a *grid* of scenarios (topology x mobility x
attacker mix x traffic load); this subsystem makes that grid a
first-class artifact:

* :class:`~repro.campaign.spec.CampaignSpec` declares sweeps (cartesian
  axes + random samples over :class:`~repro.scenarios.ScenarioBuilder`
  knobs, replicate counts, workloads, adversary mixes, batch size);
* :class:`~repro.campaign.runner.CampaignRunner` (and the
  :func:`~repro.campaign.runner.run_campaign` wrapper) executes the
  expanded run matrix across a multiprocessing pool -- batching runs
  per worker task to amortise dispatch overhead, streaming completed
  records to ``results.jsonl`` as they arrive, and resuming an
  interrupted campaign from that checkpoint -- with per-run
  deterministic seeds (:func:`repro.sim.rng.spawn_seed`) and
  timeout/failure isolation.  Worker count, batch size, and resume
  interruption points never change results;
* :mod:`~repro.campaign.aggregate` persists per-run summaries as JSONL
  (with a recovery parser for in-flight/crashed files) and reduces
  them to a grouped report;
* :mod:`~repro.campaign.baseline` diffs two result sets to catch
  PDR/latency regressions across PRs;
* ``python -m repro.campaign run|resume|report|compare`` drives it all
  from the shell.
"""

from repro.campaign.aggregate import (
    SUMMARY_MODES,
    StreamingAggregator,
    aggregate,
    load_results,
    load_results_partial,
    read_jsonl_partial,
    report_text,
    tail_jsonl,
    write_jsonl,
)
from repro.campaign.baseline import compare, comparison_text
from repro.campaign.runner import (
    CampaignRunner,
    auto_batch_size,
    execute_batch,
    execute_run,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, RunSpec

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "RunSpec",
    "SUMMARY_MODES",
    "StreamingAggregator",
    "aggregate",
    "auto_batch_size",
    "compare",
    "comparison_text",
    "execute_batch",
    "execute_run",
    "load_results",
    "load_results_partial",
    "read_jsonl_partial",
    "report_text",
    "run_campaign",
    "tail_jsonl",
    "write_jsonl",
]
