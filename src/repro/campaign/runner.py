"""Campaign execution: a run matrix over a multiprocessing worker pool.

Each run is executed by :func:`execute_run`, a module-level function so
it pickles cleanly into worker processes.  A run builds its scenario
from the serialized spec, wires adversaries, bootstraps, drives the
workload, and returns the run's :meth:`MetricsCollector.summary` as a
flat record.

Isolation guarantees:

* **Determinism** -- a run's record depends only on its :class:`RunSpec`
  (which embeds a :func:`~repro.sim.rng.spawn_seed`-derived seed), so
  worker count and scheduling order never change results; the runner
  additionally sorts records by run index before persisting.
* **Failure isolation** -- an exception inside one run produces an
  ``"error"`` record; the rest of the matrix still completes.
* **Timeout isolation** -- each run arms a wall-clock deadline
  (``SIGALRM``); a runaway run yields a ``"timeout"`` record instead of
  wedging the campaign.
"""

from __future__ import annotations

import concurrent.futures
import json
import multiprocessing
import os
import signal
import threading
from contextlib import contextmanager

from repro.campaign.spec import CampaignSpec
from repro.ipv6.address import IPv6Address
from repro.scenarios import (
    CBRTraffic,
    PoissonTraffic,
    RequestResponse,
    ScenarioBuilder,
    add_blackhole,
    add_dns_impersonator,
    add_forger,
    add_identity_churner,
    add_replayer,
    add_rerr_spammer,
)
from repro.sim.rng import SimRNG

#: Adversary kinds wireable from a campaign spec entry
#: ``{"kind": ..., "position": [x, y], ...kwargs}``.
ADVERSARY_REGISTRY = {
    "blackhole": add_blackhole,
    "rerr_spammer": add_rerr_spammer,
    "forger": add_forger,
    "replayer": add_replayer,
    "dns_impersonator": add_dns_impersonator,
    "identity_churner": add_identity_churner,
}

#: Adversary kwargs holding IPv6 addresses (serialized as strings).
_ADDRESS_KWARGS = {"fake_answer", "spoof_hop_ip"}


class RunTimeout(Exception):
    """A run exceeded its wall-clock budget."""


@contextmanager
def deadline(seconds: float | None):
    """Arm a SIGALRM-based wall-clock deadline around a block.

    No-op when ``seconds`` is falsy, on platforms without ``SIGALRM``,
    or off the main thread (``signal`` only works there); the
    simulation itself is still bounded by virtual time in those cases.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _raise(signum, frame):
        raise RunTimeout(f"run exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _raise)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _add_adversary(scenario, spec: dict) -> None:
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in ADVERSARY_REGISTRY:
        raise ValueError(
            f"unknown adversary kind {kind!r} "
            f"(expected one of {sorted(ADVERSARY_REGISTRY)})"
        )
    position = tuple(spec.pop("position"))
    for key in _ADDRESS_KWARGS & set(spec):
        spec[key] = IPv6Address(spec[key])
    ADVERSARY_REGISTRY[kind](scenario, position, **spec)


def _workload_pairs(hosts: list, workload: dict, seed: int) -> list:
    """Pick (src, dst) node pairs: explicit indices or seeded sampling."""
    if "pairs" in workload:
        return [(hosts[i], hosts[j]) for i, j in workload["pairs"]]
    configured = [h for h in hosts if h.configured]
    if len(configured) < 2:
        return []
    rng = SimRNG(seed, "campaign/workload")
    pairs = []
    for _ in range(int(workload.get("flows", 1))):
        src = rng.choice(configured)
        dst = rng.choice(configured)
        while dst is src:
            dst = rng.choice(configured)
        pairs.append((src, dst))
    return pairs


#: Accepted workload keys (union over kinds); a typo'd campaign axis such
#: as "workload.intervall" must error, not silently fall back to defaults.
_WORKLOAD_KEYS = {"kind", "flows", "pairs", "interval", "rate", "count",
                  "payload_size"}
_BOOTSTRAP_KEYS = {"stagger"}


def _start_workload(scenario, hosts: list, workload: dict, seed: int) -> list:
    unknown = set(workload) - _WORKLOAD_KEYS
    if unknown:
        raise ValueError(
            f"unknown workload keys: {sorted(unknown)} "
            f"(allowed: {sorted(_WORKLOAD_KEYS)})"
        )
    kind = workload.get("kind", "cbr")
    pairs = [(s, d) for s, d in _workload_pairs(hosts, workload, seed)
             if s.configured and d.configured]
    flows = []
    for src, dst in pairs:
        if kind == "cbr":
            flows.append(CBRTraffic(
                src, dst.ip,
                interval=float(workload.get("interval", 1.0)),
                count=int(workload.get("count", 10)),
                payload_size=int(workload.get("payload_size", 64)),
            ))
        elif kind == "poisson":
            flows.append(PoissonTraffic(
                src, dst.ip,
                rate=float(workload.get("rate", 1.0)),
                count=int(workload.get("count", 10)),
                payload_size=int(workload.get("payload_size", 64)),
            ))
        elif kind == "request_response":
            flows.append(RequestResponse(
                src, dst.ip,
                count=int(workload.get("count", 5)),
                interval=float(workload.get("interval", 2.0)),
                payload_size=int(workload.get("payload_size", 128)),
            ))
        else:
            raise ValueError(f"unknown workload kind {kind!r}")
    return flows


def _run_body(run: dict) -> dict:
    scenario = ScenarioBuilder.from_spec(run["scenario"]).build()
    honest = list(scenario.hosts)
    for adversary in run.get("adversaries", []):
        _add_adversary(scenario, adversary)

    bootstrap = run.get("bootstrap", {})
    unknown = set(bootstrap) - _BOOTSTRAP_KEYS
    if unknown:
        raise ValueError(
            f"unknown bootstrap keys: {sorted(unknown)} "
            f"(allowed: {sorted(_BOOTSTRAP_KEYS)})"
        )
    scenario.bootstrap_all(stagger=float(bootstrap.get("stagger", 0.25)))

    _start_workload(scenario, honest, run.get("workload", {}), run["seed"])
    scenario.run(duration=float(run.get("duration", 30.0)))

    # Close the encode window at the run boundary (workers are reused
    # across runs).  Equivalent to the immediate summary() read below
    # today, since only the dict outlives this call -- the freeze makes
    # the per-run attribution explicit rather than an accident of
    # object lifetime (see MetricsCollector.freeze).
    scenario.metrics.freeze()
    summary = scenario.metrics.summary()
    summary["hosts"] = len(honest)
    summary["configured_hosts"] = sum(1 for h in honest if h.configured)
    return summary


def execute_run(run: dict) -> dict:
    """Execute one serialized :class:`RunSpec`; never raises.

    Returns a flat record: identification fields plus either the run
    summary (``status == "ok"``) or an error string.  Records contain
    no wall-clock values, so reruns of the same spec+seed are
    byte-identical.
    """
    record = {
        "run_id": run["run_id"],
        "index": run["index"],
        "replicate": run["replicate"],
        "seed": run["seed"],
        "params": run["params"],
        "status": "ok",
    }
    try:
        with deadline(run.get("timeout")):
            record["summary"] = _run_body(run)
    except RunTimeout as exc:
        record["status"] = "timeout"
        record["error"] = str(exc)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def run_campaign(
    spec: CampaignSpec,
    workers: int = 2,
    out_dir=None,
    echo=None,
) -> list[dict]:
    """Execute every run of ``spec`` and return sorted records.

    ``workers <= 1`` runs inline (easier debugging, identical results).
    When ``out_dir`` is given, writes ``results.jsonl`` (one sorted,
    deterministic record per run), ``report.json``/``report.txt``
    (aggregates), and ``spec.json`` (the expanded campaign spec, for
    provenance).
    """
    from repro.campaign.aggregate import aggregate, report_text, write_jsonl

    runs = spec.expand()
    payloads = [r.to_dict() for r in runs]
    say = echo or (lambda _msg: None)
    say(f"campaign {spec.name!r}: {len(runs)} runs on {max(1, workers)} worker(s)")

    if workers <= 1:
        records = []
        for payload in payloads:
            records.append(execute_run(payload))
            say(f"  [{len(records)}/{len(runs)}] {records[-1]['run_id']} "
                f"{records[-1]['status']}")
    else:
        context = multiprocessing.get_context()
        records = []
        orphaned = []  # payloads whose worker died (pool became unusable)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {pool.submit(execute_run, p): p for p in payloads}
            for future in concurrent.futures.as_completed(futures):
                try:
                    record = future.result()
                except Exception:  # worker died (OOM-kill, segfault): the
                    # pool is broken and every pending future fails with it;
                    # execute_run can't catch process death from inside
                    orphaned.append(futures[future])
                    continue
                records.append(record)
                say(f"  [{len(records)}/{len(runs)}] {record['run_id']} "
                    f"{record['status']}")
        # Retry each orphan in its own fresh single-worker pool: innocent
        # bystanders of the breakage complete normally, and the run that
        # actually kills its worker only takes its private pool with it.
        for payload in sorted(orphaned, key=lambda p: p["index"]):
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=1, mp_context=context
                ) as retry_pool:
                    record = retry_pool.submit(execute_run, payload).result()
            except Exception as exc:
                record = {
                    "run_id": payload["run_id"],
                    "index": payload["index"],
                    "replicate": payload["replicate"],
                    "seed": payload["seed"],
                    "params": payload["params"],
                    "status": "error",
                    "error": f"worker died: {type(exc).__name__}: {exc}",
                }
            records.append(record)
            say(f"  [{len(records)}/{len(runs)}] {record['run_id']} "
                f"{record['status']} (retried)")

    records.sort(key=lambda r: r["index"])

    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        write_jsonl(os.path.join(out_dir, "results.jsonl"), records)
        report = aggregate(records)
        report["campaign"] = spec.name
        with open(os.path.join(out_dir, "report.json"), "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        with open(os.path.join(out_dir, "report.txt"), "w", encoding="utf-8") as fh:
            fh.write(report_text(report) + "\n")
        with open(os.path.join(out_dir, "spec.json"), "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        say(f"wrote {os.path.join(out_dir, 'results.jsonl')}")
    return records
