"""Campaign execution: batched, streaming, resumable run-matrix sweeps.

Each run is executed by :func:`execute_run`, a module-level function so
it pickles cleanly into worker processes.  A run builds its scenario
from the serialized spec, wires adversaries, bootstraps, drives the
workload, and returns the run's :meth:`MetricsCollector.summary` as a
flat record.  :func:`execute_batch` groups several runs into one worker
task so sweeps of many *small* runs amortise pool/pickle overhead; the
batch size is auto-tuned by :func:`auto_batch_size` and overridable via
``CampaignSpec.batch_size`` / ``--batch-size``.

:class:`CampaignRunner` orchestrates the sweep: it streams completed
records to ``results.jsonl`` as they arrive (append + fsync, one JSON
object per line), so a long campaign can be ``report``-ed mid-flight
and a crash loses at most the line being written.  ``resume()`` (and
the ``campaign resume`` CLI verb) reads that checkpoint back, discards
a torn tail, re-runs only the missing indices, and finalizes output
byte-identical to an uninterrupted campaign.

*Where* batches execute is pluggable: the runner dispatches through an
executor backend (:data:`EXECUTOR_REGISTRY` -- the multiprocessing
pool is the ``"local"`` backend, ``"inline"`` runs everything in the
coordinating process) and, with a shard assignment
(``campaign run --shard i/N``), executes only its slice of the matrix
into a crash-safe ``shard-i-of-N/`` checkpoint that ``campaign merge``
(:mod:`repro.campaign.merge`) later fuses -- so a campaign survives
not just a dead worker but a dead host.

Isolation guarantees:

* **Determinism** -- a run's record depends only on its :class:`RunSpec`
  (which embeds a :func:`~repro.sim.rng.spawn_seed`-derived seed), so
  worker count, batch size, scheduling order, and resume interruption
  points never change results; the runner additionally sorts records by
  run index before finalizing.
* **Failure isolation** -- an exception inside one run produces an
  ``"error"`` record; the rest of the matrix (including the failing
  run's batchmates) still completes.  A run that *kills its worker*
  (OOM, segfault) is re-executed alone with bounded exponential
  backoff; one that keeps killing workers is recorded as
  ``"quarantined"`` and diagnosed in ``quarantine.jsonl`` instead of
  failing the campaign.
* **Interrupt isolation** -- SIGINT/SIGTERM stop dispatch gracefully:
  in-flight batches are abandoned (noted in telemetry), the streaming
  checkpoint is flushed, and :class:`CampaignInterrupted` propagates so
  ``campaign resume`` can finish the matrix byte-identically.
* **Timeout isolation** -- each run arms its *own* wall-clock deadline
  (``SIGALRM``), re-armed per run inside a batch, so a runaway run
  yields a ``"timeout"`` record without eating its batchmates' budget.
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import multiprocessing
import os
import signal
import sys
import threading
import time
from contextlib import contextmanager

from repro.campaign.shard import (
    load_shard_manifest,
    shard_dir_name,
    shard_payloads,
    spec_fingerprint,
    touch_heartbeat,
    write_shard_manifest,
)
from repro.campaign.spec import CampaignSpec
from repro.ipv6.address import IPv6Address
from repro.scenarios import (
    CBRTraffic,
    PoissonTraffic,
    RequestResponse,
    ScenarioBuilder,
    add_blackhole,
    add_dns_impersonator,
    add_forger,
    add_identity_churner,
    add_replayer,
    add_rerr_spammer,
)
from repro.sim.rng import SimRNG

#: Adversary kinds wireable from a campaign spec entry
#: ``{"kind": ..., "position": [x, y], ...kwargs}``.
ADVERSARY_REGISTRY = {
    "blackhole": add_blackhole,
    "rerr_spammer": add_rerr_spammer,
    "forger": add_forger,
    "replayer": add_replayer,
    "dns_impersonator": add_dns_impersonator,
    "identity_churner": add_identity_churner,
}

#: Adversary kwargs holding IPv6 addresses (serialized as strings).
_ADDRESS_KWARGS = {"fake_answer", "spoof_hop_ip"}


class RunTimeout(Exception):
    """A run exceeded its wall-clock budget."""


class CampaignInterrupted(Exception):
    """The campaign was stopped by a signal after a graceful checkpoint.

    Raised out of :meth:`CampaignRunner.run`/``resume`` once the
    streaming ``results.jsonl`` checkpoint is flushed and closed, so the
    caller can exit with the conventional ``128 + signum`` status and a
    later ``campaign resume`` picks up exactly where dispatch stopped.
    """

    def __init__(self, signum: int):
        self.signum = int(signum)
        name = signal.Signals(self.signum).name
        super().__init__(
            f"campaign interrupted by {name}; checkpoint flushed -- "
            "finish it with 'campaign resume'"
        )


@contextmanager
def deadline(seconds: float | None):
    """Arm a SIGALRM-based wall-clock deadline around a block.

    No-op when ``seconds`` is falsy, on platforms without ``SIGALRM``,
    or off the main thread (``signal`` only works there); the
    simulation itself is still bounded by virtual time in those cases.

    Batch-safe: each entry arms a *fresh* timer and, on exit, restores
    the previous handler and whatever remained of an enclosing deadline
    (minus the time this block consumed).  Consecutive runs in a batch
    therefore each get their full budget, and a pending alarm can never
    leak out of the block that armed it.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _raise(signum, frame):
        raise RunTimeout(f"run exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _raise)
    started = time.monotonic()
    outer_delay, outer_interval = signal.setitimer(
        signal.ITIMER_REAL, float(seconds)
    )
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            # Re-arm the enclosing deadline with its remaining budget;
            # if this block already overran it, fire ~immediately so
            # the outer scope still observes its timeout.
            elapsed = time.monotonic() - started
            signal.setitimer(
                signal.ITIMER_REAL,
                max(outer_delay - elapsed, 1e-6),
                outer_interval,
            )


def _add_adversary(scenario, spec: dict) -> None:
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in ADVERSARY_REGISTRY:
        raise ValueError(
            f"unknown adversary kind {kind!r} "
            f"(expected one of {sorted(ADVERSARY_REGISTRY)})"
        )
    position = tuple(spec.pop("position"))
    for key in _ADDRESS_KWARGS & set(spec):
        spec[key] = IPv6Address(spec[key])
    ADVERSARY_REGISTRY[kind](scenario, position, **spec)


def _workload_pairs(hosts: list, workload: dict, seed: int) -> list:
    """Pick (src, dst) node pairs: explicit indices or seeded sampling."""
    if "pairs" in workload:
        return [(hosts[i], hosts[j]) for i, j in workload["pairs"]]
    configured = [h for h in hosts if h.configured]
    if len(configured) < 2:
        return []
    rng = SimRNG(seed, "campaign/workload")
    pairs = []
    for _ in range(int(workload.get("flows", 1))):
        src = rng.choice(configured)
        dst = rng.choice(configured)
        while dst is src:
            dst = rng.choice(configured)
        pairs.append((src, dst))
    return pairs


#: Accepted workload keys (union over kinds); a typo'd campaign axis such
#: as "workload.intervall" must error, not silently fall back to defaults.
_WORKLOAD_KEYS = {"kind", "flows", "pairs", "interval", "rate", "count",
                  "payload_size"}
_BOOTSTRAP_KEYS = {"stagger"}


def _start_workload(scenario, hosts: list, workload: dict, seed: int) -> list:
    unknown = set(workload) - _WORKLOAD_KEYS
    if unknown:
        raise ValueError(
            f"unknown workload keys: {sorted(unknown)} "
            f"(allowed: {sorted(_WORKLOAD_KEYS)})"
        )
    kind = workload.get("kind", "cbr")
    pairs = [(s, d) for s, d in _workload_pairs(hosts, workload, seed)
             if s.configured and d.configured]
    flows = []
    for src, dst in pairs:
        if kind == "cbr":
            flows.append(CBRTraffic(
                src, dst.ip,
                interval=float(workload.get("interval", 1.0)),
                count=int(workload.get("count", 10)),
                payload_size=int(workload.get("payload_size", 64)),
            ))
        elif kind == "poisson":
            flows.append(PoissonTraffic(
                src, dst.ip,
                rate=float(workload.get("rate", 1.0)),
                count=int(workload.get("count", 10)),
                payload_size=int(workload.get("payload_size", 64)),
            ))
        elif kind == "request_response":
            flows.append(RequestResponse(
                src, dst.ip,
                count=int(workload.get("count", 5)),
                interval=float(workload.get("interval", 2.0)),
                payload_size=int(workload.get("payload_size", 128)),
            ))
        else:
            raise ValueError(f"unknown workload kind {kind!r}")
    return flows


def _run_body(run: dict) -> dict:
    scenario = ScenarioBuilder.from_spec(run["scenario"]).build()
    honest = list(scenario.hosts)
    for adversary in run.get("adversaries", []):
        _add_adversary(scenario, adversary)

    bootstrap = run.get("bootstrap", {})
    unknown = set(bootstrap) - _BOOTSTRAP_KEYS
    if unknown:
        raise ValueError(
            f"unknown bootstrap keys: {sorted(unknown)} "
            f"(allowed: {sorted(_BOOTSTRAP_KEYS)})"
        )
    scenario.bootstrap_all(stagger=float(bootstrap.get("stagger", 0.25)))

    _start_workload(scenario, honest, run.get("workload", {}), run["seed"])
    scenario.run(duration=float(run.get("duration", 30.0)))

    # Close the encode window at the run boundary (workers are reused
    # across runs).  Equivalent to the immediate summary() read below
    # today, since only the dict outlives this call -- the freeze makes
    # the per-run attribution explicit rather than an accident of
    # object lifetime (see MetricsCollector.freeze).
    scenario.metrics.freeze()
    summary = scenario.metrics.summary()
    summary["hosts"] = len(honest)
    summary["configured_hosts"] = sum(1 for h in honest if h.configured)
    return summary


def execute_run(run: dict) -> dict:
    """Execute one serialized :class:`RunSpec`; never raises.

    Returns a flat record: identification fields plus either the run
    summary (``status == "ok"``) or an error string.  Records contain
    no wall-clock values, so reruns of the same spec+seed are
    byte-identical.
    """
    record = {
        "run_id": run["run_id"],
        "index": run["index"],
        "replicate": run["replicate"],
        "seed": run["seed"],
        "params": run["params"],
        "status": "ok",
    }
    try:
        with deadline(run.get("timeout")):
            record["summary"] = _run_body(run)
    except RunTimeout as exc:
        record["status"] = "timeout"
        record["error"] = str(exc)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def execute_batch(runs: list[dict]) -> list[dict]:
    """Execute a batch of serialized :class:`RunSpec`\\ s; never raises.

    Batching amortises pool/pickle dispatch overhead for sweeps of many
    small runs.  Isolation stays *per run*: each run re-arms its own
    wall-clock deadline inside :func:`execute_run` (a slow run cannot
    eat its batchmates' budget) and failures are recorded per run, so a
    batch always returns one record per input run.
    """
    return [execute_run(run) for run in runs]


def _timed_execute_batch(runs: list[dict]) -> dict:
    """:func:`execute_batch` plus wall-clock metadata, for telemetry.

    Submitted to workers instead of :func:`execute_batch` when the
    runner's telemetry sidecar is enabled, so each batch record can
    carry the executing worker's pid and in-worker wall time.  The run
    records themselves are untouched -- telemetry never changes
    ``results.jsonl``.
    """
    started = time.perf_counter()
    records = execute_batch(runs)
    return {
        "records": records,
        "wall_s": time.perf_counter() - started,
        "worker_pid": os.getpid(),
    }


#: Auto-tuned batches never exceed this many runs, so even enormous
#: matrices keep streaming records out at a reasonable cadence.
MAX_AUTO_BATCH = 32

#: Target batches-per-worker for the auto-tuner; oversubscription lets
#: fast workers absorb slow batches instead of idling at the tail.
_OVERSUBSCRIPTION = 4


def auto_batch_size(n_runs: int, workers: int) -> int:
    """Default batch size for ``n_runs`` across ``workers`` processes.

    Aims for ~``_OVERSUBSCRIPTION`` batches per worker (load balance)
    while capping at :data:`MAX_AUTO_BATCH` (streaming cadence).  Small
    matrices get batch size 1 -- batching only pays when per-task
    dispatch overhead rivals the runs themselves.  Execution-only:
    batch composition never affects results.
    """
    workers = max(1, int(workers))
    if n_runs <= 0:
        return 1
    return max(1, min(MAX_AUTO_BATCH,
                      math.ceil(n_runs / (workers * _OVERSUBSCRIPTION))))


# -- pluggable executors -------------------------------------------------
#
# The runner's dispatch loop is generic; *where* a batch executes is an
# Executor's business.  The protocol is deliberately small so new
# backends (a remote job queue, a CI matrix fan-out) can slot in without
# touching the retry/quarantine/telemetry/checkpoint machinery:
#
#   run_batches(chunks, task, on_outcome, should_stop) -> in_flight
#       Execute ``task(chunk)`` for every chunk, calling
#       ``on_outcome(chunk, value, error)`` as each completes (in
#       completion order; ``error`` is the worker-death exception when
#       the backend lost the process running the chunk).  Poll
#       ``should_stop()`` between completions and return the chunks
#       *dispatched but never handed* to ``on_outcome`` -- runs that
#       may have half-executed somewhere -- so a graceful shutdown can
#       name its abandoned work.  Chunks never dispatched at all are
#       not in flight (the resume checkpoint recomputes them as
#       pending); a serial backend therefore returns an empty list.
#
#   run_single(payload) -> record
#       Execute one run in the strongest isolation the backend has
#       (the orphan-retry path); raises if the backend loses it again.
#
# Executors must call ``task``/``execute_run`` late-bound through this
# module's globals -- the robustness tests monkeypatch them.

class InlineExecutor:
    """Serial in-process backend: batches run in the coordinating process.

    The ``workers <= 1`` path: no pools, no pickling, identical results
    -- easiest to debug and the only mode where a run can be stepped
    through in the coordinating process.
    """

    name = "inline"

    def __init__(self, workers: int = 1):
        self.workers = 1

    def run_batches(self, chunks, task, on_outcome, should_stop):
        for chunk in chunks:
            if should_stop():
                # nothing is in flight: the current batch completed and
                # landed before the stop check, the rest never started
                break
            on_outcome(chunk, task(chunk), None)
        return []

    def run_single(self, payload: dict) -> dict:
        return execute_run(payload)


class LocalExecutor:
    """Multiprocessing-pool backend: batches fan out across local cores.

    Worker death (OOM-kill, segfault) breaks the whole pool -- every
    pending future fails with it -- so affected chunks are reported
    through ``on_outcome`` with the death as ``error``; the runner
    retries those runs via :meth:`run_single` (a fresh single-worker
    pool, so only a genuinely poisonous run keeps failing).
    """

    name = "local"

    def __init__(self, workers: int, context=None):
        self.workers = max(1, int(workers))
        self.context = context or multiprocessing.get_context()

    def run_batches(self, chunks, task, on_outcome, should_stop):
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            mp_context=self.context,
        )
        futures = {}
        not_done: set = set()
        try:
            futures = {pool.submit(task, c): c for c in chunks}
            not_done = set(futures)
            while not_done and not should_stop():
                # Short-timeout wait instead of as_completed so a stop
                # signal is noticed promptly even while batches run.
                done, not_done = concurrent.futures.wait(
                    not_done, timeout=0.2,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    try:
                        value = future.result()
                    except Exception as exc:  # worker died: the pool is
                        # broken and every pending future fails with it;
                        # execute_batch can't catch process death inside
                        on_outcome(futures[future], None, exc)
                    else:
                        on_outcome(futures[future], value, None)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return [futures[future] for future in not_done]

    def run_single(self, payload: dict) -> dict:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=self.context
        ) as retry_pool:
            return retry_pool.submit(execute_run, payload).result()


#: Executor backends selectable via ``CampaignRunner(executor=...)`` /
#: ``campaign run --executor``.  ``"local"`` degrades to the inline
#: backend at ``workers <= 1`` (same results either way -- the
#: determinism contract makes backends interchangeable).
EXECUTOR_REGISTRY = {
    "local": LocalExecutor,
    "inline": InlineExecutor,
}


def create_executor(name: str, workers: int):
    """Instantiate a registered executor backend by name."""
    if name not in EXECUTOR_REGISTRY:
        raise ValueError(
            f"unknown executor {name!r} "
            f"(expected one of {sorted(EXECUTOR_REGISTRY)})"
        )
    if name == "local" and int(workers) <= 1:
        return InlineExecutor()
    return EXECUTOR_REGISTRY[name](workers)


def _worker_death_record(payload: dict, exc: Exception) -> dict:
    return {
        "run_id": payload["run_id"],
        "index": payload["index"],
        "replicate": payload["replicate"],
        "seed": payload["seed"],
        "params": payload["params"],
        "status": "error",
        "error": f"worker died: {type(exc).__name__}: {exc}",
    }


def _quarantine_record(payload: dict, exc: Exception, attempts: int) -> dict:
    """Results record for a run that exhausted its worker-death retries."""
    record = _worker_death_record(payload, exc)
    record["status"] = "quarantined"
    record["attempts"] = int(attempts)
    return record


#: Required fields of one ``quarantine.jsonl`` diagnostic line.
_QUARANTINE_FIELDS = {
    "run_id": str,
    "index": int,
    "seed": int,
    "params": dict,
    "attempts": int,
    "error": str,
}


def validate_quarantine_file(path) -> int:
    """Validate every line of a ``quarantine.jsonl``; returns the count.

    Each line is one quarantined run's diagnostic: identification
    fields, the total attempt budget it exhausted, and the final
    worker-death error.  Raises ``ValueError`` on the first malformed
    line.  The CI chaos gate uses this to schema-check quarantine
    sidecars the same way telemetry files are checked.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: line {lineno}: {exc}") from exc
            if not isinstance(entry, dict):
                raise ValueError(
                    f"{path}: line {lineno}: quarantine entry must be an "
                    f"object, got {type(entry).__name__}"
                )
            for name, expected in _QUARANTINE_FIELDS.items():
                if name not in entry:
                    raise ValueError(
                        f"{path}: line {lineno}: missing field {name!r}"
                    )
                value = entry[name]
                if expected is int:
                    ok = isinstance(value, int) and not isinstance(value, bool)
                else:
                    ok = isinstance(value, expected)
                if not ok:
                    raise ValueError(
                        f"{path}: line {lineno}: field {name!r} must be "
                        f"{expected.__name__}, got {type(value).__name__}"
                    )
            if entry["attempts"] < 1:
                raise ValueError(
                    f"{path}: line {lineno}: attempts must be >= 1"
                )
            count += 1
    return count


class CampaignRunner:
    """Batched, streaming, resumable executor for a :class:`CampaignSpec`.

    ``run()`` executes the full matrix; ``resume()`` picks up an
    interrupted campaign from its ``results.jsonl`` checkpoint.  Both
    stream records to disk as they arrive and finalize identical
    artifacts, so the determinism contract is: *worker count, batch
    size, and resume interruption points never change results* --
    ``results.jsonl``, ``report.json`` and ``report.txt`` are
    byte-identical however the campaign was executed.

    ``workers <= 1`` runs inline (easier debugging, identical results).
    ``batch_size=None`` defers to ``spec.batch_size``, and ``None``
    there auto-tunes via :func:`auto_batch_size`.  ``progress=True``
    prints a ticker line to stderr as batches land (rate and ETA once
    the first batch has completed).  ``telemetry=True`` appends an
    fsync'd ``telemetry.jsonl`` sidecar (per-batch wall time, worker
    pid, runs/sec, retry/timeout counts -- see
    :mod:`repro.obs.telemetry`) next to ``results.jsonl``; telemetry is
    wall-clock data and never changes the deterministic artifacts.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 2,
        batch_size: int | None = None,
        out_dir=None,
        echo=None,
        progress: bool = False,
        telemetry: bool = False,
        executor: str = "local",
    ):
        self.spec = spec
        self.workers = max(1, int(workers))
        if batch_size is None:
            batch_size = spec.batch_size
        if batch_size is not None and int(batch_size) < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = None if batch_size is None else int(batch_size)
        if executor not in EXECUTOR_REGISTRY:
            raise ValueError(
                f"unknown executor {executor!r} "
                f"(expected one of {sorted(EXECUTOR_REGISTRY)})"
            )
        self.executor_name = executor
        self.out_dir = None if out_dir is None else os.fspath(out_dir)
        #: ``(shard_index, shard_count)`` when the spec declares a shard
        #: assignment.  The shard's checkpoint lives in its own
        #: ``shard-<i>-of-<N>/`` subdirectory of ``out_dir``, so every
        #: shard of a campaign can point at the same parent directory
        #: (shared filesystem, collected CI artifacts) and ``campaign
        #: merge`` fuses them from there.
        self.shard = None
        if spec.shards is not None:
            self.shard = (spec.shard_index, spec.shards)
            if self.out_dir is not None:
                self.out_dir = os.path.join(
                    self.out_dir, shard_dir_name(*self.shard)
                )
        self.progress = bool(progress)
        self.telemetry = bool(telemetry)
        if self.telemetry and self.out_dir is None:
            raise ValueError("telemetry requires an output directory")
        self._say = echo or (lambda _msg: None)
        self._counts = {"ok": 0, "failed": 0}
        self._total = 0
        self._matrix_total = 0
        self._telemetry = None
        self._started = None
        self._done_at_start = 0
        self._retries = 0
        self._stop_signal = None
        self._abandoned: list[int] = []

    # -- public entry points --------------------------------------------
    def run(self) -> list[dict]:
        """Execute every run of this executor's slice; returns sorted records.

        Unsharded, the slice is the whole matrix.  With a shard
        assignment, the full matrix is expanded first (run_ids/seeds
        never depend on the split) and only the indices assigned to
        this shard execute, streaming to the shard's own checkpoint.
        """
        payloads = self._own_payloads()
        batch = self.batch_size or auto_batch_size(len(payloads), self.workers)
        self._say(
            f"campaign {self.spec.name!r}:{self._shard_label()} "
            f"{len(payloads)} runs on {self.workers} worker(s), "
            f"batch size {batch}"
        )
        return self._execute(payloads, existing=[], batch=batch)

    def resume(self) -> list[dict]:
        """Finish an interrupted campaign from its on-disk checkpoint.

        Reads ``results.jsonl`` with the recovery parser (a torn final
        line from a crash mid-write is discarded with a warning and its
        run re-executed), validates every checkpoint record against the
        expanded spec (records whose run_id/seed/params drifted are
        discarded and re-run), then executes only the missing indices.
        The finalized output is byte-identical to an uninterrupted
        campaign -- including when there is nothing left to run.
        """
        if self.out_dir is None:
            raise ValueError("resume() requires an output directory")
        self._check_spec_provenance()
        self._check_shard_provenance()
        payloads = self._own_payloads()
        results_path = os.path.join(self.out_dir, "results.jsonl")
        kept = self._load_checkpoint(results_path, payloads)
        pending = [p for p in payloads if p["index"] not in kept]
        batch = self.batch_size or auto_batch_size(len(pending), self.workers)
        self._say(
            f"campaign {self.spec.name!r}:{self._shard_label()} resuming -- "
            f"{len(kept)} of {len(payloads)} runs checkpointed, "
            f"{len(pending)} left on {self.workers} worker(s), "
            f"batch size {batch}"
        )
        existing = sorted(kept.values(), key=lambda r: r["index"])
        return self._execute(pending, existing=existing, batch=batch,
                             resumed=True)

    # -- shard helpers --------------------------------------------------
    def _own_payloads(self) -> list[dict]:
        """This executor's slice of the fully-expanded run matrix."""
        payloads = [r.to_dict() for r in self.spec.expand()]
        self._matrix_total = len(payloads)
        if self.shard is None:
            return payloads
        return shard_payloads(payloads, *self.shard)

    def _shard_label(self) -> str:
        if self.shard is None:
            return ""
        return f" shard {self.shard[0]}/{self.shard[1]} --"

    def _check_shard_provenance(self) -> None:
        """Refuse to resume across a shard-assignment mismatch.

        A shard checkpoint resumed under a different (or absent) shard
        assignment would treat every other shard's runs as pending and
        re-execute them into the wrong directory; an unsharded
        checkpoint resumed *as* a shard would silently drop the rest of
        the matrix.  Both are operator errors worth a hard stop.
        """
        manifest = load_shard_manifest(self.out_dir)
        saved = (None if manifest is None
                 else (manifest["shard_index"], manifest["shard_count"]))
        if saved != self.shard:
            describe = lambda s: "unsharded" if s is None else f"shard {s[0]}/{s[1]}"
            raise ValueError(
                f"refusing to resume: {self.out_dir} was written by a "
                f"{describe(saved)} execution but this one is "
                f"{describe(self.shard)}; pass the matching --shard "
                "(or point --out at the right checkpoint)"
            )

    # -- resume helpers -------------------------------------------------
    @staticmethod
    def _spec_fingerprint(data: dict) -> dict:
        """Spec dict minus execution/reporting-only keys.

        ``batch_size`` never changes results; ``summary_mode`` only
        changes how reports reduce them; the retry knobs govern how hard
        the runner fights worker death; the shard keys say *where* a
        slice executes, never what it computes.  None of them may block
        a resume (see :func:`repro.campaign.shard.spec_fingerprint`).
        """
        return spec_fingerprint(data)

    def _check_spec_provenance(self) -> None:
        """Refuse to resume into an output directory from a different spec."""
        spec_path = os.path.join(self.out_dir, "spec.json")
        if not os.path.exists(spec_path):
            return
        with open(spec_path, "r", encoding="utf-8") as fh:
            saved = json.load(fh)
        if self._spec_fingerprint(saved) != self._spec_fingerprint(self.spec.to_dict()):
            raise ValueError(
                f"refusing to resume: {spec_path} was written by a different "
                "campaign spec; finishing it with this one would mix matrices"
            )

    def _load_checkpoint(self, results_path, payloads: list[dict]) -> dict[int, dict]:
        """Validated checkpoint records keyed by run index.

        Missing file -> FileNotFoundError (resume needs something to
        resume; use ``run`` to start fresh).  Torn tails, duplicate
        indices, and records that do not match the spec's expansion are
        discarded with a warning -- their runs simply execute again.
        """
        from repro.campaign.aggregate import read_jsonl_partial

        records, warnings = read_jsonl_partial(results_path)
        expected = {p["index"]: p for p in payloads}
        kept: dict[int, dict] = {}
        for position, record in enumerate(records, 1):
            index = record.get("index")
            payload = expected.get(index)
            if payload is None:
                warnings.append(
                    f"discarding checkpoint record {position}: index "
                    f"{index!r} is not in this campaign's run matrix"
                )
            elif (
                record.get("run_id") != payload["run_id"]
                or record.get("seed") != payload["seed"]
                or record.get("params") != payload["params"]
            ):
                warnings.append(
                    f"discarding checkpoint record for index {index}: "
                    "run_id/seed/params do not match the spec (drifted?); "
                    "the run will be re-executed"
                )
            elif index in kept:
                warnings.append(
                    f"discarding duplicate checkpoint record for index {index}"
                )
            else:
                kept[index] = record
        for warning in warnings:
            self._say(f"warning: {warning}")
        return kept

    # -- execution core -------------------------------------------------
    def _execute(self, pending: list[dict], existing: list[dict],
                 batch: int, resumed: bool = False) -> list[dict]:
        self._total = len(pending) + len(existing)
        self._counts = {
            "ok": sum(1 for r in existing if r["status"] == "ok"),
            "failed": sum(1 for r in existing if r["status"] != "ok"),
        }
        self._started = time.perf_counter()
        self._done_at_start = len(existing)
        self._retries = 0
        self._stop_signal = None
        self._abandoned = []
        records = list(existing)
        stream = self._open_stream(existing)
        # Graceful shutdown: SIGINT/SIGTERM set a flag checked between
        # batches instead of tearing the process down mid-write, so the
        # streaming checkpoint always closes cleanly and `campaign
        # resume` picks up from it.  Main thread only (signal() rule);
        # previous handlers are restored on the way out.
        previous_handlers = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(
                        signum, self._request_stop
                    )
                except (OSError, ValueError):
                    pass
        if self.telemetry:
            from repro.obs.telemetry import TelemetryTracker

            self._telemetry = TelemetryTracker(
                os.path.join(self.out_dir, "telemetry.jsonl")
            )
            shard_index, shard_count = self.shard or (0, 1)
            self._telemetry.start(
                campaign=self.spec.name,
                total_runs=self._total,
                pending_runs=len(pending),
                workers=self.workers,
                batch_size=batch,
                resumed=resumed,
                shard_index=shard_index,
                shard_count=shard_count,
            )
        try:
            if pending:
                chunks = [pending[i:i + batch]
                          for i in range(0, len(pending), batch)]
                executor = create_executor(self.executor_name, self.workers)
                self._dispatch(chunks, records, stream, executor)
            if self._stop_signal is not None:
                if self._telemetry is not None:
                    self._telemetry.abandoned(
                        signal.Signals(self._stop_signal).name,
                        in_flight=self._abandoned,
                        done=self._counts["ok"] + self._counts["failed"],
                        total=self._total,
                    )
                # Raised inside the try so the finally below closes the
                # stream/telemetry; sorting + finalize are skipped -- the
                # streamed checkpoint is the resumable artifact.
                raise CampaignInterrupted(self._stop_signal)
            if self._telemetry is not None:
                self._telemetry.finish(
                    runs=len(records),
                    ok=self._counts["ok"],
                    failed=self._counts["failed"],
                    timeouts=sum(1 for r in records
                                 if r.get("status") == "timeout"),
                    retries=self._retries,
                    wall_s=time.perf_counter() - self._started,
                )
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            if stream is not None:
                stream.close()
            if self._telemetry is not None:
                self._telemetry.close()
                self._telemetry = None
        records.sort(key=lambda r: r["index"])
        if self.out_dir is not None:
            self._finalize(records)
        return records

    def _request_stop(self, signum, frame) -> None:
        """Signal handler: note the stop request, let dispatch unwind."""
        if self._stop_signal is None:
            self._say(
                f"received {signal.Signals(signum).name}: finishing "
                "in-flight work, then flushing the checkpoint"
            )
        self._stop_signal = signum

    def _batch_telemetry(self, outcome: dict, retried: bool = False) -> None:
        """Emit one ``batch`` telemetry record for a completed outcome."""
        batch_records = outcome["records"]
        ok = sum(1 for r in batch_records if r["status"] == "ok")
        # Crypto and fault-injection load of the batch, from the ok
        # runs' frozen summaries (deterministic per-run data, surfaced
        # here so operators can watch sign/verify/cache pressure and
        # chaos churn batch by batch).
        summaries = [r["summary"] for r in batch_records if r["status"] == "ok"]
        self._telemetry.batch(
            runs=len(batch_records),
            ok=ok,
            failed=len(batch_records) - ok,
            wall_s=outcome["wall_s"],
            worker_pid=outcome["worker_pid"],
            done=self._counts["ok"] + self._counts["failed"],
            total=self._total,
            retried=retried,
            crypto_sign_ops=sum(s.get("crypto_sign_ops", 0) for s in summaries),
            crypto_verify_ops=sum(s.get("crypto_verify_ops", 0) for s in summaries),
            crypto_verify_cache_hits=sum(
                s.get("crypto_verify_cache_hits", 0) for s in summaries
            ),
            faults_injected=sum(
                s.get("faults_injected", 0) for s in summaries
            ),
            re_dad_count=sum(s.get("re_dad_count", 0) for s in summaries),
        )

    def _dispatch(self, chunks: list[list[dict]], records: list[dict],
                  stream, executor) -> None:
        """Run batches on the executor; stream results as they complete.

        A chunk the executor *lost* (worker death: OOM-kill, segfault)
        comes back with an error; its runs are collected and re-executed
        afterwards by :meth:`_retry_orphan`, each alone in the
        executor's strongest isolation with bounded exponential backoff.
        A stop signal ends dispatch between completions: batches still
        running in workers finish there but are *not* ingested; their
        runs are reported as the ``abandoned`` telemetry record's
        ``in_flight`` list and re-executed by ``campaign resume``.
        """
        task = execute_batch if self._telemetry is None else _timed_execute_batch
        orphaned = []  # (payload, exc) whose worker died mid-batch

        def on_outcome(chunk, value, error):
            if error is not None:
                orphaned.extend((p, error) for p in chunk)
                return
            if self._telemetry is None:
                self._ingest(value, records, stream)
            else:
                self._ingest(value["records"], records, stream)
                self._batch_telemetry(value)

        unfinished = executor.run_batches(
            chunks, task, on_outcome,
            should_stop=lambda: self._stop_signal is not None,
        )
        if self._stop_signal is not None:
            self._abandoned.extend(
                p["index"] for chunk in unfinished for p in chunk
            )
            self._abandoned.extend(p["index"] for p, _exc in orphaned)
            return
        for payload, exc in sorted(orphaned, key=lambda pair: pair[0]["index"]):
            self._retry_orphan(payload, exc, executor, records, stream)

    def _retry_orphan(self, payload: dict, death: Exception, executor,
                      records: list[dict], stream) -> None:
        """Re-execute a worker-death orphan with bounded backoff.

        Innocent batchmates die with a poison run's worker, so each
        orphan is retried alone via ``executor.run_single`` (for the
        local backend: a fresh single-worker pool) -- only the run that
        actually kills workers keeps failing.  Attempts are bounded by
        ``spec.retry_max_attempts`` (*total*, counting the original
        dispatch) with ``retry_backoff * 2**(n-1)`` sleeps between
        them.  A run that exhausts the budget gets a ``"quarantined"``
        record (campaign still completes) and an fsync'd diagnostic
        line in ``quarantine.jsonl``.
        """
        last_exc = death
        retry_started = time.perf_counter()
        for retry in range(1, self.spec.retry_max_attempts):
            if self._stop_signal is not None:
                self._abandoned.append(payload["index"])
                return
            delay = self.spec.retry_backoff * (2 ** (retry - 1))
            if delay > 0:
                time.sleep(delay)
            self._retries += 1
            try:
                record = executor.run_single(payload)
            except Exception as exc:
                last_exc = exc
                continue
            self._ingest([record], records, stream,
                         suffix=f" (retry {retry})")
            if self._telemetry is not None:
                # the retry pool's worker pid is gone with the pool;
                # report the coordinating process instead
                self._batch_telemetry({
                    "records": [record],
                    "wall_s": time.perf_counter() - retry_started,
                    "worker_pid": os.getpid(),
                }, retried=True)
            return
        record = _quarantine_record(payload, last_exc,
                                    self.spec.retry_max_attempts)
        self._quarantine(record)
        self._ingest([record], records, stream, suffix=" (quarantined)")
        if self._telemetry is not None:
            self._batch_telemetry({
                "records": [record],
                "wall_s": time.perf_counter() - retry_started,
                "worker_pid": os.getpid(),
            }, retried=True)

    def _quarantine(self, record: dict) -> None:
        """Append an fsync'd diagnostic line to ``quarantine.jsonl``."""
        if self.out_dir is None:
            return
        path = os.path.join(self.out_dir, "quarantine.jsonl")
        entry = {
            "run_id": record["run_id"],
            "index": record["index"],
            "seed": record["seed"],
            "params": record["params"],
            "attempts": record["attempts"],
            "error": record["error"],
        }
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._say(f"quarantined {record['run_id']} -> {path}")

    def _ingest(self, batch_records: list[dict], records: list[dict],
                stream, suffix: str = "") -> None:
        """Append a completed batch to memory + the streaming checkpoint."""
        for record in batch_records:
            records.append(record)
            self._counts["ok" if record["status"] == "ok" else "failed"] += 1
            if stream is not None:
                stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
                if self.shard is not None:
                    # the shard manifest's mtime is the heartbeat other
                    # hosts watch for liveness
                    touch_heartbeat(self.out_dir)
            self._say(f"  [{len(records)}/{self._total}] {record['run_id']} "
                      f"{record['status']}{suffix}")
        if self.progress:
            done = self._counts["ok"] + self._counts["failed"]
            print(
                f"progress: {done}/{self._total} done "
                f"({self._counts['ok']} ok, {self._counts['failed']} failed)"
                + self._progress_rate(done),
                file=sys.stderr, flush=True,
            )

    def _progress_rate(self, done: int) -> str:
        """Rate + ETA ticker suffix from this execution's own wall clock.

        Empty until the first run of *this* execution lands (a resume's
        checkpointed records say nothing about current throughput).
        """
        if self._started is None:
            return ""
        elapsed = time.perf_counter() - self._started
        completed = done - self._done_at_start
        if completed <= 0 or elapsed <= 0:
            return ""
        rate = completed / elapsed
        eta = (self._total - done) / rate
        return f" | {rate:.1f} runs/s | eta {eta:.0f}s"

    # -- persistence ----------------------------------------------------
    def _open_stream(self, existing: list[dict]):
        """Open the append-only ``results.jsonl`` checkpoint stream.

        The checkpoint prefix (validated records from a resume; empty on
        a fresh run) is rewritten atomically first -- temp file, fsync,
        ``os.replace`` -- so a crash during the rewrite can't lose the
        records a previous attempt already earned.
        """
        if self.out_dir is None:
            return None
        from repro.campaign.aggregate import write_jsonl

        os.makedirs(self.out_dir, exist_ok=True)
        self._write_spec_provenance()
        if self.shard is not None:
            write_shard_manifest(
                self.out_dir, self.spec.to_dict(), *self.shard,
                total_runs=self._matrix_total, assigned_runs=self._total,
                status="running",
            )
        path = os.path.join(self.out_dir, "results.jsonl")
        tmp = path + ".tmp"
        write_jsonl(tmp, existing, fsync=True)
        os.replace(tmp, path)
        return open(path, "a", encoding="utf-8")

    def _write_spec_provenance(self) -> None:
        from repro.campaign.aggregate import write_json_artifact

        write_json_artifact(
            os.path.join(self.out_dir, "spec.json"), self.spec.to_dict()
        )

    def _finalize(self, records: list[dict]) -> None:
        """Rewrite the stream sorted by run index + emit the reports.

        The streamed file holds records in completion order; the final
        artifact is sorted so it is byte-identical regardless of worker
        count, batch size, or resume history.  Atomic replace: a crash
        mid-finalize leaves the (complete) streamed checkpoint behind,
        which a further ``resume`` finalizes identically.

        A shard finalizes only its sorted checkpoint and marks its
        manifest ``complete`` -- reports over one slice of the matrix
        would be misleading; ``campaign merge`` writes the real ones.
        """
        from repro.campaign.aggregate import (
            aggregate,
            write_jsonl,
            write_report_artifacts,
        )

        path = os.path.join(self.out_dir, "results.jsonl")
        tmp = path + ".tmp"
        write_jsonl(tmp, records, fsync=True)
        os.replace(tmp, path)
        if self.shard is not None:
            write_shard_manifest(
                self.out_dir, self.spec.to_dict(), *self.shard,
                total_runs=self._matrix_total, assigned_runs=len(records),
                status="complete",
            )
            self._say(f"wrote {path} (shard checkpoint; fuse the shards "
                      "with 'campaign merge')")
            return
        report = aggregate(records, mode=self.spec.summary_mode)
        report["campaign"] = self.spec.name
        write_report_artifacts(self.out_dir, report)
        self._say(f"wrote {path}")


def run_campaign(
    spec: CampaignSpec,
    workers: int = 2,
    out_dir=None,
    echo=None,
    batch_size: int | None = None,
    progress: bool = False,
    telemetry: bool = False,
    executor: str = "local",
) -> list[dict]:
    """Execute every run of ``spec`` and return sorted records.

    Convenience wrapper over :meth:`CampaignRunner.run`; see that class
    for the streaming/batching/resume semantics.  When ``out_dir`` is
    given, writes ``results.jsonl`` (one sorted, deterministic record
    per run, streamed during execution), ``report.json``/``report.txt``
    (aggregates), and ``spec.json`` (the expanded campaign spec, for
    provenance and resume validation).
    """
    return CampaignRunner(
        spec,
        workers=workers,
        batch_size=batch_size,
        out_dir=out_dir,
        echo=echo,
        progress=progress,
        telemetry=telemetry,
        executor=executor,
    ).run()
